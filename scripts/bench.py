#!/usr/bin/env python
"""Simulator perf harness: before/after numbers for the simulation engines.

Measures the hot paths every workload in the stack bottoms out in —
gate application, noisy shot sampling, VQE iteration latency — across
the engine lanes :func:`repro.simulator.engine_mode` exposes:

* **baseline** — the seed engine: generic ``moveaxis`` gate application
  (``StateVector.use_fast_kernels = False``) and from-scratch trajectory
  groups (``sampler.USE_PREFIX_SHARING = False``);
* **fast** — the default dispatch: specialized 1q/2q kernels plus
  trajectory prefix-sharing;
* **stabilizer** — the Aaronson–Gottesman tableau backend for
  Clifford-only circuits (``ghz_sampling_stabilizer`` pits it against
  the fast dense engine at device scale; ``stabilizer_scaling_ghz``
  lanes run widths no dense engine can represent, so they record a
  single ``seconds`` lane instead of a before/after pair);
* **hybrid** — segment-granular mixed (tableau→dense) execution
  (``hybrid_segment_ghz_t`` runs a GHZ Clifford prefix followed by a
  T-gate layer: the hybrid engine forks and replays trajectory groups
  on the tableau and converts each group's boundary state to sparse
  amplitudes, against the fast dense engine paying full ``2^n`` forks);
* **packed tableau** — the bit-packed word-parallel tableau
  (``stabilizer_packed_ghz`` pits it against the uint8 tableau on
  100-qubit GHZ grouped sampling; the ``stabilizer_scaling_ghz`` lanes
  now reach 256/512/1024 qubits on the packed representation);
* **diagonal-run fusion** — ``diagonal_fusion_dense`` toggles the dense
  engine's diagonal-run kernel fusion on a T/RZ/CP-heavy sampling
  workload (fast kernels in both lanes; this isolates the fusion win);
* **mps** — the bounded-bond matrix-product-state engine
  (``mps_brickwork`` pits it against the fast dense engine on a shallow
  brickwork circuit at dense-representable width; ``mps_qaoa_wide``
  runs a QAOA-style chain at widths no other non-Clifford path can
  represent — a single-lane entry carrying a ``max_seconds``
  feasibility ceiling plus the engine's reported truncation error);
* **batched** — the batched grouped walk (``batched_ghz_grouped`` pits
  ``engine_mode("batched")`` against the scalar fast dense walk on
  noisy GHZ grouped sampling at a cache-resident width: every
  trajectory group advances in one kernel call per lockstep window,
  with bit-identical seeded counts in both lanes);
* **blocked sweeps** — cache-blocked wide-state execution
  (``blocked_wide_dense`` toggles ``dense.BLOCKED_SWEEPS`` off vs on
  around a deep-brickwork dense advance past the tile width: the
  blocked lane streams the state in L2-sized tiles and applies every
  tile-local window item per resident tile, one DRAM pass per window
  instead of one per item; ``batched_wide_grouped`` runs the batched
  grouped walk against the scalar walk at a width *above* the old
  cache-resident engagement cap, where small row chunks ride the same
  blocked sweeps — its floor pins "no worse than scalar", since the
  win there is DRAM traffic, not dispatch);
* **plan cache** — compiled execution plans
  (``plan_cache_parameterized`` samples N parameter bindings of one
  ansatz with the cross-request plan cache cleared before every binding
  vs primed once: the structural hash masks parameter values, so warm
  bindings reuse the cached fusion partition and every zero-parameter
  fused table instead of re-planning per request);
* **sharded** — the process-pool shot-sharding layer
  (``sharded_throughput`` runs ``engine_mode(workers=...)`` end to end
  — block partition, per-block seed-derived streams, clean-prefix
  sharing, ``Counts.merge`` — as a single-lane feasibility entry with a
  ``max_seconds`` ceiling; the reference machine is single-core, so the
  lane records ``workers: 1``, whose counts every pool size reproduces
  bit for bit by construction);
* **sharded with faults** — crash recovery under load
  (``sharded_with_faults`` runs the sharded sampler at ``workers: 2``
  with one worker deterministically killed mid-block by the
  :mod:`repro.testing.faults` harness: the lane times fault detection,
  the single pool rebuild, and the failed-block re-run end to end
  under a ``max_seconds`` ceiling, and records the recovery counters —
  ``pool_rebuilds``/``retries`` — as proof the fault actually fired;
  bit-identical recovered counts are pinned by ``pytest -m faults``).

Every entry's ``params`` records the ``workers`` count it ran with
(``1`` everywhere except sharded lanes on multi-core machines), so perf
trajectories across machines stay attributable.

Results are printed as a table and written to ``BENCH_simulator.json``
(schema ``repro.bench.simulator/v9``) so later PRs have a perf
trajectory to beat.  Acceptance-gate lanes carry a ``floor`` — the
minimum speedup later runs must preserve — and wide single-lane entries
may carry a ``max_seconds`` feasibility ceiling; ``--check`` runs the
quick configuration and exits nonzero if any fresh speedup drops below
the floor (or any ceiling-carrying lane exceeds its ceiling) recorded
in the committed reference artifact (the tier-1 bench regression
guard).  ``--quick`` shrinks sizes to fit the tier-1 CI budget; the
default configuration runs the paper-scale 20-qubit GHZ shot-sampling
benchmarks whose speedups the acceptance gates check.

Usage::

    PYTHONPATH=src python scripts/bench.py [--quick] [--out PATH]
    PYTHONPATH=src python scripts/bench.py --check [--reference PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

_REPO = pathlib.Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

import numpy as np  # noqa: E402

from repro.circuits import brickwork_circuit, ghz_circuit  # noqa: E402
from repro.circuits.gates import cx_matrix, rz_matrix, spec  # noqa: E402
from repro.hybrid import VQE, h2_hamiltonian  # noqa: E402
from repro.simulator import (  # noqa: E402
    SHARD_BLOCK_SHOTS,
    NoiseModel,
    depolarizing_error,
    sample_counts,
)
from repro.simulator.engines import DenseEngine  # noqa: E402
from repro.simulator.sampler import _sample_per_shot  # noqa: E402
from repro.simulator.sampler import engine_mode as engine  # noqa: E402
from repro.simulator.statevector import StateVector  # noqa: E402

SCHEMA = "repro.bench.simulator/v10"

#: Speedup floors for the acceptance-gate lanes, recorded into the
#: artifact (``floor`` field) and enforced by ``--check``.  Values are
#: conservative enough to hold at the ``--quick`` sizes on a noisy CI
#: machine while still catching a genuine engine regression.
FLOORS: Dict[str, float] = {
    "ghz_shot_sampling_grouped": 1.5,
    "grouped_vs_per_shot": 2.0,
    "ghz_sampling_stabilizer": 1.5,
    "hybrid_segment_ghz_t": 2.0,
    "stabilizer_packed_ghz": 2.5,
    "diagonal_fusion_dense": 1.3,
    # Recalibrated from 1.2 when the dense baseline gained cache-blocked
    # sweeps (which compress every dense-relative ratio at >tile widths):
    # the full-config margin stays ~1.4x, but the --quick 16-qubit size
    # now sits near parity.
    "mps_brickwork": 1.0,
    "batched_ghz_grouped": 1.5,
    "blocked_wide_dense": 1.3,
    # The wide batched walk's win is DRAM traffic shared across rows,
    # not dispatch; at 16 qubits it measures ~1.0x vs the scalar walk,
    # so the floor pins "no meaningful regression over scalar".
    "batched_wide_grouped": 0.85,
    "plan_cache_parameterized": 2.0,
    # Paired tracing lane: speedup is tracing-off / tracing-on on the
    # same workload, so this floor pins the *enabled* flight recorder's
    # overhead at ≤ ~10%; the disabled (no-op) path rides the existing
    # grouped-lane floors, which catch any off-mode regression.
    "tracing_overhead": 0.9,
}

#: Wall-clock feasibility ceilings (seconds) for single-lane entries at
#: widths no other engine can represent — the "this workload is
#: runnable at all, interactively" gates.  Deliberately generous: a
#: regression that matters here is an order of magnitude, not noise.
CEILINGS: Dict[str, float] = {
    "mps_qaoa_wide": 60.0,
    "sharded_throughput": 30.0,
    "sharded_with_faults": 30.0,
}


def _timed(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(
    name: str,
    params: Dict[str, object],
    baseline_seconds: float,
    fast_seconds: float,
    throughput_unit: Optional[str] = None,
    work_items: Optional[int] = None,
) -> Dict[str, object]:
    # Schema v6: every lane states the worker count it ran with, so
    # numbers from sharded and unsharded runs never get conflated.
    params = dict(params)
    params.setdefault("workers", 1)
    entry: Dict[str, object] = {
        "name": name,
        "params": params,
        "baseline_seconds": baseline_seconds,
        "fast_seconds": fast_seconds,
        "speedup": baseline_seconds / fast_seconds if fast_seconds > 0 else None,
    }
    if throughput_unit and work_items:
        entry["throughput_unit"] = throughput_unit
        entry["baseline_throughput"] = work_items / baseline_seconds
        entry["fast_throughput"] = work_items / fast_seconds
    floor = FLOORS.get(name)
    if floor is not None:
        entry["floor"] = floor
    return entry


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------


def bench_gate_apply(num_qubits: int, reps: int, repeats: int) -> List[Dict[str, object]]:
    """1q/2q/diagonal gate-application throughput on an n-qubit state."""
    h = spec("h").matrix()
    cx = cx_matrix()
    rz = rz_matrix(0.37)
    cz = spec("cz").matrix()
    cases = [
        ("gate_apply_1q_dense", h, lambda i: [i % num_qubits]),
        ("gate_apply_1q_diag", rz, lambda i: [i % num_qubits]),
        (
            "gate_apply_2q_cx",
            cx,
            lambda i: [i % num_qubits, (i + 1) % num_qubits],
        ),
        (
            "gate_apply_2q_diag_cz",
            cz,
            lambda i: [i % num_qubits, (i + 1) % num_qubits],
        ),
    ]
    out = []
    for name, matrix, operands in cases:
        def run():
            sv = StateVector(num_qubits)
            for i in range(reps):
                sv.apply_matrix(matrix, operands(i))

        with engine("baseline"):
            base = _timed(run, repeats)
        with engine("fast"):
            fast = _timed(run, repeats)
        out.append(
            _entry(
                name,
                {"num_qubits": num_qubits, "gates": reps},
                base,
                fast,
                throughput_unit="gates_per_sec",
                work_items=reps,
            )
        )
    return out


def _ghz_noise() -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.01, 2), "cx")
    nm.add_gate_error(depolarizing_error(0.005, 1), "h")
    return nm


def bench_ghz_sampling(num_qubits: int, shots: int, repeats: int) -> Dict[str, object]:
    """The acceptance benchmark: GHZ shot sampling, grouped path, under
    depolarizing noise — seed engine vs fast engine."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("baseline"):
        base = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    with engine("fast"):
        fast = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    return _entry(
        "ghz_shot_sampling_grouped",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        base,
        fast,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )


def bench_tracing_overhead(
    num_qubits: int, shots: int, repeats: int
) -> Dict[str, object]:
    """Flight-recorder cost on the acceptance workload: GHZ grouped
    sampling with tracing off vs on (fast engine in both lanes).

    The "baseline" lane is tracing *off* and the "fast" lane tracing
    *on*, so ``speedup`` = off/on and the committed floor bounds the
    enabled recorder's overhead; counts are bit-identical either way
    (pinned by ``tests/test_tracing.py``)."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    # A paired ratio near 1.0x is much more load-sensitive than the
    # big-speedup lanes, so always take best-of-2 even in quick mode.
    repeats = max(repeats, 2)
    with engine("fast"):
        off = _timed(
            lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
        )
    with engine("fast", trace=True):
        on = _timed(
            lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
        )
    return _entry(
        "tracing_overhead",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        off,
        on,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )


def bench_grouped_vs_per_shot(
    num_qubits: int, shots: int, repeats: int
) -> Dict[str, object]:
    """Shots/sec of the grouped path vs the per-shot path (fast engine
    in both lanes; this isolates the trajectory-grouping win)."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("fast"):
        per_shot = _timed(
            lambda: _sample_per_shot(
                circuit, shots, noise, np.random.default_rng(7), {}, DenseEngine
            ),
            repeats,
        )
        grouped = _timed(
            lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
        )
    return _entry(
        "grouped_vs_per_shot",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        per_shot,
        grouped,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )


def bench_stabilizer_ghz(num_qubits: int, shots: int, repeats: int) -> Dict[str, object]:
    """Tableau engine vs the fast dense engine on Clifford grouped
    sampling — the stabilizer acceptance benchmark (≥10× at 20 qubits)."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("fast"):
        dense = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    with engine("stabilizer"):
        stab = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    entry = _entry(
        "ghz_sampling_stabilizer",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        dense,
        stab,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )
    entry["lanes"] = {"baseline": "statevector-fast", "fast": "stabilizer"}
    return entry


def bench_stabilizer_scaling(
    sizes: Sequence[int], shots: int, repeats: int
) -> List[Dict[str, object]]:
    """Stabilizer-only lanes at widths the dense engine cannot represent.

    Single-lane entries (``seconds`` instead of a before/after pair):
    there is no dense baseline beyond 26 qubits, which is the point.
    """
    out: List[Dict[str, object]] = []
    for num_qubits in sizes:
        circuit = ghz_circuit(num_qubits)
        noise = _ghz_noise()
        with engine("stabilizer"):
            seconds = _timed(
                lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
            )
        out.append(
            {
                "name": "stabilizer_scaling_ghz",
                "params": {
                    "num_qubits": num_qubits,
                    "shots": shots,
                    "noise": "depolarizing",
                    "workers": 1,
                },
                "seconds": seconds,
                "throughput_unit": "shots_per_sec",
                "throughput": shots / seconds,
            }
        )
    return out


def bench_packed_tableau(num_qubits: int, shots: int, repeats: int) -> Dict[str, object]:
    """Bit-packed word-parallel tableau vs the uint8 tableau on wide GHZ
    grouped sampling — the packed-engine acceptance benchmark (≥5× at
    100 qubits on the full configuration; both lanes are bit-identical
    in sampled counts, so this measures representation speed alone)."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("stabilizer", tableau_impl="unpacked"):
        unpacked = _timed(
            lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
        )
    with engine("stabilizer", tableau_impl="packed"):
        packed = _timed(
            lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
        )
    entry = _entry(
        "stabilizer_packed_ghz",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        unpacked,
        packed,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )
    entry["lanes"] = {"baseline": "tableau-uint8", "fast": "tableau-packed"}
    return entry


def _diagonal_heavy_circuit(num_qubits: int, layers: int):
    """QAOA-style workload: T/CP/RZ cost runs with an H mixer wall every
    fourth layer — each run between walls is one fusible diagonal block."""
    from repro.circuits.circuit import QuantumCircuit

    qc = QuantumCircuit(num_qubits, name=f"diagruns{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    for layer in range(layers):
        for q in range(num_qubits):
            qc.t(q)
        for q in range(num_qubits - 1):
            qc.cp(0.31, q, q + 1)
        for q in range(num_qubits):
            qc.rz(0.7, q)
        if layer % 4 == 3:
            for q in range(num_qubits):
                qc.h(q)
    return qc


def bench_diag_fusion(num_qubits: int, layers: int, repeats: int) -> Dict[str, object]:
    """Dense-engine window advance with diagonal-run kernel fusion off
    vs on (fast kernels in both lanes) over a T/CP/RZ-heavy circuit —
    isolates the satellite fusion win: each diagonal run costs one
    elementwise pass instead of one full-state traversal per gate."""
    from repro.simulator.engines import dense as dense_mod

    circuit = _diagonal_heavy_circuit(num_qubits, layers)
    ops = list(circuit)

    def advance_once():
        DenseEngine(circuit).advance(ops)

    with engine("fast"):
        prev = (dense_mod.FUSE_DIAGONAL_RUNS, dense_mod.FUSE_BLOCKS)
        try:
            # the unfused lane must disable *both* fusion passes, or
            # block fusion keeps firing and shrinks the measured ratio
            dense_mod.FUSE_DIAGONAL_RUNS = False
            dense_mod.FUSE_BLOCKS = False
            unfused = _timed(advance_once, repeats)
            dense_mod.FUSE_DIAGONAL_RUNS = True
            dense_mod.FUSE_BLOCKS = True
            fused = _timed(advance_once, repeats)
        finally:
            dense_mod.FUSE_DIAGONAL_RUNS, dense_mod.FUSE_BLOCKS = prev
    entry = _entry(
        "diagonal_fusion_dense",
        {"num_qubits": num_qubits, "layers": layers, "gates": len(ops)},
        unfused,
        fused,
        throughput_unit="gates_per_sec",
        work_items=len(ops),
    )
    entry["lanes"] = {"baseline": "dense-fast-unfused", "fast": "dense-fast-fused"}
    return entry


def _ghz_t_circuit(num_qubits: int):
    """GHZ Clifford prefix + one T-gate layer + terminal measurement —
    the canonical Clifford-prefix / non-Clifford-tail workload."""
    circuit = ghz_circuit(num_qubits, measure=False, name=f"ghz{num_qubits}+t")
    for q in range(num_qubits):
        circuit.t(q)
    circuit.measure_all()
    return circuit


def bench_hybrid_segment(num_qubits: int, shots: int, repeats: int) -> Dict[str, object]:
    """Hybrid segment engine vs the fast dense engine on a GHZ-prefix +
    T-layer grouped-sampling workload — the mixed-execution acceptance
    benchmark (≥3× at 24 qubits; in practice orders of magnitude,
    because every trajectory group forks on the tableau and converts a
    two-element coset instead of copying a ``2^n`` amplitude vector)."""
    circuit = _ghz_t_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("fast"):
        dense = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    with engine("hybrid"):
        hybrid = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    entry = _entry(
        "hybrid_segment_ghz_t",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        dense,
        hybrid,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )
    entry["lanes"] = {"baseline": "statevector-fast", "fast": "hybrid-segment"}
    return entry


def _brickwork_noise() -> NoiseModel:
    nm = NoiseModel()
    nm.add_gate_error(depolarizing_error(0.002, 2), "cz")
    nm.add_gate_error(depolarizing_error(0.001, 1), "ry")
    return nm


def bench_mps_brickwork(
    num_qubits: int, depth: int, shots: int, repeats: int
) -> Dict[str, object]:
    """MPS engine vs the fast dense engine on shallow-brickwork grouped
    sampling at a dense-representable width — the MPS acceptance
    benchmark.  Per trajectory group the dense engine copies and
    replays a ``2^n`` amplitude vector; the MPS engine forks ``O(n ·
    chi²)`` tensors, replays cheap local contractions, and only pays a
    single exact contraction at sampling time (which is also what keeps
    its seeded counts bit-comparable to the dense engine's)."""
    circuit = brickwork_circuit(num_qubits, depth)
    noise = _brickwork_noise()
    with engine("fast"):
        dense = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    with engine("mps"):
        mps = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    entry = _entry(
        "mps_brickwork",
        {
            "num_qubits": num_qubits,
            "depth": depth,
            "shots": shots,
            "noise": "depolarizing",
        },
        dense,
        mps,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )
    entry["lanes"] = {"baseline": "statevector-fast", "fast": "mps"}
    return entry


def bench_mps_qaoa_wide(
    num_qubits: int, layers: int, shots: int, repeats: int
) -> Dict[str, object]:
    """MPS-only lane: a QAOA-style chain (H wall, RZZ cost layers, RX
    mixers) at a width where *every* other non-Clifford path is
    infeasible — the RX mixer branches, so the hybrid engine's sparse
    tail blows up, and the dense engine cannot represent the state at
    all.  Single-lane entry with a ``max_seconds`` feasibility ceiling;
    the engine's reported cumulative truncation error and peak bond
    dimension are recorded alongside the timing."""
    from repro.circuits.circuit import QuantumCircuit
    from repro.simulator.engines import prepare_engine

    qc = QuantumCircuit(num_qubits, name=f"qaoa{num_qubits}")
    for q in range(num_qubits):
        qc.h(q)
    for _ in range(layers):
        for q in range(num_qubits - 1):
            qc.rzz(0.4, q, q + 1)
        for q in range(num_qubits):
            qc.rx(0.9, q)
    qc.measure_all()
    noise = _ghz_noise()  # h-gate depolarizing reaches the H wall
    with engine("mps"):
        seconds = _timed(
            lambda: sample_counts(qc, shots, noise=noise, rng=7), repeats
        )
        state = prepare_engine(qc, "mps")
    entry: Dict[str, object] = {
        "name": "mps_qaoa_wide",
        "params": {
            "num_qubits": num_qubits,
            "layers": layers,
            "shots": shots,
            "noise": "depolarizing",
            "chi": state.chi,
            "workers": 1,
        },
        "seconds": seconds,
        "throughput_unit": "shots_per_sec",
        "throughput": shots / seconds,
        "truncation_error": state.truncation_error,
        "max_bond_dimension": state.max_bond_dimension,
    }
    ceiling = CEILINGS.get("mps_qaoa_wide")
    if ceiling is not None:
        entry["max_seconds"] = ceiling
    return entry


def bench_batched_grouped(num_qubits: int, shots: int, repeats: int) -> Dict[str, object]:
    """Batched grouped walk vs the scalar fast dense walk on noisy GHZ
    grouped sampling — the batched-execution acceptance benchmark
    (≥1.5× at a cache-resident width; both lanes draw identical RNG
    streams, so seeded counts are bit-identical and the entry measures
    dispatch amortization alone).  The width is deliberately small: the
    batched walk only engages where a :data:`~repro.simulator.sampler.
    BATCH_MAX_BYTES` chunk keeps many stacked states cache-resident,
    and disengages (identical scalar path) beyond it."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("fast"):
        scalar = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    with engine("batched"):
        batched = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    entry = _entry(
        "batched_ghz_grouped",
        {"num_qubits": num_qubits, "shots": shots, "noise": "depolarizing"},
        scalar,
        batched,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )
    entry["lanes"] = {"baseline": "statevector-fast", "fast": "batched-dense"}
    return entry


def bench_blocked_wide(num_qubits: int, depth: int, repeats: int) -> Dict[str, object]:
    """Cache-blocked sweeps off vs on over a deep-brickwork dense
    advance at a width past the tile (fast kernels in both lanes; this
    isolates the blocking win).  The unblocked lane streams the full
    ``2^n`` state through DRAM once per window item; the blocked lane
    remaps high operands tile-local and applies every item of a sweep
    segment to one L2-resident tile before the next tile streams in."""
    from repro.simulator import sampler as sampler_mod
    from repro.simulator.engines import dense as dense_mod

    circuit = brickwork_circuit(num_qubits, depth, measure=False)
    ops = list(circuit)

    def advance_once():
        DenseEngine(circuit).advance(ops)

    with engine("fast"):
        prev = dense_mod.BLOCKED_SWEEPS
        try:
            dense_mod.BLOCKED_SWEEPS = False
            unblocked = _timed(advance_once, repeats)
            dense_mod.BLOCKED_SWEEPS = True
            blocked = _timed(advance_once, repeats)
        finally:
            dense_mod.BLOCKED_SWEEPS = prev
        tile = dense_mod.blocked_tile_qubits()
        budget = int(sampler_mod.BATCH_MAX_BYTES)
    entry = _entry(
        "blocked_wide_dense",
        {
            "num_qubits": num_qubits,
            "depth": depth,
            "gates": len(ops),
            "batch_max_bytes": budget,
            "tile_qubits": tile,
        },
        unblocked,
        blocked,
        throughput_unit="gates_per_sec",
        work_items=len(ops),
    )
    entry["lanes"] = {"baseline": "dense-fast-unblocked", "fast": "dense-fast-blocked"}
    return entry


def bench_batched_wide_grouped(
    num_qubits: int, depth: int, shots: int, repeats: int
) -> Dict[str, object]:
    """Batched grouped walk vs the scalar fast dense walk on noisy
    brickwork sampling at a width *above* the old cache-resident
    engagement cap.  Rows advance in small chunks whose lockstep windows
    ride the blocked sweeps (sparse injection sites keep the windows
    long enough to block); seeded counts are bit-identical in both
    lanes.  The floor pins "no meaningful regression over scalar" — the
    wide regime's benefit is shared DRAM traffic, not dispatch
    amortization, and at 16 qubits that nets out near parity."""
    from repro.simulator import sampler as sampler_mod
    from repro.simulator.engines import dense as dense_mod

    circuit = brickwork_circuit(num_qubits, depth)
    noise = _brickwork_noise()
    with engine("fast"):
        scalar = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
    with engine("batched"):
        batched = _timed(lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats)
        tile = dense_mod.blocked_tile_qubits()
        budget = int(sampler_mod.BATCH_MAX_BYTES)
    entry = _entry(
        "batched_wide_grouped",
        {
            "num_qubits": num_qubits,
            "depth": depth,
            "shots": shots,
            "noise": "depolarizing",
            "batch_max_bytes": budget,
            "tile_qubits": tile,
        },
        scalar,
        batched,
        throughput_unit="shots_per_sec",
        work_items=shots,
    )
    entry["lanes"] = {"baseline": "statevector-fast", "fast": "batched-dense-wide"}
    return entry


def _plan_cache_ansatz(num_qubits: int, layers: int):
    """Parameterized hardware-efficient ansatz whose *static* structure
    is expensive to plan: every layer alternates a parameterized RY wall
    (rebound per iteration) with long zero-parameter diagonal T/S/Z/CZ
    runs whose fused ``2^k`` tables the plan caches across bindings.
    The diagonal gates must be genuinely parameter-free (no numeric
    angles): the structural hash masks values, so any gate *carrying* a
    value is rematerialized per binding and would dilute the ratio."""
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.parameters import Parameter

    qc = QuantumCircuit(num_qubits, name=f"plancache{num_qubits}")
    for q in range(num_qubits):
        qc.h(q)
    for layer in range(layers):
        # Sparse parameterized walls: rebinding still exercises the
        # dynamic-window path every iteration, but the workload stays
        # dominated by the static structure the cache amortizes.  The
        # non-diagonal RY walls are also the only run separators, so
        # the T/CZ/S/Z cost layers between them coalesce into long
        # zero-parameter diagonal runs — one fused table each, built
        # once per cached plan and reused by every warm binding.
        if layer % 4 == 0:
            for q in range(num_qubits):
                qc.ry(Parameter(f"t{layer}_{q}"), q)
        for _ in range(2):
            for q in range(num_qubits):
                qc.t(q)
            for q in range(num_qubits - 1):
                qc.cz(q, q + 1)
            for q in range(num_qubits):
                qc.s(q)
            for q in range(num_qubits):
                qc.z(q)
    qc.measure_all()
    return qc


def bench_plan_cache(
    num_qubits: int, layers: int, bindings: int, shots: int, repeats: int
) -> Dict[str, object]:
    """Plan-cache amortization on N parameter bindings of one ansatz —
    the compiled-execution-plan acceptance benchmark (≥2× warm over
    cold).  Both lanes sample the same N bound circuits with the same
    seeds; the cold lane clears the plan cache before every binding
    (every request re-runs the fusion-partition scan and rebuilds every
    fused table), the warm lane plans once and rebinds — parameter
    values are masked out of the structural hash, so all N bindings hit
    one cached plan and only the parameterized windows rematerialize."""
    from repro.compiler import plans

    ansatz = _plan_cache_ansatz(num_qubits, layers)
    rng = np.random.default_rng(11)
    bound = [
        ansatz.bind_values(rng.uniform(0.1, 3.0, size=len(ansatz.parameters)))
        for _ in range(bindings)
    ]

    def run_cold():
        for qc in bound:
            plans.plan_cache_clear()
            sample_counts(qc, shots, rng=7)

    def run_warm():
        for qc in bound:
            sample_counts(qc, shots, rng=7)

    with engine("fast"):
        cold = _timed(run_cold, repeats)
        plans.plan_cache_clear()
        sample_counts(bound[0], shots, rng=7)  # prime the cache
        warm = _timed(run_warm, repeats)
    info = plans.plan_cache_info()
    plans.plan_cache_clear()
    entry = _entry(
        "plan_cache_parameterized",
        {
            "num_qubits": num_qubits,
            "layers": layers,
            "bindings": bindings,
            "shots": shots,
        },
        cold,
        warm,
        throughput_unit="bindings_per_sec",
        work_items=bindings,
    )
    entry["lanes"] = {"baseline": "plan-cold", "fast": "plan-warm"}
    entry["cache_hits"] = info["hits"]
    return entry


def bench_sharded_throughput(
    num_qubits: int, shots: int, workers: int, repeats: int
) -> Dict[str, object]:
    """Process-pool shot sharding end to end — block partition,
    per-block seed-derived streams, clean-prefix sharing, and the
    ``Counts.merge`` fold — as a single-lane feasibility entry with a
    ``max_seconds`` ceiling.  The reference machine is single-core, so
    the committed lane records ``workers: 1``; the sharding contract
    makes every pool size reproduce those counts bit for bit, so the
    lane gates the *machinery* (a pathological overhead regression),
    not parallel scaling."""
    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()
    with engine("fast", workers=workers):
        seconds = _timed(
            lambda: sample_counts(circuit, shots, noise=noise, rng=7), repeats
        )
    entry: Dict[str, object] = {
        "name": "sharded_throughput",
        "params": {
            "num_qubits": num_qubits,
            "shots": shots,
            "noise": "depolarizing",
            "workers": workers,
            "block_shots": SHARD_BLOCK_SHOTS,
        },
        "seconds": seconds,
        "throughput_unit": "shots_per_sec",
        "throughput": shots / seconds,
    }
    ceiling = CEILINGS.get("sharded_throughput")
    if ceiling is not None:
        entry["max_seconds"] = ceiling
    return entry


def bench_sharded_with_faults(
    num_qubits: int, shots: int, workers: int, repeats: int
) -> Dict[str, object]:
    """Crash recovery under load: the sharded sampler with one worker
    **killed mid-run** (a deterministic ``shard.block`` kill injected by
    :mod:`repro.testing.faults`), timing detection, the single pool
    rebuild, and the re-run of the failed blocks end to end.  Single-lane
    feasibility entry with a ``max_seconds`` ceiling: recovery must stay
    interactive, not just correct (correctness — bit-identical counts —
    is pinned by ``pytest -m faults``).  The rebuild backoff is zeroed
    for the measurement so the lane times recovery work, not sleep."""
    from repro.simulator import resilience, sharding
    from repro.simulator.sharding import sample_counts_sharded
    from repro.testing import Fault, inject_faults

    circuit = ghz_circuit(num_qubits)
    noise = _ghz_noise()

    def run_once():
        resilience.reset_counters()
        with inject_faults(
            Fault("shard.block", action="kill", index=1, times=1, worker_only=True)
        ):
            sample_counts_sharded(
                circuit, shots, noise=noise, seed=7, workers=workers
            )

    prev_backoff = sharding.REBUILD_BACKOFF_BASE
    try:
        sharding.REBUILD_BACKOFF_BASE = 0.0
        with engine("fast"):
            seconds = _timed(run_once, repeats)
    finally:
        sharding.REBUILD_BACKOFF_BASE = prev_backoff
    counters = resilience.counters()
    resilience.reset_counters()
    entry: Dict[str, object] = {
        "name": "sharded_with_faults",
        "params": {
            "num_qubits": num_qubits,
            "shots": shots,
            "noise": "depolarizing",
            "workers": workers,
            "block_shots": SHARD_BLOCK_SHOTS,
            "injected_fault": "worker-kill@block1",
        },
        "seconds": seconds,
        "throughput_unit": "shots_per_sec",
        "throughput": shots / seconds,
        # Recovery-path proof: the lane is meaningless if the fault did
        # not actually fire, so the counters ride along in the artifact.
        "pool_rebuilds": counters["pool_rebuilds"],
        "retries": counters["retries"],
        "inline_fallbacks": counters["inline_fallbacks"],
    }
    ceiling = CEILINGS.get("sharded_with_faults")
    if ceiling is not None:
        entry["max_seconds"] = ceiling
    return entry


def bench_vqe_iteration(shots: int, repeats: int) -> List[Dict[str, object]]:
    """Latency of one VQE energy evaluation (the tight-loop unit of work):
    the sampled estimator and the exact state-vector path."""
    ham = h2_hamiltonian()

    def make_vqe():
        # Fresh seeded RNG per lane: both lanes must consume identical
        # shot-noise streams, otherwise they time different workloads.
        rng = np.random.default_rng(5)
        runner = lambda qc, s: sample_counts(qc, s, rng=rng)  # noqa: E731
        return VQE(ham, runner, depth=2, shots=shots)

    values = np.linspace(-0.4, 0.4, len(make_vqe().parameters))
    out = []
    for name, method in (
        ("vqe_iteration_sampled", "energy"),
        ("vqe_iteration_exact", "energy_exact"),
    ):
        with engine("baseline"):
            vqe = make_vqe()
            base = _timed(lambda: getattr(vqe, method)(values), repeats)
        with engine("fast"):
            vqe = make_vqe()
            fast = _timed(lambda: getattr(vqe, method)(values), repeats)
        out.append(
            _entry(
                name,
                {"hamiltonian": "h2", "shots": shots, "ansatz_depth": 2},
                base,
                fast,
                throughput_unit="iterations_per_sec",
                work_items=1,
            )
        )
    return out


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def run(quick: bool) -> Dict[str, object]:
    if quick:
        config = {
            "gate_qubits": 14,
            "gate_reps": 40,
            "ghz_qubits": 12,
            "ghz_shots": 256,
            # The paired tracing lane needs a workload where per-span
            # cost is small relative to gate work, or the quick ratio
            # is all fixed overhead; 16q keeps --check honest and fast.
            "tracing_qubits": 16,
            "tracing_shots": 256,
            "per_shot_qubits": 8,
            "per_shot_shots": 64,
            "vqe_shots": 128,
            "stabilizer_qubits": 12,
            "stabilizer_shots": 256,
            "stabilizer_scaling_sizes": [40, 256],
            "stabilizer_scaling_shots": 128,
            "hybrid_qubits": 16,
            "hybrid_shots": 192,
            "packed_qubits": 100,
            "packed_shots": 512,
            "diag_fusion_qubits": 16,
            "diag_fusion_layers": 4,
            "mps_brickwork_qubits": 16,
            "mps_brickwork_depth": 4,
            "mps_brickwork_shots": 256,
            "mps_qaoa_qubits": 40,
            "mps_qaoa_layers": 2,
            "mps_qaoa_shots": 256,
            "batched_qubits": 10,
            "batched_shots": 2048,
            "blocked_qubits": 18,
            "blocked_depth": 6,
            "batched_wide_qubits": 16,
            "batched_wide_depth": 12,
            "batched_wide_shots": 48,
            "plan_cache_qubits": 10,
            "plan_cache_layers": 6,
            "plan_cache_bindings": 8,
            "plan_cache_shots": 16,
            "sharded_qubits": 12,
            "sharded_shots": 2048,
            "sharded_workers": 1,
            "sharded_faults_qubits": 12,
            "sharded_faults_shots": 1024,
            "sharded_faults_workers": 2,
        }
        repeats = 1
    else:
        config = {
            "gate_qubits": 20,
            "gate_reps": 60,
            "ghz_qubits": 20,
            "ghz_shots": 512,
            "tracing_qubits": 20,
            "tracing_shots": 512,
            "per_shot_qubits": 10,
            "per_shot_shots": 200,
            "vqe_shots": 512,
            "stabilizer_qubits": 20,
            "stabilizer_shots": 512,
            "stabilizer_scaling_sizes": [50, 100, 256, 512, 1024],
            "stabilizer_scaling_shots": 512,
            "hybrid_qubits": 24,
            "hybrid_shots": 160,
            "packed_qubits": 100,
            "packed_shots": 1024,
            "diag_fusion_qubits": 20,
            "diag_fusion_layers": 8,
            "mps_brickwork_qubits": 20,
            "mps_brickwork_depth": 4,
            "mps_brickwork_shots": 256,
            "mps_qaoa_qubits": 64,
            "mps_qaoa_layers": 2,
            "mps_qaoa_shots": 512,
            "batched_qubits": 10,
            "batched_shots": 4096,
            "blocked_qubits": 20,
            "blocked_depth": 4,
            "batched_wide_qubits": 16,
            "batched_wide_depth": 12,
            "batched_wide_shots": 96,
            "plan_cache_qubits": 10,
            "plan_cache_layers": 10,
            "plan_cache_bindings": 16,
            "plan_cache_shots": 16,
            "sharded_qubits": 12,
            "sharded_shots": 8192,
            "sharded_workers": 1,
            "sharded_faults_qubits": 12,
            "sharded_faults_shots": 2048,
            "sharded_faults_workers": 2,
        }
        repeats = 2
    benchmarks: List[Dict[str, object]] = []
    benchmarks += bench_gate_apply(config["gate_qubits"], config["gate_reps"], repeats)
    benchmarks.append(
        bench_ghz_sampling(config["ghz_qubits"], config["ghz_shots"], repeats)
    )
    benchmarks.append(
        bench_tracing_overhead(
            config["tracing_qubits"], config["tracing_shots"], repeats
        )
    )
    benchmarks.append(
        bench_grouped_vs_per_shot(
            config["per_shot_qubits"], config["per_shot_shots"], repeats
        )
    )
    benchmarks.append(
        bench_stabilizer_ghz(
            config["stabilizer_qubits"], config["stabilizer_shots"], repeats
        )
    )
    benchmarks += bench_stabilizer_scaling(
        config["stabilizer_scaling_sizes"], config["stabilizer_scaling_shots"], repeats
    )
    benchmarks.append(
        bench_hybrid_segment(config["hybrid_qubits"], config["hybrid_shots"], repeats)
    )
    benchmarks.append(
        bench_packed_tableau(config["packed_qubits"], config["packed_shots"], repeats)
    )
    benchmarks.append(
        bench_diag_fusion(
            config["diag_fusion_qubits"], config["diag_fusion_layers"], repeats
        )
    )
    benchmarks.append(
        bench_mps_brickwork(
            config["mps_brickwork_qubits"],
            config["mps_brickwork_depth"],
            config["mps_brickwork_shots"],
            repeats,
        )
    )
    benchmarks.append(
        bench_mps_qaoa_wide(
            config["mps_qaoa_qubits"],
            config["mps_qaoa_layers"],
            config["mps_qaoa_shots"],
            repeats,
        )
    )
    benchmarks.append(
        bench_batched_grouped(
            config["batched_qubits"], config["batched_shots"], repeats
        )
    )
    benchmarks.append(
        bench_blocked_wide(
            config["blocked_qubits"], config["blocked_depth"], repeats
        )
    )
    benchmarks.append(
        bench_batched_wide_grouped(
            config["batched_wide_qubits"],
            config["batched_wide_depth"],
            config["batched_wide_shots"],
            repeats,
        )
    )
    benchmarks.append(
        bench_plan_cache(
            config["plan_cache_qubits"],
            config["plan_cache_layers"],
            config["plan_cache_bindings"],
            config["plan_cache_shots"],
            repeats,
        )
    )
    benchmarks.append(
        bench_sharded_throughput(
            config["sharded_qubits"],
            config["sharded_shots"],
            config["sharded_workers"],
            repeats,
        )
    )
    benchmarks.append(
        bench_sharded_with_faults(
            config["sharded_faults_qubits"],
            config["sharded_faults_shots"],
            config["sharded_faults_workers"],
            repeats,
        )
    )
    benchmarks += bench_vqe_iteration(config["vqe_shots"], repeats)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "config": config,
        # Wall-clock numbers are only comparable on the machine that
        # produced them; record it so the reference is stated in-band.
        "machine": {
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "benchmarks": benchmarks,
    }


def render(result: Dict[str, object]) -> str:
    lines = [
        f"{'benchmark':<28s} {'baseline':>10s} {'fast':>10s} {'speedup':>8s}",
        "-" * 60,
    ]
    for b in result["benchmarks"]:
        if "seconds" in b:  # single-lane entry (no dense baseline exists)
            label = f"{b['name']} (n={b['params']['num_qubits']})"
            lines.append(f"{label:<28s} {'—':>10s} {b['seconds']:>9.4f}s {'—':>8s}")
        else:
            lines.append(
                f"{b['name']:<28s} {b['baseline_seconds']:>9.4f}s "
                f"{b['fast_seconds']:>9.4f}s {b['speedup']:>7.2f}x"
            )
    return "\n".join(lines)


def check_against_reference(
    result: Dict[str, object], reference: Dict[str, object]
) -> List[str]:
    """Regression report: fresh speedups vs the reference's floors, and
    fresh single-lane timings vs the reference's feasibility ceilings.

    Every reference entry carrying a ``floor`` must (a) still exist in
    the fresh run and (b) meet that floor there; every entry carrying a
    ``max_seconds`` ceiling must exist and stay below it.  Returns a
    list of human-readable failure lines (empty = no regression).
    Floors/ceilings, not raw numbers, are compared: wall-clock drifts
    with machine load, so the committed artifact states the bound each
    lane must preserve rather than the number it happened to record.
    """
    floors = {
        e["name"]: e["floor"]
        for e in reference.get("benchmarks", [])
        if "floor" in e
    }
    ceilings = {
        e["name"]: e["max_seconds"]
        for e in reference.get("benchmarks", [])
        if "max_seconds" in e
    }
    fresh = {
        e["name"]: e
        for e in result.get("benchmarks", [])
        if "speedup" in e
    }
    fresh_seconds: Dict[str, float] = {}
    for e in result.get("benchmarks", []):
        if "seconds" in e:
            # several entries may share a name (scaling lanes); the
            # slowest one must clear the ceiling
            name = e["name"]
            fresh_seconds[name] = max(fresh_seconds.get(name, 0.0), e["seconds"])
    failures: List[str] = []
    for name, floor in sorted(floors.items()):
        entry = fresh.get(name)
        if entry is None:
            failures.append(f"{name}: lane missing from fresh run (floor {floor}x)")
            continue
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x below floor {floor}x"
            )
    for name, ceiling in sorted(ceilings.items()):
        seconds = fresh_seconds.get(name)
        if seconds is None:
            failures.append(
                f"{name}: lane missing from fresh run (ceiling {ceiling}s)"
            )
            continue
        if seconds > ceiling:
            failures.append(
                f"{name}: {seconds:.2f}s exceeds feasibility ceiling {ceiling}s"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes fitting the tier-1 CI time budget",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="regression guard: run the quick configuration and exit "
        "nonzero if any speedup drops below the floors recorded in the "
        "reference artifact",
    )
    parser.add_argument(
        "--reference",
        type=pathlib.Path,
        default=_REPO / "BENCH_simulator.json",
        help="committed artifact whose floors --check enforces",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output JSON path (default: repo-root BENCH_simulator.json; "
        "under --check nothing is written unless --out is given)",
    )
    args = parser.parse_args(argv)
    if args.out is None and not args.check:
        args.out = _REPO / "BENCH_simulator.json"
    if args.check and not args.reference.is_file():
        # Fail before the benchmark run, not after tens of seconds of it.
        print(f"--check: reference artifact {args.reference} not found")
        return 2
    result = run(quick=args.quick or args.check)
    print(render(result))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"\nwrote {args.out}")
    if args.check:
        reference = json.loads(args.reference.read_text())
        failures = check_against_reference(result, reference)
        if failures:
            print("\n--check FAILED:")
            for line in failures:
                print(f"  {line}")
            return 1
        print("\n--check passed: all floors held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
