"""Power model: Section 2.2's QC-vs-HPC comparison.

Quantified claims reproduced here:

* the 20-qubit superconducting system peaks at **30 kW** during cooldown
  (control electronics + cryogenic gas handling + compressors);
* a Cray EX4000 cabinet draws up to **141 kVA (~140 kW real)**; the
  Cray EX cooling infrastructure supports **1.2 MW per four cabinets**,
  i.e. ~**300 kW per cabinet** in high-density configurations;
* conclusion: "existing HPC centers will have sufficient electrical
  power capacity for deploying superconducting quantum computers."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import FacilityError
from repro.utils.units import KILOWATT


class QPUPowerPhase(enum.Enum):
    """Operating phases with distinct power draw."""

    OFF = "off"
    COOLDOWN = "cooldown"        # peak draw: pumps + compressors flat out
    STEADY = "steady"            # cold and computing
    IDLE_COLD = "idle_cold"      # cold, no jobs (cryogenics still run)
    WARMUP = "warmup"            # controlled warm-up


@dataclass(frozen=True)
class QPUPowerModel:
    """Power draw of the 20-qubit system per phase (watts).

    Split into the paper's three sinks: electrical (control electronics
    + gas handling), room air conditioning (removes electronics heat),
    and cooling water (removes cryocooler heat).
    """

    peak_cooldown: float = 30.0 * KILOWATT
    steady: float = 22.0 * KILOWATT
    idle_cold: float = 18.0 * KILOWATT
    warmup: float = 8.0 * KILOWATT
    electronics_fraction: float = 0.30   # ends up as room heat → HVAC
    cryogenics_fraction: float = 0.65    # ends up in cooling water
    # remainder: distribution losses

    def draw(self, phase: QPUPowerPhase) -> float:
        """Electrical draw in watts for *phase*."""
        return {
            QPUPowerPhase.OFF: 0.0,
            QPUPowerPhase.COOLDOWN: self.peak_cooldown,
            QPUPowerPhase.STEADY: self.steady,
            QPUPowerPhase.IDLE_COLD: self.idle_cold,
            QPUPowerPhase.WARMUP: self.warmup,
        }[phase]

    def heat_to_air(self, phase: QPUPowerPhase) -> float:
        """Heat the room HVAC must remove (watts)."""
        return self.draw(phase) * self.electronics_fraction

    def heat_to_water(self, phase: QPUPowerPhase) -> float:
        """Heat the cooling-water loop must remove (watts)."""
        return self.draw(phase) * self.cryogenics_fraction

    def energy(self, schedule: Sequence[Tuple[QPUPowerPhase, float]]) -> float:
        """Energy (joules) over a (phase, duration-seconds) schedule."""
        total = 0.0
        for phase, duration in schedule:
            if duration < 0:
                raise FacilityError("schedule durations must be non-negative")
            total += self.draw(phase) * duration
        return total


@dataclass(frozen=True)
class HPCCabinetModel:
    """Classical comparison point: one Cray EX4000 cabinet (Section 2.2)."""

    nameplate_kva: float = 141.0
    real_power: float = 140.0 * KILOWATT
    cooling_per_four_cabinets: float = 1200.0 * KILOWATT
    name: str = "Cray EX4000 cabinet"

    @property
    def cooling_capability_per_cabinet(self) -> float:
        """~300 kW per cabinet in high-density scenarios."""
        return self.cooling_per_four_cabinets / 4.0


def power_comparison(
    qpu: QPUPowerModel = QPUPowerModel(),
    cabinet: HPCCabinetModel = HPCCabinetModel(),
) -> List[Dict[str, object]]:
    """Rows of the Section 2.2 comparison: who draws what, and the ratio.

    The headline numbers: QPU peak 30 kW vs cabinet 140 kW (×~4.7) and
    cabinet cooling envelope 300 kW (×10) — a QPU is a light load for
    any HPC machine room.
    """
    rows: List[Dict[str, object]] = [
        {
            "system": "20-qubit QPU (cooldown peak)",
            "power_kw": qpu.peak_cooldown / KILOWATT,
            "vs_qpu_peak": 1.0,
        },
        {
            "system": "20-qubit QPU (steady operation)",
            "power_kw": qpu.steady / KILOWATT,
            "vs_qpu_peak": qpu.steady / qpu.peak_cooldown,
        },
        {
            "system": cabinet.name + " (max draw)",
            "power_kw": cabinet.real_power / KILOWATT,
            "vs_qpu_peak": cabinet.real_power / qpu.peak_cooldown,
        },
        {
            "system": cabinet.name + " (cooling envelope)",
            "power_kw": cabinet.cooling_capability_per_cabinet / KILOWATT,
            "vs_qpu_peak": cabinet.cooling_capability_per_cabinet / qpu.peak_cooldown,
        },
    ]
    return rows


def fits_in_hpc_budget(
    qpu: QPUPowerModel = QPUPowerModel(),
    cabinet: HPCCabinetModel = HPCCabinetModel(),
) -> bool:
    """The paper's conclusion as a predicate: the QPU's *peak* draw fits
    inside a single cabinet's provisioned power."""
    return qpu.peak_cooldown <= cabinet.real_power


__all__ = [
    "QPUPowerPhase",
    "QPUPowerModel",
    "HPCCabinetModel",
    "power_comparison",
    "fits_in_hpc_budget",
]
