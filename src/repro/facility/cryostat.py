"""Cryostat thermal model (Sections 2.5, 3.5).

Reproduces the paper's quantified thermal behaviour:

* normal operation at **10 mK**;
* after a cooling fault "it takes **two minutes** to exceed [1 K]";
* below 1 K the calibration state largely survives — automated
  calibration restores it; above 1 K a **full calibration** is needed;
* cooldown from warm takes "**two to five days** depending on the
  thermal mass of the cryostat and the temperature reached during the
  outage";
* vacuum integrity "is typically maintained during outages for
  **several weeks**".

The model is a two-regime exponential: a fast low-temperature regime
(tiny heat capacity at millikelvin — this is what makes the 2-minute
figure physical) and a slow bulk regime approaching room temperature
over days.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import CryostatError
from repro.utils.units import DAY, HOUR, MINUTE, WEEK

BASE_TEMPERATURE = 0.010          # K  (10 mK)
CALIBRATION_SURVIVES_BELOW = 1.0  # K  (Section 3.5)
RECAL_READY_BELOW = 0.100         # K  ("once the system is below 100 mK")
ROOM_TEMPERATURE = 300.0          # K
TIME_TO_EXCEED_1K = 2.0 * MINUTE
VACUUM_HOLD_TIME = 3.0 * WEEK

#: low-regime e-folding time chosen so T(2 min) = 1 K exactly:
#: T(t) = 0.01 · exp(t/τ) ⇒ τ = 120 s / ln(100)
_TAU_FAST = TIME_TO_EXCEED_1K / math.log(CALIBRATION_SURVIVES_BELOW / BASE_TEMPERATURE)
#: bulk warm-up timescale (days): approach to room temperature
_TAU_SLOW = 1.5 * DAY

#: cooldown: 2 days from ~4 K (pre-cooled), 5 days from room temperature
COOLDOWN_MIN = 2.0 * DAY
COOLDOWN_MAX = 5.0 * DAY
_COLD_REFERENCE = 4.0  # K — below this, cooldown takes the minimum time


class CryostatState(enum.Enum):
    COLD = "cold"              # at base temperature, QPU operational
    WARMING = "warming"        # cooling lost, temperature rising
    COOLING = "cooling"        # compressors on, driving back to base
    WARM = "warm"              # at/near room temperature, cooling off


def warmup_temperature(time_since_fault: float) -> float:
    """Temperature (K) *time_since_fault* seconds after cooling is lost.

    Fast exponential up to 1 K (2 minutes), then slow approach to room
    temperature.
    """
    if time_since_fault < 0:
        raise CryostatError("time_since_fault must be >= 0")
    t_1k = TIME_TO_EXCEED_1K
    if time_since_fault <= t_1k:
        return BASE_TEMPERATURE * math.exp(time_since_fault / _TAU_FAST)
    excess = time_since_fault - t_1k
    return ROOM_TEMPERATURE - (ROOM_TEMPERATURE - CALIBRATION_SURVIVES_BELOW) * math.exp(
        -excess / _TAU_SLOW
    )


def cooldown_duration(start_temperature: float) -> float:
    """Seconds to cool from *start_temperature* back to 10 mK.

    Log-interpolates between the paper's bounds: ≈ 2 days from a
    pre-cooled (≤ 4 K) state, ≈ 5 days from room temperature.
    Temperatures below 1 K need no cooldown at all (the pumps just
    resume) — modeled as a fixed 2-hour stabilization.
    """
    if start_temperature < BASE_TEMPERATURE - 1e-12:
        raise CryostatError(f"start temperature {start_temperature} below base")
    if start_temperature <= CALIBRATION_SURVIVES_BELOW:
        return 2.0 * HOUR
    if start_temperature <= _COLD_REFERENCE:
        return COOLDOWN_MIN
    frac = math.log(start_temperature / _COLD_REFERENCE) / math.log(
        ROOM_TEMPERATURE / _COLD_REFERENCE
    )
    return COOLDOWN_MIN + frac * (COOLDOWN_MAX - COOLDOWN_MIN)


class Cryostat:
    """Stateful cryostat: temperature trajectory plus vacuum clock."""

    def __init__(self, *, time: float = 0.0) -> None:
        self.state = CryostatState.COLD
        self.temperature = BASE_TEMPERATURE
        self._now = float(time)
        self._fault_at: Optional[float] = None
        self._cooling_done_at: Optional[float] = None
        self._vacuum_lost = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        """Advance the thermal state by *dt* seconds."""
        if dt < 0:
            raise CryostatError("cannot advance backwards")
        self._now += dt
        if self.state is CryostatState.WARMING:
            assert self._fault_at is not None
            self.temperature = warmup_temperature(self._now - self._fault_at)
            if self.temperature >= ROOM_TEMPERATURE * 0.99:
                self.state = CryostatState.WARM
                self.temperature = ROOM_TEMPERATURE
        elif self.state is CryostatState.COOLING:
            assert self._cooling_done_at is not None
            if self._now >= self._cooling_done_at:
                self.state = CryostatState.COLD
                self.temperature = BASE_TEMPERATURE
            else:
                # exponential descent toward base for a plausible curve
                remaining = self._cooling_done_at - self._now
                total = self._cooling_done_at - (self._cooling_started_at or self._now)
                frac = remaining / max(total, 1e-9)
                self.temperature = BASE_TEMPERATURE + (
                    self._cooling_start_temp - BASE_TEMPERATURE
                ) * frac**2
        if self._fault_at is not None and not self._vacuum_lost:
            if self._now - self._fault_at > VACUUM_HOLD_TIME:
                self._vacuum_lost = True

    # -- transitions ------------------------------------------------------------

    def fail_cooling(self) -> None:
        """Cooling (power or water) lost: start warming."""
        if self.state in (CryostatState.WARMING, CryostatState.WARM):
            return  # already failed
        self.state = CryostatState.WARMING
        self._fault_at = self._now

    def restore_cooling(self) -> float:
        """Cooling restored: start the cooldown; returns its duration.

        Below 1 K the 'cooldown' is a 2-hour stabilization; above it the
        full 2–5 day schedule applies.
        """
        if self.state is CryostatState.COLD:
            return 0.0
        if self.state is CryostatState.COOLING:
            assert self._cooling_done_at is not None
            return max(0.0, self._cooling_done_at - self._now)
        duration = cooldown_duration(self.temperature)
        self._cooling_started_at = self._now
        self._cooling_start_temp = self.temperature
        self._cooling_done_at = self._now + duration
        self.state = CryostatState.COOLING
        self._fault_at = None
        return duration

    # -- queries ---------------------------------------------------------------

    @property
    def operational(self) -> bool:
        return self.state is CryostatState.COLD

    @property
    def calibration_survived(self) -> bool:
        """Whether the excursion stayed below 1 K (Section 3.5)."""
        return self.temperature <= CALIBRATION_SURVIVES_BELOW

    @property
    def needs_full_calibration(self) -> bool:
        return not self.calibration_survived

    @property
    def vacuum_intact(self) -> bool:
        return not self._vacuum_lost

    _cooling_started_at: Optional[float] = None
    _cooling_start_temp: float = ROOM_TEMPERATURE

    def __repr__(self) -> str:
        return (
            f"<Cryostat {self.state.value} T={self.temperature:.3g} K "
            f"vacuum={'ok' if self.vacuum_intact else 'LOST'}>"
        )


__all__ = [
    "BASE_TEMPERATURE",
    "CALIBRATION_SURVIVES_BELOW",
    "RECAL_READY_BELOW",
    "ROOM_TEMPERATURE",
    "TIME_TO_EXCEED_1K",
    "VACUUM_HOLD_TIME",
    "COOLDOWN_MIN",
    "COOLDOWN_MAX",
    "CryostatState",
    "warmup_temperature",
    "cooldown_duration",
    "Cryostat",
]
