"""Cooling-water and ambient-temperature models (Section 2.3).

Quantified claims reproduced here:

* HPC racks accept cooling water up to **45 °C**; the cryostat
  manufacturer requires **15–25 °C** — the QPU needs its own (or a
  chilled) loop, it cannot share the warm-water circuit;
* ambient temperature changes cause phase delay in the microwave readout
  cabling: keep **ΔT < 1 °C per 24 h** ("a value that was achievable in
  practice");
* water temperature exceeding the limit trips the cryogenic pumps — the
  outage path of Section 3.5, consumed by :mod:`repro.facility.outage`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FacilityError
from repro.utils.rng import RandomState, child_rng
from repro.utils.units import DAY, HOUR

#: Acceptance windows (°C).
CRYO_WATER_RANGE = (15.0, 25.0)
HPC_RACK_WATER_MAX = 45.0
AMBIENT_DELTA_LIMIT_PER_DAY = 1.0


@dataclass(frozen=True)
class CoolingWaterSpec:
    """One cooling loop's delivery envelope."""

    name: str
    supply_temp: float          # °C nominal
    temp_variation: float       # °C peak deviation
    capacity: float             # watts of heat removal

    def temperature_range(self) -> Tuple[float, float]:
        return (self.supply_temp - self.temp_variation, self.supply_temp + self.temp_variation)


def cryostat_compatible(spec: CoolingWaterSpec) -> bool:
    """Whether the loop stays inside the cryostat's 15–25 °C window."""
    lo, hi = spec.temperature_range()
    return lo >= CRYO_WATER_RANGE[0] and hi <= CRYO_WATER_RANGE[1]


def hpc_rack_compatible(spec: CoolingWaterSpec) -> bool:
    """Whether the loop satisfies a warm-water HPC rack (≤ 45 °C)."""
    _, hi = spec.temperature_range()
    return hi <= HPC_RACK_WATER_MAX


def cooling_envelope_table() -> List[Dict[str, object]]:
    """The Section 2.3 contrast: typical facility loops vs the two
    consumers.  The warm-water loop serves HPC racks but not the QPU."""
    loops = [
        CoolingWaterSpec("chilled loop", supply_temp=18.0, temp_variation=2.0, capacity=500e3),
        CoolingWaterSpec("warm-water loop", supply_temp=40.0, temp_variation=3.0, capacity=2e6),
        CoolingWaterSpec("border-case loop", supply_temp=24.0, temp_variation=2.5, capacity=300e3),
    ]
    return [
        {
            "loop": s.name,
            "supply_temp_c": s.supply_temp,
            "range_c": s.temperature_range(),
            "qpu_ok": cryostat_compatible(s),
            "hpc_rack_ok": hpc_rack_compatible(s),
        }
        for s in loops
    ]


# ---------------------------------------------------------------------------
# ambient temperature → readout phase stability
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadoutPhaseModel:
    """Phase delay of the readout chain vs ambient temperature.

    Microwave cable electrical length changes with temperature; at a
    ~7 GHz readout frequency a degree of ambient change shifts the
    demodulation phase by ``phase_per_degc`` radians.  Readout assignment
    error grows quadratically in the phase offset until recalibrated.
    """

    phase_per_degc: float = 0.035     # rad/°C — cable + electronics chain
    error_per_rad2: float = 0.8       # added assignment error per rad²

    def phase_offset(self, delta_t: float) -> float:
        return self.phase_per_degc * delta_t

    def added_readout_error(self, delta_t: float) -> float:
        """Extra readout error from an uncompensated ambient change."""
        phi = self.phase_offset(delta_t)
        return min(0.5, self.error_per_rad2 * phi * phi)


def ambient_stability_ok(temperatures: np.ndarray, sample_period: float) -> bool:
    """Check the ΔT < 1 °C / 24 h criterion on a temperature series."""
    temperatures = np.asarray(temperatures, dtype=float)
    window = max(2, int(round(DAY / sample_period)))
    if temperatures.size < 2:
        raise FacilityError("need at least two temperature samples")
    for start in range(0, max(1, temperatures.size - window + 1), max(1, window // 8)):
        seg = temperatures[start : start + window]
        if float(seg.max() - seg.min()) >= AMBIENT_DELTA_LIMIT_PER_DAY:
            return False
    return True


def readout_error_vs_ambient(
    deltas: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0, 4.0),
    model: ReadoutPhaseModel = ReadoutPhaseModel(),
) -> List[Dict[str, float]]:
    """Table: ambient excursion → added readout error.  Shows why the
    ΔT < 1 °C/24 h limit sits where it does (sub-0.1 % penalty inside
    the limit, growing quadratically beyond it)."""
    return [
        {
            "delta_t_c": d,
            "phase_offset_mrad": 1e3 * model.phase_offset(d),
            "added_readout_error": model.added_readout_error(d),
        }
        for d in deltas
    ]


__all__ = [
    "CRYO_WATER_RANGE",
    "HPC_RACK_WATER_MAX",
    "AMBIENT_DELTA_LIMIT_PER_DAY",
    "CoolingWaterSpec",
    "cryostat_compatible",
    "hpc_rack_compatible",
    "cooling_envelope_table",
    "ReadoutPhaseModel",
    "ambient_stability_ok",
    "readout_error_vs_ambient",
]
