"""Synthetic environmental sensor signals for the site survey.

The paper's Table 1 prescribes measurements at candidate sites: DC/AC
magnetic fields, floor vibration spectra, sound pressure, temperature
and humidity over ≥ 25 hours.  Real surveys record time series with
instruments; we generate them from a :class:`SiteProfile` describing the
candidate room's disturbance environment — tram lines, HVAC chillers,
fluorescent lighting distance, cellular masts, and (per the paper's war
story) the occasional burst of Finnish death metal.

Signals are generated with controlled spectral content so the survey's
band-limited acceptance analysis (:mod:`repro.facility.site_survey`)
exercises exactly the same math a real analysis would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SensorError
from repro.utils.rng import RandomState, as_rng, child_rng
from repro.utils.units import HOUR, MICROTESLA


@dataclass(frozen=True)
class SiteProfile:
    """Disturbance environment of one candidate room.

    Distances are metres; traffic/HVAC/audio levels are dimensionless
    intensity multipliers with 1.0 ≈ "typical urban facility".
    """

    name: str
    tram_distance: float = 500.0          # paper: tram lines cause vibrations
    road_traffic: float = 0.3             # heavy traffic / Autobahn proximity
    hvac_intensity: float = 0.5           # air-conditioning chillers
    cellular_mast_distance: float = 500.0  # must be >= 100 m
    fluorescent_distance: float = 5.0     # must be >= 2 m
    dc_field_offset: float = 45.0 * MICROTESLA  # Earth's field + building steel
    temperature_setpoint: float = 21.5    # °C
    temperature_stability: float = 0.3    # °C std of HVAC regulation
    humidity_mean: float = 42.0           # %RH
    humidity_swing: float = 6.0           # daily swing amplitude
    death_metal_hours: float = 0.0        # hours/day of loud music nearby
    basement: bool = False                # basements see less vibration

    def __post_init__(self) -> None:
        if self.tram_distance <= 0 or self.cellular_mast_distance <= 0:
            raise SensorError("distances must be positive")


@dataclass(frozen=True)
class SensorTrace:
    """A uniformly-sampled sensor recording."""

    sensor: str
    sample_rate: float          # Hz
    data: np.ndarray            # (n,) or (n, 3) for 3-axis sensors
    duration: float             # seconds

    @property
    def num_samples(self) -> int:
        return self.data.shape[0]


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


def dc_magnetic_field(
    profile: SiteProfile, duration: float, *, sample_rate: float = 10.0, rng: RandomState = None
) -> SensorTrace:
    """3-axis fluxgate DC field recording (tesla).

    Trams are DC-driven: passing trams inject slow ramps whose magnitude
    scales like 1/distance.  Close trams can breach the 100 µT limit.
    """
    r = child_rng(rng, "dc_mag", profile.name)
    n = int(duration * sample_rate)
    t = np.arange(n) / sample_rate
    base = np.array([0.4, 0.3, 0.86]) * profile.dc_field_offset
    out = np.tile(base, (n, 1))
    out += r.normal(0.0, 0.2 * MICROTESLA, size=(n, 3))
    # tram passes: Poisson events, ~2/hour scaled by proximity
    tram_amp = 2000.0 * MICROTESLA / max(profile.tram_distance, 1.0)
    n_events = r.poisson(2.0 * duration / HOUR)
    for _ in range(n_events):
        t0 = r.uniform(0, duration)
        width = r.uniform(8.0, 30.0)
        pulse = tram_amp * np.exp(-0.5 * ((t - t0) / width) ** 2)
        axis_mix = r.dirichlet([1.0, 1.0, 1.0])
        out += pulse[:, None] * axis_mix[None, :]
    return SensorTrace("dc_magnetic_field", sample_rate, out, duration)


def ac_magnetic_field(
    profile: SiteProfile, duration: float, *, sample_rate: float = 4000.0, rng: RandomState = None
) -> SensorTrace:
    """3-axis AC field recording (tesla), 5 Hz – 1 kHz band of interest.

    Mains harmonics (50/150/250 Hz) scale with HVAC/electrical load;
    fluorescent lighting adds 100 Hz ripple growing steeply when closer
    than the 2 m limit; cellular masts inside 100 m add broadband RF
    leakage folded into the band.
    """
    r = child_rng(rng, "ac_mag", profile.name)
    n = int(duration * sample_rate)
    t = np.arange(n) / sample_rate
    out = r.normal(0.0, 0.01 * MICROTESLA, size=(n, 3))
    mains_amp = 0.12 * MICROTESLA * (0.5 + profile.hvac_intensity)
    for harmonic, weight in ((50.0, 1.0), (150.0, 0.4), (250.0, 0.2)):
        phase = r.uniform(0, 2 * math.pi, size=3)
        out += (
            mains_amp
            * weight
            * np.sin(2 * math.pi * harmonic * t[:, None] + phase[None, :])
        )
    fluor_amp = 0.8 * MICROTESLA * (2.0 / max(profile.fluorescent_distance, 0.2)) ** 2
    out[:, 2] += fluor_amp * np.sin(2 * math.pi * 100.0 * t)
    if profile.cellular_mast_distance < 100.0:
        rf = 0.6 * MICROTESLA * (100.0 / profile.cellular_mast_distance - 1.0)
        out += r.normal(0.0, max(rf, 0.0), size=(n, 3))
    return SensorTrace("ac_magnetic_field", sample_rate, out, duration)


def floor_vibration(
    profile: SiteProfile, duration: float, *, sample_rate: float = 800.0, rng: RandomState = None
) -> SensorTrace:
    """Floor velocity recording (m/s), 1–200 Hz band of interest.

    Trams/traffic excite 5–30 Hz structural modes; HVAC chillers sit as
    narrow lines near 25/49 Hz; basements attenuate everything ~3×.
    """
    r = child_rng(rng, "vibration", profile.name)
    n = int(duration * sample_rate)
    t = np.arange(n) / sample_rate
    atten = 3.0 if profile.basement else 1.0
    out = r.normal(0.0, 20e-6, size=n) / atten  # ambient micro-seismic floor
    # traffic rumble: band-limited noise, amplitude from tram/road terms
    rumble_amp = (
        (120.0 / max(profile.tram_distance, 5.0)) * 400e-6
        + profile.road_traffic * 60e-6
    ) / atten
    for mode in (8.0, 14.0, 22.0):
        phase = r.uniform(0, 2 * math.pi)
        amp = rumble_amp * r.uniform(0.5, 1.0)
        # slow amplitude modulation: traffic comes and goes
        envelope = 0.5 * (1 + np.sin(2 * math.pi * t / r.uniform(200, 900) + phase))
        out += amp * envelope * np.sin(2 * math.pi * mode * t + phase)
    hvac_amp = profile.hvac_intensity * 50e-6 / atten
    out += hvac_amp * np.sin(2 * math.pi * 24.8 * t)
    out += 0.6 * hvac_amp * np.sin(2 * math.pi * 49.6 * t)
    if profile.death_metal_hours > 0:
        # structure-borne bass (~60-120 BPM kick ≈ 1-2 Hz + 40-90 Hz content)
        frac = min(1.0, profile.death_metal_hours / 24.0)
        mask = t % (duration if frac >= 1.0 else duration * frac + 1e-9) < duration * frac
        out += mask * 300e-6 * np.sin(2 * math.pi * 63.0 * t) / atten
    return SensorTrace("floor_vibration", sample_rate, out, duration)


def sound_pressure(
    profile: SiteProfile, duration: float, *, sample_rate: float = 2000.0, rng: RandomState = None
) -> SensorTrace:
    """Microphone recording (pascal), scored as dBA-ish integrated level.

    Quiet machine rooms sit near 55–65 dB; heavy HVAC pushes toward the
    80 dBA limit; nearby concerts exceed it.
    """
    r = child_rng(rng, "sound", profile.name)
    n = int(duration * sample_rate)
    t = np.arange(n) / sample_rate
    # 60 dB SPL ≈ 20 mPa RMS
    base_pa = 20e-3 * (0.6 + 1.1 * profile.hvac_intensity)
    out = r.normal(0.0, base_pa, size=n)
    out += 0.5 * base_pa * np.sin(2 * math.pi * 120.0 * t)  # fan blade tone
    if profile.death_metal_hours > 0:
        frac = min(1.0, profile.death_metal_hours / 24.0)
        mask = (t / duration) < frac
        out += mask * r.normal(0.0, 0.4, size=n)  # ~86 dB of music
    return SensorTrace("sound_pressure", sample_rate, out, duration)


def temperature(
    profile: SiteProfile, duration: float, *, sample_rate: float = 1.0 / 60.0, rng: RandomState = None
) -> SensorTrace:
    """Room temperature (°C) at one sample per minute.

    Contains the diurnal building cycle the paper's ≥ 25 h requirement
    exists to capture: a survey shorter than a full day would miss it.
    """
    r = child_rng(rng, "temperature", profile.name)
    n = max(2, int(duration * sample_rate))
    t = np.arange(n) / sample_rate
    diurnal = 0.8 * profile.temperature_stability * np.sin(
        2 * math.pi * t / (24 * HOUR) - 0.7
    )
    hvac_cycling = 0.35 * profile.temperature_stability * np.sin(
        2 * math.pi * t / (35 * 60.0)
    )
    noise = r.normal(0.0, 0.05, size=n)
    data = profile.temperature_setpoint + diurnal + hvac_cycling + noise
    return SensorTrace("temperature", sample_rate, data, duration)


def humidity(
    profile: SiteProfile, duration: float, *, sample_rate: float = 1.0 / 60.0, rng: RandomState = None
) -> SensorTrace:
    """Relative humidity (%RH) at one sample per minute."""
    r = child_rng(rng, "humidity", profile.name)
    n = max(2, int(duration * sample_rate))
    t = np.arange(n) / sample_rate
    diurnal = profile.humidity_swing * np.sin(2 * math.pi * t / (24 * HOUR) + 1.1)
    data = profile.humidity_mean + diurnal + r.normal(0.0, 0.8, size=n)
    return SensorTrace("humidity", sample_rate, np.clip(data, 0.0, 100.0), duration)


def record_all(
    profile: SiteProfile,
    duration: float,
    *,
    rng: RandomState = None,
    fast_sensor_duration: Optional[float] = 120.0,
) -> Dict[str, SensorTrace]:
    """The full survey recording set for one site.

    Slow sensors (temperature/humidity) record the full *duration*; fast
    sensors (fields, vibration, sound) record a representative
    ``fast_sensor_duration`` window, as real surveys do — nobody stores
    25 hours of 4 kHz fluxgate data.
    """
    fast = duration if fast_sensor_duration is None else min(duration, fast_sensor_duration)
    return {
        "dc_magnetic_field": dc_magnetic_field(profile, fast, rng=rng),
        "ac_magnetic_field": ac_magnetic_field(profile, fast, rng=rng),
        "floor_vibration": floor_vibration(profile, fast, rng=rng),
        "sound_pressure": sound_pressure(profile, fast, rng=rng),
        "temperature": temperature(profile, duration, rng=rng),
        "humidity": humidity(profile, duration, rng=rng),
    }


__all__ = [
    "SiteProfile",
    "SensorTrace",
    "dc_magnetic_field",
    "ac_magnetic_field",
    "floor_vibration",
    "sound_pressure",
    "temperature",
    "humidity",
    "record_all",
]
