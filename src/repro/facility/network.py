"""Network bandwidth model: Section 2.4, executable.

The paper's back-of-envelope: with a 300 µs passive reset dominating
each shot, 20 measured qubits, and an 8-bits-per-bit wire inefficiency,
continuous measurement produces

    1/300 µs × 20 × 8 bit = 533 kbit/s,

"well below the transmission rate offered by the 1 Gbit Ethernet
connection", and "extending the above calculation from 20 to 54 or 150
qubits shows that the data rate grows linearly".

This module provides both the analytic formula and a *measured*
counterpart computed from executed jobs, plus the three output formats
Section 2.4 discusses (bitstrings / histogram / raw IQ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import FacilityError
from repro.qpu.device import QPUJobResult
from repro.utils.units import GBIT, MICROSECOND

#: The paper's assumptions.
PASSIVE_RESET = 300.0 * MICROSECOND
BITS_PER_MEASURED_BIT = 8.0
ETHERNET_LINK = 1.0 * GBIT  # bits/second


def continuous_data_rate(
    num_qubits: int,
    *,
    shot_period: float = PASSIVE_RESET,
    bits_per_bit: float = BITS_PER_MEASURED_BIT,
) -> float:
    """The Section 2.4 formula, in bits/second.

    ``continuous_data_rate(20)`` ≈ 533 kbit/s.
    """
    if num_qubits < 1:
        raise FacilityError("num_qubits must be >= 1")
    if shot_period <= 0:
        raise FacilityError("shot_period must be positive")
    return (1.0 / shot_period) * num_qubits * bits_per_bit


def link_utilization(num_qubits: int, *, link: float = ETHERNET_LINK) -> float:
    """Fraction of the link the continuous stream occupies."""
    return continuous_data_rate(num_qubits) / link


def scaling_table(qubit_counts: Sequence[int] = (20, 54, 150)) -> List[Dict[str, float]]:
    """The paper's 20 → 54 → 150 qubit scaling rows."""
    rows = []
    for n in qubit_counts:
        rate = continuous_data_rate(n)
        rows.append(
            {
                "num_qubits": float(n),
                "data_rate_kbit_s": rate / 1e3,
                "link_utilization_pct": 100.0 * rate / ETHERNET_LINK,
            }
        )
    return rows


@dataclass(frozen=True)
class FormatComparison:
    """Output payload of one job in each Section 2.4 wire format."""

    bitstrings_bytes: int
    histogram_bytes: int
    raw_iq_bytes: int

    @property
    def histogram_saving(self) -> float:
        """Compression factor of histograms vs raw bitstrings (≥ 1 when
        the measured state concentrates on few outcomes)."""
        return self.bitstrings_bytes / max(1, self.histogram_bytes)


def compare_formats(result: QPUJobResult) -> FormatComparison:
    """Payload sizes of an executed job in all three formats."""
    return FormatComparison(
        bitstrings_bytes=result.output_bytes("bitstrings"),
        histogram_bytes=result.output_bytes("histogram"),
        raw_iq_bytes=result.output_bytes("raw_iq"),
    )


def measured_data_rate(results: Iterable[QPUJobResult], fmt: str = "bitstrings") -> float:
    """Aggregate output bandwidth (bits/s) of a stream of executed jobs:
    total payload over total QPU wall-clock — the empirical counterpart
    of :func:`continuous_data_rate`, lower because of the control
    software's 'additional inefficiency' (job overheads)."""
    total_bits = 0.0
    total_time = 0.0
    for r in results:
        total_bits += 8.0 * r.output_bytes(fmt)
        total_time += r.duration
    if total_time <= 0:
        raise FacilityError("no executed jobs to measure")
    return total_bits / total_time


__all__ = [
    "PASSIVE_RESET",
    "BITS_PER_MEASURED_BIT",
    "ETHERNET_LINK",
    "continuous_data_rate",
    "link_utilization",
    "scaling_table",
    "FormatComparison",
    "compare_formats",
    "measured_data_rate",
]
