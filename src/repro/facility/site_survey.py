"""Site survey analysis: Table 1 of the paper, executable.

Implements the measurement analyses and acceptance limits of the paper's
Table 1:

====================  =======================================================
DC magnetic field     < 100 µT per axis
AC magnetic field     < 1 µT peak-to-peak spectrum amplitude per axis,
                      5 Hz – 1000 Hz
Floor vibrations      < 400 µm/s RMS spectrum amplitude, 1 Hz – 200 Hz
Sound pressure        < 80 dBA integrated over 20 Hz – 20 kHz
Temperature           ΔT < ±1 °C within 12 h around a 20–25 °C set point
Humidity              25 – 60 %, non-condensing
====================  =======================================================

plus the two logistics checks of Section 2.1/2.5: a ≥ 90 cm delivery
path and ≥ 1000 kg/m² floor loading.  Temperature/humidity recordings
shorter than 25 hours are rejected outright ("the duration … needed to
be at least 25 hours to capture a full cycle of typical building
conditions").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SiteSurveyError
from repro.facility.sensors import SensorTrace, SiteProfile, record_all
from repro.utils.rng import RandomState
from repro.utils.units import HOUR, MICROTESLA

#: Table 1 acceptance limits (SI units).
LIMITS = {
    "dc_magnetic_field": 100.0 * MICROTESLA,      # per axis, absolute
    "ac_magnetic_field": 1.0 * MICROTESLA,        # per axis, peak-to-peak in band
    "floor_vibration": 400e-6,                    # m/s RMS in band
    "sound_pressure": 80.0,                       # dBA integrated
    "temperature_delta": 1.0,                     # ±°C within 12 h
    "temperature_setpoint": (20.0, 25.0),         # °C
    "humidity": (25.0, 60.0),                     # %RH
    "delivery_path_width": 0.90,                  # m
    "floor_load": 1000.0,                         # kg/m²
}

#: Minimum temperature/humidity recording length.
MIN_SLOW_DURATION = 25.0 * HOUR


@dataclass(frozen=True)
class SurveyRow:
    """One measurement row of the survey report (one line of Table 1)."""

    measurement: str
    measured: float
    limit: str
    unit: str
    passed: bool
    detail: str = ""


@dataclass(frozen=True)
class SurveyReport:
    """Full survey outcome for one candidate site."""

    site: str
    rows: Tuple[SurveyRow, ...]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.rows)

    def failures(self) -> List[SurveyRow]:
        return [r for r in self.rows if not r.passed]

    def as_table(self) -> str:
        """Render in the shape of the paper's Table 1."""
        header = f"Site survey: {self.site}"
        lines = [header, "=" * len(header)]
        lines.append(
            f"{'Measurement':24s} {'Measured':>14s} {'Limit':>22s} {'Result':>8s}"
        )
        for r in self.rows:
            # Fixed precision (not %g) so regenerated tables diff cleanly:
            # digit count must not change with the value's magnitude.
            lines.append(
                f"{r.measurement:24s} {r.measured:>10.3f} {r.unit:3s} "
                f"{r.limit:>22s} {'PASS' if r.passed else 'FAIL':>8s}"
            )
        lines.append(f"{'OVERALL':24s} {'':>14s} {'':>22s} "
                     f"{'PASS' if self.passed else 'FAIL':>8s}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# per-measurement analyses
# ---------------------------------------------------------------------------


def analyze_dc_magnetic(trace: SensorTrace) -> SurveyRow:
    """Max per-axis |B| against the 100 µT limit."""
    worst = float(np.abs(trace.data).max())
    return SurveyRow(
        measurement="DC magnetic field",
        measured=worst / MICROTESLA,
        limit="< 100 per axis",
        unit="µT",
        passed=worst < LIMITS["dc_magnetic_field"],
        detail="3-axis fluxgate at cryostat position, QPU height",
    )


def band_amplitude_spectrum(
    signal: np.ndarray, sample_rate: float, f_lo: float, f_hi: float
) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided amplitude spectrum restricted to ``[f_lo, f_hi]``.

    Amplitude normalization: a pure sine of amplitude A shows a spectral
    line of height ≈ A (2/N scaling), so "peak-to-peak spectrum
    amplitude" = 2 × line height.
    """
    n = signal.shape[0]
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    amp = np.abs(np.fft.rfft(signal)) * 2.0 / n
    mask = (freqs >= f_lo) & (freqs <= f_hi)
    return freqs[mask], amp[mask]


def analyze_ac_magnetic(trace: SensorTrace) -> SurveyRow:
    """Peak-to-peak spectral amplitude per axis in 5–1000 Hz."""
    worst_pp = 0.0
    for axis in range(trace.data.shape[1]):
        _, amp = band_amplitude_spectrum(
            trace.data[:, axis], trace.sample_rate, 5.0, 1000.0
        )
        if amp.size:
            worst_pp = max(worst_pp, 2.0 * float(amp.max()))
    return SurveyRow(
        measurement="AC magnetic field",
        measured=worst_pp / MICROTESLA,
        limit="< 1 pp, 5-1000 Hz",
        unit="µT",
        passed=worst_pp < LIMITS["ac_magnetic_field"],
        detail="3-axis fluxgate, peak-to-peak spectrum amplitude",
    )


def analyze_vibration(trace: SensorTrace) -> SurveyRow:
    """RMS spectral amplitude in 1–200 Hz against 400 µm/s."""
    freqs, amp = band_amplitude_spectrum(trace.data, trace.sample_rate, 1.0, 200.0)
    # RMS of the band-limited signal = sqrt(sum of (line RMS)^2); line RMS = amp/√2
    rms = float(np.sqrt(np.sum((amp / math.sqrt(2.0)) ** 2))) if amp.size else 0.0
    return SurveyRow(
        measurement="Floor vibrations",
        measured=rms * 1e6,
        limit="< 400 RMS, 1-200 Hz",
        unit="µm/s",
        passed=rms < LIMITS["floor_vibration"],
        detail="single-axis velocity sensor on floor at cryostat position",
    )


def analyze_sound(trace: SensorTrace) -> SurveyRow:
    """Integrated sound pressure level against 80 dBA.

    The A-weighting network is approximated as flat over the synthetic
    signal's band — conservative for the tones our generators emit.
    """
    p_rms = float(np.sqrt(np.mean(trace.data**2)))
    spl = 20.0 * math.log10(max(p_rms, 1e-12) / 20e-6)
    return SurveyRow(
        measurement="Sound pressure",
        measured=spl,
        limit="< 80, 20 Hz-20 kHz",
        unit="dBA",
        passed=spl < LIMITS["sound_pressure"],
        detail="omnidirectional microphone at cryostat position",
    )


def analyze_temperature(trace: SensorTrace) -> SurveyRow:
    """ΔT within any 12 h window < ±1 °C around a 20–25 °C set point.

    Rejects recordings shorter than 25 h (Table 1 note).
    """
    if trace.duration < MIN_SLOW_DURATION:
        raise SiteSurveyError(
            f"temperature recording is {trace.duration / HOUR:.1f} h; "
            f"Table 1 requires at least {MIN_SLOW_DURATION / HOUR:.0f} h"
        )
    data = trace.data
    window = max(2, int(12 * HOUR * trace.sample_rate))
    worst_delta = 0.0
    # sliding 12 h max-min, evaluated at window/8 stride for tractability
    stride = max(1, window // 8)
    for start in range(0, max(1, data.size - window + 1), stride):
        seg = data[start : start + window]
        worst_delta = max(worst_delta, float(seg.max() - seg.min()))
    mean_t = float(data.mean())
    lo, hi = LIMITS["temperature_setpoint"]
    in_setpoint = lo <= mean_t <= hi
    passed = worst_delta / 2.0 < LIMITS["temperature_delta"] and in_setpoint
    return SurveyRow(
        measurement="Temperature",
        measured=worst_delta / 2.0,
        limit="±1 °C/12 h @ 20-25 °C",
        unit="°C",
        passed=passed,
        detail=f"mean {mean_t:.1f} °C over {trace.duration / HOUR:.0f} h",
    )


def analyze_humidity(trace: SensorTrace) -> SurveyRow:
    """25–60 % RH, non-condensing, over the full recording."""
    if trace.duration < MIN_SLOW_DURATION:
        raise SiteSurveyError(
            f"humidity recording is {trace.duration / HOUR:.1f} h; "
            f"Table 1 requires at least {MIN_SLOW_DURATION / HOUR:.0f} h"
        )
    lo, hi = LIMITS["humidity"]
    mn, mx = float(trace.data.min()), float(trace.data.max())
    passed = mn >= lo and mx <= hi
    return SurveyRow(
        measurement="Humidity",
        measured=mx,
        limit="25-60 %, non-cond.",
        unit="%RH",
        passed=passed,
        detail=f"range {mn:.0f}-{mx:.0f} %RH",
    )


# ---------------------------------------------------------------------------
# logistics checks (Sections 2.1 / 2.5)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeliveryPath:
    """Width bottleneck survey of the loading-dock → room route."""

    segments: Mapping[str, float]  # segment name → clear width in metres

    def bottleneck(self) -> Tuple[str, float]:
        name = min(self.segments, key=lambda k: self.segments[k])
        return name, self.segments[name]


def analyze_delivery_path(path: DeliveryPath) -> SurveyRow:
    name, width = path.bottleneck()
    return SurveyRow(
        measurement="Delivery path",
        measured=width * 100.0,
        limit=">= 90 cm throughout",
        unit="cm",
        passed=width >= LIMITS["delivery_path_width"],
        detail=f"bottleneck: {name}",
    )


def analyze_floor_load(capacity_kg_m2: float) -> SurveyRow:
    return SurveyRow(
        measurement="Floor load capacity",
        measured=capacity_kg_m2,
        limit=">= 1000 kg/m²",
        unit="kg",
        passed=capacity_kg_m2 >= LIMITS["floor_load"],
        detail="cryostat ~750 kg; 20-qubit system needs 1000 kg/m²",
    )


# ---------------------------------------------------------------------------
# the full survey
# ---------------------------------------------------------------------------


def run_survey(
    profile: SiteProfile,
    *,
    duration: float = 26.0 * HOUR,
    delivery_path: Optional[DeliveryPath] = None,
    floor_load_capacity: float = 1500.0,
    rng: RandomState = None,
) -> SurveyReport:
    """Record all sensors at the candidate site and evaluate Table 1."""
    traces = record_all(profile, duration, rng=rng)
    rows: List[SurveyRow] = [
        analyze_dc_magnetic(traces["dc_magnetic_field"]),
        analyze_ac_magnetic(traces["ac_magnetic_field"]),
        analyze_vibration(traces["floor_vibration"]),
        analyze_sound(traces["sound_pressure"]),
        analyze_temperature(traces["temperature"]),
        analyze_humidity(traces["humidity"]),
    ]
    if delivery_path is not None:
        rows.append(analyze_delivery_path(delivery_path))
    rows.append(analyze_floor_load(floor_load_capacity))
    return SurveyReport(site=profile.name, rows=tuple(rows))


def select_site(
    reports: Sequence[SurveyReport],
) -> Tuple[Optional[SurveyReport], List[str]]:
    """Pick the passing site with the largest margins.

    Returns ``(winner_or_None, rejection_notes)``.  Margin score: mean
    over rows of (how far below the limit the measurement sits), which
    breaks ties between multiple passing candidates.
    """
    notes: List[str] = []
    passing: List[Tuple[float, SurveyReport]] = []
    for report in reports:
        if not report.passed:
            failed = ", ".join(r.measurement for r in report.failures())
            notes.append(f"{report.site}: rejected ({failed})")
            continue
        margins: List[float] = []
        for row in report.rows:
            # normalized slack ∈ [0, 1]; rows with range limits score 0.5 flat
            if row.measurement == "DC magnetic field":
                margins.append(1.0 - row.measured / 100.0)
            elif row.measurement == "AC magnetic field":
                margins.append(1.0 - row.measured / 1.0)
            elif row.measurement == "Floor vibrations":
                margins.append(1.0 - row.measured / 400.0)
            elif row.measurement == "Sound pressure":
                margins.append(1.0 - row.measured / 80.0)
            else:
                margins.append(0.5)
        passing.append((float(np.mean(margins)), report))
    if not passing:
        return None, notes
    passing.sort(key=lambda t: -t[0])
    winner = passing[0][1]
    notes.append(f"{winner.site}: selected (margin score {passing[0][0]:.3f})")
    return winner, notes


__all__ = [
    "LIMITS",
    "MIN_SLOW_DURATION",
    "SurveyRow",
    "SurveyReport",
    "DeliveryPath",
    "run_survey",
    "select_site",
    "analyze_dc_magnetic",
    "analyze_ac_magnetic",
    "analyze_vibration",
    "analyze_sound",
    "analyze_temperature",
    "analyze_humidity",
    "analyze_delivery_path",
    "analyze_floor_load",
    "band_amplitude_spectrum",
]
