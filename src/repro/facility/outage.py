"""Outage injection and recovery procedures (Section 3.5, lesson 3).

"HPC nodes can typically be restarted with relative ease following a
power or cooling failure.  Quantum computers, on the other hand, require
a more involved recovery process."

:func:`simulate_outage` plays one outage scenario through the cryostat
model: fault → (redundancy absorbs it, or warming starts) → repair →
cooldown → recalibration → benchmark verification, and reports the full
downtime breakdown.  Ablating ``redundant_power`` / ``redundant_cooling``
quantifies lesson 3: "the presence of redundant cooling water and
uninterruptible power supplies mitigates these risks" — a minute-long
utility blip either costs *zero* QPU downtime or several days.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import OutageError
from repro.facility.cryostat import (
    CALIBRATION_SURVIVES_BELOW,
    Cryostat,
    CryostatState,
)
from repro.qpu.device import (
    FULL_CALIBRATION_DURATION,
    QUICK_CALIBRATION_DURATION,
)
from repro.utils.units import HOUR, MINUTE

#: post-recalibration GHZ/benchmark verification block (Section 3.2/3.5).
VERIFICATION_DURATION = 0.5 * HOUR


class OutageType(enum.Enum):
    POWER_LOSS = "power_loss"
    COOLING_WATER_OVERTEMP = "cooling_water_overtemp"
    COOLING_PUMP_FAILURE = "cooling_pump_failure"
    PLANNED_MAINTENANCE = "planned_maintenance"


@dataclass(frozen=True)
class OutageScenario:
    """One fault: what broke and how long the utility/repair took."""

    kind: OutageType
    utility_down_for: float         # seconds until power/water/pump is back
    description: str = ""

    def __post_init__(self) -> None:
        if self.utility_down_for < 0:
            raise OutageError("utility_down_for must be >= 0")


@dataclass(frozen=True)
class FacilityConfig:
    """Redundancy posture of the hosting facility (lesson 3's variables)."""

    ups_present: bool = True                 # bridges power blips
    ups_bridge_time: float = 30.0 * MINUTE
    redundant_cooling: bool = True           # second water loop
    cooling_switchover_time: float = 90.0    # seconds to switch loops


@dataclass(frozen=True)
class RecoveryStep:
    """One step of the recovery timeline."""

    name: str
    start: float        # seconds from fault
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class RecoveryReport:
    """Full outcome of one outage scenario."""

    scenario: OutageScenario
    config: FacilityConfig
    absorbed_by_redundancy: bool
    peak_temperature: float              # K
    calibration_survived: bool
    steps: Tuple[RecoveryStep, ...]
    total_downtime: float                # seconds of QPU unavailability
    vacuum_intact: bool

    def summary(self) -> str:
        days = self.total_downtime / (24 * HOUR)
        lines = [
            f"outage: {self.scenario.kind.value} "
            f"(utility down {self.scenario.utility_down_for / MINUTE:.1f} min)",
            f"  absorbed by redundancy: {self.absorbed_by_redundancy}",
            f"  peak QPU temperature:   {self.peak_temperature:.3g} K",
            f"  calibration survived:   {self.calibration_survived}",
            f"  vacuum intact:          {self.vacuum_intact}",
            f"  total QPU downtime:     {days:.2f} days",
        ]
        for step in self.steps:
            lines.append(
                f"    {step.name:28s} +{step.start / HOUR:8.1f} h "
                f"for {step.duration / HOUR:8.1f} h"
            )
        return "\n".join(lines)


def _cooling_affected(kind: OutageType, config: FacilityConfig) -> Tuple[bool, float]:
    """(does the cryostat lose cooling?, delay before loss in seconds)."""
    if kind is OutageType.POWER_LOSS:
        if config.ups_present:
            return False, config.ups_bridge_time  # bridged if shorter than UPS
        return True, 0.0
    if kind in (OutageType.COOLING_WATER_OVERTEMP, OutageType.COOLING_PUMP_FAILURE):
        if config.redundant_cooling:
            return False, config.cooling_switchover_time
        return True, 0.0
    return False, 0.0  # planned maintenance handled separately


def simulate_outage(
    scenario: OutageScenario,
    config: FacilityConfig = FacilityConfig(),
) -> RecoveryReport:
    """Run one outage through the cryostat thermal model.

    Redundancy semantics: a UPS bridges power losses shorter than its
    bridge time; a redundant cooling loop absorbs water faults after a
    short switchover (during which the cryostat warms a little but the
    switchover is faster than the 2-minute 1 K horizon).
    """
    if scenario.kind is OutageType.PLANNED_MAINTENANCE:
        # Maintenance does not warm the cryostat (Section 3.4): one-day
        # window, quick verification afterwards.
        steps = (
            RecoveryStep("maintenance window", 0.0, scenario.utility_down_for),
            RecoveryStep("verification benchmarks", scenario.utility_down_for, VERIFICATION_DURATION),
        )
        return RecoveryReport(
            scenario=scenario,
            config=config,
            absorbed_by_redundancy=False,
            peak_temperature=0.010,
            calibration_survived=True,
            steps=steps,
            total_downtime=scenario.utility_down_for + VERIFICATION_DURATION,
            vacuum_intact=True,
        )

    loses_cooling, grace = _cooling_affected(scenario.kind, config)
    cryo = Cryostat()
    steps: List[RecoveryStep] = []
    if not loses_cooling and (
        scenario.kind is not OutageType.POWER_LOSS
        or scenario.utility_down_for <= config.ups_bridge_time
    ):
        # Redundancy absorbs the fault entirely: cooling never stops
        # (cooling switchover) or the UPS outlasts the blip.
        steps.append(
            RecoveryStep(
                "redundancy absorbs fault "
                f"({'UPS' if scenario.kind is OutageType.POWER_LOSS else 'standby loop'})",
                0.0,
                grace if scenario.kind is not OutageType.POWER_LOSS else scenario.utility_down_for,
            )
        )
        return RecoveryReport(
            scenario=scenario,
            config=config,
            absorbed_by_redundancy=True,
            peak_temperature=cryo.temperature,
            calibration_survived=True,
            steps=tuple(steps),
            total_downtime=0.0,
            vacuum_intact=True,
        )

    # Cooling is lost — possibly after the UPS runs dry.
    loss_starts = (
        config.ups_bridge_time
        if (scenario.kind is OutageType.POWER_LOSS and config.ups_present)
        else 0.0
    )
    warming_time = max(0.0, scenario.utility_down_for - loss_starts)
    cryo.fail_cooling()
    cryo.advance(warming_time)
    peak_t = cryo.temperature
    survived = cryo.calibration_survived
    steps.append(RecoveryStep("identify & resolve fault", 0.0, scenario.utility_down_for))
    cooldown = cryo.restore_cooling()
    steps.append(RecoveryStep("cryostat cooldown", scenario.utility_down_for, cooldown))
    t = scenario.utility_down_for + cooldown
    if survived:
        recal = QUICK_CALIBRATION_DURATION
        steps.append(RecoveryStep("automated calibration restore", t, recal))
    else:
        recal = FULL_CALIBRATION_DURATION
        steps.append(RecoveryStep("full recalibration", t, recal))
    t += recal
    steps.append(RecoveryStep("verification benchmarks", t, VERIFICATION_DURATION))
    t += VERIFICATION_DURATION
    return RecoveryReport(
        scenario=scenario,
        config=config,
        absorbed_by_redundancy=False,
        peak_temperature=peak_t,
        calibration_survived=survived,
        steps=tuple(steps),
        total_downtime=t,
        vacuum_intact=cryo.vacuum_intact,
    )


def downtime_comparison(
    utility_down_for: float,
    kind: OutageType = OutageType.COOLING_WATER_OVERTEMP,
) -> List[Tuple[str, float]]:
    """Lesson-3 ablation: downtime with vs without redundancy for one
    fault duration.  Returns ``[(config label, downtime seconds)]``."""
    rows: List[Tuple[str, float]] = []
    for label, config in (
        ("redundant", FacilityConfig(ups_present=True, redundant_cooling=True)),
        ("no redundancy", FacilityConfig(ups_present=False, redundant_cooling=False)),
    ):
        report = simulate_outage(OutageScenario(kind, utility_down_for), config)
        rows.append((label, report.total_downtime))
    return rows


__all__ = [
    "OutageType",
    "OutageScenario",
    "FacilityConfig",
    "RecoveryStep",
    "RecoveryReport",
    "VERIFICATION_DURATION",
    "simulate_outage",
    "downtime_comparison",
]
