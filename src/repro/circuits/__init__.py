"""Circuit intermediate representation: gates, parameters, circuits, DAG."""

from repro.circuits.circuit import (
    Instruction,
    QuantumCircuit,
    bell_circuit,
    brickwork_circuit,
    ghz_circuit,
    random_circuit,
)
from repro.circuits.dag import (
    CircuitDag,
    CliffordSegment,
    clifford_segments,
    is_clifford_circuit,
    layers,
    segment_summary,
)
from repro.circuits.gates import (
    CLIFFORD_GATES,
    GATES,
    NATIVE_GATES,
    GateSpec,
    clifford_primitives,
    is_clifford,
    is_native,
    prx_matrix,
    prx_pair_for_unitary,
    prx_rz_for_unitary,
    spec,
)
from repro.circuits.parameters import Parameter, ParameterExpression, make_binding
from repro.circuits.serialize import (
    circuit_from_dict,
    circuit_from_json,
    circuit_to_dict,
    circuit_to_json,
)

__all__ = [
    "Instruction",
    "QuantumCircuit",
    "bell_circuit",
    "brickwork_circuit",
    "ghz_circuit",
    "random_circuit",
    "CircuitDag",
    "CliffordSegment",
    "clifford_segments",
    "is_clifford_circuit",
    "layers",
    "segment_summary",
    "CLIFFORD_GATES",
    "GATES",
    "NATIVE_GATES",
    "GateSpec",
    "clifford_primitives",
    "is_clifford",
    "is_native",
    "prx_matrix",
    "prx_pair_for_unitary",
    "prx_rz_for_unitary",
    "spec",
    "Parameter",
    "ParameterExpression",
    "make_binding",
    "circuit_from_dict",
    "circuit_from_json",
    "circuit_to_dict",
    "circuit_to_json",
]
