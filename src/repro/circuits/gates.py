"""Gate library: names, arities, and unitary matrices.

The library contains the common textbook gates plus the *native gate set*
of the paper's 20-qubit transmon QPU:

* ``prx(theta, phi)`` — the phased-RX rotation the control electronics
  implement as a single microwave pulse,
  ``PRX(θ, φ) = RZ(φ) · RX(θ) · RZ(−φ)``;
* ``cz`` — the two-qubit controlled-Z mediated by a tunable coupler.

Every other gate is expressible over {PRX, CZ}; the transpiler's
decomposition pass (:mod:`repro.transpiler.decompose`) performs that
rewrite, mirroring what the MQSS compiler does before hitting hardware.
Z rotations are *virtual* on phased-RX hardware (a classical phase-frame
update), which the synthesis helpers at the bottom of this module expose:
:func:`prx_rz_for_unitary` factors any 1-qubit unitary into one physical
PRX pulse plus a virtual RZ, and :func:`prx_pair_for_unitary` gives the
all-physical two-pulse form.

Matrices are returned in *little-endian* qubit order (qubit 0 is the
least-significant bit of the basis-state index), the convention used by
the state-vector engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GateError

# ---------------------------------------------------------------------------
# Gate matrix constructors
# ---------------------------------------------------------------------------

_SQ2 = 1.0 / math.sqrt(2.0)

_ID = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
_T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = np.array([[1, 0], [0, np.exp(-1j * math.pi / 4)]], dtype=complex)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about X: ``exp(-i θ X / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about Y: ``exp(-i θ Y / 2)``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(phi: float) -> np.ndarray:
    """Rotation about Z: ``exp(-i φ Z / 2)``."""
    e = np.exp(-0.5j * phi)
    return np.array([[e, 0], [0, np.conj(e)]], dtype=complex)


def prx_matrix(theta: float, phi: float) -> np.ndarray:
    """Phased-RX: rotation by *theta* about the axis ``cos φ X + sin φ Y``.

    This is the native single-qubit gate of the paper's QPU; *phi* is
    implemented in hardware as the microwave drive phase, which is why
    RZ is "virtual" (free and error-less) on such devices.
    """
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    em, ep = np.exp(-1j * phi), np.exp(1j * phi)
    return np.array([[c, -1j * s * em], [-1j * s * ep, c]], dtype=complex)


def u_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary (OpenQASM ``U`` convention)."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def phase_matrix(lam: float) -> np.ndarray:
    """Diagonal phase gate ``diag(1, e^{iλ})``."""
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


# two-qubit matrices, little-endian: basis index = q1 * 2 + q0 where
# (q0, q1) are the (first, second) operands of the gate.
_CZ = np.diag([1, 1, 1, -1]).astype(complex)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
_ISWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def cx_matrix() -> np.ndarray:
    """CNOT with operand 0 as control, operand 1 as target (little-endian)."""
    m = np.zeros((4, 4), dtype=complex)
    for control in (0, 1):
        for target in (0, 1):
            src = target * 2 + control
            dst = (target ^ control) * 2 + control
            m[dst, src] = 1.0
    return m


def cphase_matrix(lam: float) -> np.ndarray:
    """Controlled-phase ``diag(1, 1, 1, e^{iλ})``; symmetric in operands."""
    return np.diag([1, 1, 1, np.exp(1j * lam)]).astype(complex)


def rzz_matrix(theta: float) -> np.ndarray:
    """Two-qubit ZZ interaction ``exp(-i θ Z⊗Z / 2)``."""
    e = np.exp(-0.5j * theta)
    return np.diag([e, np.conj(e), np.conj(e), e]).astype(complex)


# ---------------------------------------------------------------------------
# Gate specification registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Canonical lower-case mnemonic.
    num_qubits:
        Operand arity (1 or 2 for unitary gates in this library).
    num_params:
        Number of angle parameters.
    matrix_fn:
        Callable producing the unitary from numeric parameters; ``None``
        for non-unitary directives (measure / reset / barrier / delay).
    hermitian:
        Whether the gate is its own inverse (parameter-free gates only).
    symmetric:
        For two-qubit gates: invariant under operand exchange (CZ, SWAP).
    directive:
        Non-unitary instruction (measurement, reset, barrier, delay).
    """

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Optional[Callable[..., np.ndarray]] = None
    hermitian: bool = False
    symmetric: bool = False
    directive: bool = False

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        """Unitary matrix for the given numeric *params*.

        Registered gates are served from a process-wide cache (the array
        is marked read-only), so repeated trajectories and parameter
        sweeps over the same angles never rebuild identical matrices.
        """
        if self.matrix_fn is None:
            raise GateError(f"gate {self.name!r} has no unitary matrix")
        if len(params) != self.num_params:
            raise GateError(
                f"gate {self.name!r} takes {self.num_params} parameters, "
                f"got {len(params)}"
            )
        return _cached_matrix(self, tuple(float(p) for p in params))


GATES: Dict[str, GateSpec] = {}


@lru_cache(maxsize=4096)
def _cached_matrix(spec_: GateSpec, params: Tuple[float, ...]) -> np.ndarray:
    """Cache of gate matrices keyed by ``(spec instance, angles)``.

    Keying on the spec itself (not its name) means re-registering a
    mnemonic with a new :class:`GateSpec` can never serve a stale
    matrix.  Returned arrays are shared and frozen read-only: every
    consumer in the stack (state-vector kernels, density evolution,
    synthesis) treats gate matrices as immutable inputs.
    """
    matrix = spec_.matrix_fn(*params)
    matrix.setflags(write=False)
    return matrix


def _register(spec_: GateSpec) -> GateSpec:
    GATES[spec_.name] = spec_
    return spec_


# unitary gates -------------------------------------------------------------
I = _register(GateSpec("id", 1, 0, lambda: _ID, hermitian=True))
X = _register(GateSpec("x", 1, 0, lambda: _X, hermitian=True))
Y = _register(GateSpec("y", 1, 0, lambda: _Y, hermitian=True))
Z = _register(GateSpec("z", 1, 0, lambda: _Z, hermitian=True))
H = _register(GateSpec("h", 1, 0, lambda: _H, hermitian=True))
S = _register(GateSpec("s", 1, 0, lambda: _S))
SDG = _register(GateSpec("sdg", 1, 0, lambda: _SDG))
T = _register(GateSpec("t", 1, 0, lambda: _T))
TDG = _register(GateSpec("tdg", 1, 0, lambda: _TDG))
SX = _register(GateSpec("sx", 1, 0, lambda: _SX))
RX = _register(GateSpec("rx", 1, 1, rx_matrix))
RY = _register(GateSpec("ry", 1, 1, ry_matrix))
RZ = _register(GateSpec("rz", 1, 1, rz_matrix))
PRX = _register(GateSpec("prx", 1, 2, prx_matrix))
U = _register(GateSpec("u", 1, 3, u_matrix))
P = _register(GateSpec("p", 1, 1, phase_matrix))
CZ = _register(GateSpec("cz", 2, 0, lambda: _CZ, hermitian=True, symmetric=True))
CX = _register(GateSpec("cx", 2, 0, cx_matrix, hermitian=True))
SWAP = _register(GateSpec("swap", 2, 0, lambda: _SWAP, hermitian=True, symmetric=True))
ISWAP = _register(GateSpec("iswap", 2, 0, lambda: _ISWAP, symmetric=True))
CPHASE = _register(GateSpec("cp", 2, 1, cphase_matrix, symmetric=True))
RZZ = _register(GateSpec("rzz", 2, 1, rzz_matrix, symmetric=True))

# directives ----------------------------------------------------------------
MEASURE = _register(GateSpec("measure", 1, 0, directive=True))
RESET = _register(GateSpec("reset", 1, 0, directive=True))
BARRIER = _register(GateSpec("barrier", 0, 0, directive=True))
DELAY = _register(GateSpec("delay", 1, 1, directive=True))

#: The native gate set of the paper's 20-qubit QPU.  ``rz`` is included as
#: a *virtual* gate: zero duration and zero error, applied as a frame
#: update by the control electronics.
NATIVE_GATES: frozenset = frozenset(
    {"prx", "cz", "rz", "measure", "barrier", "reset", "delay"}
)

#: Gates with nonzero physical duration / error on the modeled QPU.
PHYSICAL_NATIVE_GATES: frozenset = frozenset({"prx", "cz", "measure", "reset"})

#: Instructions the simulation engines skip while advancing *unitary*
#: state: barriers/delays/identity have no state action at all, and
#: measurement collapse is handled by the samplers, never by the
#: unitary-advance loops.  Every engine shares this one list so the
#: skip sets cannot drift apart.
UNITARY_NOOPS: frozenset = frozenset({"barrier", "delay", "measure", "id"})


def spec(name: str) -> GateSpec:
    """Look up a gate spec by mnemonic, raising :class:`GateError` if absent."""
    try:
        return GATES[name]
    except KeyError:
        raise GateError(f"unknown gate {name!r}") from None


def is_native(name: str) -> bool:
    """Whether *name* is accepted directly by the modeled QPU."""
    return name in NATIVE_GATES


# ---------------------------------------------------------------------------
# Clifford registry
# ---------------------------------------------------------------------------
#
# The stabilizer engine (:mod:`repro.simulator.stabilizer`) can simulate
# any circuit built from Clifford gates in polynomial time.  The registry
# below answers two questions: *is this instruction Clifford?* and *which
# sequence of tableau primitives implements its conjugation action?*
# Primitives are the gates the tableau updates natively:
# ``h s sdg x y z cx cz swap``.  Every entry is a tuple of
# ``(primitive_name, operand_slots)`` pairs, earliest applied first, where
# the slot indices select from the instruction's own operand list.

_HALF_PI = math.pi / 2.0

_FIXED_CLIFFORD_PRIMS: Dict[str, Tuple[Tuple[str, Tuple[int, ...]], ...]] = {
    "id": (),
    "x": (("x", (0,)),),
    "y": (("y", (0,)),),
    "z": (("z", (0,)),),
    "h": (("h", (0,)),),
    "s": (("s", (0,)),),
    "sdg": (("sdg", (0,)),),
    # SX = H·S·H exactly, so its conjugation action is that composition.
    "sx": (("h", (0,)), ("s", (0,)), ("h", (0,))),
    "cx": (("cx", (0, 1)),),
    "cz": (("cz", (0, 1)),),
    "swap": (("swap", (0, 1)),),
    # iSWAP = SWAP · CZ · (S ⊗ S)  (applied right-to-left in circuit order).
    "iswap": (("s", (0,)), ("s", (1,)), ("cz", (0, 1)), ("swap", (0, 1))),
}

#: Parameter-free gates that are Clifford for every invocation — derived
#: from the decomposition table so the two can never drift apart.
CLIFFORD_GATES: frozenset = frozenset(_FIXED_CLIFFORD_PRIMS)

#: Conjugation action of RZ(k·π/2) on operand slot 0 (global phase dropped).
_RZ_QUARTER_PRIMS: Tuple[Tuple[Tuple[str, Tuple[int, ...]], ...], ...] = (
    (),
    (("s", (0,)),),
    (("z", (0,)),),
    (("sdg", (0,)),),
)


def _quarter_turns(angle: float, tol: float) -> Optional[int]:
    """``k`` with ``angle ≡ k·π/2 (mod 2π)`` within *tol*, else ``None``."""
    k = round(float(angle) / _HALF_PI)
    if abs(float(angle) - k * _HALF_PI) > tol:
        return None
    return int(k) % 4


def _rx_quarter_prims(k: int) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """RX(k·π/2) conjugation: ``H · RZ(k·π/2) · H`` (up to global phase)."""
    if k == 0:
        return ()
    return (("h", (0,)), *_RZ_QUARTER_PRIMS[k], ("h", (0,)))


def _ry_quarter_prims(k: int) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """RY(k·π/2) conjugation via ``RY(θ) = S · RX(θ) · S†``."""
    if k == 0:
        return ()
    return (("sdg", (0,)), *_rx_quarter_prims(k), ("s", (0,)))


def clifford_primitives(
    name: str, params: Sequence[float] = (), *, tol: float = 1e-9
) -> Optional[Tuple[Tuple[str, Tuple[int, ...]], ...]]:
    """Tableau-primitive decomposition of a gate, or ``None`` if not Clifford.

    Parameter-free Clifford gates always decompose; rotation gates
    (``rx ry rz p prx u cp rzz``) decompose exactly when every angle is a
    multiple of π/2 within *tol* (the angles are snapped, so e.g.
    ``rz(π/2)`` maps to the S primitive).  Directives, genuinely
    non-Clifford gates (T, arbitrary rotations), and malformed calls
    (wrong parameter count) return ``None``.
    """
    registered = GATES.get(name)
    if (
        registered is None
        or registered.directive
        or len(params) != registered.num_params
    ):
        return None
    fixed = _FIXED_CLIFFORD_PRIMS.get(name)
    if fixed is not None:
        return fixed
    if name in ("rz", "p"):
        k = _quarter_turns(params[0], tol)
        return None if k is None else _RZ_QUARTER_PRIMS[k]
    if name == "rx":
        k = _quarter_turns(params[0], tol)
        return None if k is None else _rx_quarter_prims(k)
    if name == "ry":
        k = _quarter_turns(params[0], tol)
        return None if k is None else _ry_quarter_prims(k)
    if name == "prx":
        # PRX(θ, φ) = RZ(φ) · RX(θ) · RZ(−φ)
        kt = _quarter_turns(params[0], tol)
        kp = _quarter_turns(params[1], tol)
        if kt is None or kp is None:
            return None
        if kt == 0:
            return ()
        return (
            *_RZ_QUARTER_PRIMS[(4 - kp) % 4],
            *_rx_quarter_prims(kt),
            *_RZ_QUARTER_PRIMS[kp],
        )
    if name == "u":
        # U(θ, φ, λ) ≐ RZ(φ) · RY(θ) · RZ(λ)
        kt = _quarter_turns(params[0], tol)
        kp = _quarter_turns(params[1], tol)
        kl = _quarter_turns(params[2], tol)
        if kt is None or kp is None or kl is None:
            return None
        return (
            *_RZ_QUARTER_PRIMS[kl],
            *_ry_quarter_prims(kt),
            *_RZ_QUARTER_PRIMS[kp],
        )
    if name == "cp":
        k = _quarter_turns(params[0], tol)
        if k == 0:
            return ()
        if k == 2:  # CP(π) = CZ; CP(±π/2) is controlled-S — not Clifford
            return (("cz", (0, 1)),)
        return None
    if name == "rzz":
        # RZZ(k·π/2) ∝ CZ·(S⊗S) for k=1, Z⊗Z for k=2, CZ·(S†⊗S†) for k=3.
        k = _quarter_turns(params[0], tol)
        if k is None:
            return None
        return (
            (),
            (("s", (0,)), ("s", (1,)), ("cz", (0, 1))),
            (("z", (0,)), ("z", (1,))),
            (("sdg", (0,)), ("sdg", (1,)), ("cz", (0, 1))),
        )[k]
    return None


def is_diagonal_gate(name: str, params: Sequence[float] = ()) -> bool:
    """Whether this gate invocation is diagonal in the computational basis.

    Decided from the (cached) matrix itself rather than a name list, so
    any registered gate qualifies exactly when its unitary is diagonal —
    Z, S, SDG, T, TDG, RZ, P, CZ, CP, RZZ, and e.g. ``u(0, φ, λ)``.
    Directives and malformed calls return ``False``.  Diagonal gates all
    commute, which is what lets the dense engine fuse adjacent runs of
    them into one elementwise multiply.
    """
    registered = GATES.get(name)
    if (
        registered is None
        or registered.directive
        or len(params) != registered.num_params
    ):
        return False
    matrix = registered.matrix(params)
    return not np.any(matrix[~np.eye(matrix.shape[0], dtype=bool)])


def is_clifford(name: str, params: Sequence[float] = (), *, tol: float = 1e-9) -> bool:
    """Whether this gate invocation is a Clifford unitary.

    Directives (measure/reset/barrier/delay) are *not* gates and return
    ``False`` here; circuit-level Clifford analysis
    (:func:`repro.circuits.dag.is_clifford_circuit`) treats them as
    engine-neutral instead.
    """
    return clifford_primitives(name, params, tol=tol) is not None


# ---------------------------------------------------------------------------
# Single-qubit synthesis over the native gate set
# ---------------------------------------------------------------------------


def _to_su2(matrix: np.ndarray) -> np.ndarray:
    """Strip global phase so that ``det == 1``."""
    if matrix.shape != (2, 2):
        raise GateError("expected a 2x2 matrix")
    det = complex(np.linalg.det(matrix))
    if abs(det) < 1e-12:
        raise GateError("matrix is singular, not a unitary")
    return matrix / np.sqrt(det)


def zxz_angles(su: np.ndarray) -> Tuple[float, float, float]:
    """ZXZ Euler angles ``(b, g, d)`` with ``su = RZ(b) · RX(g) · RZ(d)``.

    Valid for any ``su`` in SU(2); at the ``g ∈ {0, π}`` poles the split
    between ``b`` and ``d`` is gauge-fixed by setting ``d = 0``.
    """
    a00, a10 = complex(su[0, 0]), complex(su[1, 0])
    g = 2.0 * math.atan2(abs(a10), abs(a00))
    if abs(a10) < 1e-12:  # diagonal: pure RZ
        return -2.0 * float(np.angle(a00)), 0.0, 0.0
    if abs(a00) < 1e-12:  # anti-diagonal: RX(π)-like
        return 2.0 * float(np.angle(a10)) + math.pi, math.pi, 0.0
    # su00 = cos(g/2) e^{-i(b+d)/2};  su10 = -i sin(g/2) e^{i(b-d)/2}
    b = float(np.angle(a10)) - float(np.angle(a00)) + math.pi / 2.0
    d = -(float(np.angle(a10)) + float(np.angle(a00)) + math.pi / 2.0)
    return b, g, d


def prx_rz_for_unitary(matrix: np.ndarray) -> Tuple[List[Tuple[float, float]], float]:
    """Factor a 1-qubit unitary as ``RZ(tau) · PRX(theta, phi)``.

    Returns ``(pulses, tau)`` where *pulses* is a list of zero or one
    ``(theta, phi)`` pairs: the physical pulse train (earliest first), and
    *tau* the residual virtual-Z angle applied **after** the pulses.  The
    identity holds up to global phase::

        U ≐ RZ(tau) · PRX(theta, phi)

    This is the hardware-faithful form: on phased-RX devices the compiler
    tracks ``tau`` classically and folds it into the phases of subsequent
    pulses (see :mod:`repro.transpiler.decompose`).
    """
    su = _to_su2(matrix)
    b, g, d = zxz_angles(su)
    # RZ(b) RX(g) RZ(d) = RZ(b+d) · [RZ(-d) RX(g) RZ(d)] = RZ(b+d) · PRX(g, -d)
    tau = math.remainder(b + d, 2.0 * math.pi)
    if abs(g) < 1e-12:
        return [], tau
    return [(g, -d)], tau


def prx_pair_for_unitary(matrix: np.ndarray) -> List[Tuple[float, float]]:
    """Synthesize a 1-qubit unitary as at most two physical PRX pulses.

    Returns ``(theta, phi)`` pairs, earliest pulse first, whose ordered
    product ``PRX(t2, p2) · PRX(t1, p1)`` equals *matrix* up to global
    phase.  Derivation: with the second pulse pinned at ``theta2 = π``,

    ``PRX(π, p2) · PRX(t1, p1) =
        [[-sin(t1/2)·e^{i(p1-p2)},  -i cos(t1/2)·e^{-i p2}],
         [-i cos(t1/2)·e^{i p2},    -sin(t1/2)·e^{-i(p1-p2)}]]``

    which matching against ``su = [[a, b], [-conj(b), conj(a)]]`` solves in
    closed form.  Used when a backend demands all-physical pulses (e.g.
    pulse-level access, Section 4 of the paper); the default compile path
    prefers :func:`prx_rz_for_unitary` which emits half as many pulses.
    """
    su = _to_su2(matrix)
    a, b = complex(su[0, 0]), complex(su[0, 1])
    if abs(b) < 1e-12:
        # Diagonal: pure virtual-Z content. su = RZ(sigma).
        sigma = 2.0 * float(np.angle(su[1, 1]))
        sigma = math.remainder(sigma, 2.0 * math.pi)
        if abs(sigma) < 1e-12:
            return []
        # RZ(σ) ≐ PRX(π, σ/2 + π/2) · PRX(π, π/2)
        return [(math.pi, math.pi / 2.0), (math.pi, sigma / 2.0 + math.pi / 2.0)]
    if abs(a) < 1e-12:
        # Anti-diagonal: a single π pulse suffices.
        # PRX(π, φ) = -i [[0, e^{-iφ}], [e^{iφ}, 0]];  su = [[0, b], [-conj(b), 0]]
        # match -i e^{iφ} = -conj(b) → φ = angle(-conj(b)) + π/2
        phi = float(np.angle(-np.conj(b))) + math.pi / 2.0
        return [(math.pi, phi)]
    # General case: t1 from |a| = sin(t1/2); phases from the two angle
    # equations  angle(a) = (p1 - p2) + π  and  angle(b) = -p2 - π/2.
    t1 = 2.0 * math.asin(min(1.0, abs(a)))
    p2 = -float(np.angle(b)) - math.pi / 2.0
    p1 = float(np.angle(a)) + math.pi + p2
    return [(t1, math.remainder(p1, 2 * math.pi)), (math.pi, math.remainder(p2, 2 * math.pi))]


__all__ = [
    "GateSpec",
    "GATES",
    "NATIVE_GATES",
    "PHYSICAL_NATIVE_GATES",
    "UNITARY_NOOPS",
    "CLIFFORD_GATES",
    "spec",
    "is_native",
    "is_clifford",
    "is_diagonal_gate",
    "clifford_primitives",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "prx_matrix",
    "u_matrix",
    "phase_matrix",
    "cx_matrix",
    "cphase_matrix",
    "rzz_matrix",
    "zxz_angles",
    "prx_rz_for_unitary",
    "prx_pair_for_unitary",
]
