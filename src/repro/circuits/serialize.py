"""JSON-dict circuit serialization.

The REST access path (Section 2.6's asynchronous mode) ships circuits
over the wire; this module defines the canonical payload format.  Only
fully-bound circuits serialize — the remote queue executes concrete jobs,
parameter sweeps are a client-side concern.

The format is versioned so stored job histories (Section 4's dashboards
with "large job histories") survive library upgrades.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.parameters import parameters_of
from repro.errors import CircuitError, SerializationError

FORMAT_VERSION = 1


def circuit_to_dict(circuit: QuantumCircuit) -> Dict[str, Any]:
    """Serialize *circuit* to a JSON-compatible dict.

    Raises :class:`SerializationError` when symbolic parameters remain
    unbound.
    """
    ops = []
    for inst in circuit:
        if inst.free_parameters:
            names = sorted(p.name for p in inst.free_parameters)
            raise SerializationError(
                f"cannot serialize unbound parameters {names} in {inst!r}; "
                "bind the circuit first"
            )
        ops.append(
            {
                "name": inst.name,
                "qubits": list(inst.qubits),
                "params": [float(p) for p in inst.params],  # type: ignore[arg-type]
                "clbits": list(inst.clbits),
            }
        )
    return {
        "version": FORMAT_VERSION,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "instructions": ops,
        "metadata": dict(circuit.metadata),
    }


def circuit_from_dict(payload: Dict[str, Any]) -> QuantumCircuit:
    """Inverse of :func:`circuit_to_dict`; validates structure and version."""
    try:
        version = payload["version"]
        if version != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported circuit format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        qc = QuantumCircuit(
            int(payload["num_qubits"]),
            int(payload["num_clbits"]),
            str(payload.get("name", "circuit")),
        )
        qc.metadata = dict(payload.get("metadata", {}))
        for op in payload["instructions"]:
            if op["name"] == "barrier":
                qc.barrier(*op["qubits"])
            else:
                qc.append(
                    str(op["name"]),
                    [int(q) for q in op["qubits"]],
                    [float(p) for p in op.get("params", [])],
                    [int(c) for c in op.get("clbits", [])],
                )
        return qc
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, CircuitError) as exc:
        raise SerializationError(f"malformed circuit payload: {exc}") from exc


def circuit_to_json(circuit: QuantumCircuit, **json_kwargs: Any) -> str:
    """Serialize to a JSON string (the REST wire format)."""
    return json.dumps(circuit_to_dict(circuit), **json_kwargs)


def circuit_from_json(text: str) -> QuantumCircuit:
    """Parse a circuit from its JSON wire format."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError("circuit payload must be a JSON object")
    return circuit_from_dict(payload)


__all__ = [
    "FORMAT_VERSION",
    "circuit_to_dict",
    "circuit_from_dict",
    "circuit_to_json",
    "circuit_from_json",
]
