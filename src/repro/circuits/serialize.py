"""JSON-dict circuit serialization.

The REST access path (Section 2.6's asynchronous mode) ships circuits
over the wire; this module defines the canonical payload format.  Only
fully-bound circuits serialize — the remote queue executes concrete jobs,
parameter sweeps are a client-side concern.

The format is versioned so stored job histories (Section 4's dashboards
with "large job histories") survive library upgrades.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.parameters import parameter_slots, parameters_of
from repro.errors import CircuitError, SerializationError

FORMAT_VERSION = 1

#: Version tag mixed into :func:`structural_hash` — bump when the
#: encoding changes so stale cross-request plan-cache keys can never
#: alias entries produced by an older layout.
STRUCTURAL_HASH_VERSION = 1


def circuit_to_dict(circuit: QuantumCircuit) -> Dict[str, Any]:
    """Serialize *circuit* to a JSON-compatible dict.

    Raises :class:`SerializationError` when symbolic parameters remain
    unbound.
    """
    ops = []
    for inst in circuit:
        if inst.free_parameters:
            names = sorted(p.name for p in inst.free_parameters)
            raise SerializationError(
                f"cannot serialize unbound parameters {names} in {inst!r}; "
                "bind the circuit first"
            )
        ops.append(
            {
                "name": inst.name,
                "qubits": list(inst.qubits),
                "params": [float(p) for p in inst.params],  # type: ignore[arg-type]
                "clbits": list(inst.clbits),
            }
        )
    return {
        "version": FORMAT_VERSION,
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "instructions": ops,
        "metadata": dict(circuit.metadata),
    }


def circuit_from_dict(payload: Dict[str, Any]) -> QuantumCircuit:
    """Inverse of :func:`circuit_to_dict`; validates structure and version."""
    try:
        version = payload["version"]
        if version != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported circuit format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        qc = QuantumCircuit(
            int(payload["num_qubits"]),
            int(payload["num_clbits"]),
            str(payload.get("name", "circuit")),
        )
        qc.metadata = dict(payload.get("metadata", {}))
        for op in payload["instructions"]:
            if op["name"] == "barrier":
                qc.barrier(*op["qubits"])
            else:
                qc.append(
                    str(op["name"]),
                    [int(q) for q in op["qubits"]],
                    [float(p) for p in op.get("params", [])],
                    [int(c) for c in op.get("clbits", [])],
                )
        return qc
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, CircuitError) as exc:
        raise SerializationError(f"malformed circuit payload: {exc}") from exc


def structural_hash(circuit: QuantumCircuit) -> str:
    """SHA-256 hex digest of *circuit*'s structure, parameter values excluded.

    Two circuits share a hash exactly when they have the same qubit/clbit
    counts and the same instruction sequence up to parameter *values*:
    gate names, operand wires, parameter arity, and the wiring of symbolic
    parameters to their slots all participate, but concrete angles do not.
    This is the cross-request plan-cache key (`repro.compiler.plans`): all
    numeric bindings of one parameterized ansatz collapse onto one entry.

    Symbolic parameters are canonicalized to slot ids by first appearance,
    so the hash is independent of `Parameter` identity — rebuilding the
    same ansatz with fresh `Parameter` objects still hits the cache.
    Expressions hash the slots they touch (wiring), not their numeric
    coefficients.

    Each instruction additionally contributes a diagonality bit (from the
    same memoized `Instruction.is_diagonal()` the dense engine's fusion
    scan uses).  Numeric values are masked from the hash, but fusion
    partitions depend on value-edge diagonality (e.g. ``ry(0)`` *is*
    diagonal), so the bit keeps "same hash" implying "same partition":
    value-edge variants simply hash to their own cache entry.

    Unlike :func:`circuit_to_dict` this accepts unbound circuits.
    """
    # Accumulate one string and hash it once: this runs per sampling
    # request (it is the cache key), so per-instruction digest updates
    # would dominate the very cost the plan cache amortizes.
    slots = parameter_slots(inst.params for inst in circuit)
    parts = [
        f"repro.structural/{STRUCTURAL_HASH_VERSION}|"
        f"{circuit.num_qubits}|{circuit.num_clbits}|"
    ]
    append = parts.append
    for inst in circuit:
        append(inst.name)
        append(str(inst.qubits))
        if inst.clbits:
            append(f"c{inst.clbits}")
        for value in inst.params:
            free = parameters_of(value)
            if not free:
                append("#;")  # numeric value: masked
            else:
                ids = sorted(slots[p] for p in free)
                append("$" + ".".join(map(str, ids)) + ";")
        append("D|" if inst.is_diagonal() else "-|")
    return hashlib.sha256("".join(parts).encode()).hexdigest()


def circuit_to_json(circuit: QuantumCircuit, **json_kwargs: Any) -> str:
    """Serialize to a JSON string (the REST wire format)."""
    return json.dumps(circuit_to_dict(circuit), **json_kwargs)


def circuit_from_json(text: str) -> QuantumCircuit:
    """Parse a circuit from its JSON wire format."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError("circuit payload must be a JSON object")
    return circuit_from_dict(payload)


__all__ = [
    "FORMAT_VERSION",
    "STRUCTURAL_HASH_VERSION",
    "circuit_to_dict",
    "circuit_from_dict",
    "circuit_to_json",
    "circuit_from_json",
    "structural_hash",
]
