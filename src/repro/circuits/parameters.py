"""Symbolic circuit parameters for variational workloads.

Hybrid algorithms (VQE, QAOA — the tightly-coupled workloads Section 2.6
of the paper motivates) re-execute the *same* circuit with different
numeric angles every optimizer iteration.  Re-building and re-transpiling
the circuit each time would dominate the loop, so circuits may carry
:class:`Parameter` placeholders and affine expressions over them
(:class:`ParameterExpression`); binding produces a numeric circuit while
the transpiled structure is reused.

Only affine expressions (``a * p + b`` and sums thereof) are supported:
that is all VQE/QAOA ansätze need, and it keeps binding a vectorizable
dot product instead of a symbolic-algebra dependency.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Union

from repro.errors import ParameterError

_counter = itertools.count()


class ParameterExpression:
    """An affine combination ``sum_i coeff_i * param_i + offset``.

    Immutable.  Supports ``+``, ``-``, ``*`` (by scalars), and unary
    negation.  Use :meth:`bind` to substitute numeric values.
    """

    __slots__ = ("_terms", "_offset")

    def __init__(self, terms: Mapping["Parameter", float], offset: float = 0.0):
        self._terms: Dict[Parameter, float] = {
            p: float(c) for p, c in terms.items() if c != 0.0
        }
        self._offset = float(offset)

    # -- introspection ------------------------------------------------------

    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The free parameters appearing with non-zero coefficient."""
        return frozenset(self._terms)

    @property
    def offset(self) -> float:
        """The additive constant of this affine expression."""
        return self._offset

    def coefficient(self, param: "Parameter") -> float:
        """Coefficient of *param* (0 if absent)."""
        return self._terms.get(param, 0.0)

    def is_numeric(self) -> bool:
        """True when no free parameters remain (the value is a number)."""
        return not self._terms

    # -- evaluation ---------------------------------------------------------

    def bind(self, values: Mapping["Parameter", float]) -> Union["ParameterExpression", float]:
        """Substitute the given numeric *values*.

        Returns a ``float`` when all parameters are bound, otherwise a new
        partially-bound expression.
        """
        remaining: Dict[Parameter, float] = {}
        offset = self._offset
        for param, coeff in self._terms.items():
            if param in values:
                offset += coeff * float(values[param])
            else:
                remaining[param] = coeff
        if remaining:
            return ParameterExpression(remaining, offset)
        return offset

    def numeric(self) -> float:
        """The value of a fully-bound expression.

        Raises :class:`ParameterError` if free parameters remain.
        """
        if self._terms:
            names = sorted(p.name for p in self._terms)
            raise ParameterError(f"expression still has free parameters: {names}")
        return self._offset

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _coerce(other: object) -> "ParameterExpression":
        if isinstance(other, ParameterExpression):
            return other
        if isinstance(other, Parameter):
            return ParameterExpression({other: 1.0})
        if isinstance(other, (int, float)):
            return ParameterExpression({}, float(other))
        raise TypeError(f"cannot combine ParameterExpression with {type(other).__name__}")

    def __add__(self, other: object) -> "ParameterExpression":
        rhs = self._coerce(other)
        terms = dict(self._terms)
        for p, c in rhs._terms.items():
            terms[p] = terms.get(p, 0.0) + c
        return ParameterExpression(terms, self._offset + rhs._offset)

    __radd__ = __add__

    def __neg__(self) -> "ParameterExpression":
        return ParameterExpression(
            {p: -c for p, c in self._terms.items()}, -self._offset
        )

    def __sub__(self, other: object) -> "ParameterExpression":
        return self + (-self._coerce(other))

    def __rsub__(self, other: object) -> "ParameterExpression":
        return self._coerce(other) + (-self)

    def __mul__(self, scalar: object) -> "ParameterExpression":
        if not isinstance(scalar, (int, float)):
            raise TypeError("ParameterExpression only supports scalar multiplication")
        s = float(scalar)
        return ParameterExpression(
            {p: c * s for p, c in self._terms.items()}, self._offset * s
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: object) -> "ParameterExpression":
        if not isinstance(scalar, (int, float)):
            raise TypeError("ParameterExpression only supports scalar division")
        return self * (1.0 / float(scalar))

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            return self.is_numeric() and self._offset == float(other)
        if isinstance(other, Parameter):
            other = ParameterExpression({other: 1.0})
        if not isinstance(other, ParameterExpression):
            return NotImplemented
        return self._terms == other._terms and self._offset == other._offset

    def __hash__(self) -> int:
        return hash((frozenset(self._terms.items()), self._offset))

    def __repr__(self) -> str:
        parts = [
            (f"{c:g}*{p.name}" if c != 1.0 else p.name)
            for p, c in sorted(self._terms.items(), key=lambda t: t[0].name)
        ]
        if self._offset or not parts:
            parts.append(f"{self._offset:g}")
        return " + ".join(parts).replace("+ -", "- ")


class Parameter(ParameterExpression):
    """A named free parameter.

    Two parameters with the same name are *distinct* (identity is a
    fresh UUID-like counter), mirroring qiskit semantics and preventing
    accidental capture across independently-built circuits.
    """

    __slots__ = ("_name", "_uid")

    def __init__(self, name: str):
        self._name = str(name)
        self._uid = next(_counter)
        super().__init__({self: 1.0})

    @property
    def name(self) -> str:
        """The parameter's display name (uniqueness comes from identity)."""
        return self._name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Parameter):
            return self._uid == other._uid
        return super().__eq__(other)

    def __hash__(self) -> int:
        return hash(("Parameter", self._uid))

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"


ParameterValue = Union[float, int, Parameter, ParameterExpression]
"""Anything accepted as a gate angle."""


def parameters_of(value: ParameterValue) -> frozenset[Parameter]:
    """Free parameters of *value* (empty for numerics)."""
    if isinstance(value, ParameterExpression):
        return value.parameters
    return frozenset()


def bind_value(value: ParameterValue, binding: Mapping[Parameter, float]) -> ParameterValue:
    """Bind *binding* into *value*, returning a float when fully bound."""
    if isinstance(value, ParameterExpression):
        return value.bind(binding)
    return float(value)


def numeric_value(value: ParameterValue) -> float:
    """Extract the numeric value, raising if parameters remain free."""
    if isinstance(value, ParameterExpression):
        return value.numeric()
    return float(value)


def parameter_slots(
    param_lists: Iterable[Iterable[ParameterValue]],
) -> Dict[Parameter, int]:
    """Canonical slot ids for the free parameters of an instruction stream.

    Slots are assigned by first appearance while scanning *param_lists*
    (one inner iterable per instruction, in program order); parameters
    inside one expression are visited in ``(name, creation-order)`` order
    so the result is deterministic.  Structural hashing
    (:func:`repro.circuits.serialize.structural_hash`) identifies symbolic
    parameters by slot rather than object identity, so two builds of the
    same ansatz with fresh :class:`Parameter` objects canonicalize
    identically — while reusing one parameter across two gates stays
    distinguishable from using two different parameters.
    """
    slots: Dict[Parameter, int] = {}
    for params in param_lists:
        for value in params:
            free = parameters_of(value)
            if not free:
                continue
            for p in sorted(free, key=lambda q: (q.name, q._uid)):
                slots.setdefault(p, len(slots))
    return slots


def make_binding(
    params: Iterable[Parameter], values: Iterable[float]
) -> Dict[Parameter, float]:
    """Zip parameters and values into a binding dict, checking lengths."""
    params = list(params)
    values = list(values)
    if len(params) != len(values):
        raise ParameterError(
            f"got {len(values)} values for {len(params)} parameters"
        )
    return {p: float(v) for p, v in zip(params, values)}


__all__ = [
    "Parameter",
    "ParameterExpression",
    "ParameterValue",
    "parameters_of",
    "bind_value",
    "numeric_value",
    "parameter_slots",
    "make_binding",
]
