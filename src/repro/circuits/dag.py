"""Dependency-DAG view of a circuit.

The transpiler's routing pass and the executor's duration model both need
the *partial order* of instructions rather than the flat list: two gates
on disjoint qubits can run simultaneously.  :class:`CircuitDag` computes
that order once; :func:`layers` converts it into ASAP execution layers,
which is also how physical execution time is estimated (each layer's
duration is the max of its member gate durations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.circuits.circuit import Instruction, QuantumCircuit


@dataclass
class DagNode:
    """One instruction plus its dependency edges (indices into the node list)."""

    index: int
    instruction: Instruction
    predecessors: List[int] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)


class CircuitDag:
    """Qubit-wise dependency DAG of a :class:`QuantumCircuit`.

    An edge ``a → b`` exists when instruction *b* uses a qubit whose most
    recent prior user is *a*.  Barriers create edges from every prior
    instruction on their operand qubits and to every later one.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.nodes: List[DagNode] = []
        last_on_qubit: Dict[int, int] = {}
        for idx, inst in enumerate(circuit):
            node = DagNode(idx, inst)
            preds: set[int] = set()
            for q in inst.qubits:
                if q in last_on_qubit:
                    preds.add(last_on_qubit[q])
            node.predecessors = sorted(preds)
            for p in node.predecessors:
                self.nodes[p].successors.append(idx)
            self.nodes.append(node)
            for q in inst.qubits:
                last_on_qubit[q] = idx

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DagNode]:
        return iter(self.nodes)

    def front_layer(self) -> List[DagNode]:
        """Nodes with no predecessors (the routing pass's starting frontier)."""
        return [n for n in self.nodes if not n.predecessors]

    def topological_order(self) -> List[DagNode]:
        """Nodes in a topological order (here: original program order,
        which is always a valid linear extension)."""
        return list(self.nodes)

    def layers(self) -> List[List[DagNode]]:
        """ASAP layering: each node goes to layer ``1 + max(pred layers)``."""
        level: Dict[int, int] = {}
        out: List[List[DagNode]] = []
        for node in self.nodes:
            lvl = 0
            for p in node.predecessors:
                lvl = max(lvl, level[p] + 1)
            level[node.index] = lvl
            while len(out) <= lvl:
                out.append([])
            out[lvl].append(node)
        return out

    def critical_path_length(self, duration_fn) -> float:
        """Longest path weighted by ``duration_fn(instruction) -> seconds``.

        This is the executor's estimate of wall-clock circuit duration
        (barriers and virtual gates get zero weight from the callback).
        """
        finish: Dict[int, float] = {}
        longest = 0.0
        for node in self.nodes:
            start = 0.0
            for p in node.predecessors:
                start = max(start, finish[p])
            end = start + float(duration_fn(node.instruction))
            finish[node.index] = end
            longest = max(longest, end)
        return longest


def layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Convenience: ASAP instruction layers of *circuit*."""
    return [
        [node.instruction for node in layer] for layer in CircuitDag(circuit).layers()
    ]


__all__ = ["CircuitDag", "DagNode", "layers"]
