"""Dependency-DAG view of a circuit.

The transpiler's routing pass and the executor's duration model both need
the *partial order* of instructions rather than the flat list: two gates
on disjoint qubits can run simultaneously.  :class:`CircuitDag` computes
that order once; :func:`layers` converts it into ASAP execution layers,
which is also how physical execution time is estimated (each layer's
duration is the max of its member gate durations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, NamedTuple, Sequence, Tuple

from repro.circuits.circuit import Instruction, QuantumCircuit


@dataclass
class DagNode:
    """One instruction plus its dependency edges (indices into the node list)."""

    index: int
    instruction: Instruction
    predecessors: List[int] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)


class CircuitDag:
    """Qubit-wise dependency DAG of a :class:`QuantumCircuit`.

    An edge ``a → b`` exists when instruction *b* uses a qubit whose most
    recent prior user is *a*.  Barriers create edges from every prior
    instruction on their operand qubits and to every later one.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.nodes: List[DagNode] = []
        last_on_qubit: Dict[int, int] = {}
        for idx, inst in enumerate(circuit):
            node = DagNode(idx, inst)
            preds: set[int] = set()
            for q in inst.qubits:
                if q in last_on_qubit:
                    preds.add(last_on_qubit[q])
            node.predecessors = sorted(preds)
            for p in node.predecessors:
                self.nodes[p].successors.append(idx)
            self.nodes.append(node)
            for q in inst.qubits:
                last_on_qubit[q] = idx

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[DagNode]:
        return iter(self.nodes)

    def front_layer(self) -> List[DagNode]:
        """Nodes with no predecessors (the routing pass's starting frontier)."""
        return [n for n in self.nodes if not n.predecessors]

    def topological_order(self) -> List[DagNode]:
        """Nodes in a topological order (here: original program order,
        which is always a valid linear extension)."""
        return list(self.nodes)

    def layers(self) -> List[List[DagNode]]:
        """ASAP layering: each node goes to layer ``1 + max(pred layers)``."""
        level: Dict[int, int] = {}
        out: List[List[DagNode]] = []
        for node in self.nodes:
            lvl = 0
            for p in node.predecessors:
                lvl = max(lvl, level[p] + 1)
            level[node.index] = lvl
            while len(out) <= lvl:
                out.append([])
            out[lvl].append(node)
        return out

    def critical_path_length(self, duration_fn) -> float:
        """Longest path weighted by ``duration_fn(instruction) -> seconds``.

        This is the executor's estimate of wall-clock circuit duration
        (barriers and virtual gates get zero weight from the callback).
        """
        finish: Dict[int, float] = {}
        longest = 0.0
        for node in self.nodes:
            start = 0.0
            for p in node.predecessors:
                start = max(start, finish[p])
            end = start + float(duration_fn(node.instruction))
            finish[node.index] = end
            longest = max(longest, end)
        return longest


def layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Convenience: ASAP instruction layers of *circuit*."""
    return [
        [node.instruction for node in layer] for layer in CircuitDag(circuit).layers()
    ]


# ---------------------------------------------------------------------------
# Clifford structure analysis
# ---------------------------------------------------------------------------


def instruction_is_clifford(instruction: Instruction) -> bool:
    """Whether one instruction is simulable on a stabilizer tableau.

    Directives (measure/reset/barrier/delay) count as Clifford-compatible:
    the tableau engine implements all of them natively.  Gates qualify
    through the :func:`repro.circuits.gates.is_clifford` registry
    (memoized per instruction); gates with unbound symbolic parameters
    never qualify.
    """
    if instruction.is_directive:
        return True
    return instruction.clifford_primitives() is not None


def is_clifford_circuit(circuit: QuantumCircuit) -> bool:
    """True when every instruction of *circuit* is Clifford-compatible.

    This is the dispatch predicate of the sampler: circuits passing it can
    be routed through the polynomial-cost stabilizer backend
    (:mod:`repro.simulator.stabilizer`) instead of the dense ``2^n``
    state-vector engine.
    """
    return all(instruction_is_clifford(inst) for inst in circuit)


class CliffordSegment(NamedTuple):
    """One maximal Clifford / non-Clifford run of a circuit.

    A half-open instruction-index window ``[start, stop)`` plus its
    engine class.  Tuple-compatible with the historical
    ``(start, stop, is_clifford)`` triples, so existing consumers keep
    working; the extra surface below is the segment metadata the
    execution-engine router and diagnostics consume.
    """

    start: int
    stop: int
    is_clifford: bool

    @property
    def size(self) -> int:
        """Number of instructions covered (directives included)."""
        return self.stop - self.start

    def instructions(self, circuit: QuantumCircuit) -> Tuple[Instruction, ...]:
        """The covered instruction window of *circuit*."""
        return circuit.instructions[self.start : self.stop]

    def metadata(self, circuit: QuantumCircuit) -> Dict[str, object]:
        """Routing-relevant summary of this segment within *circuit*:
        gate/entangler counts and the qubits touched — what an engine
        router needs to judge whether a tableau prefix pays off."""
        gates = two_qubit = 0
        qubits: set[int] = set()
        for inst in self.instructions(circuit):
            qubits.update(inst.qubits)
            if inst.is_directive:
                continue
            gates += 1
            two_qubit += len(inst.qubits) == 2
        return {
            "start": self.start,
            "stop": self.stop,
            "is_clifford": self.is_clifford,
            "num_instructions": self.size,
            "num_gates": gates,
            "num_two_qubit_gates": two_qubit,
            "qubits": tuple(sorted(qubits)),
        }


def clifford_segments(circuit: QuantumCircuit) -> List[CliffordSegment]:
    """Maximal Clifford / non-Clifford runs of *circuit*.

    Walks the instructions in program order (always a valid linear
    extension of the dependency DAG) and returns half-open
    :class:`CliffordSegment` runs covering every instruction.
    Directives are engine-neutral and attach to whichever run is open —
    leading directives join the first gate's run — so a lone barrier
    never splits a segment; a circuit of only directives is one Clifford
    run.  The whole-circuit dispatch uses :func:`is_clifford_circuit`;
    the first segment is the maximal Clifford prefix the hybrid
    execution engine (:mod:`repro.simulator.engines`) runs on a
    stabilizer tableau before crossing to dense amplitudes.
    """
    out: List[CliffordSegment] = []
    for index, inst in enumerate(circuit):
        if inst.is_directive:
            if out:
                out[-1] = out[-1]._replace(stop=index + 1)
            continue
        flag = instruction_is_clifford(inst)
        if out and out[-1].is_clifford == flag:
            out[-1] = out[-1]._replace(stop=index + 1)
        else:
            # the first run absorbs any leading directives (start at 0)
            out.append(CliffordSegment(0 if not out else index, index + 1, flag))
    if not out and len(circuit):
        out.append(CliffordSegment(0, len(circuit), True))
    return out


def scan_diagonal_runs(instructions: Sequence[Instruction]) -> List[List[int]]:
    """Maximal fusible runs of diagonal gates in an instruction window.

    Two diagonal gates belong to one run when the later one can commute
    back to the earlier one through the dependency structure — i.e. no
    *non-diagonal* instruction touching any of its qubits appears after
    the run opened (diagonal gates all commute with each other, so
    interleaved diagonal gates never block).  This is the DAG
    commutation analysis specialized to the diagonal case: a run member
    either has no path to the run head, or every instruction on such a
    path is itself diagonal.  Barriers close runs (they are optimization
    fences); measurements and resets block their qubits.

    Returns position lists (ascending, possibly non-contiguous) for
    every run with at least two members — the fusion candidates the
    dense engine collapses into single elementwise multiplies.
    """
    runs: List[List[int]] = []
    current: List[int] = []
    blocked: set[int] = set()
    for pos, inst in enumerate(instructions):
        if inst.name == "barrier":
            if current:
                runs.append(current)
                current = []
            continue
        if instruction_is_diagonal(inst):
            if current and blocked.intersection(inst.qubits):
                runs.append(current)
                current = []
            if not current:
                blocked = set()
            current.append(pos)
        elif inst.name != "delay":
            # Gates, measurements and resets all act on their qubits;
            # delays have no state action in the noiseless engine.
            blocked.update(inst.qubits)
    if current:
        runs.append(current)
    return [run for run in runs if len(run) >= 2]


def instruction_is_diagonal(instruction: Instruction) -> bool:
    """Whether one instruction is a diagonal unitary (memoized — see
    :meth:`repro.circuits.circuit.Instruction.is_diagonal`)."""
    return instruction.is_diagonal()


def diagonal_runs(circuit: QuantumCircuit) -> List[List[int]]:
    """Fusible diagonal runs of a whole circuit (instruction indices).

    The circuit-level view of :func:`scan_diagonal_runs` — what the
    dense engine's kernel fusion would collapse, exposed for
    diagnostics and tests.
    """
    return scan_diagonal_runs(circuit.instructions)


def segment_summary(circuit: QuantumCircuit) -> List[Dict[str, object]]:
    """Per-segment metadata for every run of :func:`clifford_segments` —
    the diagnostic view of how the hybrid engine would slice *circuit*."""
    return [seg.metadata(circuit) for seg in clifford_segments(circuit)]


__all__ = [
    "CircuitDag",
    "CliffordSegment",
    "DagNode",
    "layers",
    "instruction_is_clifford",
    "instruction_is_diagonal",
    "is_clifford_circuit",
    "clifford_segments",
    "scan_diagonal_runs",
    "diagonal_runs",
    "segment_summary",
]
