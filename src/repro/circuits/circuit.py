"""Quantum circuit intermediate representation.

:class:`QuantumCircuit` is the lingua franca of the stack: every
front-end adapter (Section 2.6's Qiskit/Pennylane/CUDAQ/QPI adapters)
translates *into* it, the multi-dialect compiler lowers *through* it, and
the QPU executor consumes the transpiled, native-gate form of it.

The representation is a flat, ordered list of :class:`Instruction`
records.  Structural analyses (depth, layering, commutation) live in
:mod:`repro.circuits.dag`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates as gate_lib
from repro.circuits.parameters import (
    Parameter,
    ParameterValue,
    bind_value,
    numeric_value,
    parameters_of,
)
from repro.errors import CircuitError, GateError
from repro.utils.validation import check_distinct, check_index


@dataclass(frozen=True)
class Instruction:
    """One gate or directive applied to specific qubits.

    Attributes
    ----------
    name:
        Gate mnemonic registered in :mod:`repro.circuits.gates`.
    qubits:
        Operand qubit indices (order matters for non-symmetric gates).
    params:
        Angle parameters — numeric or symbolic.
    clbits:
        Classical bit targets (measurements only).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParameterValue, ...] = ()
    clbits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        spec = gate_lib.spec(self.name)
        if self.name != "barrier" and len(self.qubits) != spec.num_qubits:
            raise GateError(
                f"gate {self.name!r} takes {spec.num_qubits} qubits, "
                f"got {len(self.qubits)}"
            )
        if spec.num_params != len(self.params):
            raise GateError(
                f"gate {self.name!r} takes {spec.num_params} parameters, "
                f"got {len(self.params)}"
            )
        check_distinct(self.qubits, f"{self.name} operands")

    @property
    def spec(self) -> gate_lib.GateSpec:
        """The registered :class:`~repro.circuits.gates.GateSpec` of this gate."""
        return gate_lib.spec(self.name)

    @property
    def is_directive(self) -> bool:
        """Whether this is a non-unitary directive (measure/reset/barrier/delay)."""
        return self.spec.directive

    @property
    def is_measurement(self) -> bool:
        """Whether this instruction is a measurement."""
        return self.name == "measure"

    @property
    def is_two_qubit(self) -> bool:
        """Whether this is a two-qubit *gate* (directives excluded)."""
        return len(self.qubits) == 2 and not self.is_directive

    @property
    def free_parameters(self) -> frozenset[Parameter]:
        """Unbound symbolic parameters appearing in this instruction."""
        out: set[Parameter] = set()
        for p in self.params:
            out |= parameters_of(p)
        return frozenset(out)

    def matrix(self) -> np.ndarray:
        """Numeric unitary of this instruction (raises on directives or
        unbound parameters).

        Memoized per instance: instructions are immutable, so repeated
        trajectories over the same circuit resolve each matrix once (the
        shared array is read-only — copy before mutating).
        """
        cached = self.__dict__.get("_matrix")
        if cached is None:
            cached = self.spec.matrix([numeric_value(p) for p in self.params])
            object.__setattr__(self, "_matrix", cached)
        return cached

    def clifford_primitives(self):
        """Memoized tableau-primitive decomposition of this instruction.

        ``None`` when the instruction is not a Clifford unitary — a
        directive, a gate with unbound parameters, or a genuinely
        non-Clifford gate (see
        :func:`repro.circuits.gates.clifford_primitives`).  Memoized per
        instance like :meth:`matrix`, so the stabilizer engine's
        trajectory replays and the sampler's dispatch predicate resolve
        each decomposition once.
        """
        cached = self.__dict__.get("_clifford", False)  # None is a valid value
        if cached is False:
            if self.free_parameters:
                cached = None
            else:
                cached = gate_lib.clifford_primitives(
                    self.name, [numeric_value(p) for p in self.params]
                )
            object.__setattr__(self, "_clifford", cached)
        return cached

    def is_diagonal(self) -> bool:
        """Memoized: whether this instruction's unitary is diagonal in
        the computational basis (see
        :func:`repro.circuits.gates.is_diagonal_gate`).  Directives and
        unbound-parameter gates are never diagonal.  The dense engine's
        diagonal-run fusion keys off this predicate.
        """
        cached = self.__dict__.get("_diagonal")
        if cached is None:
            if self.free_parameters:
                cached = False
            else:
                cached = gate_lib.is_diagonal_gate(
                    self.name, [numeric_value(p) for p in self.params]
                )
            object.__setattr__(self, "_diagonal", cached)
        return cached

    def bound(self, binding: Mapping[Parameter, float]) -> "Instruction":
        """A copy with *binding* substituted into the parameters."""
        if not self.free_parameters:
            return self
        return Instruction(
            self.name,
            self.qubits,
            tuple(bind_value(p, binding) for p in self.params),
            self.clbits,
        )

    def remapped(self, mapping: Mapping[int, int]) -> "Instruction":
        """A copy with qubit indices translated through *mapping*."""
        return Instruction(
            self.name,
            tuple(mapping[q] for q in self.qubits),
            self.params,
            self.clbits,
        )

    def __repr__(self) -> str:
        bits = ", ".join(map(str, self.qubits))
        if self.params:
            pl = ", ".join(
                f"{numeric_value(p):.4g}" if not parameters_of(p) else repr(p)
                for p in self.params
            )
            return f"{self.name}({pl}) q[{bits}]"
        if self.clbits:
            return f"{self.name} q[{bits}] -> c[{', '.join(map(str, self.clbits))}]"
        return f"{self.name} q[{bits}]"


class QuantumCircuit:
    """An ordered sequence of instructions on ``num_qubits`` qubits.

    Examples
    --------
    >>> qc = QuantumCircuit(3, name="ghz3")
    >>> qc.h(0)
    >>> qc.cx(0, 1)
    >>> qc.cx(1, 2)
    >>> qc.measure_all()
    >>> qc.depth()
    4
    """

    def __init__(
        self,
        num_qubits: int,
        num_clbits: Optional[int] = None,
        name: str = "circuit",
    ) -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits) if num_clbits is not None else self.num_qubits
        self.name = str(name)
        self._instructions: List[Instruction] = []
        self.metadata: Dict[str, object] = {}

    # -- container protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, idx: int) -> Instruction:
        return self._instructions[idx]

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """The instruction sequence as an immutable tuple."""
        return tuple(self._instructions)

    # -- construction -----------------------------------------------------------

    def append(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[ParameterValue] = (),
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append a gate by mnemonic; returns ``self`` for chaining."""
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            check_index(q, self.num_qubits, "qubit")
        clbits = tuple(int(c) for c in clbits)
        for c in clbits:
            check_index(c, self.num_clbits, "clbit")
        self._instructions.append(Instruction(name, qubits, tuple(params), clbits))
        return self

    def append_instruction(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built :class:`Instruction` (bounds-checked)."""
        return self.append(
            instruction.name, instruction.qubits, instruction.params, instruction.clbits
        )

    # one method per library gate — the adapter-facing sugar ------------------

    def id(self, q: int) -> "QuantumCircuit":
        """Identity (explicit idle marker)."""
        return self.append("id", [q])

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.append("x", [q])

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.append("y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.append("z", [q])

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.append("h", [q])

    def s(self, q: int) -> "QuantumCircuit":
        """Phase gate S = √Z."""
        return self.append("s", [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        """Inverse phase gate S†."""
        return self.append("sdg", [q])

    def t(self, q: int) -> "QuantumCircuit":
        """T = √S."""
        return self.append("t", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        """Inverse T gate."""
        return self.append("tdg", [q])

    def sx(self, q: int) -> "QuantumCircuit":
        """√X."""
        return self.append("sx", [q])

    def rx(self, theta: ParameterValue, q: int) -> "QuantumCircuit":
        """X rotation by *theta*."""
        return self.append("rx", [q], [theta])

    def ry(self, theta: ParameterValue, q: int) -> "QuantumCircuit":
        """Y rotation by *theta*."""
        return self.append("ry", [q], [theta])

    def rz(self, phi: ParameterValue, q: int) -> "QuantumCircuit":
        """Z rotation by *phi* (virtual on phased-RX hardware)."""
        return self.append("rz", [q], [phi])

    def prx(self, theta: ParameterValue, phi: ParameterValue, q: int) -> "QuantumCircuit":
        """Phased-RX — the native 1q gate of the modeled QPU."""
        return self.append("prx", [q], [theta, phi])

    def u(
        self,
        theta: ParameterValue,
        phi: ParameterValue,
        lam: ParameterValue,
        q: int,
    ) -> "QuantumCircuit":
        """Generic single-qubit unitary (OpenQASM ``U`` convention)."""
        return self.append("u", [q], [theta, phi, lam])

    def p(self, lam: ParameterValue, q: int) -> "QuantumCircuit":
        """Diagonal phase gate ``diag(1, e^{iλ})``."""
        return self.append("p", [q], [lam])

    def cz(self, q0: int, q1: int) -> "QuantumCircuit":
        """Controlled-Z — the native 2q gate of the modeled QPU."""
        return self.append("cz", [q0, q1])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """CNOT with explicit control/target order."""
        return self.append("cx", [control, target])

    def swap(self, q0: int, q1: int) -> "QuantumCircuit":
        """SWAP the two qubits."""
        return self.append("swap", [q0, q1])

    def iswap(self, q0: int, q1: int) -> "QuantumCircuit":
        """iSWAP (swap plus an i phase on the exchanged states)."""
        return self.append("iswap", [q0, q1])

    def cp(self, lam: ParameterValue, q0: int, q1: int) -> "QuantumCircuit":
        """Controlled-phase by *lam*; symmetric in its operands."""
        return self.append("cp", [q0, q1], [lam])

    def rzz(self, theta: ParameterValue, q0: int, q1: int) -> "QuantumCircuit":
        """Two-qubit ZZ interaction ``exp(-i θ Z⊗Z / 2)``."""
        return self.append("rzz", [q0, q1], [theta])

    def measure(self, qubit: int, clbit: Optional[int] = None) -> "QuantumCircuit":
        """Measure *qubit* into *clbit* (defaults to the same index)."""
        return self.append("measure", [qubit], clbits=[qubit if clbit is None else clbit])

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the like-numbered classical bit."""
        for q in range(self.num_qubits):
            self.measure(q)
        return self

    def reset(self, q: int) -> "QuantumCircuit":
        """Actively reset *q* to ``|0⟩`` (measure-and-flip semantics)."""
        return self.append("reset", [q])

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Synchronization barrier across *qubits* (default: all qubits)."""
        # barrier takes a variable operand list; spec arity 0 means "any".
        qs = tuple(int(q) for q in qubits) or tuple(range(self.num_qubits))
        for q in qs:
            check_index(q, self.num_qubits, "qubit")
        check_distinct(qs, "barrier operands")
        self._instructions.append(Instruction("barrier", qs))
        return self

    def delay(self, duration: float, q: int) -> "QuantumCircuit":
        """Idle *q* for *duration* seconds (noise accumulates while idle)."""
        return self.append("delay", [q], [duration])

    # -- composition ------------------------------------------------------------

    def compose(
        self,
        other: "QuantumCircuit",
        qubit_map: Optional[Mapping[int, int]] = None,
    ) -> "QuantumCircuit":
        """Append *other*'s instructions (optionally remapped) onto ``self``."""
        mapping = dict(qubit_map) if qubit_map is not None else {
            q: q for q in range(other.num_qubits)
        }
        for src in mapping.values():
            check_index(src, self.num_qubits, "mapped qubit")
        for inst in other:
            self._instructions.append(
                Instruction(
                    inst.name,
                    tuple(mapping[q] for q in inst.qubits),
                    inst.params,
                    inst.clbits,
                )
            )
        return self

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """An independent copy (optionally renamed); metadata is copied too."""
        qc = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        qc._instructions = list(self._instructions)
        qc.metadata = dict(self.metadata)
        return qc

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (unitary part only; raises on measurements)."""
        qc = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        inverses = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        for inst in reversed(self._instructions):
            if inst.name in ("measure", "reset"):
                raise CircuitError("cannot invert a circuit containing measure/reset")
            if inst.name == "barrier":
                qc._instructions.append(inst)
            elif inst.spec.hermitian:
                qc._instructions.append(inst)
            elif inst.name in inverses:
                qc.append(inverses[inst.name], inst.qubits)
            elif inst.name == "sx":
                # sx† = sx·sx·sx (sx^4 = 1); express via rx(-π/2) instead
                qc.append("rx", inst.qubits, [-np.pi / 2.0])
            elif inst.name in ("rx", "ry", "rz", "p", "cp", "rzz", "delay"):
                neg = tuple(-p if not isinstance(p, (int, float)) else -float(p) for p in inst.params)
                if inst.name == "delay":
                    neg = inst.params  # idling is self-adjoint in duration
                qc.append(inst.name, inst.qubits, neg)
            elif inst.name == "prx":
                theta, phi = inst.params
                neg_theta = -theta if not isinstance(theta, (int, float)) else -float(theta)
                qc.append("prx", inst.qubits, [neg_theta, phi])
            elif inst.name == "u":
                theta, phi, lam = inst.params
                qc.append(
                    "u",
                    inst.qubits,
                    [
                        -theta if not isinstance(theta, (int, float)) else -float(theta),
                        -lam if not isinstance(lam, (int, float)) else -float(lam),
                        -phi if not isinstance(phi, (int, float)) else -float(phi),
                    ],
                )
            elif inst.name == "iswap":
                # iswap† = iswap^3; cheaper: rzz/swap identity — use matrix-free
                qc.append("iswap", inst.qubits)
                qc.append("iswap", inst.qubits)
                qc.append("iswap", inst.qubits)
            else:  # pragma: no cover - every library gate is handled above
                raise CircuitError(f"no inverse rule for gate {inst.name!r}")
        return qc

    # -- parameters ---------------------------------------------------------------

    @property
    def parameters(self) -> Tuple[Parameter, ...]:
        """Free parameters, sorted by name then creation order."""
        seen: set[Parameter] = set()
        for inst in self._instructions:
            seen |= inst.free_parameters
        return tuple(sorted(seen, key=lambda p: (p.name, p._uid)))

    def bind(self, binding: Mapping[Parameter, float]) -> "QuantumCircuit":
        """A copy with parameters substituted (may be partial)."""
        qc = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        qc.metadata = dict(self.metadata)
        qc._instructions = [inst.bound(binding) for inst in self._instructions]
        return qc

    def bind_values(self, values: Sequence[float]) -> "QuantumCircuit":
        """Bind positionally against :attr:`parameters`."""
        params = self.parameters
        if len(values) != len(params):
            raise CircuitError(
                f"circuit has {len(params)} parameters, got {len(values)} values"
            )
        return self.bind(dict(zip(params, map(float, values))))

    # -- analysis -------------------------------------------------------------

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate mnemonics."""
        out: Dict[str, int] = {}
        for inst in self._instructions:
            out[inst.name] = out.get(inst.name, 0) + 1
        return out

    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (the dominant error/duration source)."""
        return sum(1 for inst in self._instructions if inst.is_two_qubit)

    def depth(self, *, count_directives: bool = True) -> int:
        """Circuit depth: longest qubit-wise chain of instructions.

        Barriers synchronize all their operands; with
        ``count_directives=False`` measurements/resets/delays do not add a
        layer of their own.
        """
        level = [0] * self.num_qubits
        for inst in self._instructions:
            if inst.name == "barrier":
                top = max((level[q] for q in inst.qubits), default=0)
                for q in inst.qubits:
                    level[q] = top
                continue
            adds = 1 if (count_directives or not inst.is_directive) else 0
            top = max(level[q] for q in inst.qubits) + adds
            for q in inst.qubits:
                level[q] = top
        return max(level, default=0)

    def qubits_used(self) -> frozenset[int]:
        """Indices of qubits touched by at least one instruction."""
        used: set[int] = set()
        for inst in self._instructions:
            used.update(inst.qubits)
        return frozenset(used)

    def interactions(self) -> Dict[Tuple[int, int], int]:
        """Two-qubit interaction multigraph as ``{(min, max): count}``."""
        out: Dict[Tuple[int, int], int] = {}
        for inst in self._instructions:
            if inst.is_two_qubit:
                key = (min(inst.qubits), max(inst.qubits))
                out[key] = out.get(key, 0) + 1
        return out

    def has_measurements(self) -> bool:
        """Whether any instruction is a measurement."""
        return any(inst.is_measurement for inst in self._instructions)

    def is_native(self) -> bool:
        """Whether every instruction is in the QPU native gate set."""
        return all(gate_lib.is_native(inst.name) for inst in self._instructions)

    # -- rendering ------------------------------------------------------------

    def draw(self) -> str:
        """A compact text rendering, one line per qubit."""
        lanes: List[List[str]] = [[] for _ in range(self.num_qubits)]

        def pad() -> None:
            width = max((len(lane) for lane in lanes), default=0)
            for lane in lanes:
                lane.extend(["---"] * (width - len(lane)))

        for inst in self._instructions:
            if inst.name == "barrier":
                pad()
                for q in inst.qubits:
                    lanes[q].append("|")
                continue
            if len(inst.qubits) == 2:
                pad()
                a, b = inst.qubits
                lanes[a].append(f"{inst.name}:0")
                lanes[b].append(f"{inst.name}:1")
            else:
                q = inst.qubits[0]
                label = inst.name
                if inst.params:
                    try:
                        label += "(" + ",".join(f"{numeric_value(p):.3g}" for p in inst.params) + ")"
                    except Exception:
                        label += "(θ)"
                lanes[q].append(label)
        pad()
        return "\n".join(
            f"q{idx:>2}: " + "-".join(lane) for idx, lane in enumerate(lanes)
        )

    def __repr__(self) -> str:
        return (
            f"<QuantumCircuit {self.name!r}: {self.num_qubits} qubits, "
            f"{len(self._instructions)} instructions, depth {self.depth()}>"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._instructions == other._instructions
        )

    def __hash__(self) -> int:  # circuits are mutable; identity hash
        return id(self)


# ---------------------------------------------------------------------------
# Stock circuit constructors used throughout the stack
# ---------------------------------------------------------------------------


def ghz_circuit(num_qubits: int, *, measure: bool = True, name: Optional[str] = None) -> QuantumCircuit:
    """The GHZ-state preparation circuit used as the paper's live benchmark.

    Section 3.2: "Standardized algorithms such as GHZ state creations are
    regularly run on all qubits of the QPU or subsets of them."
    """
    qc = QuantumCircuit(num_qubits, name=name or f"ghz{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    if measure:
        qc.measure_all()
    return qc


def bell_circuit(*, measure: bool = True) -> QuantumCircuit:
    """A 2-qubit Bell pair circuit."""
    qc = QuantumCircuit(2, name="bell")
    qc.h(0)
    qc.cx(0, 1)
    if measure:
        qc.measure_all()
    return qc


def brickwork_circuit(
    num_qubits: int,
    depth: int,
    *,
    seed: object = 0,
    measure: bool = True,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Shallow brickwork: RY layers + even/odd CZ brick pattern.

    The canonical bounded-entanglement workload (branching, non-Clifford,
    line-like) the MPS engine targets — one builder shared by the perf
    harness, the microbenchmarks, and the test suites so the lanes and
    the pins can never drift apart.
    """
    from repro.utils.rng import as_rng

    rng = as_rng(seed)  # type: ignore[arg-type]
    qc = QuantumCircuit(num_qubits, name=name or f"brickwork{num_qubits}x{depth}")
    for layer in range(depth):
        for q in range(num_qubits):
            qc.ry(float(rng.uniform(-np.pi, np.pi)), q)
        for q in range(layer % 2, num_qubits - 1, 2):
            qc.cz(q, q + 1)
    if measure:
        qc.measure_all()
    return qc


def random_circuit(
    num_qubits: int,
    depth: int,
    *,
    seed: object = None,
    two_qubit_prob: float = 0.35,
    measure: bool = True,
) -> QuantumCircuit:
    """A random circuit with textbook gates; used by tests and workloads."""
    from repro.utils.rng import as_rng

    rng = as_rng(seed)  # type: ignore[arg-type]
    qc = QuantumCircuit(num_qubits, name=f"random{num_qubits}x{depth}")
    one_q = ["h", "x", "y", "z", "s", "t", "sx"]
    for _ in range(depth):
        q = int(rng.integers(num_qubits))
        if num_qubits >= 2 and rng.random() < two_qubit_prob:
            q2 = int(rng.integers(num_qubits - 1))
            if q2 >= q:
                q2 += 1
            qc.append(str(rng.choice(["cx", "cz", "swap"])), [q, q2])
        elif rng.random() < 0.5:
            qc.append(str(rng.choice(one_q)), [q])
        else:
            qc.append(
                str(rng.choice(["rx", "ry", "rz"])),
                [q],
                [float(rng.uniform(-np.pi, np.pi))],
            )
    if measure:
        qc.measure_all()
    return qc


__all__ = [
    "Instruction",
    "QuantumCircuit",
    "ghz_circuit",
    "bell_circuit",
    "brickwork_circuit",
    "random_circuit",
]
