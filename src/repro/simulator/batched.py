"""Batched dense states: every trajectory group in one kernel call.

The grouped sampler spends its time advancing many *independent*
``2^n`` states — one per trajectory group — through the same window of
instructions.  Scalar execution pays one Python/NumPy dispatch per gate
*per group*; at the widths the paper's device models (10–20 qubits)
that per-call overhead, not arithmetic, dominates.
:class:`BatchedStateVector` stacks the group states into a single
``(rows, 2^n)`` C-contiguous array so one kernel call advances every
row at once.

Kernel reuse, not kernel duplication
------------------------------------
A ``(rows, 2^n)`` C-ordered array flattens to the concatenation of its
rows, and the scalar 1q/2q kernels in
:class:`~repro.simulator.statevector.StateVector` only ever view the
state as ``reshape(-1, 2, low)`` / ``reshape(-1, 2, mid, 2, low)`` —
shapes that are agnostic to how much data sits in the leading axis.
Flattening the batch therefore makes the *unmodified* scalar kernels
operate on all rows simultaneously, with bit-identical per-row
arithmetic: the batched path runs the same branches, the same BLAS
calls on the same block shapes, the same elementwise multiplies.  Only
:meth:`apply_diagonal` (whose scalar form reshapes to ``(2,)*n``) needs
an explicit batch axis, and it shares the diagonal-table re-indexing
helper :func:`~repro.simulator.statevector.sorted_diagonal` with the
scalar kernel.

Measurement helpers are vectorized across rows:
:meth:`marginal_probability_one` returns a ``(rows,)`` vector,
:meth:`collapse` projects every row onto a per-row outcome, and
:meth:`cdfs` builds every row's sampling CDF in one pass — applying,
per row, the exact floating-point pipeline of the scalar
:meth:`~repro.simulator.statevector.StateVector.sample` fast path so a
``searchsorted`` against ``cdfs()[i]`` reproduces the scalar engine's
outcomes (and consumed RNG stream) bit for bit.

Rows that must diverge from the batch — error injection, per-group
sampling oddities — drop back to the scalar path through
:meth:`row_view`/:meth:`store_row`: a zero-copy
:class:`~repro.simulator.statevector.StateVector` alias of one row,
with an explicit write-back for scalar kernels that rebind their
buffer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import SimulationError
from repro.simulator.statevector import (
    DENSE_QUBIT_LIMIT,
    StateVector,
    placement_permutation,
    permutation_transpose_order,
    sorted_diagonal,
)
from repro.utils.rng import RandomState, as_rng


class BatchedStateVector:
    """A stack of ``rows`` independent n-qubit pure states.

    Rows are created in ``|0…0⟩`` unless an explicit ``(rows, 2^n)``
    amplitude array is given.
    """

    def __init__(
        self,
        num_qubits: int,
        rows: int,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if num_qubits < 1:
            raise SimulationError("state needs at least one qubit")
        if num_qubits > DENSE_QUBIT_LIMIT:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the dense-state limit "
                f"({DENSE_QUBIT_LIMIT})"
            )
        if rows < 1:
            raise SimulationError("batch needs at least one row")
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros((rows, dim), dtype=complex)
            self._data[:, 0] = 1.0
        else:
            arr = np.asarray(data, dtype=complex)
            if arr.shape != (rows, dim):
                raise SimulationError(
                    f"batch for {rows}×{num_qubits} qubits must have shape "
                    f"({rows}, {dim}), got {arr.shape}"
                )
            self._data = np.ascontiguousarray(arr).copy()

    # -- basic accessors ------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The ``(rows, 2^n)`` amplitude array in canonical qubit order
        (a live view; any pending remap is unwound first)."""
        self.unwind_remap()
        return self._data

    @property
    def rows(self) -> int:
        """Number of stacked states."""
        return self._data.shape[0]

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2^n`` of each row."""
        return self._data.shape[1]

    @property
    def use_fast_kernels(self) -> bool:
        """Mirrors the scalar dispatch switch (class-level on
        :class:`StateVector`), so toggling the scalar baseline also
        steers the batch."""
        return StateVector.use_fast_kernels

    def copy(self) -> "BatchedStateVector":
        dup = BatchedStateVector.__new__(BatchedStateVector)
        dup.num_qubits = self.num_qubits
        dup._data = self._data.copy()
        dup._perm = self._perm
        return dup

    def narrow(self, rows: int) -> "BatchedStateVector":
        """A zero-copy view of the first *rows* rows.

        In-place kernels on the view mutate this batch; kernels that
        internally allocate copy their result back into the shared
        buffer, so the alias never goes stale.  The view starts in the
        canonical layout (any pending remap on this batch is unwound
        first): remaps applied *through* the view permute the shared
        buffer rows, so the blocked batch walk unwinds the view before
        handing rows back.
        """
        if not 1 <= rows <= self.rows:
            raise SimulationError(
                f"cannot narrow {self.rows}-row batch to {rows} rows"
            )
        self.unwind_remap()
        dup = BatchedStateVector.__new__(BatchedStateVector)
        dup.num_qubits = self.num_qubits
        dup._data = self._data[:rows]
        return dup

    # -- lazy qubit remap -----------------------------------------------------

    #: Logical→physical qubit permutation shared by every row, or
    #: ``None`` when canonical — the batch analogue of
    #: :attr:`StateVector._perm`, moved by the blocked sweep executor
    #: and unwound at every row-interop / measurement boundary.
    _perm = None

    def remap_low(self, qubits, tile_qubits: int) -> None:
        """Place the listed logical qubits below *tile_qubits* in every
        row (same moves as :meth:`StateVector.remap_low`)."""
        target = placement_permutation(
            self._perm, qubits, tile_qubits, self.num_qubits
        )
        if target is not None:
            self._apply_permutation(target)

    def unwind_remap(self) -> None:
        """Restore the canonical layout (a no-op when already canonical)."""
        if self._perm is not None:
            self._apply_permutation(range(self.num_qubits))

    def _apply_permutation(self, new_perm) -> None:
        n = self.num_qubits
        old = self._perm if self._perm is not None else tuple(range(n))
        new = tuple(new_perm)
        identity = tuple(range(n))
        if new != old:
            order = permutation_transpose_order(old, new, n)
            tensor = self._data.reshape((self.rows,) + (2,) * n)
            moved = np.ascontiguousarray(
                tensor.transpose((0,) + tuple(a + 1 for a in order))
            )
            # Write back in place — never rebind: narrow()/row_view()
            # aliases share this buffer and must not go stale.
            self._data[...] = moved.reshape(self._data.shape)
        self._perm = None if new == identity else new

    def _physical(self, qubits):
        """Translate logical operands into the current physical layout."""
        perm = self._perm
        if perm is None:
            return qubits
        return [perm[q] if 0 <= q < len(perm) else q for q in qubits]

    # -- scalar interop -------------------------------------------------------

    def set_row(self, row: int, amplitudes: np.ndarray) -> None:
        """Overwrite one row with a copy of *amplitudes* (canonical
        layout; any pending remap is unwound first)."""
        self.unwind_remap()
        self._data[row] = np.asarray(amplitudes, dtype=complex).reshape(-1)

    def row_view(self, row: int) -> StateVector:
        """A scalar :class:`StateVector` aliasing one row's memory.

        In-place scalar kernels mutate the batch directly.  Kernels
        that rebind their buffer (the wide-``low`` matmul and qubit-0
        einsum branches, the generic fallback) leave the alias pointing
        at fresh memory — callers that mutate through the view must
        finish with :meth:`store_row`, which writes back if (and only
        if) the alias was rebound.  The alias is canonical: any pending
        batch remap is unwound first.
        """
        self.unwind_remap()
        sv = StateVector.__new__(StateVector)
        sv.num_qubits = self.num_qubits
        sv._data = self._data[row]
        return sv

    def store_row(self, row: int, sv: StateVector) -> None:
        """Write a (possibly rebound) row alias back into the batch."""
        target = self._data[row]
        if not np.shares_memory(sv._data, target):
            target[...] = sv._data

    # -- gate application -----------------------------------------------------

    def _apply_flat(self, op) -> None:
        """Run a scalar kernel over the flattened ``rows·2^n`` buffer.

        The scalar 1q/2q kernels view the state as ``(-1, 2, low)`` /
        ``(-1, 2, mid, 2, low)``, so the stacked rows ride along in the
        leading axis with per-row arithmetic identical to the scalar
        engine.  Kernels that rebind ``_data`` (matmul/einsum branches)
        are copied back into the original buffer so outside views stay
        valid.
        """
        sv = StateVector.__new__(StateVector)
        sv.num_qubits = self.num_qubits
        flat = self._data.reshape(-1)
        sv._data = flat
        op(sv)
        if sv._data is not flat:
            self._data[...] = sv._data.reshape(self._data.shape)

    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedStateVector":
        """Apply a ``2^k × 2^k`` operator to *qubits* of **every** row.

        One- and two-qubit operators run through the scalar fast
        kernels on the flattened batch (one call for all rows); larger
        operators fall back to the per-row generic contraction.
        """
        matrix = np.asarray(matrix, dtype=complex)
        qubits = self._physical(qubits)
        k = len(qubits)
        if self.use_fast_kernels and k <= 2:
            self._apply_flat(lambda sv: sv.apply_matrix(matrix, qubits))
            return self
        for row in range(self.rows):
            sv = self._raw_row_view(row)
            sv.apply_matrix(matrix, qubits)
            self.store_row(row, sv)
        return self

    def _raw_row_view(self, row: int) -> StateVector:
        """Row alias in the *current physical* layout (no unwind) — the
        internal form behind already-translated per-row kernels."""
        sv = StateVector.__new__(StateVector)
        sv.num_qubits = self.num_qubits
        sv._data = self._data[row]
        return sv

    def apply_diagonal(
        self, diagonal: np.ndarray, qubits: Sequence[int]
    ) -> "BatchedStateVector":
        """Apply a ``2^k``-entry diagonal table (e.g. a fused
        diagonal-run table from
        :func:`~repro.simulator.engines.dense.plan_diagonal_fusion`) to
        every row in one broadcast multiply."""
        diag, sorted_qs = sorted_diagonal(
            diagonal, self._physical(qubits), self.num_qubits
        )
        n = self.num_qubits
        shape = [1] * n
        for q in sorted_qs:
            shape[n - 1 - q] = 2
        tensor = self._data.reshape((self.rows,) + (2,) * n)
        tensor *= diag.reshape([1] + shape)
        return self

    # -- measurement ----------------------------------------------------------

    def norms(self) -> np.ndarray:
        """Per-row Euclidean norms, shape ``(rows,)``."""
        self.unwind_remap()
        return np.linalg.norm(self._data, axis=1)

    def probabilities(self) -> np.ndarray:
        """Per-row basis probabilities, shape ``(rows, 2^n)``."""
        self.unwind_remap()
        return np.abs(self._data) ** 2

    def marginal_probability_one(self, qubit: int) -> np.ndarray:
        """``P(qubit = 1)`` for every row, shape ``(rows,)``."""
        self.unwind_remap()
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit state"
            )
        ones = self._data.reshape(self.rows, -1, 2, 1 << qubit)[:, :, 1, :]
        flat = ones.reshape(self.rows, -1)
        return np.einsum("ri,ri->r", flat.conj(), flat).real

    def collapse(
        self, qubit: int, outcomes: Union[int, Sequence[int], np.ndarray]
    ) -> np.ndarray:
        """Project *qubit* of each row onto its entry of *outcomes* and
        renormalize.  Returns the per-row pre-collapse probabilities.

        *outcomes* broadcasts: a scalar applies one outcome to every
        row; a length-``rows`` sequence assigns per-row outcomes.
        """
        want = np.broadcast_to(np.asarray(outcomes, dtype=np.int64), (self.rows,))
        p1 = self.marginal_probability_one(qubit)
        prob = np.where(want == 1, p1, 1.0 - p1)
        if np.any(prob < 1e-15):
            bad = int(np.argmin(prob))
            raise SimulationError(
                f"cannot collapse qubit {qubit} of row {bad} onto impossible "
                f"outcome {int(want[bad])}"
            )
        view = self._data.reshape(self.rows, -1, 2, 1 << qubit)
        ones = want == 1
        view[ones, :, 0, :] = 0.0
        view[~ones, :, 1, :] = 0.0
        self._data *= (1.0 / np.sqrt(prob))[:, None]
        return prob

    def cdfs(self) -> np.ndarray:
        """Every row's sampling CDF in one vectorized pass.

        Row *i* of the result equals the CDF the scalar
        :meth:`StateVector.sample` fast path would build for that row
        (normalize, row-wise ``cumsum``, divide by the last entry), so
        ``searchsorted(cdfs()[i], rng.random(shots), side="right")``
        reproduces the scalar engine's outcomes bit for bit from the
        same stream.
        """
        probs = self.probabilities()
        probs /= probs.sum(axis=1, keepdims=True)
        cdf = np.cumsum(probs, axis=1)
        cdf /= cdf[:, -1:]
        return cdf

    def sample(
        self,
        shots: int,
        rng: RandomState = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Draw *shots* samples from every row.

        Returns a ``(rows, shots, k)`` uint8 bit array.  The CDFs are
        built vectorized across rows; the uniforms are drawn row by row
        in row order, so row *i*'s outcomes (and the consumed stream)
        match ``row_view(i).sample(shots, rng, qubits)`` exactly.
        """
        r = as_rng(rng)
        cdf = self.cdfs()
        qs = (
            np.arange(self.num_qubits, dtype=np.int64)
            if qubits is None
            else np.asarray(list(qubits), dtype=np.int64)
        )
        out = np.empty((self.rows, int(shots), qs.size), dtype=np.uint8)
        for row in range(self.rows):
            u = r.random(int(shots))
            outcomes = np.searchsorted(cdf[row], u, side="right")
            out[row] = ((outcomes[:, None] >> qs[None, :]) & 1).astype(np.uint8)
        return out

    def __repr__(self) -> str:
        return (
            f"<BatchedStateVector {self.rows}×{self.num_qubits} qubits>"
        )


__all__ = ["BatchedStateVector"]
