"""Exact density-matrix engine for small systems.

Used by the test suite to validate the trajectory sampler and the
Pauli-twirl approximation against exact open-system evolution.  The
``2^n × 2^n`` density matrix limits this engine to ~8 qubits, which is
plenty for validation (the 20-qubit production path uses trajectories).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.simulator.channels import KrausChannel
from repro.simulator.noise import NoiseModel
from repro.simulator.statevector import StateVector, _embed


class DensityMatrix:
    """A mutable n-qubit mixed state ρ."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 1:
            raise SimulationError("state needs at least one qubit")
        if num_qubits > 10:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the density-matrix limit (10)"
            )
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros((dim, dim), dtype=complex)
            self._data[0, 0] = 1.0
        else:
            arr = np.asarray(data, dtype=complex)
            if arr.shape != (dim, dim):
                raise SimulationError(f"density matrix must be {dim}×{dim}")
            self._data = arr.copy()

    @classmethod
    def from_statevector(cls, state: StateVector) -> "DensityMatrix":
        """The pure-state density matrix ``|ψ⟩⟨ψ|``."""
        vec = state.data
        return cls(state.num_qubits, np.outer(vec, vec.conj()))

    @property
    def data(self) -> np.ndarray:
        """The density matrix (a live view; mutate with care)."""
        return self._data

    def trace(self) -> float:
        """``Tr ρ`` (1 for a normalized state)."""
        return float(np.real(np.trace(self._data)))

    def purity(self) -> float:
        """``Tr ρ²`` — 1 for pure states, ``1/2^n`` for the maximally mixed."""
        return float(np.real(np.trace(self._data @ self._data)))

    def apply_unitary(self, matrix: np.ndarray, qubits: Sequence[int]) -> "DensityMatrix":
        """Conjugate by a k-qubit unitary: ``ρ ← U ρ U†``."""
        full = _embed(np.asarray(matrix, dtype=complex), qubits, self.num_qubits)
        self._data = full @ self._data @ full.conj().T
        return self

    def apply_channel(self, channel: KrausChannel, qubits: Sequence[int]) -> "DensityMatrix":
        """Apply a CPTP channel: ``ρ ← Σ_k K_k ρ K_k†``."""
        out = np.zeros_like(self._data)
        for k in channel.operators:
            full = _embed(k, qubits, self.num_qubits)
            out += full @ self._data @ full.conj().T
        self._data = out
        return self

    def probabilities(self) -> np.ndarray:
        """Computational-basis probabilities (the clipped diagonal)."""
        return np.real(np.diag(self._data)).clip(min=0.0)

    def fidelity_pure(self, state: StateVector) -> float:
        """``⟨ψ|ρ|ψ⟩`` against a pure reference state."""
        vec = state.data
        return float(np.real(vec.conj() @ (self._data @ vec)))

    def expectation(self, operator: np.ndarray) -> float:
        """``Tr(ρ A)`` for a dense operator *A*."""
        return float(np.real(np.trace(self._data @ operator)))

    def __repr__(self) -> str:
        return (
            f"<DensityMatrix {self.num_qubits} qubits, tr {self.trace():.6f}, "
            f"purity {self.purity():.6f}>"
        )


def simulate_density(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel] = None,
    *,
    exact_channels: Optional[dict] = None,
) -> DensityMatrix:
    """Exact evolution of *circuit* under a noise model.

    Stochastic :class:`~repro.simulator.noise.QuantumError` events are
    expanded into their exact mixture channels.  *exact_channels* may map
    ``(gate_name, qubits)`` to a :class:`KrausChannel` to override the
    twirled form with an exact channel (used by validation tests).

    Measurements are ignored (read probabilities off the final ρ);
    resets are applied as the exact reset channel.
    """
    from repro.simulator.channels import PAULI_MATRICES

    rho = DensityMatrix(circuit.num_qubits)
    for inst in circuit:
        if inst.name in ("barrier", "delay", "measure", "id"):
            pass
        elif inst.name == "reset":
            _apply_reset(rho, inst.qubits[0])
            continue
        else:
            rho.apply_unitary(inst.matrix(), inst.qubits)
        if noise is None:
            continue
        override = None
        if exact_channels is not None:
            override = exact_channels.get((inst.name, tuple(inst.qubits)))
        if override is not None:
            rho.apply_channel(override, inst.qubits)
            continue
        err = noise.error_for(inst.name, inst.qubits)
        if err is None:
            continue
        # Expand the stochastic error into an exact mixture.
        residual = 1.0 - err.total_probability
        acc = residual * rho.data
        for term in err.terms:
            branch = DensityMatrix(rho.num_qubits, rho.data)
            if term.kind == "pauli":
                for offset, label in enumerate(term.pauli.upper()):
                    if label == "I":
                        continue
                    branch.apply_unitary(PAULI_MATRICES[label], [inst.qubits[offset]])
            else:
                _apply_reset(branch, inst.qubits[term.reset_operand])
            acc = acc + term.probability * branch.data
        rho._data = acc
    return rho


def _apply_reset(rho: DensityMatrix, qubit: int) -> None:
    """Exact reset-to-|0⟩ channel: K0 = |0⟩⟨0|, K1 = |0⟩⟨1|."""
    k0 = np.array([[1, 0], [0, 0]], dtype=complex)
    k1 = np.array([[0, 1], [0, 0]], dtype=complex)
    rho.apply_channel(KrausChannel((k0, k1), name="reset"), [qubit])


__all__ = ["DensityMatrix", "simulate_density"]
