"""Stochastic (trajectory-friendly) noise model.

The device-scale sampler cannot afford density matrices at 20 qubits, so
all executor noise is expressed as *stochastic error events*: after a
noisy operation, with some probability a Pauli string is injected or a
qubit is reset.  This is the Pauli-twirl approximation of the exact
channels in :mod:`repro.simulator.channels`; the test suite validates
the approximation against exact density-matrix evolution on small
systems.

A :class:`NoiseModel` maps operations to :class:`QuantumError` instances
and qubits to :class:`ReadoutError` confusion matrices, and is exactly
the artifact the device's calibration state compiles into (see
:mod:`repro.qpu.device`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NoiseModelError
from repro.simulator.channels import thermal_relaxation_twirl
from repro.utils.rng import RandomState, as_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class ErrorTerm:
    """One possible error event.

    ``kind`` is ``"pauli"`` (inject ``pauli`` on the operand qubits,
    string index *i* acting on operand *i*) or ``"reset"`` (reset operand
    qubit ``reset_operand`` to ``|0⟩``).
    """

    kind: str
    probability: float
    pauli: str = ""
    reset_operand: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("pauli", "reset"):
            raise NoiseModelError(f"unknown error kind {self.kind!r}")
        check_probability(self.probability, "error probability")
        if self.kind == "pauli":
            if not self.pauli or set(self.pauli.upper()) - set("IXYZ"):
                raise NoiseModelError(f"invalid Pauli string {self.pauli!r}")


class QuantumError:
    """A stochastic error: a distribution over :class:`ErrorTerm` events.

    The identity event carries probability ``1 − Σ term probabilities``.
    """

    def __init__(self, terms: Sequence[ErrorTerm]):
        total = sum(t.probability for t in terms)
        if total > 1.0 + 1e-9:
            raise NoiseModelError(f"error probabilities sum to {total:g} > 1")
        self.terms: Tuple[ErrorTerm, ...] = tuple(t for t in terms if t.probability > 0)
        # Cumulative distribution, precomputed once: sample_many runs per
        # noisy op per sampling call, and the term list is immutable.
        self._cumulative = np.cumsum(
            np.array([t.probability for t in self.terms], dtype=float)
        )

    @property
    def total_probability(self) -> float:
        """Probability that *any* error event fires."""
        return min(1.0, sum(t.probability for t in self.terms))

    def sample_many(self, shots: int, rng: RandomState = None) -> np.ndarray:
        """Vectorized sampling: returns an int array of length *shots*
        where ``-1`` means "no error" and ``k ≥ 0`` indexes ``terms[k]``."""
        r = as_rng(rng)
        u = r.random(int(shots))
        idx = np.searchsorted(self._cumulative, u, side="right")
        out = np.where(idx < len(self.terms), idx, -1)
        return out.astype(np.int64)

    def compose(self, other: "QuantumError") -> "QuantumError":
        """First-order composition: concatenate event lists (valid for the
        small probabilities this stack operates at; double events are
        O(p²) and neglected, as in standard trajectory samplers)."""
        return QuantumError(list(self.terms) + list(other.terms))

    def scaled(self, factor: float) -> "QuantumError":
        """All event probabilities multiplied by *factor* (clipped to 1)."""
        return QuantumError(
            [
                ErrorTerm(t.kind, min(1.0, t.probability * factor), t.pauli, t.reset_operand)
                for t in self.terms
            ]
        )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{t.pauli if t.kind == 'pauli' else f'reset[{t.reset_operand}]'}:"
            f"{t.probability:.2e}"
            for t in self.terms
        )
        return f"QuantumError({body})"


# -- constructors -------------------------------------------------------------


def pauli_error(pairs: Sequence[Tuple[str, float]]) -> QuantumError:
    """Error from explicit ``(pauli_string, probability)`` pairs."""
    return QuantumError(
        [ErrorTerm("pauli", p, pauli=s.upper()) for s, p in pairs if set(s.upper()) != {"I"}]
    )


def depolarizing_error(p: float, num_qubits: int = 1) -> QuantumError:
    """Uniform depolarizing: probability *p* split over non-identity Paulis."""
    check_probability(p, "p")
    labels: List[str] = [""]
    for _ in range(num_qubits):
        labels = [lbl + ch for lbl in labels for ch in "IXYZ"]
    non_identity = [lbl for lbl in labels if set(lbl) != {"I"}]
    weight = p / len(non_identity)
    return pauli_error([(lbl, weight) for lbl in non_identity])


def thermal_relaxation_error(
    t1: float, t2: float, duration: float, operand: int = 0
) -> QuantumError:
    """Pauli/reset-twirled thermal relaxation on one operand qubit."""
    events = thermal_relaxation_twirl(t1, t2, duration)
    terms: List[ErrorTerm] = []
    for kind, prob in events:
        if prob <= 0:
            continue
        if kind == "reset":
            terms.append(ErrorTerm("reset", prob, reset_operand=operand))
        else:
            terms.append(ErrorTerm("pauli", prob, pauli=kind))
    # Pauli strings must span all operands; pad with identity around the
    # target operand when used on multi-qubit ops.
    return QuantumError(
        [
            t
            if t.kind == "reset"
            else ErrorTerm("pauli", t.probability, pauli=_pad(t.pauli, operand), reset_operand=0)
            for t in terms
        ]
    )


def _pad(pauli: str, operand: int) -> str:
    return "I" * operand + pauli


@dataclass(frozen=True)
class ReadoutError:
    """Asymmetric single-qubit readout confusion.

    ``p_meas1_given0`` = P(read 1 | prepared 0), ``p_meas0_given1`` =
    P(read 0 | prepared 1).  Transmon readout is typically asymmetric
    (|1⟩ decays during the readout pulse), so the two are independent.
    """

    p_meas1_given0: float
    p_meas0_given1: float

    def __post_init__(self) -> None:
        check_probability(self.p_meas1_given0, "p_meas1_given0")
        check_probability(self.p_meas0_given1, "p_meas0_given1")

    @property
    def fidelity(self) -> float:
        """Mean assignment fidelity ``1 − (ε₀ + ε₁)/2``."""
        return 1.0 - 0.5 * (self.p_meas1_given0 + self.p_meas0_given1)

    def confusion_matrix(self) -> np.ndarray:
        """``M[measured, true]`` stochastic matrix."""
        e0, e1 = self.p_meas1_given0, self.p_meas0_given1
        return np.array([[1 - e0, e1], [e0, 1 - e1]], dtype=float)

    def apply_to_bits(self, bits: np.ndarray, rng: RandomState = None) -> np.ndarray:
        """Corrupt a column of measured bits in place-free fashion."""
        r = as_rng(rng)
        bits = np.asarray(bits, dtype=np.uint8)
        flips0 = (bits == 0) & (r.random(bits.shape) < self.p_meas1_given0)
        flips1 = (bits == 1) & (r.random(bits.shape) < self.p_meas0_given1)
        return bits ^ (flips0 | flips1).astype(np.uint8)


class NoiseModel:
    """Operation-level stochastic noise plus per-qubit readout confusion.

    Errors attach to ``(gate_name, qubits)`` with two fallbacks: an
    all-qubit default per gate name, then nothing.  This mirrors how a
    calibration snapshot describes a device: each gate on each
    qubit/coupler has its own error rate.
    """

    def __init__(self) -> None:
        self._local: Dict[Tuple[str, Tuple[int, ...]], QuantumError] = {}
        self._default: Dict[str, QuantumError] = {}
        self._readout: Dict[int, ReadoutError] = {}

    # -- registration ---------------------------------------------------------

    def add_gate_error(
        self,
        error: QuantumError,
        gate_name: str,
        qubits: Optional[Sequence[int]] = None,
    ) -> "NoiseModel":
        """Attach *error* to *gate_name*, optionally only on *qubits*."""
        if qubits is None:
            if gate_name in self._default:
                self._default[gate_name] = self._default[gate_name].compose(error)
            else:
                self._default[gate_name] = error
        else:
            key = (gate_name, tuple(int(q) for q in qubits))
            if key in self._local:
                self._local[key] = self._local[key].compose(error)
            else:
                self._local[key] = error
        return self

    def add_readout_error(self, error: ReadoutError, qubit: int) -> "NoiseModel":
        """Attach a readout confusion matrix to *qubit* (replaces any prior)."""
        self._readout[int(qubit)] = error
        return self

    # -- queries -------------------------------------------------------------

    def error_for(self, gate_name: str, qubits: Sequence[int]) -> Optional[QuantumError]:
        """The error attached to this specific operation, if any.

        For symmetric two-qubit gates both operand orders are checked.
        """
        key = (gate_name, tuple(int(q) for q in qubits))
        if key in self._local:
            return self._local[key]
        if len(qubits) == 2:
            rev = (gate_name, (int(qubits[1]), int(qubits[0])))
            if rev in self._local:
                return self._local[rev]
        return self._default.get(gate_name)

    def readout_for(self, qubit: int) -> Optional[ReadoutError]:
        """The readout error registered for *qubit*, if any."""
        return self._readout.get(int(qubit))

    @property
    def noisy_gates(self) -> frozenset:
        """Gate mnemonics that carry at least one registered error."""
        names = {g for g, _ in self._local} | set(self._default)
        return frozenset(names)

    def is_trivial(self) -> bool:
        """True when the model contains no errors at all (ideal device)."""
        return not (self._local or self._default or self._readout)

    def __repr__(self) -> str:
        return (
            f"<NoiseModel {len(self._local)} local errors, "
            f"{len(self._default)} defaults, {len(self._readout)} readout>"
        )


__all__ = [
    "ErrorTerm",
    "QuantumError",
    "pauli_error",
    "depolarizing_error",
    "thermal_relaxation_error",
    "ReadoutError",
    "NoiseModel",
]
