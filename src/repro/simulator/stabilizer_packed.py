"""Bit-packed word-parallel stabilizer tableau for 1000+ qubit sampling.

The uint8 :class:`~repro.simulator.stabilizer.Tableau` stores one bit per
byte, so every conjugation, ``rowsum`` phase walk, and
:class:`~repro.simulator.stabilizer.CosetSupport` elimination moves 8×
more memory than the information content and does byte-wise boolean
algebra.  :class:`PackedTableau` is the same Aaronson–Gottesman state in
two bit-packed views, each chosen for the operations that dominate it:

**Column words (gate axis).**  Each tableau *column* (one qubit's X or Z
bits across all ``2n`` rows) is a single arbitrary-precision integer —
bit *i* of ``_xc[q]`` is ``x[i, q]``.  A gate conjugation touches one or
two columns, so H/S/SDG/X/Y/Z/CX/CZ/SWAP each collapse to a handful of
word-wise XOR/AND/shift operations on ``2n``-bit words (CPython big-int
bitwise ops run as tight C loops over 30-bit limbs), with none of the
per-call dispatch overhead a ``(2n,)`` numpy column op pays.  This is
what makes trajectory *replay* — the grouped sampler's dominant cost —
word-parallel.

**Row words (algebra axis).**  Row-wise machinery (the ``rowsum`` phase
walk, measurement reduction, Pauli expectations, and the coset
factorization) views the same state as ``(2n, W)`` ``np.uint64`` arrays
with ``W = ceil(n/64)`` words per row.  Phase accumulation — the mod-4
sum of Aaronson–Gottesman ``g`` exponents — is evaluated with a
vectorized popcount (:func:`g4_words`, via ``np.bitwise_count``, with a
byte-LUT fallback on NumPy < 2.0) instead
of per-qubit integer arithmetic, and :class:`PackedCosetSupport` runs
the Gaussian elimination with word-wide row XORs, turning the ``O(n³)``
bit-matrix factorization into ``O(n³/64)`` word ops.  The row view is
derived from the column words on demand (one ``O(n²/8)``-byte
transpose, consumed once per factorization or measurement reduction —
deliberately not cached, so gate conjugations never pay an invalidation
store).

Equivalence contract
--------------------
``PackedTableau`` is *bit-identical* in behaviour to the uint8 tableau:
identical row phases after any gate/injection sequence, identical
measurement outcomes and RNG consumption, and an identical coset
factorization (same pivot choices, same basis order), so seeded sampling
produces the same bits from either representation —
``tests/test_packed_tableau.py`` pins this property.  Conversion runs
through :func:`pack_tableau` / :meth:`PackedTableau.unpack`; the
exponential-cost conversions (:meth:`coset_amplitudes`,
:meth:`to_statevector`, :meth:`probabilities`) delegate to the unpacked
form, which is exact and only legal at widths where the uint8 cost is
irrelevant anyway.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Instruction
from repro.circuits.gates import UNITARY_NOOPS as _UNITARY_NOOPS
from repro.errors import SimulationError
from repro.simulator.stabilizer import _EXACT_COSET_BITS, Tableau
from repro.utils.rng import RandomState, as_rng

#: Explicit little-endian 64-bit word dtype: byte *b* of a word holds
#: bits ``8b..8b+7``, so ``packbits(bitorder="little")`` output viewed as
#: this dtype gives "bit *j* of word *w* ⇔ column ``64w + j``".
_U64 = np.dtype("<u8")

if hasattr(np, "bitwise_count"):

    def _popcount_last_axis(words: np.ndarray) -> np.ndarray:
        """Per-row popcount sum over the trailing word axis
        (``np.bitwise_count`` fast path, NumPy ≥ 2.0)."""
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)

else:  # pragma: no cover - exercised via the explicit LUT test
    _POPCOUNT_LUT = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )

    def _popcount_last_axis(words: np.ndarray) -> np.ndarray:
        """Byte-LUT fallback for NumPy builds without ``bitwise_count``
        (< 2.0): same trailing-axis popcount sums, ~3× slower — the
        packed tableau stays available rather than failing deep inside
        sampling."""
        as_bytes = (
            np.ascontiguousarray(words)
            .view(np.uint8)
            .reshape(words.shape[:-1] + (-1,))
        )
        return _POPCOUNT_LUT[as_bytes].sum(axis=-1, dtype=np.int64)


def _popcount_last_axis_lut(words: np.ndarray) -> np.ndarray:
    """The LUT fallback, always available (the fast-path parity test
    compares it against ``np.bitwise_count`` on NumPy ≥ 2.0)."""
    lut = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
    as_bytes = (
        np.ascontiguousarray(words).view(np.uint8).reshape(words.shape[:-1] + (-1,))
    )
    return lut[as_bytes].sum(axis=-1, dtype=np.int64)


def words_for(num_bits: int) -> int:
    """Number of 64-bit words needed to hold *num_bits* bits."""
    return (int(num_bits) + 63) >> 6


def pack_bit_matrix(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(m, k)`` 0/1 matrix into ``(m, ceil(k/64))`` uint64 words
    (little-endian within each word: bit *j* of word *w* is column
    ``64w + j``)."""
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    m, k = bits.shape
    w = words_for(k)
    if k != w * 64:
        padded = np.zeros((m, w * 64), dtype=np.uint8)
        padded[:, :k] = bits
        bits = padded
    packed = np.packbits(bits, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(_U64)


def unpack_bit_matrix(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bit_matrix`: ``(m, W)`` words → ``(m, num_bits)``
    0/1 uint8 matrix."""
    words = np.ascontiguousarray(words, dtype=_U64)
    m = words.shape[0]
    as_bytes = words.view(np.uint8).reshape(m, -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :num_bits]


def _int_from_bits(bits: np.ndarray) -> int:
    """0/1 vector → arbitrary-precision integer (bit *i* ⇔ ``bits[i]``)."""
    data = np.packbits(np.ascontiguousarray(bits, dtype=np.uint8), bitorder="little")
    return int.from_bytes(data.tobytes(), "little")


def _bits_of_int(value: int, num_bits: int) -> np.ndarray:
    """Arbitrary-precision integer → ``(num_bits,)`` 0/1 uint8 vector."""
    raw = value.to_bytes((num_bits + 7) // 8, "little")
    return np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")[
        :num_bits
    ]


def _words_of_int(value: int, num_bits: int) -> np.ndarray:
    """Arbitrary-precision integer → ``(words_for(num_bits),)`` uint64 words."""
    w = words_for(num_bits)
    raw = value.to_bytes(w * 8, "little")
    return np.frombuffer(raw, dtype=_U64).copy()


def g4_words(
    x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray
) -> np.ndarray:
    """Mod-4 sum of Aaronson–Gottesman ``g`` exponents over packed words.

    The word-parallel counterpart of summing
    :func:`repro.simulator.stabilizer._g4` along the qubit axis: inputs
    are uint64 bit-plane arrays broadcast against each other on their
    leading axes (last axis = words), and the result is the summed
    exponent of ``i`` reduced mod 4.  Positions contribute ``+1`` for
    the products XY, ZX, YZ and ``−1`` for XZ, ZY, YX; both masks are
    tallied with a vectorized popcount (``np.bitwise_count``).
    """
    not_x1, not_z1 = ~x1, ~z1
    not_x2, not_z2 = ~x2, ~z2
    plus = (
        (x1 & not_z1 & x2 & z2)
        | (not_x1 & z1 & x2 & not_z2)
        | (x1 & z1 & not_x2 & z2)
    )
    minus = (
        (x1 & not_z1 & not_x2 & z2)
        | (not_x1 & z1 & x2 & z2)
        | (x1 & z1 & x2 & not_z2)
    )
    return (_popcount_last_axis(plus) - _popcount_last_axis(minus)) % 4


def _NOOP_PROGRAM(tab: "PackedTableau") -> None:
    """Compiled program of a unitary no-op (barrier/delay/measure/id)."""


class PackedTableau:
    """A bit-packed n-qubit stabilizer state, behaviourally identical to
    :class:`~repro.simulator.stabilizer.Tableau`.

    Same public surface as the uint8 tableau (``apply`` /
    ``apply_instruction`` / ``apply_pauli`` / ``measure`` / ``reset`` /
    ``collapse`` / ``sample`` / ``expectation_pauli`` / conversion
    methods); the representation difference is invisible to every
    caller, including the RNG streams seeded runs consume.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise SimulationError("tableau needs at least one qubit")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        # Column words: bit i of _xc[q] is x[i, q]; destabilizers X_i,
        # stabilizers Z_i, exactly the |0…0⟩ layout of the uint8 tableau.
        self._xc: List[int] = [1 << q for q in range(n)]
        self._zc: List[int] = [1 << (n + q) for q in range(n)]
        self._r: int = 0
        self._mask: int = (1 << (2 * n)) - 1

    def copy(self) -> "PackedTableau":
        """An independent deep copy — two list copies plus one integer
        (the packed fork is ~8× lighter than the uint8 one)."""
        dup = PackedTableau.__new__(PackedTableau)
        dup.num_qubits = self.num_qubits
        dup._xc = list(self._xc)
        dup._zc = list(self._zc)
        dup._r = self._r
        dup._mask = self._mask
        return dup

    def _check_qubit(self, qubit: int) -> int:
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit tableau"
            )
        return int(qubit)

    # -- gate conjugations (whole-column big-int word ops) ---------------------

    def _h(self, q: int) -> None:
        xq = self._xc[q]
        zq = self._zc[q]
        self._r ^= xq & zq
        self._xc[q] = zq
        self._zc[q] = xq

    def _s(self, q: int) -> None:
        xq = self._xc[q]
        self._r ^= xq & self._zc[q]
        self._zc[q] ^= xq

    def _sdg(self, q: int) -> None:
        xq = self._xc[q]
        self._r ^= xq & (self._zc[q] ^ self._mask)
        self._zc[q] ^= xq

    def _x(self, q: int) -> None:
        self._r ^= self._zc[q]

    def _y(self, q: int) -> None:
        self._r ^= self._xc[q] ^ self._zc[q]

    def _z(self, q: int) -> None:
        self._r ^= self._xc[q]

    def _cx(self, control: int, target: int) -> None:
        xc = self._xc
        zc = self._zc
        xcc, xt = xc[control], xc[target]
        zcc, zt = zc[control], zc[target]
        self._r ^= xcc & zt & (xt ^ zcc ^ self._mask)
        xc[target] = xt ^ xcc
        zc[control] = zcc ^ zt

    def _cz(self, a: int, b: int) -> None:
        xc = self._xc
        zc = self._zc
        xa, xb = xc[a], xc[b]
        self._r ^= xa & xb & (zc[a] ^ zc[b])
        zc[a] ^= xb
        zc[b] ^= xa

    def _swap(self, a: int, b: int) -> None:
        xc = self._xc
        zc = self._zc
        xc[a], xc[b] = xc[b], xc[a]
        zc[a], zc[b] = zc[b], zc[a]

    _PRIMITIVES = {
        "h": _h,
        "s": _s,
        "sdg": _sdg,
        "x": _x,
        "y": _y,
        "z": _z,
        "cx": _cx,
        "cz": _cz,
        "swap": _swap,
    }

    def apply(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "PackedTableau":
        """Apply a library gate by mnemonic (must be Clifford; rotation
        gates qualify at multiples of π/2)."""
        from repro.circuits import gates as gate_lib

        prims = gate_lib.clifford_primitives(name, params)
        if prims is None:
            raise SimulationError(
                f"gate {name!r} with params {tuple(params)} is not Clifford; "
                "the tableau engine cannot apply it"
            )
        qs = [self._check_qubit(q) for q in qubits]
        for prim, slots in prims:
            PackedTableau._PRIMITIVES[prim](self, *(qs[i] for i in slots))
        return self

    @staticmethod
    def _compile_step(name: str, args):
        """One primitive as a direct closure ``step(tableau)`` — the
        conjugation body inlined over fixed operands, so replay pays a
        single call frame per primitive (no dispatch, no argument
        unpacking)."""
        if name == "cx":
            control, target = args

            def step(tab: "PackedTableau") -> None:
                xc = tab._xc
                zc = tab._zc
                xcc, xt = xc[control], xc[target]
                zcc, zt = zc[control], zc[target]
                tab._r ^= xcc & zt & (xt ^ zcc ^ tab._mask)
                xc[target] = xt ^ xcc
                zc[control] = zcc ^ zt

            return step
        if name == "cz":
            a, b = args

            def step(tab: "PackedTableau") -> None:
                xc = tab._xc
                zc = tab._zc
                xa, xb = xc[a], xc[b]
                tab._r ^= xa & xb & (zc[a] ^ zc[b])
                zc[a] ^= xb
                zc[b] ^= xa

            return step
        if name == "h":
            (q,) = args

            def step(tab: "PackedTableau") -> None:
                xq = tab._xc[q]
                zq = tab._zc[q]
                tab._r ^= xq & zq
                tab._xc[q] = zq
                tab._zc[q] = xq

            return step
        if name == "s":
            (q,) = args

            def step(tab: "PackedTableau") -> None:
                xq = tab._xc[q]
                tab._r ^= xq & tab._zc[q]
                tab._zc[q] ^= xq

            return step
        fn = PackedTableau._PRIMITIVES[name]
        if len(args) == 1:
            (a0,) = args
            return lambda tab: fn(tab, a0)
        a0, a1 = args
        return lambda tab: fn(tab, a0, a1)

    @staticmethod
    def _compile_program(prims, qs):
        """Compile a primitive decomposition into a single callable
        ``program(tableau)``.

        Nearly every Clifford library gate decomposes to one primitive,
        so the common case *is* the compiled step; composite gates chain
        their steps in a tuple loop.
        """
        steps = tuple(
            PackedTableau._compile_step(name, tuple(qs[i] for i in slots))
            for name, slots in prims
        )
        if len(steps) == 1:
            return steps[0]

        def run(tab: "PackedTableau") -> None:
            for step in steps:
                step(tab)

        return run

    def _compiled(self, instruction: Instruction):
        """The instruction's compiled primitive program.

        Memoized on the (immutable) instruction alongside its Clifford
        decomposition, so trajectory replays pay one dict lookup and one
        call per gate — the packed engine's hot path.
        """
        cached = instruction.__dict__.get("_packed_prims")
        if cached is None:
            if instruction.name in _UNITARY_NOOPS:
                # No-op-ness is folded into the compiled program so the
                # bulk replay loop never re-tests instruction names.
                cached = _NOOP_PROGRAM
            else:
                prims = instruction.clifford_primitives()
                if prims is None:
                    raise SimulationError(
                        f"instruction {instruction!r} is not Clifford; "
                        "route this circuit through the state-vector engine"
                    )
                qs = [self._check_qubit(q) for q in instruction.qubits]
                cached = PackedTableau._compile_program(prims, qs)
            object.__setattr__(instruction, "_packed_prims", cached)
        return cached

    def apply_instruction(self, instruction: Instruction) -> "PackedTableau":
        """Apply one circuit instruction (unitary Clifford gates only)."""
        self._compiled(instruction)(self)
        return self

    def apply_instructions(self, instructions: Sequence[Instruction]) -> "PackedTableau":
        """Apply a window of instructions (unitary no-ops skipped) — the
        bulk form :class:`~repro.simulator.engines.tableau.TableauEngine`
        drives replay through.

        This is the packed engine's hottest loop (trajectory replay in
        the grouped sampler): one attribute load and one call per
        instruction — no-op skipping and operand resolution are folded
        into the memoized compiled program.
        """
        compiled = self._compiled
        for inst in instructions:
            try:
                prog = inst._packed_prims
            except AttributeError:
                prog = compiled(inst)
            prog(self)
        return self

    def apply_pauli(self, pauli: str, qubits: Sequence[int]) -> "PackedTableau":
        """Inject a Pauli string — phase-only (one word XOR per letter),
        so error trajectories keep sharing one coset factorization.
        This is the grouped sampler's injection hot path, hence the
        direct branches instead of primitive dispatch."""
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        r = self._r
        for label, q in zip(pauli.upper(), qubits):
            if label == "I":
                continue
            q = self._check_qubit(q)
            if label == "X":
                r ^= self._zc[q]
            elif label == "Z":
                r ^= self._xc[q]
            elif label == "Y":
                r ^= self._xc[q] ^ self._zc[q]
            else:
                raise SimulationError(f"unknown Pauli label {label!r}")
        self._r = r
        return self

    # -- packed row view -------------------------------------------------------

    def _packed_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(2n, W)`` uint64 row view of the X and Z blocks.

        Derived fresh from the column words by one byte-level transpose
        (``O(n²/8)`` bytes).  Not cached: the row view is consumed once
        per coset factorization / measurement reduction, whereas caching
        it would put an invalidation store into every gate conjugation —
        the hottest loop in the engine.  Callers fetch it once and pass
        it through the phase-walk helpers.
        """
        n = self.num_qubits
        rbytes = (2 * n + 7) // 8
        xbuf = b"".join(c.to_bytes(rbytes, "little") for c in self._xc)
        zbuf = b"".join(c.to_bytes(rbytes, "little") for c in self._zc)
        cols = np.unpackbits(
            np.frombuffer(xbuf + zbuf, dtype=np.uint8).reshape(2 * n, rbytes),
            axis=1,
            bitorder="little",
        )[:, : 2 * n]
        xr = pack_bit_matrix(cols[:n].T)
        zr = pack_bit_matrix(cols[n:].T)
        return xr, zr

    def _set_from_rows(self, xr: np.ndarray, zr: np.ndarray) -> None:
        """Re-derive the column words after a row-domain mutation."""
        n = self.num_qubits
        xcols = np.packbits(
            np.ascontiguousarray(unpack_bit_matrix(xr, n).T), axis=1, bitorder="little"
        )
        zcols = np.packbits(
            np.ascontiguousarray(unpack_bit_matrix(zr, n).T), axis=1, bitorder="little"
        )
        self._xc = [int.from_bytes(xcols[q].tobytes(), "little") for q in range(n)]
        self._zc = [int.from_bytes(zcols[q].tobytes(), "little") for q in range(n)]

    def _signs_words(self) -> np.ndarray:
        """Stabilizer sign bits as ``(W,)`` uint64 words (read-only)."""
        n = self.num_qubits
        raw = (self._r >> n).to_bytes(words_for(n) * 8, "little")
        return np.frombuffer(raw, dtype=_U64)

    # -- row products (vectorized popcount phase walk) -------------------------

    def _rowsum_many_words(
        self,
        xr: np.ndarray,
        zr: np.ndarray,
        r_bits: np.ndarray,
        rows: np.ndarray,
        src: int,
    ) -> None:
        """``row_h ← row_src · row_h`` on the packed row view, phases via
        :func:`g4_words` — the word-parallel ``_rowsum_many``."""
        g = g4_words(xr[src][None, :], zr[src][None, :], xr[rows], zr[rows])
        phase = (2 * r_bits[rows].astype(np.int64) + 2 * int(r_bits[src]) + g) % 4
        r_bits[rows] = (phase >> 1).astype(np.uint8)
        xr[rows] ^= xr[src]
        zr[rows] ^= zr[src]

    def _accumulate_words(
        self,
        rows: Tuple[np.ndarray, np.ndarray],
        sx: np.ndarray,
        sz: np.ndarray,
        phase4: int,
        src: int,
    ) -> int:
        """Multiply scratch row ``(sx, sz, i^phase4)`` by tableau row
        *src* of the row view *rows* (packed counterpart of
        ``Tableau._accumulate``)."""
        xr, zr = rows
        g = int(g4_words(xr[src], zr[src], sx, sz))
        phase4 = (phase4 + 2 * ((self._r >> src) & 1) + g) % 4
        sx ^= xr[src]
        sz ^= zr[src]
        return phase4

    # -- measurement -----------------------------------------------------------

    def _deterministic_outcome(self, qubit: int) -> int:
        n = self.num_qubits
        w = words_for(n)
        sx = np.zeros(w, dtype=_U64)
        sz = np.zeros(w, dtype=_U64)
        phase4 = 0
        destab = _bits_of_int(self._xc[qubit] & ((1 << n) - 1), n)
        hits = np.nonzero(destab)[0]
        if hits.size:
            rows = self._packed_rows()
            for i in hits:
                phase4 = self._accumulate_words(rows, sx, sz, phase4, n + int(i))
        if phase4 not in (0, 2):
            raise SimulationError("tableau corrupted: non-Hermitian Z product")
        return phase4 >> 1

    def marginal_probability_one(self, qubit: int) -> float:
        """``P(qubit = 1)`` — a single word test on the column int."""
        q = self._check_qubit(qubit)
        if self._xc[q] >> self.num_qubits:
            return 0.5
        return float(self._deterministic_outcome(q))

    def _collapse_random(self, qubit: int, outcome: int) -> None:
        n = self.num_qubits
        # _packed_rows returns freshly derived arrays, safe to mutate.
        xr, zr = self._packed_rows()
        r_bits = _bits_of_int(self._r, 2 * n)
        col = _bits_of_int(self._xc[qubit], 2 * n)
        p = n + int(np.nonzero(col[n:])[0][0])
        others = np.nonzero(col)[0]
        others = others[others != p]
        if others.size:
            self._rowsum_many_words(xr, zr, r_bits, others, p)
        xr[p - n] = xr[p]
        zr[p - n] = zr[p]
        r_bits[p - n] = r_bits[p]
        xr[p] = 0
        zr[p] = 0
        zr[p, qubit >> 6] = np.uint64(1 << (qubit & 63))
        r_bits[p] = np.uint8(outcome)
        self._set_from_rows(xr, zr)
        self._r = _int_from_bits(r_bits)

    def collapse(self, qubit: int, outcome: int) -> float:
        """Project *qubit* onto *outcome*; returns the pre-collapse
        probability of that outcome (raises if it is zero)."""
        q = self._check_qubit(qubit)
        if self._xc[q] >> self.num_qubits:
            self._collapse_random(q, int(outcome))
            return 0.5
        det = self._deterministic_outcome(q)
        if det != int(outcome):
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto impossible outcome {outcome}"
            )
        return 1.0

    def measure(self, qubit: int, rng: RandomState = None) -> int:
        """Projectively measure one qubit — one uniform draw always, the
        same RNG contract as the uint8 tableau and the dense engine."""
        q = self._check_qubit(qubit)
        u = as_rng(rng).random()
        if self._xc[q] >> self.num_qubits:
            outcome = 1 if u < 0.5 else 0
            self._collapse_random(q, outcome)
            return outcome
        return self._deterministic_outcome(q)

    def reset(self, qubit: int, rng: RandomState = None) -> "PackedTableau":
        """Measure-and-flip reset of one qubit to ``|0⟩``."""
        if self.measure(qubit, rng):
            self._x(self._check_qubit(qubit))
        return self

    # -- observables -----------------------------------------------------------

    def expectation_pauli(self, pauli: str, qubits: Sequence[int]) -> float:
        """``⟨ψ| P |ψ⟩`` — anticommutation tests and the destabilizer
        phase walk all run on packed words with vectorized popcounts."""
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        n = self.num_qubits
        w = words_for(n)
        px = np.zeros(w, dtype=_U64)
        pz = np.zeros(w, dtype=_U64)
        for label, q in zip(pauli.upper(), qubits):
            qi = self._check_qubit(q)
            bit = np.uint64(1 << (qi & 63))
            if label == "I":
                continue
            if label == "X":
                px[qi >> 6] ^= bit
            elif label == "Y":
                px[qi >> 6] ^= bit
                pz[qi >> 6] ^= bit
            elif label == "Z":
                pz[qi >> 6] ^= bit
            else:
                raise SimulationError(f"unknown Pauli label {label!r}")
        if not (px.any() or pz.any()):
            return 1.0
        xr, zr = self._packed_rows()
        anti_stab = _popcount_last_axis((xr[n:] & pz) ^ (zr[n:] & px)) & 1
        if anti_stab.any():
            return 0.0
        anti_destab = _popcount_last_axis((xr[:n] & pz) ^ (zr[:n] & px)) & 1
        sx = np.zeros(w, dtype=_U64)
        sz = np.zeros(w, dtype=_U64)
        phase4 = 0
        rows = (xr, zr)
        for i in np.nonzero(anti_destab)[0]:
            phase4 = self._accumulate_words(rows, sx, sz, phase4, n + int(i))
        if not (np.array_equal(sx, px) and np.array_equal(sz, pz)):
            raise SimulationError("tableau corrupted: Pauli reconstruction failed")
        if phase4 not in (0, 2):
            raise SimulationError("tableau corrupted: non-Hermitian stabilizer")
        return 1.0 if phase4 == 0 else -1.0

    def expectation_z(self, qubits: Sequence[int]) -> float:
        """Expectation of ``Z⊗…⊗Z`` on the listed qubits."""
        return self.expectation_pauli("Z" * len(qubits), qubits)

    # -- sampling --------------------------------------------------------------

    def coset_support(self) -> "PackedCosetSupport":
        """The coset factorization of this tableau's X/Z structure, in
        packed form (the polymorphic hook the engine layer shares with
        the uint8 tableau)."""
        return PackedCosetSupport(self)

    def sample(
        self,
        shots: int,
        rng: RandomState = None,
        qubits: Optional[Sequence[int]] = None,
        *,
        support: Optional["PackedCosetSupport"] = None,
    ) -> np.ndarray:
        """Draw *shots* computational-basis samples without collapsing.

        Identical contract, RNG consumption, and output bits as
        :meth:`Tableau.sample`: the coset walk happens on packed words
        (offset XOR basis-row XORs), and the final word rows unpack to
        the ``(shots, k)`` uint8 bit array in one vectorized pass.
        """
        r = as_rng(rng)
        n = self.num_qubits
        if support is None:
            support = PackedCosetSupport(self)
        c = support.offset_words(self._signs_words())
        k = support.dimension
        shots = int(shots)
        if k == 0:
            # Deterministic outcome — still consume one draw per shot to
            # stay stream-aligned with the dense engine's CDF inversion.
            r.random(shots)
            rows = np.broadcast_to(c, (shots, c.shape[0])).copy()
        else:
            if k <= _EXACT_COSET_BITS:
                # Same index arithmetic as the uint8 path; the explicit
                # clamp it carries is a no-op for u < 1 and k ≤ 48, so
                # outputs are identical without it.
                u = r.random(shots)
                j = (u * float(1 << k)).astype(np.int64)
                lam = ((j[:, None] >> support._lam_shifts[None, :]) & 1).astype(
                    np.uint8
                )
            else:
                lam = (r.random((shots, k)) < 0.5).astype(np.uint8)
            rows = np.broadcast_to(c, (shots, c.shape[0])).copy()
            basis = support.basis_words
            for i in range(k):
                on = lam[:, i].astype(bool)
                if on.any():
                    rows[on] ^= basis[i]
        bits = unpack_bit_matrix(rows, n)
        if qubits is None:
            return bits
        return bits[:, np.asarray(qubits, dtype=np.int64)]

    # -- conversion ------------------------------------------------------------

    def unpack(self) -> Tableau:
        """This state as a uint8 :class:`Tableau` (bit-for-bit equal)."""
        n = self.num_qubits
        xr, zr = self._packed_rows()
        tab = Tableau.__new__(Tableau)
        tab.num_qubits = n
        tab.x = unpack_bit_matrix(xr, n)
        tab.z = unpack_bit_matrix(zr, n)
        tab.r = _bits_of_int(self._r, 2 * n)
        return tab

    def coset_amplitudes(self, support=None) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse amplitude map ``(indices, amplitudes)`` of this state.

        Delegates to the unpacked enumeration (a packed *support* cannot
        seed it and is ignored): the ``O(2^k)`` amplitude walk dwarfs the
        one-off ``O(n²)`` unpack at any width where enumeration is legal
        (≤ 62 qubits), so the adapter keeps hybrid segment execution
        representation-agnostic without a second phase-walk codepath.
        """
        return self.unpack().coset_amplitudes()

    def to_statevector(self):
        """Dense conversion via the unpack adapter (≤ dense limit)."""
        return self.unpack().to_statevector()

    def probabilities(self) -> np.ndarray:
        """Dense ``2^n`` probability vector (validation only, n ≤ 16)."""
        return self.unpack().probabilities()

    def __repr__(self) -> str:
        return f"<PackedTableau {self.num_qubits} qubits>"


class PackedCosetSupport:
    """Word-parallel coset factorization of a packed tableau.

    The same two-stage Gaussian elimination as
    :class:`~repro.simulator.stabilizer.CosetSupport` — X-block reduction
    isolating the Z-only stabilizer subgroup, then the F₂ constraint
    solve — with every row a ``W = ceil(n/64)`` uint64 word vector:
    pivots are found by single-word bit tests, row eliminations are
    word-wide XORs, and the symbolic ``g``-phase bookkeeping runs through
    the popcount kernel (:func:`g4_words`).  Pivot choices follow the
    identical candidate order, so the factorization (and therefore every
    sampled bit) matches the uint8 implementation exactly.

    :meth:`offset_words` resolves the coset representative for a
    concrete packed sign vector in ``O(n²/64)`` word ops — shared, as in
    the unpacked form, by every trajectory that differs only by Pauli
    injections.
    """

    def __init__(self, tableau: PackedTableau) -> None:
        n = tableau.num_qubits
        self.num_qubits = n
        w = words_for(n)
        xr, zr = tableau._packed_rows()
        sx = xr[n:].copy()
        sz = zr[n:].copy()
        hist = pack_bit_matrix(np.eye(n, dtype=np.uint8))
        g4 = np.zeros(n, dtype=np.int64)
        used = np.zeros(n, dtype=bool)
        for col in range(n):
            shift = np.uint64(col & 63)
            colbits = ((sx[:, col >> 6] >> shift) & np.uint64(1)).astype(bool)
            cand = np.nonzero(colbits & ~used)[0]
            if cand.size == 0:
                continue
            p = int(cand[0])
            used[p] = True
            rows = cand[1:]
            if rows.size:
                g = g4_words(sx[p][None, :], sz[p][None, :], sx[rows], sz[rows])
                g4[rows] = (g4[rows] + g4[p] + g) % 4
                hist[rows] ^= hist[p]
                sx[rows] ^= sx[p]
                sz[rows] ^= sz[p]
        zonly = np.nonzero(~used)[0]
        if (g4[zonly] % 2).any():
            raise SimulationError("tableau corrupted: odd phase on Z-only row")
        A = sz[zonly].copy()
        b0 = ((g4[zonly] >> 1) % 2).astype(np.uint8)
        H = hist[zonly].copy()
        m = A.shape[0]
        pivots: List[int] = []
        row = 0
        for col in range(n):
            if row == m:
                break
            shift = np.uint64(col & 63)
            word = col >> 6
            sub = np.nonzero((A[row:, word] >> shift) & np.uint64(1))[0]
            if sub.size == 0:
                continue
            pr = row + int(sub[0])
            if pr != row:
                A[[row, pr]] = A[[pr, row]]
                b0[[row, pr]] = b0[[pr, row]]
                H[[row, pr]] = H[[pr, row]]
            others = np.nonzero((A[:, word] >> shift) & np.uint64(1))[0]
            others = others[others != row]
            if others.size:
                A[others] ^= A[row]
                b0[others] ^= b0[row]
                H[others] ^= H[row]
            pivots.append(col)
            row += 1
        if row != m:
            raise SimulationError("tableau corrupted: dependent stabilizers")
        self._pivot_cols = np.asarray(pivots, dtype=np.int64)
        # One-hot packed row per pivot column: offset() ORs the selected
        # rows in a single ufunc reduce (pivot columns are distinct, so
        # OR and XOR coincide).
        pivot_onehot = np.zeros((m, n), dtype=np.uint8)
        if m:
            pivot_onehot[np.arange(m), self._pivot_cols] = 1
        self._pivot_rows = pack_bit_matrix(pivot_onehot) if m else np.zeros(
            (0, w), dtype=_U64
        )
        self._b0 = b0
        self._b0_bool = b0.astype(bool)
        self._H = H
        free_cols = sorted(set(range(n)) - set(pivots))
        k = len(free_cols)
        # Same reduced descending-pivot basis as the unpacked support:
        # built bit-wise (O(k·n) bytes, once) and packed for the sampler.
        basis_bits = np.zeros((k, n), dtype=np.uint8)
        for j, f in enumerate(reversed(free_cols)):
            basis_bits[j, f] = 1
            if m:
                col_f = (
                    (A[:, f >> 6] >> np.uint64(f & 63)) & np.uint64(1)
                ).astype(np.uint8)
                basis_bits[j, self._pivot_cols] = col_f
        self.basis_words = pack_bit_matrix(basis_bits) if k else np.zeros(
            (0, w), dtype=_U64
        )
        self._basis_pivots = np.asarray(free_cols[::-1], dtype=np.int64)
        self.dimension = k
        # Shift table for the exact-coset index → λ-bit expansion,
        # precomputed once so per-group sampling skips the arange.
        self._lam_shifts = np.arange(k - 1, -1, -1, dtype=np.int64)

    def offset_words(self, signs: np.ndarray) -> np.ndarray:
        """Reduced coset representative for packed stabilizer sign bits
        *signs*, as ``(W,)`` uint64 words (cf. ``CosetSupport.offset``)."""
        if not self._pivot_cols.size:
            return np.zeros(words_for(self.num_qubits), dtype=_U64)
        odd = (_popcount_last_axis(self._H & signs[None, :]) & 1).astype(bool)
        return np.bitwise_or.reduce(
            self._pivot_rows[self._b0_bool ^ odd],
            axis=0,
            initial=np.uint64(0),
        )


def pack_tableau(tableau: Tableau) -> PackedTableau:
    """A :class:`PackedTableau` bit-for-bit equal to the uint8 *tableau*."""
    n = tableau.num_qubits
    packed = PackedTableau.__new__(PackedTableau)
    packed.num_qubits = n
    xcols = np.packbits(
        np.ascontiguousarray(tableau.x.T), axis=1, bitorder="little"
    )
    zcols = np.packbits(
        np.ascontiguousarray(tableau.z.T), axis=1, bitorder="little"
    )
    packed._xc = [int.from_bytes(xcols[q].tobytes(), "little") for q in range(n)]
    packed._zc = [int.from_bytes(zcols[q].tobytes(), "little") for q in range(n)]
    packed._r = _int_from_bits(tableau.r)
    packed._mask = (1 << (2 * n)) - 1
    return packed


__all__ = [
    "PackedTableau",
    "PackedCosetSupport",
    "pack_tableau",
    "g4_words",
    "pack_bit_matrix",
    "unpack_bit_matrix",
    "words_for",
]
