"""Process-pool shot sharding for the trajectory sampler.

The batched grouped walk removes per-group dispatch overhead inside one
process; this layer scales *across* processes: a shot request is split
into fixed-size **blocks**, each block runs the classic sampling driver
(:func:`repro.simulator.sampler._sample_counts_single`) end to end, and
the per-block :class:`~repro.simulator.counts.Counts` fold together with
:meth:`Counts.merge`.

Reproducibility contract
------------------------
Block *i* draws from ``child_rng(seed, "shard", i)`` — the stable
SHA-256 seed derivation from :mod:`repro.utils.rng`, which depends only
on the seed and the block index, never on which process runs the block
or in what order blocks finish.  The block partition itself is a
function of ``(shots, block_shots)`` alone.  Consequently **any worker
count produces identical counts** — ``workers=4`` reproduces
``workers=1`` bit for bit — and a failed pool can always be re-run
inline.  The sharded stream intentionally differs from the
single-stream driver's draw order (that is what makes it splittable);
``engine_mode(workers=...)`` is documented as a semantics switch for
exactly this reason, and live generators are rejected because a shared
mutable stream cannot be split deterministically.

Clean-prefix sharing
--------------------
For dense-family routes the instructions before the first noisy op are
identical in every block and every trajectory group.  The parent
simulates that prefix **once**, publishes the amplitudes read-only via
:class:`multiprocessing.shared_memory.SharedMemory`, and each worker
resumes its grouped walk from the shared state instead of replaying the
prefix per block.  The inline (``workers=1``) path uses the same
precomputed prefix, so pooled and inline runs see bit-identical inputs.

Workers are forked (POSIX), so they inherit the parent's engine-mode
globals at pool creation; on platforms without ``fork`` the driver
degrades to the inline path, which is always available and produces the
same counts.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import List, Mapping, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.simulator.counts import Counts
from repro.simulator.engines import DenseEngine, select_engine
from repro.simulator.noise import NoiseModel, QuantumError
from repro.simulator.statevector import DENSE_QUBIT_LIMIT
from repro.utils.rng import child_rng

#: Shots per block.  Independent of the worker count on purpose: the
#: block partition (and therefore every block's derived stream) must not
#: change when the pool is resized, or worker counts would stop being
#: interchangeable.
SHARD_BLOCK_SHOTS = 256

#: Worker-side clean-prefix state, installed by the pool initializer:
#: ``(amplitudes, position)`` or ``None``.
_WORKER_PREFIX: Optional[Tuple[np.ndarray, int]] = None

#: Keeps the worker's shared-memory handle alive for the pool's life.
_WORKER_SHM = None


def _block_sizes(shots: int, block_shots: int) -> List[int]:
    """Partition *shots* into fixed-size blocks (last one ragged)."""
    full, rem = divmod(int(shots), int(block_shots))
    sizes = [int(block_shots)] * full
    if rem:
        sizes.append(rem)
    return sizes


def _clean_prefix_state(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    extra: Mapping[int, QuantumError],
) -> Optional[Tuple[np.ndarray, int]]:
    """The shared clean-prefix payload, or ``None`` when inapplicable.

    Applicable exactly when every block would run the grouped walk on a
    dense-family engine: the instructions before the first noisy op are
    then identical across blocks and groups, so one simulation serves
    all workers.  Returns ``(amplitudes, position)`` with *position*
    the index of the first noisy instruction.
    """
    from repro.simulator import sampler

    if not sampler.USE_PREFIX_SHARING or sampler._needs_per_shot(circuit):
        return None
    if circuit.num_qubits > DENSE_QUBIT_LIMIT:
        return None
    engine_cls = select_engine(sampler.ENGINE, circuit)
    if not issubclass(engine_cls, DenseEngine):
        return None
    noisy = sampler._noisy_ops(circuit, noise, extra)
    first = noisy[0][0] if noisy else len(list(circuit))
    if first == 0:
        return None
    engine = engine_cls(circuit)
    engine.advance(list(circuit)[:first])
    return engine.to_dense().data.copy(), first


def _init_worker(shm_name: Optional[str], num_qubits: int, position: int) -> None:
    """Pool initializer: attach the read-only clean-prefix segment."""
    global _WORKER_PREFIX, _WORKER_SHM
    if shm_name is None:
        _WORKER_PREFIX = None
        return
    from multiprocessing import shared_memory

    # Forked workers inherit the parent's resource-tracker pipe, so this
    # attach re-registers the segment into the tracker's (set-valued)
    # cache — harmless, and the parent's single unlink unregisters it.
    # Do NOT unregister here: a second unregister for the same name
    # races the parent's and KeyErrors inside the tracker process.
    shm = shared_memory.SharedMemory(name=shm_name)
    arr = np.ndarray((1 << num_qubits,), dtype=np.complex128, buffer=shm.buf)
    arr.setflags(write=False)
    _WORKER_SHM = shm
    _WORKER_PREFIX = (arr, int(position))


def _run_block(task: Tuple) -> Counts:
    """Sample one block in a worker (or inline) process."""
    circuit, block_shots, noise, base, index, extra = task
    from repro.simulator import sampler

    rng = child_rng(base, "shard", index)
    return sampler._sample_counts_single(
        circuit, block_shots, noise, rng, extra, initial=_WORKER_PREFIX
    )


def sample_counts_sharded(
    circuit: QuantumCircuit,
    shots: int,
    *,
    noise: Optional[NoiseModel] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    block_shots: Optional[int] = None,
    instruction_errors: Optional[Mapping[int, QuantumError]] = None,
) -> Counts:
    """Sample *shots* outcomes, sharded into blocks across *workers*.

    The sharded analogue of :func:`repro.simulator.sample_counts`
    (normally reached through ``engine_mode(workers=...)``): shots are
    split into :data:`SHARD_BLOCK_SHOTS`-sized blocks, block *i* draws
    from ``child_rng(seed, "shard", i)``, and the per-block histograms
    fold with :meth:`Counts.merge`.  Counts are identical for every
    *workers* value; see the module docstring for the full contract.

    *seed* must be an ``int`` or ``None`` (``None`` draws a fresh base
    seed once, then shards deterministically from it).
    """
    if isinstance(seed, np.random.Generator):
        raise SimulationError(
            "sharded sampling needs an int seed or None, not a live "
            "Generator: per-block streams are derived from the seed"
        )
    if isinstance(workers, bool) or workers < 1:
        raise SimulationError(f"workers must be an integer >= 1, got {workers!r}")
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    if not circuit.has_measurements():
        raise SimulationError(
            f"circuit {circuit.name!r} has no measurements; nothing to sample"
        )
    extra = dict(instruction_errors or {})
    bs = int(block_shots) if block_shots is not None else SHARD_BLOCK_SHOTS
    if bs < 1:
        raise SimulationError(f"block_shots must be >= 1, got {block_shots!r}")
    sizes = _block_sizes(shots, bs)
    base = int(seed) if seed is not None else int(np.random.SeedSequence().entropy)
    prefix = _clean_prefix_state(circuit, noise, extra)
    tasks = [
        (circuit, size, noise, base, index, extra)
        for index, size in enumerate(sizes)
    ]
    effective = min(int(workers), len(sizes))
    if effective > 1 and "fork" not in multiprocessing.get_all_start_methods():
        effective = 1  # no fork → inline, same counts by construction
    if effective <= 1:
        global _WORKER_PREFIX
        saved = _WORKER_PREFIX
        _WORKER_PREFIX = prefix
        try:
            parts = [_run_block(task) for task in tasks]
        finally:
            _WORKER_PREFIX = saved
        return Counts.merge(parts)
    shm = None
    try:
        initargs: Tuple = (None, 0, 0)
        if prefix is not None:
            from multiprocessing import shared_memory

            state, position = prefix
            shm = shared_memory.SharedMemory(create=True, size=state.nbytes)
            np.ndarray(state.shape, dtype=state.dtype, buffer=shm.buf)[:] = state
            initargs = (shm.name, circuit.num_qubits, position)
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=effective,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=initargs,
        ) as pool:
            parts = list(pool.map(_run_block, tasks))
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()
    return Counts.merge(parts)


__all__ = ["sample_counts_sharded", "SHARD_BLOCK_SHOTS"]
