"""Process-pool shot sharding with crash recovery.

The batched grouped walk removes per-group dispatch overhead inside one
process; this layer scales *across* processes: a shot request is split
into fixed-size **blocks**, each block runs the classic sampling driver
(:func:`repro.simulator.sampler._sample_counts_single`) end to end, and
the per-block :class:`~repro.simulator.counts.Counts` fold together with
:meth:`Counts.merge`.

Reproducibility contract
------------------------
Block *i* draws from ``child_rng(seed, "shard", i)`` — the stable
SHA-256 seed derivation from :mod:`repro.utils.rng`, which depends only
on the seed and the block index, never on which process runs the block
or in what order blocks finish.  The block partition itself is a
function of ``(shots, block_shots)`` alone.  Consequently **any worker
count produces identical counts** — ``workers=4`` reproduces
``workers=1`` bit for bit — and a failed block can be re-run anywhere:
on a rebuilt pool, or inline in the parent.  The sharded stream
intentionally differs from the single-stream driver's draw order (that
is what makes it splittable); ``engine_mode(workers=...)`` is documented
as a semantics switch for exactly this reason, and live generators are
rejected because a shared mutable stream cannot be split
deterministically.

Crash recovery protocol
-----------------------
The block-stream contract above is what makes recovery *trivially
correct*; this module makes it *actually implemented*.  Blocks are
submitted as individual futures (not ``pool.map``, whose single iterator
dies with the first failure).  The driver then runs a fixed, test-pinned
protocol:

1. Collect per-block results, optionally bounding each wait with
   *block_timeout*.  A block that raises is recorded as failed; a dead
   worker (``BrokenProcessPool``) fails every in-flight block; a timeout
   abandons the pool (its workers are killed — a hung worker cannot be
   trusted to ever finish).
2. While failed blocks remain and the rebuild budget
   (:data:`MAX_POOL_REBUILDS`) allows, tear the pool down, sleep a
   capped exponential backoff
   (:data:`REBUILD_BACKOFF_BASE` / :data:`REBUILD_BACKOFF_CAP`), build a
   fresh pool, and re-submit **only** the failed blocks.
3. Any stragglers after the last rebuild run inline in the parent — the
   path that is always available.

Every step increments the :mod:`repro.simulator.resilience` counters
(``retries`` / ``pool_rebuilds`` / ``inline_fallbacks``), and the whole
protocol is driven deterministically in tests by
:mod:`repro.testing.faults` injection points (``shard.block``,
``shard.init``, ``shard.attach``, ``shard.merge``).

Clean-prefix sharing
--------------------
For dense-family routes the instructions before the first noisy op are
identical in every block and every trajectory group.  The parent
simulates that prefix **once** and publishes the amplitudes read-only
via a :class:`SharedPrefix` — a context-managed owner around
:class:`multiprocessing.shared_memory.SharedMemory` whose ``with`` block
guarantees the segment is closed *and unlinked* on every exit path
(worker crash, fault mid-merge, ``KeyboardInterrupt``), closing the leak
window a bare try/finally around ``pool.map`` left open.  The segment
carries a SHA-256 digest header; a worker that attaches a missing or
corrupt segment **degrades** to recomputing the prefix per block instead
of sampling from garbage — counts are identical either way, by the same
contract.  The inline (``workers=1``) path uses the same precomputed
prefix, so pooled and inline runs see bit-identical inputs.

Workers are forked (POSIX), so they inherit the parent's engine-mode
globals at pool creation; on platforms without ``fork`` the driver
degrades to the inline path, which is always available and produces the
same counts.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SimulationError
from repro.simulator.counts import Counts
from repro.simulator.engines import DenseEngine, select_engine
from repro.simulator.noise import NoiseModel, QuantumError
from repro.simulator.statevector import DENSE_QUBIT_LIMIT
from repro.telemetry import tracing as _tracing
from repro.testing import faults as _faults
from repro.utils.rng import child_rng

#: Shots per block.  Independent of the worker count on purpose: the
#: block partition (and therefore every block's derived stream) must not
#: change when the pool is resized, or worker counts would stop being
#: interchangeable.
SHARD_BLOCK_SHOTS = 256

#: How many times one request may rebuild a failed pool before the
#: remaining blocks fall back inline.  One rebuild recovers every
#: single-fault scenario (a killed worker, one poisoned block); a pool
#: that breaks twice is treated as systematically broken.
MAX_POOL_REBUILDS = 1

#: Capped exponential backoff between pool rebuilds: rebuild *k* sleeps
#: ``min(REBUILD_BACKOFF_CAP, REBUILD_BACKOFF_BASE * 2**k)`` seconds.
#: Tests zero the base to keep the recovery matrix fast.
REBUILD_BACKOFF_BASE = 0.05
REBUILD_BACKOFF_CAP = 1.0

#: Size of the SHA-256 integrity header a :class:`SharedPrefix` segment
#: carries ahead of the amplitude payload.
_DIGEST_BYTES = 32

#: Worker-side clean-prefix state, installed by the pool initializer:
#: ``(amplitudes, position)`` or ``None``.
_WORKER_PREFIX: Optional[Tuple[np.ndarray, int]] = None

#: Keeps the worker's shared-memory handle alive for the pool's life.
_WORKER_SHM = None

#: Name of the most recently created shared-prefix segment (set by
#: :class:`SharedPrefix`, surviving its unlink).  Debug/test aid: the
#: leak test asserts the named segment no longer exists after a faulted
#: run.
_LAST_SEGMENT_NAME: Optional[str] = None


def _block_sizes(shots: int, block_shots: int) -> List[int]:
    """Partition *shots* into fixed-size blocks (last one ragged)."""
    full, rem = divmod(int(shots), int(block_shots))
    sizes = [int(block_shots)] * full
    if rem:
        sizes.append(rem)
    return sizes


def _clean_prefix_state(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    extra: Mapping[int, QuantumError],
) -> Optional[Tuple[np.ndarray, int]]:
    """The shared clean-prefix payload, or ``None`` when inapplicable.

    Applicable exactly when every block would run the grouped walk on a
    dense-family engine: the instructions before the first noisy op are
    then identical across blocks and groups, so one simulation serves
    all workers.  Returns ``(amplitudes, position)`` with *position*
    the index of the first noisy instruction.
    """
    from repro.simulator import sampler

    if not sampler.USE_PREFIX_SHARING or sampler._needs_per_shot(circuit):
        return None
    if circuit.num_qubits > DENSE_QUBIT_LIMIT:
        return None
    engine_cls = select_engine(sampler.ENGINE, circuit)
    if not issubclass(engine_cls, DenseEngine):
        return None
    noisy = sampler._noisy_ops(circuit, noise, extra)
    first = noisy[0][0] if noisy else len(list(circuit))
    if first == 0:
        return None
    engine = engine_cls(circuit)
    engine.advance(list(circuit)[:first])
    return engine.to_dense().data.copy(), first


class SharedPrefix:
    """Context-managed owner of the clean-prefix shared-memory segment.

    Owns the segment's whole lifecycle: creation, the digest-stamped
    payload write, and — on **every** exit path of the ``with`` block —
    close + unlink.  ``close()`` is idempotent, so explicit early
    teardown composes with the context manager.

    Layout: ``sha256(payload) || payload``.  Workers verify the digest
    at attach time (:func:`_init_worker`) and degrade to recomputing the
    prefix when it does not match — a torn or corrupted segment must
    never be sampled from.
    """

    def __init__(self, state: np.ndarray) -> None:
        from multiprocessing import shared_memory

        global _LAST_SEGMENT_NAME
        payload = state.tobytes()
        self._shm = shared_memory.SharedMemory(
            create=True, size=_DIGEST_BYTES + len(payload)
        )
        self._closed = False
        _LAST_SEGMENT_NAME = self._shm.name
        self._shm.buf[:_DIGEST_BYTES] = hashlib.sha256(payload).digest()
        self._shm.buf[_DIGEST_BYTES : _DIGEST_BYTES + len(payload)] = payload

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        self._shm.unlink()

    def __enter__(self) -> "SharedPrefix":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _init_worker(shm_name: Optional[str], num_qubits: int, position: int) -> None:
    """Pool initializer: attach the read-only clean-prefix segment.

    Defensive by specification: a missing segment, a size mismatch, or a
    digest mismatch **degrades** to ``_WORKER_PREFIX = None`` (each block
    recomputes the prefix, same counts) instead of poisoning the pool.
    """
    global _WORKER_PREFIX, _WORKER_SHM
    _faults.fault_point("shard.init")
    if shm_name is None:
        _WORKER_PREFIX = None
        return
    from multiprocessing import shared_memory

    try:
        _faults.fault_point("shard.attach")
        # Forked workers inherit the parent's resource-tracker pipe, so
        # this attach re-registers the segment into the tracker's
        # (set-valued) cache — harmless, and the parent's single unlink
        # unregisters it.  Do NOT unregister here: a second unregister
        # for the same name races the parent's and KeyErrors inside the
        # tracker process.
        shm = shared_memory.SharedMemory(name=shm_name)
        nbytes = 16 << num_qubits
        payload = bytes(shm.buf[_DIGEST_BYTES : _DIGEST_BYTES + nbytes])
        if hashlib.sha256(payload).digest() != bytes(shm.buf[:_DIGEST_BYTES]):
            shm.close()
            raise SimulationError(
                f"shared prefix segment {shm_name!r} failed integrity check"
            )
        arr = np.ndarray(
            (1 << num_qubits,),
            dtype=np.complex128,
            buffer=shm.buf,
            offset=_DIGEST_BYTES,
        )
        arr.setflags(write=False)
    except Exception:
        _WORKER_PREFIX = None
        _WORKER_SHM = None
        return
    _WORKER_SHM = shm
    _WORKER_PREFIX = (arr, int(position))


def _run_block(task: Tuple):
    """Sample one block in a worker (or inline) process.

    Returns the block's :class:`Counts` — or, when tracing is enabled,
    ``(Counts, span summary)``: each completed block carries its own
    picklable trace digest home, so the parent-side report stays
    complete even when other workers of the same pool were killed."""
    circuit, block_shots, noise, base, index, extra = task
    from repro.simulator import sampler

    _faults.fault_point("shard.block", index)
    rng = child_rng(base, "shard", index)
    if not _tracing.ENABLED or sampler.ENGINE == "baseline":
        return sampler._sample_counts_single(
            circuit, block_shots, noise, rng, extra, initial=_WORKER_PREFIX
        )
    with _tracing.block_trace() as tracer:
        with tracer.span("shard.block", index=index, shots=block_shots):
            counts = sampler._sample_counts_single(
                circuit, block_shots, noise, rng, extra, initial=_WORKER_PREFIX
            )
    return counts, tracer.summary()


def _merge_block_results(parts: List) -> Counts:
    """Fold per-block results: absorb any trace summaries into the
    active parent tracer (``Counts.merge``-style), then merge counts."""
    counts_parts: List[Counts] = []
    summaries = []
    for value in parts:
        if isinstance(value, tuple):
            counts_parts.append(value[0])
            summaries.append(value[1])
        else:
            counts_parts.append(value)
    if summaries:
        _tracing.absorb_block_summaries(summaries)
    return Counts.merge(counts_parts)


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without trusting its workers to cooperate.

    Used after a timeout (a hung worker never finishes, so a graceful
    ``shutdown(wait=True)`` would hang the parent too) and between
    rebuilds (a broken pool's shutdown is already non-blocking)."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=1.0)


def _run_blocks_recovering(
    tasks: List[Tuple],
    prefix: Optional[Tuple[np.ndarray, int]],
    effective: int,
    initargs: Tuple,
    block_timeout: Optional[float],
) -> Dict[int, object]:
    """The crash-recovery driver: all blocks through pools + inline.

    Returns ``{block index: block result}`` (a :class:`Counts`, or
    ``(Counts, trace summary)`` under tracing — see :func:`_run_block`)
    for every task, or raises only when a block fails *inline* (at that
    point the failure is a genuine defect in the request, not an
    infrastructure fault)."""
    from repro.simulator import resilience

    ctx = multiprocessing.get_context("fork")

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=effective,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=initargs,
        )

    results: Dict[int, object] = {}
    pending = set(range(len(tasks)))
    pool: Optional[ProcessPoolExecutor] = make_pool()
    rebuilds = 0
    try:
        while pending and pool is not None:
            futures = {}
            abandoned = False
            try:
                with _tracing.span("shard.submit", blocks=len(pending)):
                    for index in sorted(pending):
                        futures[index] = pool.submit(_run_block, tasks[index])
            except (BrokenProcessPool, RuntimeError):
                # The pool broke before (or while) accepting work; any
                # futures already accepted are collected below.
                pass
            for index, future in futures.items():
                try:
                    results[index] = future.result(timeout=block_timeout)
                    pending.discard(index)
                except FuturesTimeoutError:
                    # A hung worker: nothing this pool reports can be
                    # trusted to arrive, so stop waiting on it entirely.
                    abandoned = True
                    break
                except Exception:
                    # Block-level failure (injected or real) or a
                    # BrokenProcessPool surfacing through the future.
                    continue
            if not pending:
                break
            resilience.count_event("retries", len(pending))
            _tracing.count("shard.retries", len(pending))
            _abandon_pool(pool)
            pool = None
            if rebuilds < MAX_POOL_REBUILDS and not abandoned:
                resilience.count_event("pool_rebuilds")
                _tracing.count("shard.pool_rebuilds")
                with _tracing.span("shard.rebuild", pending=len(pending)):
                    time.sleep(
                        min(
                            REBUILD_BACKOFF_CAP,
                            REBUILD_BACKOFF_BASE * (2 ** rebuilds),
                        )
                    )
                    rebuilds += 1
                    pool = make_pool()
    finally:
        if pool is not None:
            if pending:
                _abandon_pool(pool)
            else:
                pool.shutdown(wait=True)
    if pending:
        # Stragglers: the always-available inline path, using the same
        # in-memory prefix the pool published.  Same per-block streams,
        # same counts — the contract this module exists to uphold.
        global _WORKER_PREFIX
        resilience.count_event("inline_fallbacks", len(pending))
        _tracing.count("shard.inline_fallbacks", len(pending))
        saved = _WORKER_PREFIX
        _WORKER_PREFIX = prefix
        try:
            with _tracing.span("shard.inline", blocks=len(pending)):
                for index in sorted(pending):
                    results[index] = _run_block(tasks[index])
        finally:
            _WORKER_PREFIX = saved
    return results


def sample_counts_sharded(
    circuit: QuantumCircuit,
    shots: int,
    *,
    noise: Optional[NoiseModel] = None,
    seed: Optional[int] = None,
    workers: int = 1,
    block_shots: Optional[int] = None,
    block_timeout: Optional[float] = None,
    instruction_errors: Optional[Mapping[int, QuantumError]] = None,
) -> Counts:
    """Sample *shots* outcomes, sharded into blocks across *workers*.

    The sharded analogue of :func:`repro.simulator.sample_counts`
    (normally reached through ``engine_mode(workers=...)``): shots are
    split into :data:`SHARD_BLOCK_SHOTS`-sized blocks, block *i* draws
    from ``child_rng(seed, "shard", i)``, and the per-block histograms
    fold with :meth:`Counts.merge`.  Counts are identical for every
    *workers* value — including runs where workers crash: failed blocks
    are re-run on a rebuilt pool and inline per the crash-recovery
    protocol in the module docstring.  *block_timeout* optionally bounds
    each block-result wait in seconds; on expiry the pool is abandoned
    and the remaining blocks run inline.

    Admission control runs first: the routed engine's estimated peak
    memory is checked against the active budget
    (``engine_mode(max_state_bytes=...)``) **before** the prefix is
    simulated or any worker forked, raising
    :class:`~repro.errors.ResourceAdmissionError` on oversize requests.

    *seed* must be an ``int`` or ``None`` (``None`` draws a fresh base
    seed once, then shards deterministically from it).
    """
    from repro.simulator import resilience, sampler

    if isinstance(seed, np.random.Generator):
        raise SimulationError(
            "sharded sampling needs an int seed or None, not a live "
            "Generator: per-block streams are derived from the seed"
        )
    if isinstance(workers, bool) or workers < 1:
        raise SimulationError(f"workers must be an integer >= 1, got {workers!r}")
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    if not circuit.has_measurements():
        raise SimulationError(
            f"circuit {circuit.name!r} has no measurements; nothing to sample"
        )
    extra = dict(instruction_errors or {})
    bs = int(block_shots) if block_shots is not None else SHARD_BLOCK_SHOTS
    if bs < 1:
        raise SimulationError(f"block_shots must be >= 1, got {block_shots!r}")
    with _tracing.run_scope(
        "sampler.sharded",
        mode=sampler.ENGINE,
        num_qubits=circuit.num_qubits,
        shots=int(shots),
        workers=int(workers),
    ):
        _tracing.note("mode", sampler.ENGINE)
        _tracing.note("num_qubits", circuit.num_qubits)
        _tracing.note("shots", int(shots))
        estimate = resilience.check_admission(circuit, sampler.ENGINE)
        _tracing.note("engine", estimate.engine)
        _tracing.note("estimated_peak_bytes", estimate.peak_bytes)
        sizes = _block_sizes(shots, bs)
        _tracing.count("shard.blocks", len(sizes))
        base = (
            int(seed) if seed is not None else int(np.random.SeedSequence().entropy)
        )
        with _tracing.span("shard.prefix"):
            prefix = _clean_prefix_state(circuit, noise, extra)
        tasks = [
            (circuit, size, noise, base, index, extra)
            for index, size in enumerate(sizes)
        ]
        effective = min(int(workers), len(sizes))
        if effective > 1 and "fork" not in multiprocessing.get_all_start_methods():
            effective = 1  # no fork → inline, same counts by construction
        if effective <= 1:
            global _WORKER_PREFIX
            saved = _WORKER_PREFIX
            _WORKER_PREFIX = prefix
            try:
                parts = [_run_block(task) for task in tasks]
            finally:
                _WORKER_PREFIX = saved
            return _merge_block_results(parts)
        initargs: Tuple = (None, 0, 0)
        if prefix is not None:
            state, position = prefix
            with SharedPrefix(state) as segment:
                initargs = (segment.name, circuit.num_qubits, position)
                results = _run_blocks_recovering(
                    tasks, prefix, effective, initargs, block_timeout
                )
                _faults.fault_point("shard.merge")
                return _merge_block_results(
                    [results[i] for i in range(len(tasks))]
                )
        results = _run_blocks_recovering(
            tasks, prefix, effective, initargs, block_timeout
        )
        _faults.fault_point("shard.merge")
        return _merge_block_results([results[i] for i in range(len(tasks))])


__all__ = [
    "sample_counts_sharded",
    "SharedPrefix",
    "SHARD_BLOCK_SHOTS",
    "MAX_POOL_REBUILDS",
    "REBUILD_BACKOFF_BASE",
    "REBUILD_BACKOFF_CAP",
]
