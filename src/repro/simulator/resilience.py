"""Fault-tolerant execution: admission control and the degradation ladder.

Production service paths cannot afford the two failure shapes the raw
engines exhibit: an oversized request allocates until the process (or
the OOM killer) dies mid-run, and an engine that turns out to be the
wrong tool (an MPS whose truncation blows its budget, a dense route a
width past the limit) fails the whole request even when a slower-but-
correct backend was one hop away.  This module is the policy layer that
turns both into **specified, observable degradation**:

Pre-flight admission control
----------------------------
:func:`estimate_resources` asks the routed engine class for its
predicted peak footprint (``ExecutionEngine.estimate_peak_bytes`` — a
pure function of the circuit and the engine's configuration, computable
*before* any allocation), and :func:`check_admission` rejects requests
whose estimate exceeds the active budget with a structured
:class:`~repro.errors.ResourceAdmissionError` instead of a mid-run
``MemoryError``.  The budget defaults to the dense engine's peak at the
dense qubit limit (so every historically-valid request still admits) and
is scoped per block via ``engine_mode(max_state_bytes=...)``.

Graceful-degradation ladder
---------------------------
:func:`run_with_fallback` walks a declared per-mode fallback chain
(:data:`FALLBACK_CHAINS`): when a mode fails admission — or samples
lossily because the MPS truncation budget was exceeded — the request
hops to the next mode in the chain, recording every hop
(:class:`FallbackHop`) instead of silently changing semantics.  The
chain is data, not code, so operators can read the ladder straight from
this module (it is also pinned in ``docs/architecture.md``).

Observability
-------------
Every recovery and degradation event increments a module-level counter
(:func:`counters`): ``retries``, ``pool_rebuilds`` and
``inline_fallbacks`` from the sharding layer's crash recovery,
``admission_rejects`` from here, ``engine_fallbacks`` from the ladder.
:meth:`repro.telemetry.store.MetricStore.record_resilience` snapshots
them into the ``simulator.resilience.*`` sensor family.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Type

from repro.circuits.circuit import QuantumCircuit
from repro.errors import ResourceAdmissionError, SimulationError
from repro.simulator.counts import Counts
from repro.simulator.engines.base import ExecutionEngine
from repro.simulator.noise import NoiseModel, QuantumError
from repro.simulator.statevector import DENSE_QUBIT_LIMIT
from repro.telemetry import tracing as _tracing
from repro.testing import faults as _faults

# ---------------------------------------------------------------------------
# resilience counters
# ---------------------------------------------------------------------------

#: The sensor short-names exported as ``simulator.resilience.<name>``.
COUNTER_NAMES = (
    "retries",
    "pool_rebuilds",
    "inline_fallbacks",
    "admission_rejects",
    "engine_fallbacks",
)

_counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
_counters_lock = threading.Lock()


def count_event(name: str, amount: int = 1) -> None:
    """Increment one resilience counter (sharding calls this too)."""
    with _counters_lock:
        _counters[name] += int(amount)


def counters() -> Dict[str, int]:
    """A snapshot of the cumulative resilience counters."""
    with _counters_lock:
        return dict(_counters)


def reset_counters() -> None:
    """Zero all counters (test isolation)."""
    with _counters_lock:
        for name in COUNTER_NAMES:
            _counters[name] = 0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

#: Default peak-memory budget: the dense engine's estimated peak at the
#: dense qubit limit.  Chosen so admission control is invisible to every
#: request the stack could already serve (a 26-qubit dense run admits
#: exactly) while anything wider fails fast with a structured error
#: instead of attempting the allocation.
DEFAULT_MAX_STATE_BYTES = 3 * (16 << DENSE_QUBIT_LIMIT)

#: Active peak-memory budget in bytes.  Scope via
#: ``engine_mode(max_state_bytes=...)`` rather than assigning directly.
MAX_STATE_BYTES = DEFAULT_MAX_STATE_BYTES


@dataclass(frozen=True)
class ResourceEstimate:
    """Predicted peak footprint of one request on one engine.

    ``peak_bytes`` is ``None`` when the routed backend declares no
    estimate (custom engines without ``estimate_peak_bytes``); such
    requests admit unconditionally.
    """

    engine: str
    mode: str
    num_qubits: int
    peak_bytes: Optional[int]


def estimate_resources(
    circuit: QuantumCircuit,
    mode: Optional[str] = None,
    *,
    engine_cls: Optional[Type[ExecutionEngine]] = None,
) -> ResourceEstimate:
    """Estimate the peak state memory *circuit* needs under *mode*.

    *mode* defaults to the active ``engine_mode`` selection; pass
    *engine_cls* to skip routing when the caller already resolved it.
    Pure prediction — nothing is allocated.
    """
    from repro.simulator import sampler
    from repro.simulator.engines import select_engine

    if mode is None:
        mode = sampler.ENGINE
    if engine_cls is None:
        engine_cls = select_engine(mode, circuit)
    peak = engine_cls.estimate_peak_bytes(circuit)
    return ResourceEstimate(
        engine=engine_cls.name,
        mode=str(mode),
        num_qubits=circuit.num_qubits,
        peak_bytes=None if peak is None else int(peak),
    )


def check_admission(
    circuit: QuantumCircuit,
    mode: Optional[str] = None,
    *,
    engine_cls: Optional[Type[ExecutionEngine]] = None,
) -> ResourceEstimate:
    """Admit or reject *circuit* against :data:`MAX_STATE_BYTES`.

    Returns the :class:`ResourceEstimate` on admit; raises a structured
    :class:`~repro.errors.ResourceAdmissionError` (and increments the
    ``admission_rejects`` counter) when the estimate exceeds the budget.
    Runs before any state allocation by construction.
    """
    _faults.fault_point("resilience.admission")
    with _tracing.span("resilience.admission"):
        estimate = estimate_resources(circuit, mode, engine_cls=engine_cls)
    budget = int(MAX_STATE_BYTES)
    if estimate.peak_bytes is not None and estimate.peak_bytes > budget:
        count_event("admission_rejects")
        _tracing.count("resilience.admission_rejects")
        raise ResourceAdmissionError(
            f"admission control rejected circuit {circuit.name!r}: the "
            f"{estimate.engine!r} engine needs an estimated "
            f"{estimate.peak_bytes} bytes for {estimate.num_qubits} qubits, "
            f"over the {budget}-byte budget "
            "(engine_mode(max_state_bytes=...) scopes the budget; "
            "run_with_fallback degrades to a cheaper engine)",
            engine=estimate.engine,
            requested_bytes=estimate.peak_bytes,
            budget_bytes=budget,
            num_qubits=estimate.num_qubits,
        )
    return estimate


# ---------------------------------------------------------------------------
# graceful-degradation ladder
# ---------------------------------------------------------------------------

#: Declared per-mode fallback chains, walked left to right by
#: :func:`run_with_fallback`.  Dense-family modes degrade toward the
#: bounded-memory MPS; an MPS whose truncation budget blows *escalates*
#: to exact engines (ROADMAP item 5's auto-escalation); ``baseline`` is
#: deliberately absent — the seed path never degrades.
FALLBACK_CHAINS: Mapping[str, Tuple[str, ...]] = {
    "fast": ("mps",),
    "batched": ("fast", "mps"),
    "stabilizer": ("fast", "mps"),
    "hybrid": ("mps",),
    "mps": ("hybrid", "fast"),
    "auto": ("mps", "hybrid"),
}

#: Stable prefix of the lossy-sampling warning the MPS engine emits;
#: :func:`run_with_fallback` keys truncation escalation off it.
_TRUNCATION_WARNING_PREFIX = "sampling a truncated MPS"


@dataclass(frozen=True)
class FallbackHop:
    """One recorded degradation step: *from_mode* failed for *reason*,
    the request moved to *to_mode*."""

    from_mode: str
    to_mode: str
    reason: str


@dataclass(frozen=True)
class FallbackResult:
    """The counts plus the degradation trail that produced them."""

    counts: Counts
    mode: str
    hops: Tuple[FallbackHop, ...]


def run_with_fallback(
    circuit: QuantumCircuit,
    shots: int,
    *,
    noise: Optional[NoiseModel] = None,
    seed: Optional[int] = None,
    mode: Optional[str] = None,
    instruction_errors: Optional[Mapping[int, QuantumError]] = None,
) -> FallbackResult:
    """Sample under *mode*, degrading along :data:`FALLBACK_CHAINS`.

    Two failure shapes trigger a hop: the mode fails admission control
    (:class:`~repro.errors.ResourceAdmissionError`), or its sampling was
    lossy because the MPS truncation budget was exceeded (detected via
    the engine's stable lossy-sampling warning) and a stronger mode
    remains in the chain.  Every hop is recorded on the result and
    counted in ``engine_fallbacks``; when the chain is exhausted the
    last admission error propagates.  *seed* must be an ``int`` or
    ``None`` — a hop re-runs the request from the start, which a live
    generator cannot replay.
    """
    import numpy as np

    from repro.simulator import sampler

    if isinstance(seed, np.random.Generator):
        raise SimulationError(
            "run_with_fallback needs an int seed or None, not a live "
            "Generator: a degradation hop re-runs the request from the start"
        )
    first = mode if mode is not None else sampler.ENGINE
    chain = (first,) + tuple(FALLBACK_CHAINS.get(first, ()))
    hops = []
    # One run scope spans the whole ladder: each attempt's sampler scope
    # nests inside it, so a degraded request still yields exactly one
    # ExecutionReport whose counters record every hop.
    with _tracing.run_scope("resilience.fallback", mode=first):
        for position, step in enumerate(chain):
            following = chain[position + 1] if position + 1 < len(chain) else None
            try:
                with sampler.engine_mode(step), warnings.catch_warnings(
                    record=True
                ) as caught:
                    warnings.simplefilter("always")
                    counts = sampler.sample_counts(
                        circuit,
                        shots,
                        noise=noise,
                        rng=seed,
                        instruction_errors=instruction_errors,
                    )
            except ResourceAdmissionError as exc:
                if following is None:
                    raise
                hops.append(FallbackHop(step, following, f"admission: {exc}"))
                count_event("engine_fallbacks")
                _tracing.count("resilience.engine_fallbacks")
                with _tracing.span(
                    "resilience.fallback_hop",
                    from_mode=step,
                    to_mode=following,
                    reason="admission",
                ):
                    pass
                continue
            truncated = [
                w
                for w in caught
                if str(w.message).startswith(_TRUNCATION_WARNING_PREFIX)
            ]
            if truncated and following is not None:
                # Lossy counts: discard them and escalate to an exact mode.
                hops.append(
                    FallbackHop(
                        step, following, f"truncation: {truncated[0].message}"
                    )
                )
                count_event("engine_fallbacks")
                _tracing.count("resilience.engine_fallbacks")
                with _tracing.span(
                    "resilience.fallback_hop",
                    from_mode=step,
                    to_mode=following,
                    reason="truncation",
                ):
                    pass
                continue
            # Replay any unrelated warnings the recording context swallowed.
            for w in caught:
                if w not in truncated:
                    warnings.warn_explicit(
                        w.message, w.category, w.filename, w.lineno
                    )
            return FallbackResult(counts=counts, mode=step, hops=tuple(hops))
    raise AssertionError("unreachable: chain always returns or raises")


__all__ = [
    "COUNTER_NAMES",
    "DEFAULT_MAX_STATE_BYTES",
    "FALLBACK_CHAINS",
    "FallbackHop",
    "FallbackResult",
    "MAX_STATE_BYTES",
    "ResourceEstimate",
    "check_admission",
    "count_event",
    "counters",
    "estimate_resources",
    "reset_counters",
    "run_with_fallback",
]
