"""Measurement-outcome histograms.

Section 2.4 of the paper: "The most common output format for
circuit-based jobs is a histogram of the measured bitstrings and the
number of their observed occurrences."  :class:`Counts` is exactly that
histogram, and is the payload every access path (REST and HPC) returns.

Bitstring convention: **little-endian display** — the rightmost character
of the key is classical bit 0 (matching Qiskit, which the paper's users
arrive with).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class Counts(Mapping[str, int]):
    """Immutable histogram of measured bitstrings."""

    def __init__(self, data: Mapping[str, int], num_bits: Optional[int] = None):
        if not data and num_bits is None:
            raise SimulationError("empty counts need an explicit num_bits")
        widths = {len(k) for k in data}
        if len(widths) > 1:
            raise SimulationError(f"inconsistent bitstring widths: {sorted(widths)}")
        self.num_bits = int(num_bits) if num_bits is not None else widths.pop()
        self._data: Dict[str, int] = {}
        for key, value in data.items():
            if len(key) != self.num_bits or set(key) - {"0", "1"}:
                raise SimulationError(f"invalid bitstring key {key!r}")
            v = int(value)
            if v < 0:
                raise SimulationError(f"negative count for {key!r}")
            if v:
                self._data[key] = v

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_bit_array(cls, bits: np.ndarray) -> "Counts":
        """Build from an ``(shots, num_bits)`` 0/1 array where column *j*
        is classical bit *j* (displayed rightmost-first).

        Registers up to 62 bits histogram through a packed-integer
        ``np.unique``; wider registers (the stabilizer engine samples
        hundreds of qubits) fall back to row-wise uniquing so the bit
        weights never overflow int64.
        """
        bits = np.asarray(bits)
        if bits.ndim != 2:
            raise SimulationError("bit array must be 2-D (shots, bits)")
        shots, width = bits.shape
        if width == 0:
            raise SimulationError("bit array needs at least one bit column")
        if width <= 62:
            weights = (1 << np.arange(width)).astype(np.int64)
            values = bits.astype(np.int64) @ weights
            uniq, cnt = np.unique(values, return_counts=True)
            data = {
                format(int(v), f"0{width}b"): int(c) for v, c in zip(uniq, cnt)
            }
        else:
            # Byte-pack rows before uniquing: 8× less data through the
            # lexicographic sort, and the packing is injective at fixed
            # width so the histogram is unchanged.  Keys are rebuilt from
            # the unpacked unique rows only (a few, not one per shot).
            packed = np.packbits(
                np.ascontiguousarray(bits, dtype=np.uint8), axis=1, bitorder="little"
            )
            rows, cnt = np.unique(packed, axis=0, return_counts=True)
            unpacked = np.unpackbits(rows, axis=1, bitorder="little")[:, :width]
            # Build all keys in one pass: '0'/'1' ASCII codes for every
            # unique row, decoded once and sliced per row.
            chars = (unpacked[:, ::-1] + ord("0")).astype(np.uint8)
            blob = chars.tobytes().decode("ascii")
            data = {
                blob[i * width : (i + 1) * width]: int(c)
                for i, c in enumerate(cnt)
            }
        return cls(data, num_bits=width)

    @classmethod
    def from_probabilities(
        cls, probs: Mapping[str, float], shots: int
    ) -> "Counts":
        """Expected (rounded) counts from a probability table — used for
        analytic baselines, not sampling."""
        data = {k: int(round(p * shots)) for k, p in probs.items()}
        width = len(next(iter(probs))) if probs else 1
        return cls(data, num_bits=width)

    # -- mapping protocol -------------------------------------------------------

    def __getitem__(self, key: str) -> int:
        return self._data.get(key, 0)

    def __contains__(self, key: object) -> bool:
        # Mapping's default falls back to __getitem__, which never raises
        # here (absent keys read as 0) — membership must check storage.
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        top = sorted(self._data.items(), key=lambda kv: -kv[1])[:4]
        body = ", ".join(f"{k}: {v}" for k, v in top)
        more = "" if len(self._data) <= 4 else f", … ({len(self._data)} keys)"
        return f"Counts({{{body}{more}}}, shots={self.shots})"

    # -- basic statistics -------------------------------------------------------

    @property
    def shots(self) -> int:
        """Total number of recorded shots (sum of all counts)."""
        return sum(self._data.values())

    def probabilities(self) -> Dict[str, float]:
        """The empirical outcome distribution (counts normalized by shots)."""
        total = self.shots
        if total == 0:
            return {}
        return {k: v / total for k, v in self._data.items()}

    def most_frequent(self) -> str:
        """The modal bitstring (ties break toward the larger key)."""
        if not self._data:
            raise SimulationError("no outcomes recorded")
        return max(self._data.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def bit_value(self, key: str, bit: int) -> int:
        """Value of classical bit *bit* in bitstring *key*."""
        return int(key[self.num_bits - 1 - bit])

    # -- transformations --------------------------------------------------------

    def marginal(self, bits: Sequence[int]) -> "Counts":
        """Marginalize onto the given classical bits (result bit *j* is
        input bit ``bits[j]``)."""
        for b in bits:
            if not 0 <= b < self.num_bits:
                raise SimulationError(f"bit {b} out of range")
        out: Dict[str, int] = {}
        for key, value in self._data.items():
            sub = "".join(str(self.bit_value(key, b)) for b in reversed(bits))
            out[sub] = out.get(sub, 0) + value
        return Counts(out, num_bits=len(bits))

    def merged(self, other: "Counts") -> "Counts":
        """Combine two histograms over the same bit width."""
        if other.num_bits != self.num_bits:
            raise SimulationError("cannot merge counts with different widths")
        out = dict(self._data)
        for k, v in other._data.items():
            out[k] = out.get(k, 0) + v
        return Counts(out, num_bits=self.num_bits)

    def __add__(self, other: "Counts") -> "Counts":
        """``a + b`` is :meth:`merged` — shot histograms add naturally."""
        if not isinstance(other, Counts):
            return NotImplemented
        return self.merged(other)

    @classmethod
    def merge(cls, parts: Iterable["Counts"]) -> "Counts":
        """Combine any number of histograms in one accumulation pass.

        The many-way form of :meth:`merged`, used by the process-pool
        sharding layer to fold per-worker / per-block histograms into
        the final result.  All parts must share one bit width; an empty
        iterable is rejected (there is no width to build from).
        """
        parts = list(parts)
        if not parts:
            raise SimulationError("Counts.merge needs at least one histogram")
        width = parts[0].num_bits
        out: Dict[str, int] = {}
        for part in parts:
            if not isinstance(part, Counts):
                raise SimulationError(
                    f"Counts.merge takes Counts instances, got {type(part).__name__}"
                )
            if part.num_bits != width:
                raise SimulationError("cannot merge counts with different widths")
            for k, v in part._data.items():
                out[k] = out.get(k, 0) + v
        return cls(out, num_bits=width)

    # -- distances & observables --------------------------------------------------

    def total_variation_distance(self, other: "Counts") -> float:
        """TVD between the two empirical distributions."""
        p, q = self.probabilities(), other.probabilities()
        keys = set(p) | set(q)
        return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)

    def hellinger_fidelity(self, other: "Counts") -> float:
        """``(Σ √(p_i q_i))²`` — the standard counts-level fidelity proxy."""
        p, q = self.probabilities(), other.probabilities()
        keys = set(p) & set(q)
        bc = sum(math.sqrt(p[k] * q[k]) for k in keys)
        return bc * bc

    def expectation_z(self, bits: Optional[Sequence[int]] = None) -> float:
        """Expectation of ``Z⊗…⊗Z`` over the listed classical bits
        (default all): ``Σ_k p(k) · (−1)^{parity(k)}``."""
        use = list(range(self.num_bits)) if bits is None else list(bits)
        total = self.shots
        if total == 0:
            raise SimulationError("no outcomes recorded")
        acc = 0.0
        for key, value in self._data.items():
            parity = sum(self.bit_value(key, b) for b in use) & 1
            acc += (-1 if parity else 1) * value
        return acc / total

    def ghz_fidelity_estimate(self) -> float:
        """Population-based GHZ fidelity proxy: ``p(0…0) + p(1…1)``.

        The paper's live health checks run GHZ circuits and look at how
        much probability stays on the two ideal outcomes (Section 3.2).
        """
        probs = self.probabilities()
        zeros = "0" * self.num_bits
        ones = "1" * self.num_bits
        return probs.get(zeros, 0.0) + probs.get(ones, 0.0)

    def to_dict(self) -> Dict[str, int]:
        """A plain ``{bitstring: count}`` dict (zero entries dropped)."""
        return dict(self._data)


__all__ = ["Counts"]
