"""Dense state-vector engine with specialized fast gate kernels.

This is the computational substrate standing in for the paper's physical
QPU: a little-endian ``2^n`` complex state with vectorized gate
application.  Twenty qubits — the size of the modeled device — is a
16 MiB state, so per-gate memory traffic dominates the cost of every
workload built on top (shot sampling, GHZ calibration checks, the
VQE/QAOA loops, the 146-day operations run).

Kernel dispatch
---------------
:meth:`StateVector.apply_matrix` routes each operator to the cheapest
kernel that handles it:

* **1-qubit kernels** (:meth:`StateVector._apply_1q`): the state is
  viewed as ``(high, 2, low)`` with ``low = 2^q`` — a pure reshape, no
  axis movement or copy.  Diagonal matrices (Z, S, T, RZ, P) become one
  or two in-place elementwise multiplies; anti-diagonal matrices (X, Y)
  a scaled half-swap; the general case two half-state AXPY updates.
* **2-qubit kernels** (:meth:`StateVector._apply_2q`): the state is
  viewed as ``(high, 2, mid, 2, low)`` exposing both operand bits as
  axes.  Diagonal matrices (CZ, CP, RZZ) are elementwise multiplies on
  quarter slices; rows of the 4×4 matrix that act as the identity (the
  control-off subspace of CX, the fixed points of SWAP) are skipped
  entirely, so permutation-like gates touch only the slices they move.
* **generic fallback** (:meth:`StateVector.apply_matrix_generic`): the
  original ``moveaxis``-based contraction, kept for k-qubit operators
  and as the equivalence-test reference.  Setting the class attribute
  :attr:`StateVector.use_fast_kernels` to ``False`` forces every
  application through it (the perf harness uses this to measure the
  seed-engine baseline).

Measurement helpers (:meth:`marginal_probability_one`,
:meth:`collapse`) operate on the same bit-sliced views and never
materialize the full ``2^n`` probability tensor; :meth:`sample`
extracts outcome bits with a single vectorized shift-and-mask.

Conventions
-----------
* little-endian: basis index ``i = Σ_q b_q · 2^q`` (qubit 0 is the LSB);
* two-qubit matrices are indexed ``i = b_{q1}·2 + b_{q0}`` for operands
  ``(q0, q1)``, matching :mod:`repro.circuits.gates`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.errors import SimulationError
from repro.utils.rng import RandomState, as_rng

_PAULIS: Dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

#: Widest state the dense engine will allocate (a 1 GiB amplitude
#: vector).  The sampler's automatic stabilizer routing keys off this
#: same constant, so raising it moves both limits together.
DENSE_QUBIT_LIMIT = 26


def sorted_diagonal(
    diagonal: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> Tuple[np.ndarray, List[int]]:
    """Validate a ``2^k``-entry diagonal table and re-index it so bit
    *j* of the table index corresponds to the *j*-th smallest operand.

    Returns ``(diag, sorted_qubits)``.  Shared by the scalar
    :meth:`StateVector.apply_diagonal` kernel and its batched variant
    (:class:`repro.simulator.batched.BatchedStateVector`), so the two
    agree on the operand convention by construction.
    """
    k = len(qubits)
    diag = np.asarray(diagonal, dtype=complex).reshape(-1)
    if diag.shape != (1 << k,):
        raise SimulationError(
            f"diagonal length {diag.size} does not match {k} qubits"
        )
    if len(set(qubits)) != k:
        raise SimulationError(f"operands must be distinct, got {tuple(qubits)}")
    for q in qubits:
        if not 0 <= q < num_qubits:
            raise SimulationError(
                f"qubit {q} out of range for {num_qubits}-qubit state"
            )
    order = sorted(range(k), key=lambda j: qubits[j])
    if order != list(range(k)):
        # Re-index so bit j corresponds to the j-th smallest operand.
        idx = np.arange(1 << k)
        src = np.zeros(1 << k, dtype=np.int64)
        for new_bit, old_bit in enumerate(order):
            src |= ((idx >> new_bit) & 1) << old_bit
        diag = diag[src]
    return diag, sorted(qubits)


def placement_permutation(
    perm: Optional[Sequence[int]],
    qubits: Iterable[int],
    tile_qubits: int,
    num_qubits: int,
) -> Optional[List[int]]:
    """The minimal-move logical→physical permutation that places every
    qubit in *qubits* below *tile_qubits*, starting from *perm*
    (``None`` = canonical).  Returns ``None`` when the current layout
    already satisfies the placement.

    Each misplaced qubit swaps positions with whichever qubit currently
    owns a free low slot, so unrelated qubits move at most once.  Shared
    by :meth:`StateVector.remap_low` and its batched counterpart so the
    two agree on remap moves (and therefore on plan schedules) by
    construction.
    """
    current = list(perm) if perm is not None else list(range(num_qubits))
    need = [q for q in qubits if current[q] >= tile_qubits]
    if not need:
        return None
    wanted = set(qubits)
    owner = [0] * num_qubits
    for q, p in enumerate(current):
        owner[p] = q
    free = iter(p for p in range(tile_qubits) if owner[p] not in wanted)
    for q in need:
        p = next(free)
        displaced, high = owner[p], current[q]
        current[q], current[displaced] = p, high
        owner[p], owner[high] = q, displaced
    return current


def permutation_transpose_order(
    old: Sequence[int], new: Sequence[int], num_qubits: int
) -> List[int]:
    """Tensor-axis order moving amplitudes from layout *old* to *new*.

    Axis ``n-1-p`` of the ``(2,)*n`` view carries physical bit *p*;
    logical qubit *q* must move from axis ``n-1-old[q]`` to axis
    ``n-1-new[q]``, which is exactly ``order[n-1-new[q]] = n-1-old[q]``
    under NumPy's ``transpose`` convention."""
    order = [0] * num_qubits
    for q in range(num_qubits):
        order[num_qubits - 1 - new[q]] = num_qubits - 1 - old[q]
    return order


class StateVector:
    """A mutable n-qubit pure state.

    Created in ``|0…0⟩`` unless an explicit amplitude vector is given.
    """

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None) -> None:
        if num_qubits < 1:
            raise SimulationError("state needs at least one qubit")
        if num_qubits > DENSE_QUBIT_LIMIT:
            raise SimulationError(
                f"{num_qubits} qubits exceeds the dense-state limit "
                f"({DENSE_QUBIT_LIMIT})"
            )
        self.num_qubits = int(num_qubits)
        dim = 1 << self.num_qubits
        if data is None:
            self._data = np.zeros(dim, dtype=complex)
            self._data[0] = 1.0
        else:
            arr = np.asarray(data, dtype=complex).reshape(-1)
            if arr.shape != (dim,):
                raise SimulationError(
                    f"state vector for {num_qubits} qubits must have length {dim}, "
                    f"got {arr.shape}"
                )
            self._data = arr.copy()

    # -- basic accessors ------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The amplitude vector in canonical qubit order (a live view;
        mutate with care).  Unwinds any pending lazy qubit remap first,
        so callers never observe a permuted layout."""
        self.unwind_remap()
        return self._data

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2^n``."""
        return self._data.size

    def copy(self) -> "StateVector":
        """An independent deep copy of the state."""
        # Fast path: a single allocation.  Routing through __init__ would
        # copy the amplitude array twice (once here, once in the ``data``
        # validation branch).
        dup = StateVector.__new__(StateVector)
        dup.num_qubits = self.num_qubits
        dup._data = self._data.copy()
        dup._perm = self._perm  # forks stay lazily remapped
        return dup

    def norm(self) -> float:
        """Euclidean norm of the amplitude vector (1 for a valid state)."""
        self.unwind_remap()
        return float(np.linalg.norm(self._data))

    def normalize(self) -> "StateVector":
        """Rescale to unit norm in place; raises on a numerically zero state."""
        n = self.norm()
        if n < 1e-300:
            raise SimulationError("cannot normalize a zero state")
        self._data /= n
        return self

    def probabilities(self) -> np.ndarray:
        """Basis-state probabilities ``|ψ_i|²``."""
        self.unwind_remap()
        return np.abs(self._data) ** 2

    def fidelity(self, other: "StateVector") -> float:
        """``|⟨self|other⟩|²``."""
        if other.num_qubits != self.num_qubits:
            raise SimulationError("fidelity requires equal qubit counts")
        self.unwind_remap()
        other.unwind_remap()
        return float(abs(np.vdot(self._data, other._data)) ** 2)

    # -- lazy qubit remap -----------------------------------------------------

    #: Logical→physical qubit permutation, or ``None`` when the layout is
    #: canonical.  ``_perm[q]`` is the physical bit position currently
    #: holding logical qubit *q*.  The blocked sweep executor
    #: (:mod:`repro.simulator.engines.dense`) moves high-order operands
    #: into tile-local positions via :meth:`remap_low`; the permutation
    #: is applied transparently to later ``apply_*`` operands and unwound
    #: at every observation boundary (``data``, norms, probabilities,
    #: measurement, sampling), so RNG draw order and seeded counts are
    #: untouched.  A class-level default keeps ``__new__``-based
    #: construction sites (copy / row aliases) canonical for free.
    _perm: Optional[Tuple[int, ...]] = None

    def remap_low(self, qubits: Iterable[int], tile_qubits: int) -> None:
        """Permute the physical layout so every listed logical qubit
        occupies a position below *tile_qubits* (one transpose pass,
        ~0.1–0.2 full gate applications; a no-op when already placed)."""
        target = placement_permutation(
            self._perm, qubits, tile_qubits, self.num_qubits
        )
        if target is not None:
            self._apply_permutation(target)

    def unwind_remap(self) -> None:
        """Restore the canonical layout (a no-op when already canonical)."""
        if self._perm is not None:
            self._apply_permutation(range(self.num_qubits))

    def _apply_permutation(self, new_perm: Sequence[int]) -> None:
        """Physically transpose amplitudes from the current layout into
        *new_perm* and record it (``None`` when it is the identity)."""
        n = self.num_qubits
        old = self._perm if self._perm is not None else tuple(range(n))
        new = tuple(new_perm)
        identity = tuple(range(n))
        if new != old:
            order = permutation_transpose_order(old, new, n)
            tensor = self._data.reshape((2,) * n).transpose(order)
            self._data = np.ascontiguousarray(tensor).reshape(-1)
        self._perm = None if new == identity else new

    def _physical(self, qubits: Sequence[int]) -> Sequence[int]:
        """Translate logical operands into the current physical layout.
        Out-of-range operands pass through untouched so the kernels'
        own validation raises the canonical error."""
        perm = self._perm
        if perm is None:
            return qubits
        return [perm[q] if 0 <= q < len(perm) else q for q in qubits]

    # -- gate application -------------------------------------------------------

    def _axis(self, qubit: int) -> int:
        """Tensor axis of *qubit* in the C-ordered ``(2,)*n`` view."""
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit state"
            )
        return self.num_qubits - 1 - qubit

    #: Class-level dispatch switch: ``True`` routes 1q/2q operators to the
    #: specialized in-place kernels; ``False`` forces everything through
    #: :meth:`apply_matrix_generic` (the perf harness toggles this to time
    #: the seed-engine baseline).
    use_fast_kernels: bool = True

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "StateVector":
        """Apply a ``2^k × 2^k`` unitary (or Kraus operator) to *qubits*.

        ``qubits`` lists operands least-significant-first with respect to
        the matrix's own index convention.  One- and two-qubit operators
        dispatch to specialized bit-sliced kernels; larger operators fall
        back to :meth:`apply_matrix_generic`.
        """
        k = len(qubits)
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (1 << k, 1 << k):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        if len(set(qubits)) != k:
            raise SimulationError(f"operands must be distinct, got {tuple(qubits)}")
        for q in qubits:
            self._axis(q)  # range check
        phys = self._physical(qubits)
        if self.use_fast_kernels:
            if k == 1:
                return self._apply_1q(matrix, phys[0])
            if k == 2:
                return self._apply_2q(matrix, phys[0], phys[1])
        return self._apply_generic(matrix, phys)

    def apply_matrix_generic(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "StateVector":
        """The generic k-qubit ``moveaxis`` contraction (reference path).

        Semantically identical to :meth:`apply_matrix` but allocates the
        full contracted state; the equivalence suite pins the fast
        kernels against it.
        """
        return self._apply_generic(matrix, self._physical(qubits))

    def _apply_generic(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "StateVector":
        """:meth:`apply_matrix_generic` on already-physical operands."""
        matrix = np.asarray(matrix, dtype=complex)
        k = len(qubits)
        n = self.num_qubits
        tensor = self._data.reshape((2,) * n)
        # Move operand axes to the front, most-significant operand first,
        # so the C-order flattening of the leading block matches the
        # matrix convention (index = Σ b_{q_j} 2^j).
        axes = [self._axis(q) for q in reversed(qubits)]
        tensor = np.moveaxis(tensor, axes, range(k))
        block = tensor.reshape(1 << k, -1)
        block = matrix @ block
        tensor = block.reshape((2,) * n)
        tensor = np.moveaxis(tensor, range(k), axes)
        self._data = np.ascontiguousarray(tensor).reshape(-1)
        return self

    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> "StateVector":
        """In-place single-qubit kernel on the ``(high, 2, low)`` view."""
        view = self._data.reshape(-1, 2, 1 << qubit)
        a = view[:, 0, :]
        b = view[:, 1, :]
        m00, m01 = matrix[0, 0], matrix[0, 1]
        m10, m11 = matrix[1, 0], matrix[1, 1]
        if m01 == 0.0 and m10 == 0.0:  # diagonal: Z, S, T, RZ, P
            if m00 != 1.0:
                a *= m00
            if m11 != 1.0:
                b *= m11
        elif m00 == 0.0 and m11 == 0.0:  # anti-diagonal: X, Y
            new_a = m01 * b
            view[:, 1, :] = m10 * a if m10 != 1.0 else a
            view[:, 0, :] = new_a
        elif (1 << qubit) >= 16:
            # Dense, wide inner block: one batched BLAS contraction
            # ((2,2) @ (2, low) per high-index) beats four AXPY passes.
            self._data = np.matmul(matrix, view).reshape(-1)
        elif qubit == 0:
            # Inner block of width 1: einsum handles the interleaved
            # layout better than strided AXPY or tiny-batch matmul.
            out = np.empty_like(view)
            np.einsum("ij,ajb->aib", matrix, view, out=out)
            self._data = out.reshape(-1)
        else:
            new_a = m00 * a + m01 * b
            new_b = m10 * a + m11 * b
            view[:, 0, :] = new_a
            view[:, 1, :] = new_b
        return self

    def _apply_2q(self, matrix: np.ndarray, q0: int, q1: int) -> "StateVector":
        """In-place two-qubit kernel on the ``(high, 2, mid, 2, low)`` view.

        Matrix sub-index ``j`` has bit 0 = operand ``q0``, bit 1 =
        operand ``q1``; ``slices[j]`` is the corresponding state slice
        regardless of which operand is the more significant qubit.
        """
        ql, qh = (q0, q1) if q0 < q1 else (q1, q0)
        view = self._data.reshape(-1, 2, 1 << (qh - ql - 1), 2, 1 << ql)
        if q0 < q1:
            slices = [view[:, j >> 1, :, j & 1, :] for j in range(4)]
        else:
            slices = [view[:, j & 1, :, j >> 1, :] for j in range(4)]
        off_diagonal = [
            (i, j) for i in range(4) for j in range(4) if i != j and matrix[i, j] != 0.0
        ]
        if not off_diagonal:  # diagonal: CZ, CP, RZZ
            for j in range(4):
                d = matrix[j, j]
                if d != 1.0:
                    slices[j] *= d
            return self
        # Rows acting as the identity (CX control-off subspace, SWAP fixed
        # points) are never written; only sources feeding a written row
        # need saving, and only if that source row is itself rewritten.
        active = [
            i
            for i in range(4)
            if not (
                matrix[i, i] == 1.0
                and all(matrix[i, j] == 0.0 for j in range(4) if j != i)
            )
        ]
        sources = {j for i in active for j in range(4) if matrix[i, j] != 0.0}
        saved = {
            j: (slices[j].copy() if j in active else slices[j]) for j in sources
        }
        for i in active:
            acc: Optional[np.ndarray] = None
            for j in range(4):
                c = matrix[i, j]
                if c == 0.0:
                    continue
                term = saved[j] if c == 1.0 else c * saved[j]
                if acc is None:
                    acc = term if term is not saved[j] else term.copy()
                else:
                    acc += term
            slices[i][...] = acc if acc is not None else 0.0
        return self

    def apply_diagonal(
        self, diagonal: np.ndarray, qubits: Sequence[int]
    ) -> "StateVector":
        """Apply a ``2^k``-entry diagonal operator to *qubits* in one
        elementwise pass over the state.

        *diagonal* is indexed little-endian over the operand list (bit
        *j* of the index is ``qubits[j]``), the same convention as
        :meth:`apply_matrix`.  This is the kernel behind diagonal-run
        fusion: a whole run of adjacent diagonal gates (Z/S/T/RZ/CZ/CP/
        RZZ…) collapses to one precomputed table and a single broadcast
        multiply, instead of one full-state traversal per gate.
        """
        diag, sorted_qs = sorted_diagonal(
            diagonal, self._physical(qubits), self.num_qubits
        )
        # C-order reshape puts the table's most-significant bit (the
        # largest operand qubit) on the leading broadcast axis — which
        # is exactly that qubit's tensor axis, since axis = n-1-q.
        shape = [1] * self.num_qubits
        for q in sorted_qs:
            shape[self._axis(q)] = 2
        tensor = self._data.reshape((2,) * self.num_qubits)
        tensor *= diag.reshape(shape)
        return self

    def apply_gate(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "StateVector":
        """Apply a library gate by mnemonic."""
        from repro.circuits import gates as gate_lib

        spec = gate_lib.spec(name)
        if spec.directive:
            raise SimulationError(
                f"{name!r} is a directive, not a unitary; use the sampler"
            )
        return self.apply_matrix(spec.matrix(params), qubits)

    def apply_pauli(self, pauli: str, qubits: Sequence[int]) -> "StateVector":
        """Apply a Pauli string like ``"XZY"`` to the listed qubits
        (string index i acts on ``qubits[i]``)."""
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        for label, q in zip(pauli.upper(), qubits):
            if label == "I":
                continue
            try:
                self.apply_matrix(_PAULIS[label], [q])
            except KeyError:
                raise SimulationError(f"unknown Pauli label {label!r}") from None
        return self

    # -- measurement ------------------------------------------------------------

    def marginal_probability_one(self, qubit: int) -> float:
        """``P(qubit = 1)``, computed on the half-state slice alone (the
        full ``2^n`` probability tensor is never materialized)."""
        self._axis(qubit)  # range check
        self.unwind_remap()
        ones = self._data.reshape(-1, 2, 1 << qubit)[:, 1, :]
        return float(np.real(np.vdot(ones, ones)))

    def collapse(self, qubit: int, outcome: int) -> float:
        """Project *qubit* onto *outcome* and renormalize.

        Returns the pre-collapse probability of the outcome.  Raises if
        that probability is (numerically) zero.
        """
        p1 = self.marginal_probability_one(qubit)
        prob = p1 if outcome else 1.0 - p1
        if prob < 1e-15:
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto impossible outcome {outcome}"
            )
        view = self._data.reshape(-1, 2, 1 << qubit)
        view[:, 1 - outcome, :] = 0.0
        self._data *= 1.0 / math.sqrt(prob)
        return prob

    def measure(self, qubit: int, rng: RandomState = None) -> int:
        """Projectively measure one qubit, collapsing the state."""
        r = as_rng(rng)
        p1 = self.marginal_probability_one(qubit)
        outcome = 1 if r.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def reset(self, qubit: int, rng: RandomState = None) -> "StateVector":
        """Measure-and-flip reset of one qubit to ``|0⟩``."""
        outcome = self.measure(qubit, rng)
        if outcome:
            self.apply_matrix(_PAULIS["X"], [qubit])
        return self

    def sample(
        self, shots: int, rng: RandomState = None, qubits: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Draw *shots* basis-state samples without collapsing.

        Returns an ``(shots, k)`` uint8 array of bits, column *j* being
        qubit ``qubits[j]`` (default: all qubits in index order).

        The fast engine builds the outcome CDF once and inverts it for
        all shots in one vectorized ``searchsorted`` — skipping the
        re-validation and re-accumulation ``rng.choice`` performs on
        every call, which the grouped sampler would otherwise pay once
        per trajectory group.  The inversion applies the exact
        floating-point pipeline ``rng.choice`` uses internally
        (normalize, ``cumsum``, divide by the last entry, search with
        ``side="right"``) after drawing the same ``shots`` uniforms, so
        outcomes *and* the consumed stream are bit-identical to the
        baseline engine's ``rng.choice`` path.
        """
        r = as_rng(rng)
        probs = self.probabilities()
        # Guard against drift from accumulated float error.
        probs = probs / probs.sum()
        if self.use_fast_kernels:
            cdf = np.cumsum(probs)
            cdf /= cdf[-1]
            u = r.random(int(shots))
            outcomes = np.searchsorted(cdf, u, side="right")
        else:
            outcomes = r.choice(probs.size, size=int(shots), p=probs)
        qs = (
            np.arange(self.num_qubits, dtype=np.int64)
            if qubits is None
            else np.asarray(list(qubits), dtype=np.int64)
        )
        # One vectorized shift-and-mask over the whole (shots, k) grid.
        return ((outcomes[:, None] >> qs[None, :]) & 1).astype(np.uint8)

    # -- observables --------------------------------------------------------------

    def expectation_pauli(self, pauli: str, qubits: Sequence[int]) -> float:
        """``⟨ψ| P |ψ⟩`` for a Pauli string on the listed qubits.

        Strings diagonal in the computational basis (I/Z only) are
        evaluated as a signed probability sum without copying the state;
        anything with X or Y content falls back to apply-and-overlap.
        """
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        labels = pauli.upper()
        for label in labels:
            if label not in "IXYZ":
                raise SimulationError(f"unknown Pauli label {label!r}")
        self.unwind_remap()
        if set(labels) <= {"I", "Z"}:
            signed = self.probabilities()
            for label, q in zip(labels, qubits):
                if label == "Z":
                    self._axis(q)  # range check
                    signed.reshape(-1, 2, 1 << q)[:, 1, :] *= -1.0
            return float(signed.sum())
        work = self.copy()
        work.apply_pauli(labels, qubits)
        return float(np.real(np.vdot(self._data, work._data)))

    def expectation_diagonal(self, diagonal: np.ndarray) -> float:
        """Expectation of an operator diagonal in the computational basis."""
        diag = np.asarray(diagonal, dtype=float).reshape(-1)
        if diag.shape != (self.dim,):
            raise SimulationError("diagonal length must equal state dimension")
        return float(np.dot(self.probabilities(), diag))

    def __repr__(self) -> str:
        return f"<StateVector {self.num_qubits} qubits, norm {self.norm():.6f}>"


def simulate_statevector(
    circuit: QuantumCircuit,
    *,
    initial: Optional[StateVector] = None,
    rng: RandomState = None,
) -> StateVector:
    """Run *circuit*'s unitary part, returning the final state.

    Measurements are *skipped* (sampling is the sampler's job); resets
    collapse stochastically using *rng*; barriers and delays are no-ops
    in the noiseless engine.
    """
    state = initial.copy() if initial is not None else StateVector(circuit.num_qubits)
    if state.num_qubits != circuit.num_qubits:
        raise SimulationError("initial state size does not match circuit")
    r = as_rng(rng)
    for inst in circuit:
        if inst.name in UNITARY_NOOPS:
            continue
        if inst.name == "reset":
            state.reset(inst.qubits[0], r)
            continue
        state.apply_matrix(inst.matrix(), inst.qubits)
    return state


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full ``2^n × 2^n`` unitary of a measurement-free circuit.

    Exponential in qubits — intended for the test suite (n ≤ 10).
    """
    n = circuit.num_qubits
    if n > 12:
        raise SimulationError("circuit_unitary is limited to 12 qubits")
    dim = 1 << n
    u = np.eye(dim, dtype=complex)
    for inst in circuit:
        if inst.name in ("barrier", "delay", "id"):
            continue
        if inst.is_directive:
            raise SimulationError(
                f"circuit_unitary cannot handle directive {inst.name!r}"
            )
        full = _embed(inst.matrix(), inst.qubits, n)
        u = full @ u
    return u


def _embed(matrix: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed a k-qubit matrix into the full Hilbert space."""
    state_dim = 1 << num_qubits
    out = np.zeros((state_dim, state_dim), dtype=complex)
    k = len(qubits)
    rest = [q for q in range(num_qubits) if q not in qubits]
    for col in range(state_dim):
        sub_col = 0
        for j, q in enumerate(qubits):
            sub_col |= ((col >> q) & 1) << j
        base = col
        for q in qubits:
            base &= ~(1 << q)
        col_vec = matrix[:, sub_col]
        for sub_row, amp in enumerate(col_vec):
            if amp == 0:
                continue
            row = base
            for j, q in enumerate(qubits):
                row |= ((sub_row >> j) & 1) << q
            out[row, col] += amp
    return out


def ghz_state(num_qubits: int) -> StateVector:
    """The ideal ``(|0…0⟩ + |1…1⟩)/√2`` state (Section 3.2's benchmark target)."""
    sv = StateVector(num_qubits)
    sv.data[0] = 1.0 / math.sqrt(2.0)
    sv.data[-1] = 1.0 / math.sqrt(2.0)
    sv.data[1:-1] = 0.0
    return sv


__all__ = [
    "StateVector",
    "simulate_statevector",
    "circuit_unitary",
    "ghz_state",
    "sorted_diagonal",
    "placement_permutation",
    "permutation_transpose_order",
]
