"""Stabilizer tableau engine for Clifford circuits (Aaronson–Gottesman).

The dense state-vector engine caps out at 26 qubits (a 1 GiB state), yet
the paper's flagship workloads — GHZ calibration circuits, readout
checks, and the grouped noisy sampling behind the 146-day operations run
— are Clifford circuits under Pauli noise.  Those are exactly the
circuits the Gottesman–Knill theorem makes polynomial: an n-qubit
stabilizer state is ``2n`` Pauli rows of ``2n`` bits each, and every
Clifford gate, Pauli error injection, and computational-basis
measurement is an ``O(n)``–``O(n²)`` bit-matrix update.

Representation
--------------
:class:`Tableau` stores the phase-tracked binary tableau of
Aaronson & Gottesman (PRA 70, 052328): rows ``0..n-1`` are destabilizer
generators, rows ``n..2n-1`` stabilizer generators.  Row *i* encodes the
Pauli ``(−1)^{r_i} · Π_q P_q`` with ``P_q ∈ {I, X, Z, Y}`` for
``(x_q, z_q) ∈ {(0,0), (1,0), (0,1), (1,1)}``.  Gate conjugations update
whole bit-columns with vectorized numpy ops; row products use the
``rowsum`` phase bookkeeping (the mod-4 ``g`` function) from the paper.

Sampling
--------
Measurement outcomes of a stabilizer state in the computational basis
are uniform over a coset ``c ⊕ span(B)`` of a binary subspace.
:class:`CosetSupport` extracts that coset once per circuit *structure*
by Gaussian elimination (the X-block reduction that isolates the Z-only
stabilizer subgroup, then an F₂ solve), tracking the phase bits
*symbolically* so that trajectories differing only by injected Pauli
errors — which flip signs but never change the X/Z structure — reuse one
factorization and solve their own offset in ``O(n²)`` bit-ops.
:meth:`Tableau.sample` then maps uniform draws through the sorted coset,
reproducing bit-for-bit what the dense engine's CDF inversion produces
on the same seeded RNG (see the method docstring for the contract).

Everything here is pure numpy on uint8 bit-matrices; no new
dependencies.  At :data:`PACKED_TABLEAU_THRESHOLD` qubits and beyond,
:func:`make_tableau` swaps in the bit-packed word-parallel
representation (:mod:`repro.simulator.stabilizer_packed`), which is
bit-identical in behaviour and scales Clifford sampling past 1000
qubits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates as gate_lib
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.errors import SimulationError
from repro.utils.rng import RandomState, as_rng

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulator.statevector import StateVector

#: Coset dimensions up to this bound sample through a single uniform draw
#: per shot (bit-compatible with the dense engine's CDF inversion);
#: larger cosets draw one uniform per free bit instead.  48 keeps the
#: ``u · 2^k`` index computation exact in double precision.
_EXACT_COSET_BITS = 48

#: Width at which :func:`make_tableau` switches from the uint8 tableau to
#: the bit-packed word-parallel one under the ``"auto"`` policy.  Below
#: it the two implementations are within noise of each other (numpy
#: dispatch overhead dominates either way); above it the packed
#: representation's O(1) big-int conjugations and word-wide coset
#: elimination win by growing margins — see ``docs/architecture.md``.
PACKED_TABLEAU_THRESHOLD = 64

#: Process-global tableau implementation policy: ``"auto"`` (packed at
#: and above :data:`PACKED_TABLEAU_THRESHOLD`), ``"packed"``, or
#: ``"unpacked"``.  Toggle via ``engine_mode(..., tableau_impl=...)``
#: rather than assigning directly.
TABLEAU_IMPL = "auto"

#: The recognized tableau implementation policies.
TABLEAU_IMPLS = ("auto", "packed", "unpacked")


def make_tableau(num_qubits: int, impl: Optional[str] = None):
    """Construct a fresh ``|0…0⟩`` tableau under the active implementation
    policy.

    The factory behind :class:`~repro.simulator.engines.tableau.TableauEngine`:
    returns a :class:`Tableau` or a
    :class:`~repro.simulator.stabilizer_packed.PackedTableau` depending on
    *impl* (default: the process-global :data:`TABLEAU_IMPL`).  Both
    implementations are bit-identical in behaviour, so the choice is purely
    a performance policy.
    """
    if impl is None:
        impl = TABLEAU_IMPL
    if impl not in TABLEAU_IMPLS:
        raise SimulationError(
            f"unknown tableau implementation {impl!r}; expected one of {TABLEAU_IMPLS}"
        )
    if impl == "packed" or (
        impl == "auto" and num_qubits >= PACKED_TABLEAU_THRESHOLD
    ):
        from repro.simulator.stabilizer_packed import PackedTableau

        return PackedTableau(num_qubits)
    return Tableau(num_qubits)


def _g4(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray) -> np.ndarray:
    """Aaronson–Gottesman ``g`` exponent, elementwise.

    The power of ``i`` produced when multiplying the single-qubit Pauli
    ``(x1, z1)`` by ``(x2, z2)``; values in ``{−1, 0, +1}``.  Inputs are
    0/1 arrays broadcast against each other.
    """
    x1 = x1.astype(np.int64)
    z1 = z1.astype(np.int64)
    x2 = x2.astype(np.int64)
    z2 = z2.astype(np.int64)
    return (
        x1 * z1 * (z2 - x2)
        + x1 * (1 - z1) * z2 * (2 * x2 - 1)
        + (1 - x1) * z1 * x2 * (1 - 2 * z2)
    )


class Tableau:
    """A mutable n-qubit stabilizer state in phase-tracked tableau form.

    Created in ``|0…0⟩`` (destabilizers ``X_i``, stabilizers ``Z_i``).
    Gate application goes through :meth:`apply` / :meth:`apply_instruction`;
    the supported primitives are ``h s sdg x y z cx cz swap`` — every
    library Clifford gate reaches them via
    :func:`repro.circuits.gates.clifford_primitives`.
    """

    def __init__(self, num_qubits: int) -> None:
        if num_qubits < 1:
            raise SimulationError("tableau needs at least one qubit")
        self.num_qubits = int(num_qubits)
        n = self.num_qubits
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        self.x[np.arange(n), np.arange(n)] = 1            # destabilizers X_i
        self.z[n + np.arange(n), np.arange(n)] = 1        # stabilizers Z_i

    def copy(self) -> "Tableau":
        """An independent deep copy (``O(n²)`` bits — cheap)."""
        dup = Tableau.__new__(Tableau)
        dup.num_qubits = self.num_qubits
        dup.x = self.x.copy()
        dup.z = self.z.copy()
        dup.r = self.r.copy()
        return dup

    def _check_qubit(self, qubit: int) -> int:
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit tableau"
            )
        return int(qubit)

    # -- gate conjugations (vectorized over all 2n rows) -----------------------

    def _h(self, q: int) -> None:
        xq = self.x[:, q].copy()
        self.r ^= xq & self.z[:, q]
        self.x[:, q] = self.z[:, q]
        self.z[:, q] = xq

    def _s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def _sdg(self, q: int) -> None:
        self.r ^= self.x[:, q] & (self.z[:, q] ^ 1)
        self.z[:, q] ^= self.x[:, q]

    def _x(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def _y(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    def _z(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def _cx(self, control: int, target: int) -> None:
        xc, zc = self.x[:, control], self.z[:, control]
        xt, zt = self.x[:, target], self.z[:, target]
        self.r ^= xc & zt & (xt ^ zc ^ 1)
        self.x[:, target] = xt ^ xc
        self.z[:, control] = zc ^ zt

    def _cz(self, a: int, b: int) -> None:
        # Direct conjugation: X_a → X_a Z_b, X_b → Z_a X_b, Z's fixed;
        # the sign flips exactly when both X bits are set and the Z bits
        # differ (e.g. CZ·X_aY_b·CZ = −Y_aX_b).  One pass, no copies —
        # CZ is the native 2q gate of the modeled QPU, so this is the
        # hottest tableau update.
        xa, xb = self.x[:, a], self.x[:, b]
        self.r ^= xa & xb & (self.z[:, a] ^ self.z[:, b])
        self.z[:, a] ^= xb
        self.z[:, b] ^= xa

    def _swap(self, a: int, b: int) -> None:
        self.x[:, [a, b]] = self.x[:, [b, a]]
        self.z[:, [a, b]] = self.z[:, [b, a]]

    _PRIMITIVES = {
        "h": _h,
        "s": _s,
        "sdg": _sdg,
        "x": _x,
        "y": _y,
        "z": _z,
        "cx": _cx,
        "cz": _cz,
        "swap": _swap,
    }

    def apply(
        self, name: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "Tableau":
        """Apply a library gate by mnemonic (must be Clifford; rotation
        gates qualify at multiples of π/2)."""
        prims = gate_lib.clifford_primitives(name, params)
        if prims is None:
            raise SimulationError(
                f"gate {name!r} with params {tuple(params)} is not Clifford; "
                "the tableau engine cannot apply it"
            )
        qs = [self._check_qubit(q) for q in qubits]
        for prim, slots in prims:
            Tableau._PRIMITIVES[prim](self, *(qs[i] for i in slots))
        return self

    def apply_instruction(self, instruction: Instruction) -> "Tableau":
        """Apply one circuit instruction (unitary Clifford gates only).

        Uses the instruction's memoized primitive decomposition
        (:meth:`~repro.circuits.circuit.Instruction.clifford_primitives`),
        so trajectory replays never re-snap angles or re-resolve the
        registry.
        """
        prims = instruction.clifford_primitives()
        if prims is None:
            raise SimulationError(
                f"instruction {instruction!r} is not Clifford; "
                "route this circuit through the state-vector engine"
            )
        qs = [self._check_qubit(q) for q in instruction.qubits]
        for prim, slots in prims:
            Tableau._PRIMITIVES[prim](self, *(qs[i] for i in slots))
        return self

    def apply_instructions(self, instructions: Sequence[Instruction]) -> "Tableau":
        """Apply a window of instructions (unitary no-ops skipped) — the
        bulk form the engine layer drives replay through, shared with
        the packed tableau."""
        for inst in instructions:
            if inst.name in gate_lib.UNITARY_NOOPS:
                continue
            self.apply_instruction(inst)
        return self

    def apply_pauli(self, pauli: str, qubits: Sequence[int]) -> "Tableau":
        """Inject a Pauli string (string index *i* acts on ``qubits[i]``).

        Pauli conjugation only flips row phases — the X/Z structure of
        the tableau is untouched, which is what lets error trajectories
        share one :class:`CosetSupport`.
        """
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        for label, q in zip(pauli.upper(), qubits):
            if label == "I":
                continue
            if label not in "XYZ":
                raise SimulationError(f"unknown Pauli label {label!r}")
            Tableau._PRIMITIVES[label.lower()](self, self._check_qubit(q))
        return self

    # -- row products ----------------------------------------------------------

    def _rowsum_many(self, rows: np.ndarray, src: int) -> None:
        """``row_h ← row_src · row_h`` for every *h* in *rows* (vectorized)."""
        g = _g4(self.x[src][None, :], self.z[src][None, :],
                self.x[rows], self.z[rows]).sum(axis=1)
        phase = (2 * self.r[rows].astype(np.int64) + 2 * int(self.r[src]) + g) % 4
        self.r[rows] = (phase >> 1).astype(np.uint8)
        self.x[rows] ^= self.x[src]
        self.z[rows] ^= self.z[src]

    def _accumulate(
        self, sx: np.ndarray, sz: np.ndarray, phase4: int, src: int
    ) -> int:
        """Multiply scratch row ``(sx, sz, i^phase4)`` by tableau row *src*.

        Mutates *sx*/*sz* in place and returns the new mod-4 phase
        exponent (kept mod 4 because intermediate products may pass
        through ``±i`` even when the final result is Hermitian).
        """
        g = int(_g4(self.x[src], self.z[src], sx, sz).sum())
        phase4 = (phase4 + 2 * int(self.r[src]) + g) % 4
        sx ^= self.x[src]
        sz ^= self.z[src]
        return phase4

    def _scratch_pair(self, slot: str) -> Tuple[np.ndarray, np.ndarray]:
        """A zeroed instance-level ``(sx, sz)`` scratch-row pair.

        The scratch-row reductions (:meth:`_deterministic_outcome`,
        :meth:`expectation_pauli`) run once per measurement or Pauli
        term, so allocating fresh ``np.zeros`` buffers every call showed
        up in the per-shot and expectation profiles; the buffers are
        kept on the instance (lazily, keyed by *slot* so reductions
        needing two independent pairs never alias) and zero-filled on
        reuse.
        """
        pair = self.__dict__.get(slot)
        if pair is None or pair[0].shape[0] != self.num_qubits:
            pair = (
                np.zeros(self.num_qubits, dtype=np.uint8),
                np.zeros(self.num_qubits, dtype=np.uint8),
            )
            self.__dict__[slot] = pair
        else:
            pair[0].fill(0)
            pair[1].fill(0)
        return pair

    # -- measurement -----------------------------------------------------------

    def _deterministic_outcome(self, qubit: int) -> int:
        """Outcome of measuring *qubit* when no stabilizer anticommutes
        with ``Z_qubit`` (the Aaronson–Gottesman scratch-row reduction)."""
        n = self.num_qubits
        sx, sz = self._scratch_pair("_scratch_det")
        phase4 = 0
        for i in np.nonzero(self.x[:n, qubit])[0]:
            phase4 = self._accumulate(sx, sz, phase4, n + int(i))
        if phase4 not in (0, 2):
            raise SimulationError("tableau corrupted: non-Hermitian Z product")
        return phase4 >> 1

    def marginal_probability_one(self, qubit: int) -> float:
        """``P(qubit = 1)`` — exactly ``0.0``, ``0.5`` or ``1.0`` for a
        stabilizer state."""
        q = self._check_qubit(qubit)
        n = self.num_qubits
        if self.x[n:, q].any():
            return 0.5
        return float(self._deterministic_outcome(q))

    def _collapse_random(self, qubit: int, outcome: int) -> None:
        """Measurement update for the random-outcome case."""
        n = self.num_qubits
        p = n + int(np.nonzero(self.x[n:, qubit])[0][0])
        others = np.nonzero(self.x[:, qubit])[0]
        others = others[others != p]
        if others.size:
            self._rowsum_many(others, p)
        self.x[p - n] = self.x[p]
        self.z[p - n] = self.z[p]
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, qubit] = 1
        self.r[p] = np.uint8(outcome)

    def collapse(self, qubit: int, outcome: int) -> float:
        """Project *qubit* onto *outcome*; returns the pre-collapse
        probability of that outcome (raises if it is zero)."""
        q = self._check_qubit(qubit)
        n = self.num_qubits
        if self.x[n:, q].any():
            self._collapse_random(q, int(outcome))
            return 0.5
        det = self._deterministic_outcome(q)
        if det != int(outcome):
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto impossible outcome {outcome}"
            )
        return 1.0

    def measure(self, qubit: int, rng: RandomState = None) -> int:
        """Projectively measure one qubit, collapsing the tableau.

        Always consumes exactly one uniform draw from *rng* — also for
        deterministic outcomes — mirroring the dense engine's
        :meth:`~repro.simulator.statevector.StateVector.measure`
        (``outcome = u < P(1)``), so seeded per-shot runs stay aligned
        between the two engines.
        """
        q = self._check_qubit(qubit)
        u = as_rng(rng).random()
        n = self.num_qubits
        if self.x[n:, q].any():
            outcome = 1 if u < 0.5 else 0
            self._collapse_random(q, outcome)
            return outcome
        return self._deterministic_outcome(q)

    def reset(self, qubit: int, rng: RandomState = None) -> "Tableau":
        """Measure-and-flip reset of one qubit to ``|0⟩``."""
        if self.measure(qubit, rng):
            self._x(self._check_qubit(qubit))
        return self

    # -- observables -----------------------------------------------------------

    def expectation_pauli(self, pauli: str, qubits: Sequence[int]) -> float:
        """``⟨ψ| P |ψ⟩`` for a Pauli string — exactly ``−1.0``, ``0.0`` or
        ``+1.0`` on a stabilizer state.

        Zero when *P* anticommutes with any stabilizer generator;
        otherwise *P* is (up to sign) an element of the stabilizer group
        and the sign falls out of the destabilizer-indexed product, the
        same scratch-row reduction as a deterministic measurement.
        """
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        n = self.num_qubits
        px, pz = self._scratch_pair("_scratch_pauli")
        for label, q in zip(pauli.upper(), qubits):
            qi = self._check_qubit(q)
            if label == "I":
                continue
            if label == "X":
                px[qi] ^= 1
            elif label == "Y":
                px[qi] ^= 1
                pz[qi] ^= 1
            elif label == "Z":
                pz[qi] ^= 1
            else:
                raise SimulationError(f"unknown Pauli label {label!r}")
        if not (px.any() or pz.any()):
            return 1.0
        anti_stab = ((self.x[n:] & pz) ^ (self.z[n:] & px)).sum(axis=1) % 2
        if anti_stab.any():
            return 0.0
        anti_destab = ((self.x[:n] & pz) ^ (self.z[:n] & px)).sum(axis=1) % 2
        sx, sz = self._scratch_pair("_scratch_det")
        phase4 = 0
        for i in np.nonzero(anti_destab)[0]:
            phase4 = self._accumulate(sx, sz, phase4, n + int(i))
        if not (np.array_equal(sx, px) and np.array_equal(sz, pz)):
            raise SimulationError("tableau corrupted: Pauli reconstruction failed")
        if phase4 not in (0, 2):
            raise SimulationError("tableau corrupted: non-Hermitian stabilizer")
        return 1.0 if phase4 == 0 else -1.0

    def expectation_z(self, qubits: Sequence[int]) -> float:
        """Expectation of ``Z⊗…⊗Z`` on the listed qubits (the estimator
        the hybrid layer contracts Hamiltonian terms through)."""
        return self.expectation_pauli("Z" * len(qubits), qubits)

    # -- sampling --------------------------------------------------------------

    def coset_support(self) -> "CosetSupport":
        """The coset factorization of this tableau's X/Z structure (the
        polymorphic hook shared with the packed tableau, whose
        factorization type differs)."""
        return CosetSupport(self)

    def sample(
        self,
        shots: int,
        rng: RandomState = None,
        qubits: Optional[Sequence[int]] = None,
        *,
        support: Optional["CosetSupport"] = None,
    ) -> np.ndarray:
        """Draw *shots* computational-basis samples without collapsing.

        Returns an ``(shots, k)`` uint8 array, column *j* being qubit
        ``qubits[j]`` (default all qubits in index order) — the same
        contract as :meth:`StateVector.sample`.

        The outcome set of a stabilizer state is a coset ``c ⊕ span(B)``
        with uniform weights.  When the coset dimension fits in
        ``_EXACT_COSET_BITS``, each shot consumes one uniform draw ``u``
        and selects the ``⌊u·2^k⌋``-th smallest coset element — exactly
        the index the dense engine's ``rng.choice`` CDF inversion picks
        from the equal-weight probability vector, so seeded runs produce
        identical bits across engines.  Beyond that, each shot draws one
        uniform per free bit instead (the dense engine cannot represent
        such states anyway).

        Pass a precomputed *support* (from :class:`CosetSupport`) to skip
        the ``O(n³)`` factorization when many tableaux share one X/Z
        structure — the grouped noise sampler's common case.
        """
        r = as_rng(rng)
        n = self.num_qubits
        if support is None:
            support = CosetSupport(self)
        c = support.offset(self.r[n:])
        k = support.dimension
        shots = int(shots)
        if k == 0:
            # Deterministic outcome — but the dense engine's CDF inversion
            # draws one uniform per shot even then, so consume (and
            # discard) the same amount to keep seeded streams aligned.
            r.random(shots)
            bits = np.tile(c, (shots, 1))
        else:
            if k <= _EXACT_COSET_BITS:
                u = r.random(shots)
                j = np.minimum((u * float(1 << k)).astype(np.int64), (1 << k) - 1)
                shifts = np.arange(k - 1, -1, -1, dtype=np.int64)
                lam = ((j[:, None] >> shifts[None, :]) & 1).astype(np.uint8)
            else:
                lam = (r.random((shots, k)) < 0.5).astype(np.uint8)
            mixed = (lam.astype(np.int64) @ support.basis.astype(np.int64)) & 1
            bits = c[None, :] ^ mixed.astype(np.uint8)
        qs = (
            np.arange(n, dtype=np.int64)
            if qubits is None
            else np.asarray(list(qubits), dtype=np.int64)
        )
        return bits[:, qs]

    # -- dense conversion ------------------------------------------------------

    def coset_amplitudes(
        self, support: Optional["CosetSupport"] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse amplitude map of this state: ``(indices, amplitudes)``.

        A stabilizer state is a uniform-magnitude superposition over the
        outcome coset ``c ⊕ span(B)`` with per-element phases in
        ``{±1, ±i}``.  This computes all ``2^k`` nonzero amplitudes in
        ``O(2^k · k)`` vectorized work (plus one ``O(n³)`` bit-matrix
        factorization), so sparse states — a GHZ state has two nonzero
        amplitudes at any width — convert in microseconds.

        Method: Gaussian elimination over the stabilizer X-block yields
        ``k`` independent group elements ``g_j = i^{u_j} X^{a_j} Z^{z_j}``
        whose X-parts span the coset.  ``g|ψ⟩ = |ψ⟩`` pins every relative
        phase: ``ψ(x ⊕ a) = i^u (−1)^{z·x} ψ(x)``, so iterative doubling
        from the coset offset ``c`` (chosen real positive — global phase
        is a gauge) enumerates the full support.  Phases multiply
        consistently along any path because the stabilizer group is
        abelian *including* its phases.

        Pass a precomputed *support* to skip rebuilding the coset
        constraint system (one of the two ``O(n³)`` bit-matrix passes)
        when many sign-only-different tableaux convert — the hybrid
        engine's trajectory groups.  The group-element elimination for
        the phases is still performed per call: its row operations are
        structure-determined, but the accumulated phases depend on this
        tableau's own signs.  This is the conversion boundary of
        segment-granular mixed execution: the downstream dense/sparse
        engine starts from exactly these amplitudes.
        """
        n = self.num_qubits
        if n > 62:
            raise SimulationError(
                "coset_amplitudes packs basis indices into int64 words; "
                f"{n} qubits exceeds the 62-qubit packing limit"
            )
        sx = self.x[n:].copy()
        sz = self.z[n:].copy()
        # Canonical form i^u · X^x Z^z: each Y contributes one factor of
        # i (Y = iXZ), the tableau sign contributes (−1)^r = i^{2r}.
        u4 = (2 * self.r[n:].astype(np.int64) + (sx & sz).sum(axis=1)) % 4
        used = np.zeros(n, dtype=bool)
        pivot_rows: List[int] = []
        for col in range(n):
            cand = np.nonzero(sx[:, col] & ~used)[0]
            if cand.size == 0:
                continue
            p = int(cand[0])
            used[p] = True
            pivot_rows.append(p)
            rows = cand[1:]
            if rows.size:
                # (i^u1 X^x1 Z^z1)(i^u2 X^x2 Z^z2)
                #   = i^{u1+u2} (−1)^{z1·x2} X^{x1⊕x2} Z^{z1⊕z2}
                cross = (sz[p][None, :] & sx[rows]).sum(axis=1)
                u4[rows] = (u4[rows] + u4[p] + 2 * cross) % 4
                sx[rows] ^= sx[p]
                sz[rows] ^= sz[p]
        if support is None:
            support = CosetSupport(self)
        c = support.offset(self.r[n:])
        weights = np.int64(1) << np.arange(n, dtype=np.int64)
        indices = np.array([int((c.astype(np.int64) * weights).sum())], dtype=np.int64)
        amps = np.array([2.0 ** (-0.5 * len(pivot_rows))], dtype=complex)
        i_pow = np.array([1.0, 1.0j, -1.0, -1.0j])
        for p in pivot_rows:
            a_int = np.int64((sx[p].astype(np.int64) * weights).sum())
            z_int = np.int64((sz[p].astype(np.int64) * weights).sum())
            parity = indices & z_int
            for shift in (32, 16, 8, 4, 2, 1):
                parity ^= parity >> shift
            signs = 1.0 - 2.0 * (parity & 1)
            new_amps = amps * (i_pow[int(u4[p])] * signs)
            indices = np.concatenate([indices, indices ^ a_int])
            amps = np.concatenate([amps, new_amps])
        return indices, amps

    def to_statevector(self) -> "StateVector":
        """This state as a dense :class:`~repro.simulator.statevector.StateVector`.

        The conversion boundary of hybrid (tableau→dense) execution:
        amplitudes come from :meth:`coset_amplitudes`, the global phase is
        gauged so the smallest-index support element is real positive.
        Raises beyond the dense qubit limit *before* allocating anything
        — use the sparse amplitude form (:meth:`coset_amplitudes`) at
        larger widths.
        """
        from repro.simulator.statevector import DENSE_QUBIT_LIMIT, StateVector

        if self.num_qubits > DENSE_QUBIT_LIMIT:
            raise SimulationError(
                f"cannot densify a {self.num_qubits}-qubit tableau: "
                f"the dense engine caps at {DENSE_QUBIT_LIMIT} qubits"
            )
        indices, amps = self.coset_amplitudes()
        data = np.zeros(1 << self.num_qubits, dtype=complex)
        data[indices] = amps
        return StateVector(self.num_qubits, data=data)

    def probabilities(self) -> np.ndarray:
        """Dense ``2^n`` probability vector (validation only, n ≤ 16)."""
        n = self.num_qubits
        if n > 16:
            raise SimulationError("dense probabilities limited to 16 qubits")
        support = CosetSupport(self)
        c = support.offset(self.r[n:])
        k = support.dimension
        weights = np.arange(n, dtype=np.int64)
        out = np.zeros(1 << n, dtype=float)
        lam_grid = np.arange(1 << k, dtype=np.int64)
        members = np.full(1 << k, int((c.astype(np.int64) << weights).sum()))
        for i in range(k):
            vec = int((support.basis[i].astype(np.int64) << weights).sum())
            on = (lam_grid >> (k - 1 - i)) & 1
            members ^= np.where(on == 1, vec, 0)
        out[members] = 1.0 / (1 << k)
        return out

    def __repr__(self) -> str:
        return f"<Tableau {self.num_qubits} qubits>"


class CosetSupport:
    """The computational-basis outcome coset of a tableau's X/Z structure.

    Factorizes the stabilizer block once: Gaussian elimination over the
    X-block isolates the Z-only stabilizer subgroup, whose sign bits pin
    the outcome set to a coset ``c ⊕ span(B)`` of ``F₂^n``.  Phases are
    tracked *symbolically* during elimination (each working row carries
    the set of original stabilizer rows multiplied into it plus the
    accumulated mod-4 ``g``-phase), so the factorization depends only on
    the X/Z bits.  :meth:`offset` then resolves the coset representative
    for any concrete stabilizer sign vector in ``O(n²)`` bit-ops —
    trajectories that differ only by injected Pauli errors share one
    instance.

    The basis is fully reduced with pivots in descending bit order, so
    the map ``λ ↦ c ⊕ λ·B`` enumerates coset elements in increasing
    integer order — the property :meth:`Tableau.sample` relies on for
    dense-engine-compatible CDF inversion.
    """

    def __init__(self, tableau: Tableau) -> None:
        n = tableau.num_qubits
        self.num_qubits = n
        sx = tableau.x[n:].copy()
        sz = tableau.z[n:].copy()
        hist = np.eye(n, dtype=np.uint8)           # which original rows multiply in
        g4 = np.zeros(n, dtype=np.int64)           # accumulated g-phase, mod 4
        used = np.zeros(n, dtype=bool)
        for col in range(n):
            cand = np.nonzero(sx[:, col] & ~used)[0]
            if cand.size == 0:
                continue
            p = int(cand[0])
            used[p] = True
            rows = cand[1:]
            if rows.size:
                g = _g4(sx[p][None, :], sz[p][None, :], sx[rows], sz[rows]).sum(axis=1)
                g4[rows] = (g4[rows] + g4[p] + g) % 4
                hist[rows] ^= hist[p]
                sx[rows] ^= sx[p]
                sz[rows] ^= sz[p]
        zonly = np.nonzero(~used)[0]
        if (g4[zonly] % 2).any():
            raise SimulationError("tableau corrupted: odd phase on Z-only row")
        # Z-only rows impose  A·x = b0 ⊕ H·r  on outcome bitstrings x,
        # where r is the tableau's stabilizer sign vector.
        A = sz[zonly].copy()
        b0 = ((g4[zonly] >> 1) % 2).astype(np.uint8)
        H = hist[zonly].copy()
        m = A.shape[0]
        pivots: List[int] = []
        row = 0
        for col in range(n):
            if row == m:
                break
            sub = np.nonzero(A[row:, col])[0]
            if sub.size == 0:
                continue
            pr = row + int(sub[0])
            if pr != row:
                A[[row, pr]] = A[[pr, row]]
                b0[[row, pr]] = b0[[pr, row]]
                H[[row, pr]] = H[[pr, row]]
            others = np.nonzero(A[:, col])[0]
            others = others[others != row]
            if others.size:
                A[others] ^= A[row]
                b0[others] ^= b0[row]
                H[others] ^= H[row]
            pivots.append(col)
            row += 1
        if row != m:
            raise SimulationError("tableau corrupted: dependent stabilizers")
        self._pivot_cols = np.asarray(pivots, dtype=np.int64)
        self._b0 = b0
        self._H = H
        free_cols = sorted(set(range(n)) - set(pivots))
        k = len(free_cols)
        # Nullspace vector for free column f: 1 at f plus ``A[i, f]`` at
        # each pivot column p_i.  Echelon structure zeroes every row left
        # of its pivot, so ``A[i, f] = 0`` whenever ``p_i > f`` — each
        # vector's top bit *is* its free column, pivot positions are
        # mutually clear, and listing free columns in descending order
        # already yields the reduced descending-pivot basis the
        # sorted-coset sampler needs.
        basis = np.zeros((k, n), dtype=np.uint8)
        for j, f in enumerate(reversed(free_cols)):
            basis[j, f] = 1
            if m:
                basis[j, self._pivot_cols] = A[:, f]
        self.basis = basis
        self._basis_pivots = np.asarray(free_cols[::-1], dtype=np.int64)
        self.dimension = k

    def offset(self, signs: np.ndarray) -> np.ndarray:
        """Reduced coset representative for stabilizer sign bits *signs*.

        Returns the smallest-integer outcome as an ``(n,)`` bit vector:
        the particular solution of the Z-only constraint system.  Its
        support lies in the constraint pivot columns — disjoint from the
        basis pivots (the free columns) — so it is already the reduced
        representative and ``λ ↦ c ⊕ λ·B`` walks the coset in increasing
        integer order.
        """
        c = np.zeros(self.num_qubits, dtype=np.uint8)
        if self._pivot_cols.size:
            b = self._b0 ^ ((self._H & signs[None, :]).sum(axis=1) % 2).astype(np.uint8)
            c[self._pivot_cols] = b
        return c


def simulate_tableau(
    circuit: QuantumCircuit, *, rng: RandomState = None
) -> Tableau:
    """Run *circuit*'s Clifford part, returning the final tableau.

    The stabilizer analogue of :func:`~repro.simulator.statevector.simulate_statevector`:
    measurements are skipped (sampling is the sampler's job), resets
    collapse stochastically using *rng*, barriers and delays are no-ops.
    Raises :class:`SimulationError` on any non-Clifford instruction.
    """
    tab = Tableau(circuit.num_qubits)
    r = as_rng(rng)
    for inst in circuit:
        if inst.name in gate_lib.UNITARY_NOOPS:
            continue
        if inst.name == "reset":
            tab.reset(inst.qubits[0], r)
            continue
        tab.apply_instruction(inst)
    return tab


def ghz_tableau(num_qubits: int) -> Tableau:
    """The ``(|0…0⟩ + |1…1⟩)/√2`` state as a tableau, at any width."""
    tab = Tableau(num_qubits)
    tab.apply("h", [0])
    for q in range(num_qubits - 1):
        tab.apply("cx", [q, q + 1])
    return tab


__all__ = [
    "Tableau",
    "CosetSupport",
    "make_tableau",
    "simulate_tableau",
    "ghz_tableau",
    "PACKED_TABLEAU_THRESHOLD",
    "TABLEAU_IMPLS",
]
