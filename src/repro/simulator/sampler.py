"""Shot sampler: trajectory grouping, prefix-sharing, engine dispatch.

Sampling a noisy 20-qubit circuit shot-by-shot would re-simulate the
full state vector thousands of times.  Because every executor error is a
*stochastic event* (Pauli injection or reset — see
:mod:`repro.simulator.noise`), two shots whose sampled error events are
identical traverse identical trajectories.  The sampler therefore:

1. pre-samples the error realization of every shot (vectorized),
2. groups shots by realization — at realistic error rates the
   overwhelmingly common group is "no error at all",
3. simulates one trajectory per distinct realization,
4. samples measurement outcomes per group and applies readout confusion
   bit-wise (vectorized).

Step 3 additionally shares the *clean prefix* between trajectories: all
instructions before a group's first error event are noise-free, so the
sampler advances a single clean state monotonically through the circuit
(processing groups in order of first error site) and replays only the
suffix after forking a copy at the injection point.  At realistic error
rates this turns the ``O(groups × depth)`` simulation cost into roughly
``O(depth + groups × suffix)``.  Because groups are visited in
first-error-site order rather than insertion order, the per-group RNG
consumption order differs from the naive implementation — sampled
distributions are identical, individual seeded streams are not (the
baseline is kept as :func:`_sample_grouped_baseline` for the perf
harness and the equivalence suite).

Circuits with mid-circuit measurement or reset fall back to a per-shot
path, since their collapse randomness de-groups trajectories.

Engine dispatch
---------------
There is exactly **one** grouped walk (:func:`_sample_grouped`) and
**one** per-shot walk (:func:`_sample_per_shot`), both parameterized
over an :class:`~repro.simulator.engines.base.ExecutionEngine` class
from the engine registry (:mod:`repro.simulator.engines`).  Which
backend serves a request is decided per circuit by
:func:`repro.simulator.engines.select_engine` under the mode string
:func:`engine_mode` installs — dense state vector, stabilizer tableau,
or the segment-granular hybrid (tableau→dense) engine.

All engines consume the RNG stream in lock-step (realization draws,
then per-group outcome draws in first-error-site order, then readout),
and every backend inverts the same outcome CDF the dense engine's
``rng.choice`` does — so seeded Clifford runs produce bit-identical
counts regardless of which engine served them, and seeded hybrid runs
match the dense engine to float precision.
"""

from __future__ import annotations

import numbers
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.errors import EngineModeError, SimulationError
from repro.simulator.counts import Counts
from repro.simulator.engines import (
    ExecutionEngine,
    TableauEngine,
    inject_into_dense,
    select_engine,
)
from repro.simulator.engines import mps as _mps
from repro.simulator.noise import NoiseModel, QuantumError
from repro.simulator.statevector import StateVector
from repro.simulator import stabilizer as _stabilizer
from repro.utils.rng import RandomState, as_rng


def sample_counts(
    circuit: QuantumCircuit,
    shots: int,
    *,
    noise: Optional[NoiseModel] = None,
    rng: RandomState = None,
    instruction_errors: Optional[Mapping[int, QuantumError]] = None,
) -> Counts:
    """Sample *shots* measurement outcomes of *circuit* under *noise*.

    Returns a :class:`Counts` over the circuit's classical bits.  Qubits
    never measured leave their classical bits at 0.

    *instruction_errors* optionally attaches an extra
    :class:`QuantumError` to specific instruction indices — the device
    executor uses this for duration-dependent idle/delay decoherence
    that cannot be keyed by gate name alone.
    """
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    if not circuit.has_measurements():
        raise SimulationError(
            f"circuit {circuit.name!r} has no measurements; nothing to sample"
        )
    r = as_rng(rng)
    extra = dict(instruction_errors or {})
    engine_cls = select_engine(ENGINE, circuit)
    if _needs_per_shot(circuit):
        bits = _sample_per_shot(circuit, int(shots), noise, r, extra, engine_cls)
    elif not USE_PREFIX_SHARING:
        bits = _sample_grouped_baseline(circuit, int(shots), noise, r, extra)
    else:
        bits = _sample_grouped(circuit, int(shots), noise, r, extra, engine_cls)
    bits = _apply_readout(circuit, bits, noise, r)
    return Counts.from_bit_array(bits)


def ideal_probabilities(circuit: QuantumCircuit) -> Dict[str, float]:
    """Noiseless outcome probabilities over the measured classical bits."""
    from repro.simulator.statevector import simulate_statevector

    state = simulate_statevector(circuit)
    mapping = _measurement_map(circuit)
    probs = state.probabilities()
    out: Dict[str, float] = {}
    width = circuit.num_clbits
    for basis, p in enumerate(probs):
        if p < 1e-15:
            continue
        bits = ["0"] * width
        for qubit, clbit in mapping.items():
            bits[width - 1 - clbit] = str((basis >> qubit) & 1)
        key = "".join(bits)
        out[key] = out.get(key, 0.0) + float(p)
    return out


# ---------------------------------------------------------------------------
# engine-mode facade
# ---------------------------------------------------------------------------


#: Engine toggle used by the perf harness (``scripts/bench.py``) to time
#: the seed-equivalent baseline; production code leaves it ``True``.
#: Toggle via :func:`engine_mode` rather than assigning directly.
USE_PREFIX_SHARING = True

#: Suffix-checkpoint reuse between trajectory groups that share more
#: than the clean prefix (same leading ``(site, term)`` injections):
#: the shared post-injection state is forked once and reused instead of
#: replayed.  RNG streams and visit order are untouched, so seeded
#: counts are bit-identical either way (pinned by
#: ``tests/test_sampler.py``); the toggle exists for the equivalence
#: suite and the perf harness.
USE_SUFFIX_CHECKPOINTS = True

#: Current engine mode; one of :data:`ENGINE_MODES`.  Set via
#: :func:`engine_mode` rather than assigning directly.
ENGINE = "fast"

#: The recognized engine modes (see :func:`engine_mode`).
ENGINE_MODES = ("baseline", "fast", "stabilizer", "hybrid", "mps", "auto")

#: Modes under which the ``tableau_impl`` sub-option is meaningful
#: (those whose routing can reach a stabilizer tableau).
_TABLEAU_IMPL_MODES = ("fast", "stabilizer", "hybrid", "auto")

#: Modes under which the MPS sub-options (``chi`` /
#: ``truncation_threshold``) are meaningful (those whose routing can
#: reach the MPS engine).
_MPS_OPTION_MODES = ("mps", "auto")

#: One-shot latch for the ``engine_mode(fast=...)`` deprecation warning.
_FAST_KEYWORD_WARNED = False


@contextmanager
def engine_mode(
    mode: Optional[str] = None,
    *,
    fast: Optional[bool] = None,
    tableau_impl: Optional[str] = None,
    chi: Optional[int] = None,
    truncation_threshold: Optional[float] = None,
    **unknown_options: object,
) -> Iterator[None]:
    """Select the simulation engine for the dynamic extent of the block.

    A thin facade over the execution-engine registry
    (:mod:`repro.simulator.engines`): the mode string is stored in the
    process-global knobs (:attr:`StateVector.use_fast_kernels`,
    :data:`USE_PREFIX_SHARING`, :data:`ENGINE`) that
    :func:`~repro.simulator.engines.select_engine` routes from, and all
    previous values are restored on exit.  Modes:

    ``"fast"`` (the default)
        Specialized state-vector kernels + trajectory prefix-sharing.
        Clifford circuits wider than the dense limit (26 qubits) route
        through the stabilizer tableau automatically.
    ``"baseline"``
        The seed engine: generic ``moveaxis`` kernels, from-scratch
        trajectory groups, no stabilizer dispatch.  The "before" lane of
        the perf harness.
    ``"stabilizer"``
        Route every Clifford-only circuit through the tableau backend
        (:mod:`repro.simulator.stabilizer`) regardless of width;
        non-Clifford circuits fall back to the fast state-vector path.
    ``"hybrid"``
        Segment-granular mixed execution
        (:class:`~repro.simulator.engines.hybrid.HybridSegmentEngine`):
        the maximal Clifford prefix runs on a tableau and hands off to
        (sparse, then dense) amplitudes at the first non-Clifford gate.
        Clifford circuits route to the tableau, circuits with no
        Clifford prefix to the dense engine.
    ``"mps"``
        The bounded-bond matrix-product-state engine
        (:class:`~repro.simulator.engines.mps.MPSEngine`) for every
        circuit: low-entanglement workloads run far beyond the dense
        limit at ``O(n · chi³)`` per gate.
    ``"auto"``
        Best-known routing per circuit: tableau for Clifford circuits;
        beyond the dense limit, hybrid for guaranteed-sparse tails and
        MPS for line-like circuits; at dense widths, hybrid when the
        Clifford prefix contains entangling structure, dense otherwise.

    The keyword-only *tableau_impl* sub-option selects the stabilizer
    tableau implementation for the block: ``"auto"`` (the default
    policy — bit-packed at and above
    :data:`repro.simulator.stabilizer.PACKED_TABLEAU_THRESHOLD` qubits),
    ``"packed"``, or ``"unpacked"``.  Both implementations are
    bit-identical in behaviour (same seeded counts, same RNG streams),
    so this is a performance policy, not a semantics switch; the perf
    harness uses it to pit the two against each other.

    The keyword-only *chi* and *truncation_threshold* sub-options scope
    the MPS engine's truncation contract for the block
    (:data:`repro.simulator.engines.mps.CHI` — the bond-dimension cap —
    and :data:`~repro.simulator.engines.mps.TRUNCATION_THRESHOLD` — the
    maximum relative weight one SVD may drop beyond the cap).  Unlike
    ``tableau_impl`` these *do* change semantics: a saturated cap
    truncates the state, with the discarded weight reported on the
    engine (``MPSEngine.truncation_error``).

    Every sub-option is validated **for the selected mode**: a
    sub-option that the mode's routing can never consume
    (``tableau_impl`` outside tableau-capable modes, ``chi`` /
    ``truncation_threshold`` outside ``"mps"`` / ``"auto"``) is rejected
    rather than silently ignored, as is any unrecognized keyword.

    An invalid *mode* or sub-option raises
    :class:`~repro.errors.EngineModeError` (a :class:`ValueError`)
    **before** any global state is touched, so a failed call can never
    leave the knobs partially set.

    The boolean keyword form ``engine_mode(fast=True/False)`` is the
    pre-stabilizer spelling, maps to ``"fast"`` / ``"baseline"``, and is
    deprecated (one :class:`DeprecationWarning` per process).
    """
    global _FAST_KEYWORD_WARNED
    if unknown_options:
        # Hygiene: an unrecognized sub-option must fail loudly instead
        # of silently configuring nothing (a typo like ``ci=64`` would
        # otherwise run the whole block on defaults).
        names = ", ".join(sorted(unknown_options))
        raise EngineModeError(
            f"unknown engine_mode sub-option(s): {names}; recognized "
            "sub-options are tableau_impl, chi, truncation_threshold"
        )
    if fast is not None:
        if mode is not None:
            raise EngineModeError("pass either mode or fast=, not both")
        if not _FAST_KEYWORD_WARNED:
            warnings.warn(
                "engine_mode(fast=...) is deprecated; pass a mode string "
                "('fast' / 'baseline') instead",
                DeprecationWarning,
                stacklevel=3,
            )
            _FAST_KEYWORD_WARNED = True
        mode = "fast" if fast else "baseline"
    if mode not in ENGINE_MODES:
        raise EngineModeError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    if tableau_impl is not None:
        if mode not in _TABLEAU_IMPL_MODES:
            raise EngineModeError(
                f"tableau_impl is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_TABLEAU_IMPL_MODES}"
            )
        if tableau_impl not in _stabilizer.TABLEAU_IMPLS:
            raise EngineModeError(
                f"unknown tableau implementation {tableau_impl!r}; expected "
                f"one of {_stabilizer.TABLEAU_IMPLS}"
            )
    if chi is not None or truncation_threshold is not None:
        if mode not in _MPS_OPTION_MODES:
            raise EngineModeError(
                "chi / truncation_threshold are not sub-options of engine "
                f"mode {mode!r}; they apply to {_MPS_OPTION_MODES}"
            )
    if chi is not None and (
        isinstance(chi, bool) or not isinstance(chi, numbers.Integral) or chi < 1
    ):
        # bool is an int subclass (True would silently mean chi=1), and
        # numpy integers from sweep/config code are perfectly valid.
        raise EngineModeError(f"bond cap chi must be an integer >= 1, got {chi!r}")
    if truncation_threshold is not None and not (
        0.0 <= float(truncation_threshold) < 1.0
    ):
        raise EngineModeError(
            f"truncation_threshold must lie in [0, 1), got {truncation_threshold!r}"
        )
    # Validation is complete — only now may globals be mutated.
    global USE_PREFIX_SHARING, ENGINE
    prev_engine = ENGINE
    prev_kernels = StateVector.use_fast_kernels
    prev_prefix = USE_PREFIX_SHARING
    prev_impl = _stabilizer.TABLEAU_IMPL
    prev_chi = _mps.CHI
    prev_threshold = _mps.TRUNCATION_THRESHOLD
    accelerated = mode != "baseline"
    ENGINE = mode
    StateVector.use_fast_kernels = accelerated
    USE_PREFIX_SHARING = accelerated
    if tableau_impl is not None:
        _stabilizer.TABLEAU_IMPL = tableau_impl
    if chi is not None:
        _mps.CHI = int(chi)
    if truncation_threshold is not None:
        _mps.TRUNCATION_THRESHOLD = float(truncation_threshold)
    try:
        yield
    finally:
        ENGINE = prev_engine
        StateVector.use_fast_kernels = prev_kernels
        USE_PREFIX_SHARING = prev_prefix
        _stabilizer.TABLEAU_IMPL = prev_impl
        _mps.CHI = prev_chi
        _mps.TRUNCATION_THRESHOLD = prev_threshold


def _route_to_stabilizer(circuit: QuantumCircuit) -> bool:
    """Dispatch predicate: does the active mode route this circuit to
    the pure-tableau backend?  (Kept for the dispatch test suite; the
    sampler itself asks :func:`select_engine` directly.)"""
    return select_engine(ENGINE, circuit) is TableauEngine


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _needs_per_shot(circuit: QuantumCircuit) -> bool:
    """True when collapse randomness prevents trajectory grouping."""
    measured: set[int] = set()
    for inst in circuit:
        if inst.name == "reset":
            return True
        if inst.name == "measure":
            measured.add(inst.qubits[0])
            continue
        if inst.name == "barrier":
            continue
        if measured & set(inst.qubits):
            return True  # gate after measurement on the same qubit
    return False


def _measurement_map(circuit: QuantumCircuit) -> Dict[int, int]:
    """qubit → clbit mapping (last measurement of each qubit wins)."""
    mapping: Dict[int, int] = {}
    for inst in circuit:
        if inst.name == "measure":
            mapping[inst.qubits[0]] = inst.clbits[0]
    return mapping


def _noisy_ops(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    extra: Mapping[int, QuantumError],
) -> List[Tuple[int, QuantumError]]:
    out: List[Tuple[int, QuantumError]] = []
    for idx, inst in enumerate(circuit):
        if inst.name == "barrier":
            continue
        err: Optional[QuantumError] = None
        if noise is not None and not noise.is_trivial():
            err = noise.error_for(inst.name, inst.qubits)
        bonus = extra.get(idx)
        if bonus is not None:
            err = bonus if err is None else err.compose(bonus)
        if err is not None and err.terms:
            out.append((idx, err))
    return out


def _group_realizations(
    noisy: List[Tuple[int, QuantumError]], shots: int, rng: np.random.Generator
) -> Dict[Tuple[Tuple[int, int], ...], int]:
    """Steps 1-2: sample every shot's error realization and histogram them.

    Keys are ``((op_index, term_index), ...)`` tuples sorted by op index;
    the empty key is the clean (error-free) group.
    """
    groups: Dict[Tuple[Tuple[int, int], ...], int] = {}
    if not noisy:
        groups[()] = shots
        return groups
    draws = np.stack(
        [err.sample_many(shots, rng) for _, err in noisy], axis=0
    )  # (n_noisy_ops, shots)
    any_error = (draws >= 0).any(axis=0)
    clean = int(shots - any_error.sum())
    if clean:
        groups[()] = clean
    op_indices = np.array([idx for idx, _ in noisy])
    for s in np.nonzero(any_error)[0]:
        col = draws[:, s]
        key = tuple(
            (int(op_indices[j]), int(col[j])) for j in np.nonzero(col >= 0)[0]
        )
        groups[key] = groups.get(key, 0) + 1
    return groups


def _sample_grouped(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
    engine_cls: Optional[Type[ExecutionEngine]] = None,
) -> np.ndarray:
    """The one prefix-sharing grouped walk, shared by every engine.

    Steps 3-4 of the sampler: one trajectory per distinct error
    realization, sharing the clean prefix — groups are visited in order
    of first error site so a single clean engine advances monotonically
    and each group replays only the suffix after its first injection
    (the error fires *after* its instruction; the clean group sorts
    last, so the shared prefix *is* its state).

    Every backend must consume the RNG stream in lock-step (realization
    draws, then per-group outcome draws in this exact visit order) for
    seeded runs to stay aligned across engines — so there is exactly one
    copy of the walk, parameterized over the
    :class:`~repro.simulator.engines.base.ExecutionEngine` class.
    ``engine.inject`` reports whether the injection preserved shareable
    state structure; the flag reaches ``engine.sample`` so
    structure-keyed caches (the tableau's shared coset factorization)
    apply exactly where they are valid.

    Beyond the clean prefix, consecutive groups often share *injected*
    structure too: multi-error realizations drawn from the same early
    error site agree on their leading ``(site, term)`` pairs.  When
    :data:`USE_SUFFIX_CHECKPOINTS` is on, the walk forks a checkpoint of
    the state right after each shared injection (only at depths the
    *next* visited group actually shares, so single-error groups — the
    overwhelming majority — pay nothing) and the next group resumes from
    the deepest matching checkpoint instead of replaying the shared
    window.  ``inject``/``advance`` never draw from the RNG and the
    visit order is unchanged, so seeded streams are bit-identical with
    the optimization on or off.
    """
    if engine_cls is None:
        engine_cls = select_engine(ENGINE, circuit)
    noisy = _noisy_ops(circuit, noise, extra)
    errors = dict(noisy)
    groups = _group_realizations(noisy, shots, rng)
    instructions = list(circuit)
    end = len(instructions)
    mapping = _measurement_map(circuit)
    qubits = sorted(mapping)
    width = circuit.num_clbits
    ordered = sorted(groups.items(), key=lambda kv: kv[0][0][0] if kv[0] else end)
    prefix = engine_cls(circuit)
    prefix_pos = 0
    clbit_cols = np.asarray([mapping[q] for q in qubits], dtype=np.int64)
    # Engines treat qubits=None as "full register in index order" — the
    # same bits, minus a per-group column-selection copy in every engine.
    sample_qubits = None if qubits == list(range(circuit.num_qubits)) else qubits
    # One preallocated output filled in visit order — row order (and
    # therefore the readout-noise RNG pairing downstream) is identical
    # to concatenating per-group chunks.
    out = np.zeros((shots, width), dtype=np.uint8)
    row = 0
    # Suffix checkpoints: depth d maps to the (never-mutated) state
    # right after injecting the previous group's leading d error terms,
    # plus its shares_structure flag.  Entries are only created at
    # depths the next visited group provably shares, so they always
    # match the current group's leading injections by construction.
    ckpts: Dict[int, Tuple[ExecutionEngine, bool]] = {}
    for index, (key, group_shots) in enumerate(ordered):
        first = key[0][0] if key else end
        fork = min(first + 1, end)
        prefix.advance(instructions[prefix_pos:fork])
        prefix_pos = fork
        shares_structure = True
        if key:
            # Replay the suffix in whole windows between error sites
            # (identical operation order and RNG stream to a
            # per-instruction walk — inject/advance never draw): the
            # engine's bulk `advance` gets one call per window instead
            # of one Python frame + list slice per instruction, which is
            # where replay-bound engines (the packed tableau) spend
            # their time, and gives the dense engine fusible windows.
            next_key = ordered[index + 1][0] if index + 1 < len(ordered) else ()
            new_ckpts: Dict[int, Tuple[ExecutionEngine, bool]] = {}
            depth = max(ckpts) if ckpts else 0
            if depth:
                # Resume from the deepest shared checkpoint instead of
                # replaying the shared injection window.
                ckpt_state, shares_structure = ckpts[depth]
                state = ckpt_state.fork()
                prev = key[depth - 1][0]
            else:
                state = prefix.fork()
                prev = first
                shares_structure &= state.inject(
                    instructions[first], errors[first], key[0][1]
                )
                depth = 1
                if USE_SUFFIX_CHECKPOINTS and next_key[:1] == key[:1]:
                    new_ckpts[1] = (state.fork(), shares_structure)
            # Checkpoints shallower than the resume depth stay valid for
            # the next group iff it still shares that much of this key.
            for d, entry in ckpts.items():
                if d <= depth and next_key[:d] == key[:d]:
                    new_ckpts[d] = entry
            for site, term in key[depth:]:
                state.advance(instructions[prev + 1 : site + 1])
                shares_structure &= state.inject(
                    instructions[site], errors[site], term
                )
                prev = site
                depth += 1
                if USE_SUFFIX_CHECKPOINTS and next_key[:depth] == key[:depth]:
                    new_ckpts[depth] = (state.fork(), shares_structure)
            state.advance(instructions[prev + 1 : end])
            ckpts = new_ckpts
        else:
            state = prefix
            ckpts = {}
        sampled = state.sample(
            group_shots, rng, sample_qubits, shares_structure=shares_structure
        )
        if clbit_cols.size:
            out[row : row + group_shots, clbit_cols] = sampled
        row += group_shots
    return out


def _sample_per_shot(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
    engine_cls: Optional[Type[ExecutionEngine]] = None,
) -> np.ndarray:
    """The one per-shot walk (mid-circuit measurement/reset), shared by
    every engine.

    Each backend must consume the RNG stream in lock-step (one draw per
    measurement/reset, one realization draw per noisy op) for seeded
    runs to stay aligned across engines — so there is exactly one copy
    of the walk, parameterized over the engine class; a fresh engine
    instance is one trajectory.
    """
    if engine_cls is None:
        engine_cls = select_engine(ENGINE, circuit)
    noisy = dict(_noisy_ops(circuit, noise, extra))
    width = circuit.num_clbits
    bits = np.zeros((shots, width), dtype=np.uint8)
    for s in range(shots):
        engine = engine_cls(circuit)
        for idx, inst in enumerate(circuit):
            if inst.name == "measure":
                bits[s, inst.clbits[0]] = engine.measure(inst.qubits[0], rng)
            elif inst.name == "reset":
                engine.reset(inst.qubits[0], rng)
            elif inst.name in UNITARY_NOOPS:
                pass
            else:
                engine.advance((inst,))
            err = noisy.get(idx)
            if err is not None:
                draw = int(err.sample_many(1, rng)[0])
                if draw >= 0:
                    engine.inject(inst, err, draw)
    return bits


# ---------------------------------------------------------------------------
# seed-engine reference paths (kept verbatim for the perf harness and the
# equivalence suite)
# ---------------------------------------------------------------------------


#: Dense error injection, re-exported under its historical sampler name
#: (the baseline trajectory path and the equivalence suite use it).
_inject = inject_into_dense


def _advance_clean(
    state: StateVector, instructions: Sequence[Instruction], start: int, stop: int
) -> None:
    """Apply the unitary part of ``instructions[start:stop]`` in place
    (the raw-:class:`StateVector` helper behind the baseline path)."""
    for idx in range(start, stop):
        inst = instructions[idx]
        if inst.name in UNITARY_NOOPS:
            continue
        state.apply_matrix(inst.matrix(), inst.qubits)


def _run_trajectory(
    circuit: QuantumCircuit,
    pattern: Dict[int, int],
    errors: Dict[int, QuantumError],
) -> Tuple[StateVector, Dict[int, int]]:
    state = StateVector(circuit.num_qubits)
    mapping: Dict[int, int] = {}
    for idx, inst in enumerate(circuit):
        if inst.name == "measure":
            mapping[inst.qubits[0]] = inst.clbits[0]
        elif inst.name in UNITARY_NOOPS:
            pass
        else:
            state.apply_matrix(inst.matrix(), inst.qubits)
        if idx in pattern:
            _inject(state, inst, errors[idx], pattern[idx])
    return state, mapping


def _sample_grouped_baseline(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    """The seed engine: every group re-simulated from ``|0…0⟩``.

    Kept as the reference for the equivalence suite and the "before"
    lane of the perf harness.
    """
    noisy = _noisy_ops(circuit, noise, extra)
    errors = dict(noisy)
    groups = _group_realizations(noisy, shots, rng)
    width = circuit.num_clbits
    chunks: List[np.ndarray] = []
    for key, group_shots in groups.items():
        state, mapping = _run_trajectory(circuit, dict(key), errors)
        qubits = sorted(mapping)
        sampled = state.sample(group_shots, rng, qubits=qubits)
        bits = np.zeros((group_shots, width), dtype=np.uint8)
        for col, q in enumerate(qubits):
            bits[:, mapping[q]] = sampled[:, col]
        chunks.append(bits)
    return np.concatenate(chunks, axis=0)


def _apply_readout(
    circuit: QuantumCircuit,
    bits: np.ndarray,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
) -> np.ndarray:
    if noise is None:
        return bits
    mapping = _measurement_map(circuit)
    out = bits.copy()
    for qubit, clbit in mapping.items():
        ro = noise.readout_for(qubit)
        if ro is not None:
            out[:, clbit] = ro.apply_to_bits(out[:, clbit], rng)
    return out


__all__ = ["sample_counts", "ideal_probabilities", "engine_mode", "ENGINE_MODES"]
