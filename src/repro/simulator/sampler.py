"""Shot sampler with trajectory grouping and prefix-sharing.

Sampling a noisy 20-qubit circuit shot-by-shot would re-simulate the
full state vector thousands of times.  Because every executor error is a
*stochastic event* (Pauli injection or reset — see
:mod:`repro.simulator.noise`), two shots whose sampled error events are
identical traverse identical trajectories.  The sampler therefore:

1. pre-samples the error realization of every shot (vectorized),
2. groups shots by realization — at realistic error rates the
   overwhelmingly common group is "no error at all",
3. simulates one trajectory per distinct realization,
4. samples measurement outcomes per group and applies readout confusion
   bit-wise (vectorized).

Step 3 additionally shares the *clean prefix* between trajectories: all
instructions before a group's first error event are noise-free, so the
sampler advances a single clean state monotonically through the circuit
(processing groups in order of first error site) and replays only the
suffix after forking a copy at the injection point.  At realistic error
rates this turns the ``O(groups × depth)`` simulation cost into roughly
``O(depth + groups × suffix)``.  Because groups are visited in
first-error-site order rather than insertion order, the per-group RNG
consumption order differs from the naive implementation — sampled
distributions are identical, individual seeded streams are not (the
baseline is kept as :func:`_sample_grouped_baseline` for the perf
harness and the equivalence suite).

Circuits with mid-circuit measurement or reset fall back to a per-shot
path, since their collapse randomness de-groups trajectories.

Engine dispatch
---------------
Three engines can serve a sampling request (selected via
:func:`engine_mode`, see its docstring for the mode table):

* the **fast** state-vector engine (specialized kernels + prefix
  sharing) — the default for anything the dense representation fits;
* the **baseline** seed engine — generic kernels, from-scratch groups —
  kept for the perf harness;
* the **stabilizer** tableau engine
  (:mod:`repro.simulator.stabilizer`) — polynomial cost, used for
  Clifford-only circuits (detected via
  :func:`repro.circuits.dag.is_clifford_circuit`).  In the default mode
  it engages automatically when the circuit is Clifford *and* too wide
  for the dense state; forcing ``engine_mode("stabilizer")`` routes
  every Clifford circuit through it (non-Clifford circuits always fall
  back to the state vector).

Both grouped samplers consume the RNG stream identically (realization
draws, then per-group outcome draws in first-error-site order, then
readout), and the tableau's coset sampler inverts the same CDF the dense
``rng.choice`` does — so seeded Clifford runs produce bit-identical
counts regardless of which engine served them.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import is_clifford_circuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.errors import SimulationError
from repro.simulator.counts import Counts
from repro.simulator.noise import NoiseModel, QuantumError
from repro.simulator.stabilizer import CosetSupport, Tableau
from repro.simulator.statevector import DENSE_QUBIT_LIMIT, StateVector
from repro.utils.rng import RandomState, as_rng

_PAULI = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def sample_counts(
    circuit: QuantumCircuit,
    shots: int,
    *,
    noise: Optional[NoiseModel] = None,
    rng: RandomState = None,
    instruction_errors: Optional[Mapping[int, QuantumError]] = None,
) -> Counts:
    """Sample *shots* measurement outcomes of *circuit* under *noise*.

    Returns a :class:`Counts` over the circuit's classical bits.  Qubits
    never measured leave their classical bits at 0.

    *instruction_errors* optionally attaches an extra
    :class:`QuantumError` to specific instruction indices — the device
    executor uses this for duration-dependent idle/delay decoherence
    that cannot be keyed by gate name alone.
    """
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    if not circuit.has_measurements():
        raise SimulationError(
            f"circuit {circuit.name!r} has no measurements; nothing to sample"
        )
    r = as_rng(rng)
    extra = dict(instruction_errors or {})
    stabilizer = _route_to_stabilizer(circuit)
    if _needs_per_shot(circuit):
        if stabilizer:
            bits = _sample_per_shot_stabilizer(circuit, int(shots), noise, r, extra)
        else:
            bits = _sample_per_shot(circuit, int(shots), noise, r, extra)
    elif stabilizer:
        bits = _sample_grouped_stabilizer(circuit, int(shots), noise, r, extra)
    else:
        bits = _sample_grouped(circuit, int(shots), noise, r, extra)
    bits = _apply_readout(circuit, bits, noise, r)
    return Counts.from_bit_array(bits)


def ideal_probabilities(circuit: QuantumCircuit) -> Dict[str, float]:
    """Noiseless outcome probabilities over the measured classical bits."""
    from repro.simulator.statevector import simulate_statevector

    state = simulate_statevector(circuit)
    mapping = _measurement_map(circuit)
    probs = state.probabilities()
    out: Dict[str, float] = {}
    width = circuit.num_clbits
    for basis, p in enumerate(probs):
        if p < 1e-15:
            continue
        bits = ["0"] * width
        for qubit, clbit in mapping.items():
            bits[width - 1 - clbit] = str((basis >> qubit) & 1)
        key = "".join(bits)
        out[key] = out.get(key, 0.0) + float(p)
    return out


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _needs_per_shot(circuit: QuantumCircuit) -> bool:
    """True when collapse randomness prevents trajectory grouping."""
    measured: set[int] = set()
    for inst in circuit:
        if inst.name == "reset":
            return True
        if inst.name == "measure":
            measured.add(inst.qubits[0])
            continue
        if inst.name == "barrier":
            continue
        if measured & set(inst.qubits):
            return True  # gate after measurement on the same qubit
    return False


def _measurement_map(circuit: QuantumCircuit) -> Dict[int, int]:
    """qubit → clbit mapping (last measurement of each qubit wins)."""
    mapping: Dict[int, int] = {}
    for inst in circuit:
        if inst.name == "measure":
            mapping[inst.qubits[0]] = inst.clbits[0]
    return mapping


def _noisy_ops(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    extra: Mapping[int, QuantumError],
) -> List[Tuple[int, QuantumError]]:
    out: List[Tuple[int, QuantumError]] = []
    for idx, inst in enumerate(circuit):
        if inst.name == "barrier":
            continue
        err: Optional[QuantumError] = None
        if noise is not None and not noise.is_trivial():
            err = noise.error_for(inst.name, inst.qubits)
        bonus = extra.get(idx)
        if bonus is not None:
            err = bonus if err is None else err.compose(bonus)
        if err is not None and err.terms:
            out.append((idx, err))
    return out


def _inject(state: StateVector, inst: Instruction, err: QuantumError, term_idx: int) -> bool:
    """Apply error term *term_idx* to the dense state.

    Returns ``True`` always — the "did this preserve shareable state
    structure" contract exists for the tableau engine's benefit
    (:func:`_inject_tableau`), and dense states share nothing.
    """
    term = err.terms[term_idx]
    if term.kind == "pauli":
        for offset, label in enumerate(term.pauli.upper()):
            if label == "I":
                continue
            state.apply_matrix(_PAULI[label], [inst.qubits[offset]])
    else:
        q = inst.qubits[term.reset_operand]
        # Stochastic-event reset: project to |0⟩ deterministically by
        # collapsing on the dominant branch; exact behaviour of the
        # twirled thermal channel (population transfer to ground).
        p1 = state.marginal_probability_one(q)
        if p1 > 1.0 - 1e-12:
            state.apply_matrix(_PAULI["X"], [q])
        elif p1 > 1e-12:
            state.collapse(q, 0)
    return True


def _run_trajectory(
    circuit: QuantumCircuit,
    pattern: Dict[int, int],
    errors: Dict[int, QuantumError],
) -> Tuple[StateVector, Dict[int, int]]:
    state = StateVector(circuit.num_qubits)
    mapping: Dict[int, int] = {}
    for idx, inst in enumerate(circuit):
        if inst.name == "measure":
            mapping[inst.qubits[0]] = inst.clbits[0]
        elif inst.name in UNITARY_NOOPS:
            pass
        else:
            state.apply_matrix(inst.matrix(), inst.qubits)
        if idx in pattern:
            _inject(state, inst, errors[idx], pattern[idx])
    return state, mapping


#: Engine toggle used by the perf harness (``scripts/bench.py``) to time
#: the seed-equivalent baseline; production code leaves it ``True``.
#: Toggle via :func:`engine_mode` rather than assigning directly.
USE_PREFIX_SHARING = True

#: Current engine mode; one of :data:`ENGINE_MODES`.  Set via
#: :func:`engine_mode` rather than assigning directly.
ENGINE = "fast"

#: The recognized engine modes (see :func:`engine_mode`).
ENGINE_MODES = ("baseline", "fast", "stabilizer")



@contextmanager
def engine_mode(mode: Optional[str] = None, *, fast: Optional[bool] = None) -> Iterator[None]:
    """Select the simulation engine for the dynamic extent of the block.

    The one canonical switch for every process-global engine knob
    (:attr:`StateVector.use_fast_kernels`, :data:`USE_PREFIX_SHARING`,
    :data:`ENGINE`); previous values are restored on exit.  Modes:

    ``"fast"`` (the default)
        Specialized state-vector kernels + trajectory prefix-sharing.
        Clifford circuits wider than the dense limit (26 qubits) route
        through the stabilizer tableau automatically.
    ``"baseline"``
        The seed engine: generic ``moveaxis`` kernels, from-scratch
        trajectory groups, no stabilizer dispatch.  The "before" lane of
        the perf harness.
    ``"stabilizer"``
        Route every Clifford-only circuit through the tableau backend
        (:mod:`repro.simulator.stabilizer`) regardless of width;
        non-Clifford circuits fall back to the fast state-vector path.

    The boolean keyword form ``engine_mode(fast=True/False)`` is the
    pre-stabilizer spelling and maps to ``"fast"`` / ``"baseline"``.
    """
    if fast is not None:
        if mode is not None:
            raise SimulationError("pass either mode or fast=, not both")
        mode = "fast" if fast else "baseline"
    if mode not in ENGINE_MODES:
        raise SimulationError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    global USE_PREFIX_SHARING, ENGINE
    prev_engine = ENGINE
    prev_kernels = StateVector.use_fast_kernels
    prev_prefix = USE_PREFIX_SHARING
    accelerated = mode != "baseline"
    ENGINE = mode
    StateVector.use_fast_kernels = accelerated
    USE_PREFIX_SHARING = accelerated
    try:
        yield
    finally:
        ENGINE = prev_engine
        StateVector.use_fast_kernels = prev_kernels
        USE_PREFIX_SHARING = prev_prefix


def _route_to_stabilizer(circuit: QuantumCircuit) -> bool:
    """Dispatch predicate: serve this request from the tableau engine?"""
    if ENGINE == "baseline":
        return False
    if ENGINE == "stabilizer":
        return is_clifford_circuit(circuit)
    return circuit.num_qubits > DENSE_QUBIT_LIMIT and is_clifford_circuit(circuit)


def _group_realizations(
    noisy: List[Tuple[int, QuantumError]], shots: int, rng: np.random.Generator
) -> Dict[Tuple[Tuple[int, int], ...], int]:
    """Steps 1-2: sample every shot's error realization and histogram them.

    Keys are ``((op_index, term_index), ...)`` tuples sorted by op index;
    the empty key is the clean (error-free) group.
    """
    groups: Dict[Tuple[Tuple[int, int], ...], int] = {}
    if not noisy:
        groups[()] = shots
        return groups
    draws = np.stack(
        [err.sample_many(shots, rng) for _, err in noisy], axis=0
    )  # (n_noisy_ops, shots)
    any_error = (draws >= 0).any(axis=0)
    clean = int(shots - any_error.sum())
    if clean:
        groups[()] = clean
    op_indices = np.array([idx for idx, _ in noisy])
    for s in np.nonzero(any_error)[0]:
        col = draws[:, s]
        key = tuple(
            (int(op_indices[j]), int(col[j])) for j in np.nonzero(col >= 0)[0]
        )
        groups[key] = groups.get(key, 0) + 1
    return groups


def _advance_clean(
    state: StateVector, instructions: Sequence[Instruction], start: int, stop: int
) -> None:
    """Apply the unitary part of ``instructions[start:stop]`` in place."""
    for idx in range(start, stop):
        inst = instructions[idx]
        if inst.name in UNITARY_NOOPS:
            continue
        state.apply_matrix(inst.matrix(), inst.qubits)


def _sample_grouped_engine(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
    *,
    make_state,
    advance,
    inject,
    sample_group,
) -> np.ndarray:
    """One prefix-sharing grouped walk shared by both engines.

    Steps 3-4 of the sampler: one trajectory per distinct error
    realization, sharing the clean prefix — groups are visited in order
    of first error site so a single clean state advances monotonically
    and each group replays only the suffix after its first injection
    (the error fires *after* its instruction; the clean group sorts
    last, so the shared prefix *is* its state).

    The dense and tableau grouped paths must consume the RNG stream in
    lock-step (realization draws, then per-group outcome draws in this
    exact visit order) for seeded Clifford runs to stay bit-identical
    across engines — so there is exactly one copy of the walk,
    parameterized over the state factory, the clean-advance/injection
    helpers, and the per-group sampling hook.  *inject* returns whether
    the injection preserved shareable state structure;
    ``sample_group(state, group_shots, shares_structure, qubits)``
    returns the sampled bit columns.
    """
    noisy = _noisy_ops(circuit, noise, extra)
    errors = dict(noisy)
    groups = _group_realizations(noisy, shots, rng)
    instructions = list(circuit)
    end = len(instructions)
    mapping = _measurement_map(circuit)
    qubits = sorted(mapping)
    width = circuit.num_clbits
    ordered = sorted(groups.items(), key=lambda kv: kv[0][0][0] if kv[0] else end)
    prefix = make_state()
    prefix_pos = 0
    chunks: List[np.ndarray] = []
    for key, group_shots in ordered:
        first = key[0][0] if key else end
        fork = min(first + 1, end)
        advance(prefix, instructions, prefix_pos, fork)
        prefix_pos = fork
        shares_structure = True
        if key:
            pattern = dict(key)
            state = prefix.copy()
            for idx in range(first, end):
                if idx > first:
                    advance(state, instructions, idx, idx + 1)
                if idx in pattern:
                    shares_structure &= inject(
                        state, instructions[idx], errors[idx], pattern[idx]
                    )
        else:
            state = prefix
        sampled = sample_group(state, group_shots, shares_structure, qubits)
        bits = np.zeros((group_shots, width), dtype=np.uint8)
        for col, q in enumerate(qubits):
            bits[:, mapping[q]] = sampled[:, col]
        chunks.append(bits)
    return np.concatenate(chunks, axis=0)


def _sample_grouped(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    if not USE_PREFIX_SHARING:
        return _sample_grouped_baseline(circuit, shots, noise, rng, extra)
    return _sample_grouped_engine(
        circuit,
        shots,
        noise,
        rng,
        extra,
        make_state=lambda: StateVector(circuit.num_qubits),
        advance=_advance_clean,
        inject=_inject,
        sample_group=lambda state, n, shares, qubits: state.sample(
            n, rng, qubits=qubits
        ),
    )


def _advance_clean_tableau(
    state: Tableau, instructions: Sequence[Instruction], start: int, stop: int
) -> None:
    """Apply the Clifford part of ``instructions[start:stop]`` in place."""
    for idx in range(start, stop):
        inst = instructions[idx]
        if inst.name in UNITARY_NOOPS:
            continue
        state.apply_instruction(inst)


def _inject_tableau(
    state: Tableau, inst: Instruction, err: QuantumError, term_idx: int
) -> bool:
    """Tableau counterpart of :func:`_inject`.

    Returns ``True`` when the injection preserved the tableau's X/Z
    structure (every Pauli term, and the deterministic branches of a
    reset) so the caller can keep sharing one :class:`CosetSupport`
    across trajectories; a genuine collapse returns ``False``.
    """
    term = err.terms[term_idx]
    if term.kind == "pauli":
        state.apply_pauli(term.pauli, inst.qubits[: len(term.pauli)])
        return True
    q = inst.qubits[term.reset_operand]
    # Same dominant-branch semantics as the dense engine: |1⟩ flips,
    # a superposed qubit collapses onto |0⟩, |0⟩ is left alone.
    p1 = state.marginal_probability_one(q)
    if p1 == 1.0:
        state.apply_pauli("X", [q])
        return True
    if p1 == 0.5:
        state.collapse(q, 0)
        return False
    return True


def _sample_grouped_stabilizer(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    """The grouped sampler on the stabilizer tableau backend.

    Same walk as :func:`_sample_grouped` (one shared copy:
    :func:`_sample_grouped_engine`), with two tableau-specific wins:
    trajectory forks copy ``O(n²)`` bits instead of ``2^n`` amplitudes,
    and because Pauli injection only flips tableau signs, every
    Pauli-only trajectory shares a single :class:`CosetSupport`
    factorization of the outcome coset (groups that collapse a qubit via
    a reset error recompute their own).
    """
    shared: List[CosetSupport] = []

    def sample_group(state, group_shots, shares_structure, qubits):
        if not shares_structure:
            return state.sample(group_shots, rng, qubits=qubits)
        if not shared:
            shared.append(CosetSupport(state))
        return state.sample(group_shots, rng, qubits=qubits, support=shared[0])

    return _sample_grouped_engine(
        circuit,
        shots,
        noise,
        rng,
        extra,
        make_state=lambda: Tableau(circuit.num_qubits),
        advance=_advance_clean_tableau,
        inject=_inject_tableau,
        sample_group=sample_group,
    )


def _sample_per_shot_stabilizer(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    """Per-shot path (mid-circuit measurement/reset) on the tableau."""
    return _sample_per_shot_engine(
        circuit,
        shots,
        noise,
        rng,
        extra,
        make_state=lambda: Tableau(circuit.num_qubits),
        apply_gate=lambda state, inst: state.apply_instruction(inst),
        inject=_inject_tableau,
    )


def _sample_grouped_baseline(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    """The seed engine: every group re-simulated from ``|0…0⟩``.

    Kept as the reference for the equivalence suite and the "before"
    lane of the perf harness.
    """
    noisy = _noisy_ops(circuit, noise, extra)
    errors = dict(noisy)
    groups = _group_realizations(noisy, shots, rng)
    width = circuit.num_clbits
    chunks: List[np.ndarray] = []
    for key, group_shots in groups.items():
        state, mapping = _run_trajectory(circuit, dict(key), errors)
        qubits = sorted(mapping)
        sampled = state.sample(group_shots, rng, qubits=qubits)
        bits = np.zeros((group_shots, width), dtype=np.uint8)
        for col, q in enumerate(qubits):
            bits[:, mapping[q]] = sampled[:, col]
        chunks.append(bits)
    return np.concatenate(chunks, axis=0)


def _sample_per_shot_engine(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
    *,
    make_state,
    apply_gate,
    inject,
) -> np.ndarray:
    """One per-shot loop shared by both engines.

    The dense and tableau per-shot paths must consume the RNG stream in
    lock-step (one draw per measurement/reset, one realization draw per
    noisy op) for seeded runs to stay aligned across engines — so there
    is exactly one copy of the walk, parameterized over the state
    factory, the gate applicator, and the error injector.
    """
    noisy = dict(_noisy_ops(circuit, noise, extra))
    width = circuit.num_clbits
    bits = np.zeros((shots, width), dtype=np.uint8)
    for s in range(shots):
        state = make_state()
        for idx, inst in enumerate(circuit):
            if inst.name == "measure":
                bits[s, inst.clbits[0]] = state.measure(inst.qubits[0], rng)
            elif inst.name == "reset":
                state.reset(inst.qubits[0], rng)
            elif inst.name in UNITARY_NOOPS:
                pass
            else:
                apply_gate(state, inst)
            err = noisy.get(idx)
            if err is not None:
                draw = int(err.sample_many(1, rng)[0])
                if draw >= 0:
                    inject(state, inst, err, draw)
    return bits


def _sample_per_shot(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    return _sample_per_shot_engine(
        circuit,
        shots,
        noise,
        rng,
        extra,
        make_state=lambda: StateVector(circuit.num_qubits),
        apply_gate=lambda state, inst: state.apply_matrix(inst.matrix(), inst.qubits),
        inject=_inject,
    )


def _apply_readout(
    circuit: QuantumCircuit,
    bits: np.ndarray,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
) -> np.ndarray:
    if noise is None:
        return bits
    mapping = _measurement_map(circuit)
    out = bits.copy()
    for qubit, clbit in mapping.items():
        ro = noise.readout_for(qubit)
        if ro is not None:
            out[:, clbit] = ro.apply_to_bits(out[:, clbit], rng)
    return out


__all__ = ["sample_counts", "ideal_probabilities"]
