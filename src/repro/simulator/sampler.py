"""Shot sampler: trajectory grouping, prefix-sharing, engine dispatch.

Sampling a noisy 20-qubit circuit shot-by-shot would re-simulate the
full state vector thousands of times.  Because every executor error is a
*stochastic event* (Pauli injection or reset — see
:mod:`repro.simulator.noise`), two shots whose sampled error events are
identical traverse identical trajectories.  The sampler therefore:

1. pre-samples the error realization of every shot (vectorized),
2. groups shots by realization — at realistic error rates the
   overwhelmingly common group is "no error at all",
3. simulates one trajectory per distinct realization,
4. samples measurement outcomes per group and applies readout confusion
   bit-wise (vectorized).

Step 3 additionally shares the *clean prefix* between trajectories: all
instructions before a group's first error event are noise-free, so the
sampler advances a single clean state monotonically through the circuit
(processing groups in order of first error site) and replays only the
suffix after forking a copy at the injection point.  At realistic error
rates this turns the ``O(groups × depth)`` simulation cost into roughly
``O(depth + groups × suffix)``.  Because groups are visited in
first-error-site order rather than insertion order, the per-group RNG
consumption order differs from the naive implementation — sampled
distributions are identical, individual seeded streams are not (the
baseline is kept as :func:`_sample_grouped_baseline` for the perf
harness and the equivalence suite).

Circuits with mid-circuit measurement or reset fall back to a per-shot
path, since their collapse randomness de-groups trajectories.

Engine dispatch
---------------
There is exactly **one** grouped walk (:func:`_sample_grouped`) and
**one** per-shot walk (:func:`_sample_per_shot`), both parameterized
over an :class:`~repro.simulator.engines.base.ExecutionEngine` class
from the engine registry (:mod:`repro.simulator.engines`).  Which
backend serves a request is decided per circuit by
:func:`repro.simulator.engines.select_engine` under the mode string
:func:`engine_mode` installs — dense state vector, stabilizer tableau,
or the segment-granular hybrid (tableau→dense) engine.

All engines consume the RNG stream in lock-step (realization draws,
then per-group outcome draws in first-error-site order, then readout),
and every backend inverts the same outcome CDF the dense engine's
``rng.choice`` does — so seeded Clifford runs produce bit-identical
counts regardless of which engine served them, and seeded hybrid runs
match the dense engine to float precision.

Two scale-out layers ride on the grouped walk: the **batched** walk
(:func:`_grouped_batched_walk`, modes ``"batched"``/``"auto"``) stacks
all trajectory groups into one ``(rows, 2^n)`` array and advances them
in lockstep windows with one kernel call per gate, preserving the RNG
stream exactly; and **process-pool sharding**
(:mod:`repro.simulator.sharding`, via ``engine_mode(workers=...)``)
splits shots into fixed-size blocks with seed-derived streams so any
worker count reproduces the same counts.
"""

from __future__ import annotations

import numbers
import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.errors import EngineModeError, SimulationError
from repro.simulator.counts import Counts
from repro.simulator.engines import (
    DenseEngine,
    ExecutionEngine,
    TableauEngine,
    inject_into_dense,
    select_engine,
)
from repro.simulator.engines import mps as _mps
from repro.simulator.noise import NoiseModel, QuantumError
from repro.simulator.statevector import StateVector
from repro.simulator import stabilizer as _stabilizer
from repro.telemetry import tracing as _tracing
from repro.testing import faults as _faults
from repro.utils.rng import RandomState, as_rng


def sample_counts(
    circuit: QuantumCircuit,
    shots: int,
    *,
    noise: Optional[NoiseModel] = None,
    rng: RandomState = None,
    instruction_errors: Optional[Mapping[int, QuantumError]] = None,
) -> Counts:
    """Sample *shots* measurement outcomes of *circuit* under *noise*.

    Returns a :class:`Counts` over the circuit's classical bits.  Qubits
    never measured leave their classical bits at 0.

    *instruction_errors* optionally attaches an extra
    :class:`QuantumError` to specific instruction indices — the device
    executor uses this for duration-dependent idle/delay decoherence
    that cannot be keyed by gate name alone.
    """
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    if not circuit.has_measurements():
        raise SimulationError(
            f"circuit {circuit.name!r} has no measurements; nothing to sample"
        )
    extra = dict(instruction_errors or {})
    if WORKERS is not None:
        # ``engine_mode(workers=...)`` is a documented *semantics*
        # switch (like the MPS ``chi``): shots are split into fixed-size
        # blocks, each drawing from a stream derived from the seed, so
        # counts are identical at every worker count — but differ from
        # the single-stream driver's stream.
        from repro.simulator import sharding as _sharding

        if isinstance(rng, np.random.Generator):
            raise SimulationError(
                "sharded sampling (engine_mode workers=...) needs an int "
                "seed or None, not a live Generator: per-block streams are "
                "derived from the seed so any worker count reproduces the "
                "same counts"
            )
        return _sharding.sample_counts_sharded(
            circuit,
            int(shots),
            noise=noise,
            seed=rng,
            workers=WORKERS,
            instruction_errors=extra,
        )
    if ENGINE != "baseline":
        # Pre-flight admission control: reject an over-budget request
        # with a structured error *before* any state allocation.  The
        # baseline seed path is exempt so its behaviour stays
        # byte-for-byte historical.
        from repro.simulator import resilience as _resilience

        with _tracing.run_scope(
            "sampler.run",
            mode=ENGINE,
            num_qubits=circuit.num_qubits,
            shots=int(shots),
        ):
            _tracing.note("mode", ENGINE)
            _tracing.note("num_qubits", circuit.num_qubits)
            _tracing.note("shots", int(shots))
            estimate = _resilience.check_admission(circuit, ENGINE)
            _tracing.note("estimated_peak_bytes", estimate.peak_bytes)
            return _sample_counts_single(
                circuit, int(shots), noise, as_rng(rng), extra
            )
    return _sample_counts_single(circuit, int(shots), noise, as_rng(rng), extra)


def _sample_counts_single(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    r: np.random.Generator,
    extra: Mapping[int, QuantumError],
    initial: Optional[Tuple[np.ndarray, int]] = None,
) -> Counts:
    """The classic single-stream driver behind :func:`sample_counts`.

    The sharding layer calls this per block (bypassing the ``WORKERS``
    delegation), optionally passing *initial* — a precomputed
    ``(amplitudes, position)`` clean-prefix state shared read-only
    across workers — which the grouped walk resumes from instead of
    re-simulating the prefix.
    """
    engine_cls = select_engine(ENGINE, circuit)
    _tracing.note("engine", engine_cls.name)
    bound = None if ENGINE == "baseline" else _bound_plan(circuit)
    if _needs_per_shot(circuit):
        with _tracing.span("sampler.per_shot", shots=shots):
            bits = _sample_per_shot(
                circuit, shots, noise, r, extra, engine_cls, bound=bound
            )
    elif not USE_PREFIX_SHARING:
        bits = _sample_grouped_baseline(circuit, shots, noise, r, extra)
    else:
        with _tracing.span(
            "sampler.grouped", engine=engine_cls.name, qubits=circuit.num_qubits
        ):
            bits = _sample_grouped(
                circuit,
                shots,
                noise,
                r,
                extra,
                engine_cls,
                initial=initial,
                bound=bound,
            )
    with _tracing.span("sampler.readout"):
        bits = _apply_readout(circuit, bits, noise, r)
    return Counts.from_bit_array(bits)


def _bound_plan(circuit: QuantumCircuit):
    """The request's :class:`~repro.compiler.plans.BoundPlan`, or ``None``
    when planning is disabled.

    One cache lookup (or one cheap plan construction on a miss) per
    request; all heavy per-window analysis inside the plan is lazy and
    memoized, so the unplanned fallback path and the planned path run
    the same code either way — plans only decide whether results are
    *reused*.  The ``"baseline"`` mode never plans: its seed RNG/walk
    behaviour stays byte-for-byte historical.
    """
    from repro.compiler import plans as _plans

    if not _plans.PLANS_ENABLED:
        return None
    return _plans.plan_for(circuit).bind(circuit.instructions)


def ideal_probabilities(circuit: QuantumCircuit) -> Dict[str, float]:
    """Noiseless outcome probabilities over the measured classical bits."""
    from repro.simulator.statevector import simulate_statevector

    state = simulate_statevector(circuit)
    mapping = _measurement_map(circuit)
    probs = state.probabilities()
    out: Dict[str, float] = {}
    width = circuit.num_clbits
    for basis, p in enumerate(probs):
        if p < 1e-15:
            continue
        bits = ["0"] * width
        for qubit, clbit in mapping.items():
            bits[width - 1 - clbit] = str((basis >> qubit) & 1)
        key = "".join(bits)
        out[key] = out.get(key, 0.0) + float(p)
    return out


# ---------------------------------------------------------------------------
# engine-mode facade
# ---------------------------------------------------------------------------


#: Engine toggle used by the perf harness (``scripts/bench.py``) to time
#: the seed-equivalent baseline; production code leaves it ``True``.
#: Toggle via :func:`engine_mode` rather than assigning directly.
USE_PREFIX_SHARING = True

#: Suffix-checkpoint reuse between trajectory groups that share more
#: than the clean prefix (same leading ``(site, term)`` injections):
#: the shared post-injection state is forked once and reused instead of
#: replayed.  RNG streams and visit order are untouched, so seeded
#: counts are bit-identical either way (pinned by
#: ``tests/test_sampler.py``); the toggle exists for the equivalence
#: suite and the perf harness.
USE_SUFFIX_CHECKPOINTS = True

#: Current engine mode; one of :data:`ENGINE_MODES`.  Set via
#: :func:`engine_mode` rather than assigning directly.
ENGINE = "fast"

#: The recognized engine modes (see :func:`engine_mode`).
ENGINE_MODES = ("baseline", "fast", "batched", "stabilizer", "hybrid", "mps", "auto")

#: Modes under which the ``tableau_impl`` sub-option is meaningful
#: (those whose routing can reach a stabilizer tableau).
_TABLEAU_IMPL_MODES = ("fast", "batched", "stabilizer", "hybrid", "auto")

#: Modes under which the MPS sub-options (``chi`` /
#: ``truncation_threshold``) are meaningful (those whose routing can
#: reach the MPS engine).
_MPS_OPTION_MODES = ("mps", "auto")

#: Modes whose grouped walk may engage the batched dense path
#: (``batched`` explicitly; ``auto`` opportunistically when the route
#: lands on a dense-family engine).
_BATCHED_WALK_MODES = ("batched", "auto")

#: Modes under which the ``batch_min_groups`` sub-option is meaningful.
_BATCH_OPTION_MODES = ("batched", "auto")

#: Modes under which the ``batch_max_bytes`` sub-option is meaningful:
#: every dense-family route consumes the budget — the batched walk sizes
#: its chunks from it and the blocked sweep executor derives its tile
#: width from it (:func:`repro.simulator.engines.dense.blocked_tile_qubits`).
_BATCH_BYTES_MODES = ("fast", "batched", "hybrid", "auto")

#: Smallest accepted ``batch_max_bytes``: below this a tile would drop
#: under the fast kernels' useful block sizes.
_BATCH_BYTES_FLOOR = 1024

#: Modes under which the ``workers`` sub-option is meaningful (the
#: sharded driver wraps any accelerated route; the ``baseline`` seed
#: path is deliberately excluded so its stream stays byte-for-byte
#: historical).
_WORKERS_MODES = ("fast", "batched", "stabilizer", "hybrid", "mps", "auto")

#: Modes under which the ``max_state_bytes`` sub-option is meaningful:
#: every accelerated route runs pre-flight admission control
#: (:mod:`repro.simulator.resilience`); the ``baseline`` seed path never
#: does, so its failure behaviour stays byte-for-byte historical.
_ADMISSION_MODES = ("fast", "batched", "stabilizer", "hybrid", "mps", "auto")

#: Modes under which the ``trace`` sub-option is meaningful: every
#: accelerated route can record spans; the ``baseline`` seed path is
#: never instrumented so its behaviour stays byte-for-byte historical.
_TRACE_MODES = ("fast", "batched", "stabilizer", "hybrid", "mps", "auto")

#: Minimum trajectory-group count (clean group included) before the
#: batched grouped walk engages under :data:`_BATCHED_WALK_MODES`; below
#: it the scalar prefix-sharing walk wins on setup cost.  Set via
#: ``engine_mode(batch_min_groups=...)``.
BATCH_MIN_GROUPS = 4

#: Cache-working-set budget, in bytes of stacked amplitudes (16 per),
#: tunable via ``engine_mode(batch_max_bytes=...)``.  Two consumers:
#: cache-resident batched-walk chunks are sized to fit it whole, and the
#: blocked sweep executor derives its tile width from it
#: (:func:`repro.simulator.engines.dense.blocked_tile_qubits` — 1/8 of
#: the budget per tile).  This is a **cache** budget, not a RAM budget:
#: the batched walk's total element work equals the scalar walk's, so
#: its entire advantage is amortizing per-gate dispatch — and that only
#: pays while the working set stays resident between gates.  Oversized
#: chunks evict every row on every gate and run DRAM-bound, *slower*
#: than the scalar walk whose single state sits in L2 (measured 0.2× at
#: 16 qubits with a 512 MiB budget vs 2.3× at 10 qubits with this one).
BATCH_MAX_BYTES = 2 * 1024 * 1024

#: Minimum rows per chunk for the *cache-resident* batched walk to
#: engage.  Fewer stacked states than this amortize too little dispatch
#: to beat the scalar walk's cache residency.  Wider registers engage
#: the batched walk only when blocked sweeps can restore per-tile
#: residency (see :func:`_use_batched_walk`).
_BATCH_MIN_CHUNK_ROWS = 16

#: Rows per chunk for the *blocked wide* batched walk regime, where
#: cache residency comes from the tiled sweeps (one tile resident at a
#: time regardless of row count).  Deliberately small: each chunk's
#: lockstep windows are delimited by the **union** of its rows' injection
#: sites, so big chunks fragment the windows below the blocked executor's
#: engagement threshold and the sweeps never fire (measured 0.5× vs the
#: scalar walk at 64 rows against ~1.05× at 4 rows on 16-qubit noisy
#: brickwork).
_WIDE_CHUNK_ROWS = 4

#: Minimum expected unitary ops per lockstep window before the *blocked
#: wide* batched walk engages.  Below this the realized injection sites
#: are so dense that most windows are too short for the blocked executor
#: (``plan_blocked_window`` wants several items per sweep), leaving the
#: rows to advance unblocked and DRAM-bound — the regime where the
#: scalar walk's suffix sharing wins (measured 0.56× on GHZ-20 under
#: per-gate noise vs ~1.05× on deep brickwork under sparse noise).
_WIDE_MIN_WINDOW_OPS = 24

#: Process-pool worker count for shot sharding; ``None`` (the default)
#: keeps the classic single-stream driver.  When set (via
#: ``engine_mode(workers=...)``), :func:`sample_counts` delegates to
#: :mod:`repro.simulator.sharding` — a documented semantics switch:
#: shots split into fixed-size blocks with per-block seed-derived
#: streams, identical at every worker count (including 1) but distinct
#: from the single-stream draw order.
WORKERS: Optional[int] = None

#: One-shot latch for the ``engine_mode(fast=...)`` deprecation warning.
_FAST_KEYWORD_WARNED = False


@contextmanager
def engine_mode(
    mode: Optional[str] = None,
    *,
    fast: Optional[bool] = None,
    tableau_impl: Optional[str] = None,
    chi: Optional[int] = None,
    truncation_threshold: Optional[float] = None,
    batch_min_groups: Optional[int] = None,
    batch_max_bytes: Optional[int] = None,
    workers: Optional[int] = None,
    max_state_bytes: Optional[int] = None,
    trace: Optional[bool] = None,
    **unknown_options: object,
) -> Iterator[None]:
    """Select the simulation engine for the dynamic extent of the block.

    A thin facade over the execution-engine registry
    (:mod:`repro.simulator.engines`): the mode string is stored in the
    process-global knobs (:attr:`StateVector.use_fast_kernels`,
    :data:`USE_PREFIX_SHARING`, :data:`ENGINE`) that
    :func:`~repro.simulator.engines.select_engine` routes from, and all
    previous values are restored on exit.  Modes:

    ``"fast"`` (the default)
        Specialized state-vector kernels + trajectory prefix-sharing.
        Clifford circuits wider than the dense limit (26 qubits) route
        through the stabilizer tableau automatically.
    ``"baseline"``
        The seed engine: generic ``moveaxis`` kernels, from-scratch
        trajectory groups, no stabilizer dispatch.  The "before" lane of
        the perf harness.
    ``"batched"``
        The fast dense route with the batched grouped walk: when a run
        produces at least :data:`BATCH_MIN_GROUPS` trajectory groups,
        their states are stacked into one ``(rows, 2^n)`` array and
        every lockstep window advances all of them in a single kernel
        call per gate (:mod:`repro.simulator.batched`).  RNG draw order
        is unchanged, so seeded counts match the scalar ``"fast"``
        engine.  Clifford circuits wider than the dense limit still
        route to the tableau; per-shot circuits fall back to the scalar
        path automatically.
    ``"stabilizer"``
        Route every Clifford-only circuit through the tableau backend
        (:mod:`repro.simulator.stabilizer`) regardless of width;
        non-Clifford circuits fall back to the fast state-vector path.
    ``"hybrid"``
        Segment-granular mixed execution
        (:class:`~repro.simulator.engines.hybrid.HybridSegmentEngine`):
        the maximal Clifford prefix runs on a tableau and hands off to
        (sparse, then dense) amplitudes at the first non-Clifford gate.
        Clifford circuits route to the tableau, circuits with no
        Clifford prefix to the dense engine.
    ``"mps"``
        The bounded-bond matrix-product-state engine
        (:class:`~repro.simulator.engines.mps.MPSEngine`) for every
        circuit: low-entanglement workloads run far beyond the dense
        limit at ``O(n · chi³)`` per gate.
    ``"auto"``
        Best-known routing per circuit: tableau for Clifford circuits;
        beyond the dense limit, hybrid for guaranteed-sparse tails and
        MPS for line-like circuits; at dense widths, hybrid when the
        Clifford prefix contains entangling structure, dense otherwise.

    The keyword-only *tableau_impl* sub-option selects the stabilizer
    tableau implementation for the block: ``"auto"`` (the default
    policy — bit-packed at and above
    :data:`repro.simulator.stabilizer.PACKED_TABLEAU_THRESHOLD` qubits),
    ``"packed"``, or ``"unpacked"``.  Both implementations are
    bit-identical in behaviour (same seeded counts, same RNG streams),
    so this is a performance policy, not a semantics switch; the perf
    harness uses it to pit the two against each other.

    The keyword-only *chi* and *truncation_threshold* sub-options scope
    the MPS engine's truncation contract for the block
    (:data:`repro.simulator.engines.mps.CHI` — the bond-dimension cap —
    and :data:`~repro.simulator.engines.mps.TRUNCATION_THRESHOLD` — the
    maximum relative weight one SVD may drop beyond the cap).  Unlike
    ``tableau_impl`` these *do* change semantics: a saturated cap
    truncates the state, with the discarded weight reported on the
    engine (``MPSEngine.truncation_error``).

    The keyword-only *batch_min_groups* sub-option tunes the batched
    walk's engagement threshold (:data:`BATCH_MIN_GROUPS`) for the
    block; it applies only to the ``"batched"`` / ``"auto"`` modes.
    Like ``tableau_impl`` it is a performance policy, not a semantics
    switch: counts are bit-identical above or below the threshold.

    The keyword-only *batch_max_bytes* sub-option tunes the
    cache-working-set budget (:data:`BATCH_MAX_BYTES`) for the block:
    batched-walk chunk sizing and the blocked sweep executor's tile
    width both derive from it, so it applies to every dense-family mode
    (``"fast"`` / ``"batched"`` / ``"hybrid"`` / ``"auto"``).  Also a
    performance policy, not a semantics switch — seeded counts are
    bit-identical at any budget (pinned by ``tests/test_blocked.py``);
    the equivalence suite shrinks it to force blocked sweeps at test
    widths.

    The keyword-only *workers* sub-option (any accelerated mode) routes
    :func:`sample_counts` through the process-pool sharding layer
    (:mod:`repro.simulator.sharding`) with that many workers.  Like
    ``chi`` this **does** change the stream contract: shots are split
    into fixed-size blocks, each drawing from a stream derived from the
    seed via the stable SHA-256 ``child_rng``, so counts are identical
    at every worker count (``workers=1`` included) but differ from the
    single-stream draw order.  Live generators are rejected under
    sharding for exactly that reason.

    The keyword-only *max_state_bytes* sub-option (any accelerated mode)
    scopes the pre-flight admission-control budget
    (:data:`repro.simulator.resilience.MAX_STATE_BYTES`) for the block:
    a request whose routed engine estimates a peak footprint above the
    budget raises a structured
    :class:`~repro.errors.ResourceAdmissionError` **before any state
    allocation**.  The default budget admits everything the stack could
    historically serve (the dense peak at the dense qubit limit), so
    this sub-option only ever tightens or relaxes that envelope; counts
    of admitted requests are unaffected.

    The keyword-only *trace* sub-option (any accelerated mode) toggles
    the execution flight recorder
    (:mod:`repro.telemetry.tracing`) for the block: every sampling run
    records hierarchical phase spans and counters and yields a
    structured :class:`~repro.telemetry.tracing.ExecutionReport`
    (``tracing.last_report()``).  Tracing never draws random numbers and
    never changes instruction visit order, so seeded counts are
    bit-identical with tracing on or off (pinned across the engine
    matrix and in the differential fuzz suite); the ``"baseline"`` seed
    path is never instrumented.

    Every sub-option is validated **for the selected mode**: a
    sub-option that the mode's routing can never consume
    (``tableau_impl`` outside tableau-capable modes, ``chi`` /
    ``truncation_threshold`` outside ``"mps"`` / ``"auto"``,
    ``batch_min_groups`` outside ``"batched"`` / ``"auto"``,
    ``batch_max_bytes`` outside the dense-family modes,
    ``workers`` / ``max_state_bytes`` / ``trace`` under ``"baseline"``)
    is rejected rather than silently ignored, as is any unrecognized
    keyword.

    An invalid *mode* or sub-option raises
    :class:`~repro.errors.EngineModeError` (a :class:`ValueError`)
    **before** any global state is touched, so a failed call can never
    leave the knobs partially set.

    The boolean keyword form ``engine_mode(fast=True/False)`` is the
    pre-stabilizer spelling, maps to ``"fast"`` / ``"baseline"``, and is
    deprecated (one :class:`DeprecationWarning` per process).
    """
    global _FAST_KEYWORD_WARNED
    if unknown_options:
        # Hygiene: an unrecognized sub-option must fail loudly instead
        # of silently configuring nothing (a typo like ``ci=64`` would
        # otherwise run the whole block on defaults).
        names = ", ".join(sorted(unknown_options))
        raise EngineModeError(
            f"unknown engine_mode sub-option(s): {names}; recognized "
            "sub-options are tableau_impl, chi, truncation_threshold, "
            "batch_min_groups, batch_max_bytes, workers, max_state_bytes, "
            "trace"
        )
    if fast is not None:
        if mode is not None:
            raise EngineModeError("pass either mode or fast=, not both")
        if not _FAST_KEYWORD_WARNED:
            warnings.warn(
                "engine_mode(fast=...) is deprecated; pass a mode string "
                "('fast' / 'baseline') instead",
                DeprecationWarning,
                stacklevel=3,
            )
            _FAST_KEYWORD_WARNED = True
        mode = "fast" if fast else "baseline"
    if mode not in ENGINE_MODES:
        raise EngineModeError(
            f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}"
        )
    if tableau_impl is not None:
        if mode not in _TABLEAU_IMPL_MODES:
            raise EngineModeError(
                f"tableau_impl is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_TABLEAU_IMPL_MODES}"
            )
        if tableau_impl not in _stabilizer.TABLEAU_IMPLS:
            raise EngineModeError(
                f"unknown tableau implementation {tableau_impl!r}; expected "
                f"one of {_stabilizer.TABLEAU_IMPLS}"
            )
    if chi is not None or truncation_threshold is not None:
        if mode not in _MPS_OPTION_MODES:
            raise EngineModeError(
                "chi / truncation_threshold are not sub-options of engine "
                f"mode {mode!r}; they apply to {_MPS_OPTION_MODES}"
            )
    if chi is not None and (
        isinstance(chi, bool) or not isinstance(chi, numbers.Integral) or chi < 1
    ):
        # bool is an int subclass (True would silently mean chi=1), and
        # numpy integers from sweep/config code are perfectly valid.
        raise EngineModeError(f"bond cap chi must be an integer >= 1, got {chi!r}")
    if truncation_threshold is not None and not (
        0.0 <= float(truncation_threshold) < 1.0
    ):
        raise EngineModeError(
            f"truncation_threshold must lie in [0, 1), got {truncation_threshold!r}"
        )
    if batch_min_groups is not None:
        if mode not in _BATCH_OPTION_MODES:
            raise EngineModeError(
                f"batch_min_groups is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_BATCH_OPTION_MODES}"
            )
        if (
            isinstance(batch_min_groups, bool)
            or not isinstance(batch_min_groups, numbers.Integral)
            or batch_min_groups < 1
        ):
            raise EngineModeError(
                f"batch_min_groups must be an integer >= 1, got {batch_min_groups!r}"
            )
    if batch_max_bytes is not None:
        if mode not in _BATCH_BYTES_MODES:
            raise EngineModeError(
                f"batch_max_bytes is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_BATCH_BYTES_MODES}"
            )
        if (
            isinstance(batch_max_bytes, bool)
            or not isinstance(batch_max_bytes, numbers.Integral)
            or batch_max_bytes < _BATCH_BYTES_FLOOR
        ):
            raise EngineModeError(
                f"batch_max_bytes must be an integer >= {_BATCH_BYTES_FLOOR}, "
                f"got {batch_max_bytes!r}"
            )
    if workers is not None:
        if mode not in _WORKERS_MODES:
            raise EngineModeError(
                f"workers is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_WORKERS_MODES}"
            )
        if (
            isinstance(workers, bool)
            or not isinstance(workers, numbers.Integral)
            or workers < 1
        ):
            raise EngineModeError(
                f"workers must be an integer >= 1, got {workers!r}"
            )
    if max_state_bytes is not None:
        if mode not in _ADMISSION_MODES:
            raise EngineModeError(
                f"max_state_bytes is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_ADMISSION_MODES}"
            )
        if (
            isinstance(max_state_bytes, bool)
            or not isinstance(max_state_bytes, numbers.Integral)
            or max_state_bytes < 1
        ):
            raise EngineModeError(
                f"max_state_bytes must be an integer >= 1, got {max_state_bytes!r}"
            )
    if trace is not None:
        if mode not in _TRACE_MODES:
            raise EngineModeError(
                f"trace is not a sub-option of engine mode {mode!r}; "
                f"it applies to {_TRACE_MODES}"
            )
        if not isinstance(trace, bool):
            raise EngineModeError(f"trace must be a bool, got {trace!r}")
    # Validation is complete — only now may globals be mutated.
    from repro.simulator import resilience as _resilience

    global USE_PREFIX_SHARING, ENGINE, BATCH_MIN_GROUPS, BATCH_MAX_BYTES, WORKERS
    prev_engine = ENGINE
    prev_kernels = StateVector.use_fast_kernels
    prev_prefix = USE_PREFIX_SHARING
    prev_impl = _stabilizer.TABLEAU_IMPL
    prev_chi = _mps.CHI
    prev_threshold = _mps.TRUNCATION_THRESHOLD
    prev_batch_min = BATCH_MIN_GROUPS
    prev_batch_bytes = BATCH_MAX_BYTES
    prev_workers = WORKERS
    prev_budget = _resilience.MAX_STATE_BYTES
    prev_trace = _tracing.ENABLED
    accelerated = mode != "baseline"
    ENGINE = mode
    StateVector.use_fast_kernels = accelerated
    USE_PREFIX_SHARING = accelerated
    if tableau_impl is not None:
        _stabilizer.TABLEAU_IMPL = tableau_impl
    if chi is not None:
        _mps.CHI = int(chi)
    if truncation_threshold is not None:
        _mps.TRUNCATION_THRESHOLD = float(truncation_threshold)
    if batch_min_groups is not None:
        BATCH_MIN_GROUPS = int(batch_min_groups)
    if batch_max_bytes is not None:
        BATCH_MAX_BYTES = int(batch_max_bytes)
    if workers is not None:
        WORKERS = int(workers)
    if max_state_bytes is not None:
        _resilience.MAX_STATE_BYTES = int(max_state_bytes)
    if trace is not None:
        _tracing.ENABLED = trace
    try:
        yield
    finally:
        ENGINE = prev_engine
        StateVector.use_fast_kernels = prev_kernels
        USE_PREFIX_SHARING = prev_prefix
        _stabilizer.TABLEAU_IMPL = prev_impl
        _mps.CHI = prev_chi
        _mps.TRUNCATION_THRESHOLD = prev_threshold
        BATCH_MIN_GROUPS = prev_batch_min
        BATCH_MAX_BYTES = prev_batch_bytes
        WORKERS = prev_workers
        _resilience.MAX_STATE_BYTES = prev_budget
        _tracing.ENABLED = prev_trace


def _route_to_stabilizer(circuit: QuantumCircuit) -> bool:
    """Dispatch predicate: does the active mode route this circuit to
    the pure-tableau backend?  (Kept for the dispatch test suite; the
    sampler itself asks :func:`select_engine` directly.)"""
    return select_engine(ENGINE, circuit) is TableauEngine


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _needs_per_shot(circuit: QuantumCircuit) -> bool:
    """True when collapse randomness prevents trajectory grouping."""
    measured: set[int] = set()
    for inst in circuit:
        if inst.name == "reset":
            return True
        if inst.name == "measure":
            measured.add(inst.qubits[0])
            continue
        if inst.name == "barrier":
            continue
        if measured & set(inst.qubits):
            return True  # gate after measurement on the same qubit
    return False


def _measurement_map(circuit: QuantumCircuit) -> Dict[int, int]:
    """qubit → clbit mapping (last measurement of each qubit wins)."""
    mapping: Dict[int, int] = {}
    for inst in circuit:
        if inst.name == "measure":
            mapping[inst.qubits[0]] = inst.clbits[0]
    return mapping


def _noisy_ops(
    circuit: QuantumCircuit,
    noise: Optional[NoiseModel],
    extra: Mapping[int, QuantumError],
) -> List[Tuple[int, QuantumError]]:
    out: List[Tuple[int, QuantumError]] = []
    for idx, inst in enumerate(circuit):
        if inst.name == "barrier":
            continue
        err: Optional[QuantumError] = None
        if noise is not None and not noise.is_trivial():
            err = noise.error_for(inst.name, inst.qubits)
        bonus = extra.get(idx)
        if bonus is not None:
            err = bonus if err is None else err.compose(bonus)
        if err is not None and err.terms:
            out.append((idx, err))
    return out


def _group_realizations(
    noisy: List[Tuple[int, QuantumError]], shots: int, rng: np.random.Generator
) -> Dict[Tuple[Tuple[int, int], ...], int]:
    """Steps 1-2: sample every shot's error realization and histogram them.

    Keys are ``((op_index, term_index), ...)`` tuples sorted by op index;
    the empty key is the clean (error-free) group.
    """
    groups: Dict[Tuple[Tuple[int, int], ...], int] = {}
    if not noisy:
        groups[()] = shots
        return groups
    draws = np.stack(
        [err.sample_many(shots, rng) for _, err in noisy], axis=0
    )  # (n_noisy_ops, shots)
    any_error = (draws >= 0).any(axis=0)
    clean = int(shots - any_error.sum())
    if clean:
        groups[()] = clean
    op_indices = np.array([idx for idx, _ in noisy])
    for s in np.nonzero(any_error)[0]:
        col = draws[:, s]
        key = tuple(
            (int(op_indices[j]), int(col[j])) for j in np.nonzero(col >= 0)[0]
        )
        groups[key] = groups.get(key, 0) + 1
    return groups


def _sample_grouped(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
    engine_cls: Optional[Type[ExecutionEngine]] = None,
    initial: Optional[Tuple[np.ndarray, int]] = None,
    bound=None,
) -> np.ndarray:
    """The one prefix-sharing grouped walk, shared by every engine.

    Steps 3-4 of the sampler: one trajectory per distinct error
    realization, sharing the clean prefix — groups are visited in order
    of first error site so a single clean engine advances monotonically
    and each group replays only the suffix after its first injection
    (the error fires *after* its instruction; the clean group sorts
    last, so the shared prefix *is* its state).

    Every backend must consume the RNG stream in lock-step (realization
    draws, then per-group outcome draws in this exact visit order) for
    seeded runs to stay aligned across engines — so there is exactly one
    copy of the walk, parameterized over the
    :class:`~repro.simulator.engines.base.ExecutionEngine` class.
    ``engine.inject`` reports whether the injection preserved shareable
    state structure; the flag reaches ``engine.sample`` so
    structure-keyed caches (the tableau's shared coset factorization)
    apply exactly where they are valid.

    Beyond the clean prefix, consecutive groups often share *injected*
    structure too: multi-error realizations drawn from the same early
    error site agree on their leading ``(site, term)`` pairs.  When
    :data:`USE_SUFFIX_CHECKPOINTS` is on, the walk forks a checkpoint of
    the state right after each shared injection (only at depths the
    *next* visited group actually shares, so single-error groups — the
    overwhelming majority — pay nothing) and the next group resumes from
    the deepest matching checkpoint instead of replaying the shared
    window.  ``inject``/``advance`` never draw from the RNG and the
    visit order is unchanged, so seeded streams are bit-identical with
    the optimization on or off.
    """
    if engine_cls is None:
        engine_cls = select_engine(ENGINE, circuit)
    noisy = _noisy_ops(circuit, noise, extra)
    errors = dict(noisy)
    with _tracing.span("sampler.realizations", shots=shots):
        groups = _group_realizations(noisy, shots, rng)
    _tracing.count("sampler.trajectory_groups", len(groups))
    instructions = list(circuit)
    end = len(instructions)
    mapping = _measurement_map(circuit)
    qubits = sorted(mapping)
    width = circuit.num_clbits
    ordered = sorted(groups.items(), key=lambda kv: kv[0][0][0] if kv[0] else end)
    prefix = engine_cls(circuit)
    if bound is not None:
        # Forks inherit the plan, so one bind covers every trajectory.
        prefix.bind_plan(bound)
    prefix_pos = 0
    if initial is not None and isinstance(prefix, DenseEngine):
        # Sharded workers resume from the clean-prefix state the parent
        # computed once and shared read-only (every group's first error
        # site lies at or beyond this position by construction).
        prefix.to_dense().data[:] = initial[0]
        prefix_pos = int(initial[1])
    clbit_cols = np.asarray([mapping[q] for q in qubits], dtype=np.int64)
    # Engines treat qubits=None as "full register in index order" — the
    # same bits, minus a per-group column-selection copy in every engine.
    sample_qubits = None if qubits == list(range(circuit.num_qubits)) else qubits
    if _use_batched_walk(engine_cls, circuit, len(ordered), ordered=ordered):
        return _grouped_batched_walk(
            circuit, shots, ordered, errors, rng, prefix, prefix_pos, bound=bound
        )
    # One preallocated output filled in visit order — row order (and
    # therefore the readout-noise RNG pairing downstream) is identical
    # to concatenating per-group chunks.
    out = np.zeros((shots, width), dtype=np.uint8)
    row = 0
    # Suffix checkpoints: depth d maps to the (never-mutated) state
    # right after injecting the previous group's leading d error terms,
    # plus its shares_structure flag.  Entries are only created at
    # depths the next visited group provably shares, so they always
    # match the current group's leading injections by construction.
    ckpts: Dict[int, Tuple[ExecutionEngine, bool]] = {}
    for index, (key, group_shots) in enumerate(ordered):
        _faults.fault_point("engine.span", index)
        first = key[0][0] if key else end
        fork = min(first + 1, end)
        prefix.advance_span(instructions, prefix_pos, fork)
        prefix_pos = fork
        shares_structure = True
        if key:
            # Replay the suffix in whole windows between error sites
            # (identical operation order and RNG stream to a
            # per-instruction walk — inject/advance never draw): the
            # engine's bulk `advance` gets one call per window instead
            # of one Python frame + list slice per instruction, which is
            # where replay-bound engines (the packed tableau) spend
            # their time, and gives the dense engine fusible windows.
            next_key = ordered[index + 1][0] if index + 1 < len(ordered) else ()
            new_ckpts: Dict[int, Tuple[ExecutionEngine, bool]] = {}
            depth = max(ckpts) if ckpts else 0
            if depth:
                # Resume from the deepest shared checkpoint instead of
                # replaying the shared injection window.
                ckpt_state, shares_structure = ckpts[depth]
                state = ckpt_state.fork()
                prev = key[depth - 1][0]
            else:
                state = prefix.fork()
                prev = first
                shares_structure &= state.inject(
                    instructions[first], errors[first], key[0][1]
                )
                depth = 1
                if USE_SUFFIX_CHECKPOINTS and next_key[:1] == key[:1]:
                    new_ckpts[1] = (state.fork(), shares_structure)
            # Checkpoints shallower than the resume depth stay valid for
            # the next group iff it still shares that much of this key.
            for d, entry in ckpts.items():
                if d <= depth and next_key[:d] == key[:d]:
                    new_ckpts[d] = entry
            for site, term in key[depth:]:
                state.advance_span(instructions, prev + 1, site + 1)
                shares_structure &= state.inject(
                    instructions[site], errors[site], term
                )
                prev = site
                depth += 1
                if USE_SUFFIX_CHECKPOINTS and next_key[:depth] == key[:depth]:
                    new_ckpts[depth] = (state.fork(), shares_structure)
            state.advance_span(instructions, prev + 1, end)
            ckpts = new_ckpts
        else:
            state = prefix
            ckpts = {}
        sampled = state.sample(
            group_shots, rng, sample_qubits, shares_structure=shares_structure
        )
        if clbit_cols.size:
            out[row : row + group_shots, clbit_cols] = sampled
        row += group_shots
    return out


def _wide_window_ops(circuit: QuantumCircuit, ordered) -> float:
    """Expected unitary ops per lockstep window were the blocked-wide
    batched walk to run *ordered*'s realization groups in
    :data:`_WIDE_CHUNK_ROWS`-row chunks.

    Each chunk's windows are delimited by the union of its rows'
    injection sites, so the estimate is exact per chunk and averaged
    across chunks.  No noisy groups means no windows to fragment."""
    noisy = [key for key, _ in ordered if key]
    if not noisy:
        return float("inf")
    unitary = sum(1 for inst in circuit if inst.name not in UNITARY_NOOPS)
    boundaries = 0
    chunks = 0
    for start in range(0, len(noisy), _WIDE_CHUNK_ROWS):
        chunk = noisy[start : start + _WIDE_CHUNK_ROWS]
        boundaries += len({site for key in chunk for site, _ in key})
        chunks += 1
    return unitary * chunks / (boundaries + chunks)


def _use_batched_walk(
    engine_cls: Type[ExecutionEngine],
    circuit: QuantumCircuit,
    group_count: int,
    ordered=None,
) -> bool:
    """Whether the grouped walk should run batched for this request.

    Requires a batched-capable mode, a dense-family route (the tableau,
    hybrid and MPS backends keep the scalar walk), enough trajectory
    groups to amortize the batch setup, and a width the walk can serve
    efficiently.  Two regimes qualify:

    * **cache-resident** — the register is narrow enough that
      :data:`_BATCH_MIN_CHUNK_ROWS` stacked states fit the
      cache-working-set budget (see :data:`BATCH_MAX_BYTES`); or
    * **blocked wide** — the register is wider than the blocked sweep
      executor's tile
      (:func:`repro.simulator.engines.dense.blocked_tile_qubits`),
      blocked sweeps are enabled, and the realized injection sites are
      sparse enough (:func:`_wide_window_ops` against
      :data:`_WIDE_MIN_WINDOW_OPS`, when *ordered* is supplied) that the
      lockstep windows will actually block — then per-tile residency is
      independent of the row count and stacking wins on per-gate
      dispatch overhead.

    The gap between the two regimes (wider than cache-resident, not yet
    wider than a tile) keeps the scalar walk, which is cache-resident
    there by construction.
    """
    if not (
        ENGINE in _BATCHED_WALK_MODES
        and issubclass(engine_cls, DenseEngine)
        and StateVector.use_fast_kernels
        and group_count >= BATCH_MIN_GROUPS
    ):
        return False
    if (16 << circuit.num_qubits) * _BATCH_MIN_CHUNK_ROWS <= BATCH_MAX_BYTES:
        return True
    from repro.simulator.engines import dense as _dense_mod

    if not (
        bool(_dense_mod.BLOCKED_SWEEPS)
        and circuit.num_qubits > _dense_mod.blocked_tile_qubits()
    ):
        return False
    return (
        ordered is None or _wide_window_ops(circuit, ordered) >= _WIDE_MIN_WINDOW_OPS
    )


def _grouped_batched_walk(
    circuit: QuantumCircuit,
    shots: int,
    ordered: List[Tuple[Tuple[Tuple[int, int], ...], int]],
    errors: Dict[int, QuantumError],
    rng: np.random.Generator,
    prefix: ExecutionEngine,
    prefix_pos: int,
    bound=None,
) -> np.ndarray:
    """The batched grouped walk: every trajectory group in one kernel
    call per lockstep window.

    Groups arrive in first-error-site order (*ordered*, the same visit
    order as the scalar walk, clean group last).  Noisy groups are
    stacked — in visit-order chunks bounded by :data:`BATCH_MAX_BYTES` —
    into a :class:`~repro.simulator.batched.BatchedStateVector`; within
    a chunk, the union of the groups' injection sites delimits the
    lockstep windows.  At each window boundary the active rows advance
    together (one kernel call per gate, diagonal-run fusion included);
    groups whose **first** error fires there fork off the clean prefix
    (which advances lazily, join-to-join) and take their injection on a
    scalar row view; already-active rows take any later injections of
    their multi-error keys at the matching sites.  After the last
    boundary the whole chunk advances to the end of the circuit and each
    row is sampled in visit order.

    RNG parity: the walk draws nothing during advance/fork/inject, per
    group sampling draws ``rng.random(group_shots)`` against a CDF built
    by the scalar pipeline, and the visit order is unchanged — so the
    consumed stream is identical to the scalar walk's.  Per-row
    amplitudes may differ from the scalar walk by float rounding
    (~1e-16) where diagonal-run fusion partitions windows differently;
    the repo's parity standard (bit-identical *counts* under pinned
    seeds, as with the hybrid engine) is pinned by
    ``tests/test_batched.py``.
    """
    from repro.simulator.batched import BatchedStateVector
    from repro.simulator.engines.batched import BatchedDenseEngine

    instructions = list(circuit)
    end = len(instructions)
    mapping = _measurement_map(circuit)
    qubits = sorted(mapping)
    width = circuit.num_clbits
    clbit_cols = np.asarray([mapping[q] for q in qubits], dtype=np.int64)
    sample_qubits = None if qubits == list(range(circuit.num_qubits)) else qubits
    qs = (
        np.arange(circuit.num_qubits, dtype=np.int64)
        if sample_qubits is None
        else np.asarray(sample_qubits, dtype=np.int64)
    )
    out = np.zeros((shots, width), dtype=np.uint8)
    row = 0
    noisy_groups = [kv for kv in ordered if kv[0]]
    n = circuit.num_qubits
    row_bytes = 16 << n
    if row_bytes * _BATCH_MIN_CHUNK_ROWS <= BATCH_MAX_BYTES:
        # Cache-resident regime: the whole chunk stays inside the
        # working-set budget.
        rows_per_chunk = max(2, BATCH_MAX_BYTES // row_bytes)
    else:
        # Blocked-wide regime: residency comes from the tile sweep, not
        # the chunk size; chunks stay small so the union of their rows'
        # injection sites keeps the lockstep windows long enough for the
        # blocked executor to engage.
        rows_per_chunk = _WIDE_CHUNK_ROWS
    for start in range(0, len(noisy_groups), rows_per_chunk):
        chunk = noisy_groups[start : start + rows_per_chunk]
        batch = BatchedStateVector(n, len(chunk))
        # Window boundaries: every injection site of every group in the
        # chunk.  ``joins[site]`` are the rows whose trajectory begins
        # there (first error), ``later[site]`` the follow-up injections
        # of multi-error rows already marching with the batch.
        joins: Dict[int, List[Tuple[int, int]]] = {}
        later: Dict[int, List[Tuple[int, int]]] = {}
        for i, (key, _) in enumerate(chunk):
            joins.setdefault(key[0][0], []).append((i, key[0][1]))
            for site, term in key[1:]:
                later.setdefault(site, []).append((i, term))
        active = 0
        batch_pos = prefix_pos
        for site in sorted(set(joins) | set(later)):
            stop = site + 1
            if active:
                BatchedDenseEngine.advance_batch_span(
                    batch.narrow(active), instructions, batch_pos, stop, plan=bound
                )
            for i, term in joins.get(site, ()):
                if prefix_pos < stop:
                    prefix.advance_span(instructions, prefix_pos, stop)
                    prefix_pos = stop
                batch.set_row(i, prefix.to_dense().data)
                BatchedDenseEngine.inject_row(
                    batch, i, instructions[site], errors[site], term
                )
                active = i + 1
            for i, term in later.get(site, ()):
                BatchedDenseEngine.inject_row(
                    batch, i, instructions[site], errors[site], term
                )
            batch_pos = stop
        if chunk:
            BatchedDenseEngine.advance_batch_span(
                batch, instructions, batch_pos, end, plan=bound
            )
        cdfs = batch.cdfs() if chunk else None
        for i, (key, group_shots) in enumerate(chunk):
            u = rng.random(int(group_shots))
            outcomes = np.searchsorted(cdfs[i], u, side="right")
            sampled = ((outcomes[:, None] >> qs[None, :]) & 1).astype(np.uint8)
            if clbit_cols.size:
                out[row : row + group_shots, clbit_cols] = sampled
            row += group_shots
    if ordered and not ordered[-1][0]:
        # The clean group sorts last and *is* the prefix, exactly as in
        # the scalar walk.
        _, group_shots = ordered[-1]
        prefix.advance_span(instructions, prefix_pos, end)
        sampled = prefix.sample(
            group_shots, rng, sample_qubits, shares_structure=True
        )
        if clbit_cols.size:
            out[row : row + group_shots, clbit_cols] = sampled
        row += group_shots
    return out


def _sample_per_shot(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
    engine_cls: Optional[Type[ExecutionEngine]] = None,
    bound=None,
) -> np.ndarray:
    """The one per-shot walk (mid-circuit measurement/reset), shared by
    every engine.

    Each backend must consume the RNG stream in lock-step (one draw per
    measurement/reset, one realization draw per noisy op) for seeded
    runs to stay aligned across engines — so there is exactly one copy
    of the walk, parameterized over the engine class; a fresh engine
    instance is one trajectory.

    The walk is compiled once per request into an event list: maximal
    unitary *spans* between collapse/injection boundaries, plus the
    boundary events themselves.  Spans go through ``advance_span`` —
    multi-gate windows, so the dense engines fuse exactly as in the
    grouped walk (and reuse plan memos when a plan is bound) instead of
    paying one ``advance`` call per gate per shot.  Event order (and
    therefore RNG draw order) is identical to the historical
    per-instruction loop.
    """
    if engine_cls is None:
        engine_cls = select_engine(ENGINE, circuit)
    noisy = dict(_noisy_ops(circuit, noise, extra))
    instructions = list(circuit)
    width = circuit.num_clbits
    bits = np.zeros((shots, width), dtype=np.uint8)

    events: List[tuple] = []
    span_start = -1

    def _flush(stop: int) -> None:
        nonlocal span_start
        if span_start >= 0 and stop > span_start:
            events.append(("span", span_start, stop))
        span_start = -1

    for idx, inst in enumerate(instructions):
        if inst.name == "measure":
            _flush(idx)
            events.append(("measure", inst.qubits[0], inst.clbits[0]))
        elif inst.name == "reset":
            _flush(idx)
            events.append(("reset", inst.qubits[0]))
        elif span_start < 0:
            span_start = idx
        err = noisy.get(idx)
        if err is not None:
            # The error fires after its instruction, so the span must
            # close *including* this gate before the injection draw.
            _flush(idx + 1)
            events.append(("noise", inst, err))
    _flush(len(instructions))

    for s in range(shots):
        engine = engine_cls(circuit)
        if bound is not None:
            engine.bind_plan(bound)
        for ev in events:
            kind = ev[0]
            if kind == "span":
                engine.advance_span(instructions, ev[1], ev[2])
            elif kind == "measure":
                bits[s, ev[2]] = engine.measure(ev[1], rng)
            elif kind == "reset":
                engine.reset(ev[1], rng)
            else:
                _, inst, err = ev
                draw = int(err.sample_many(1, rng)[0])
                if draw >= 0:
                    engine.inject(inst, err, draw)
    return bits


# ---------------------------------------------------------------------------
# seed-engine reference paths (kept verbatim for the perf harness and the
# equivalence suite)
# ---------------------------------------------------------------------------


#: Dense error injection, re-exported under its historical sampler name
#: (the baseline trajectory path and the equivalence suite use it).
_inject = inject_into_dense


def _advance_clean(
    state: StateVector, instructions: Sequence[Instruction], start: int, stop: int
) -> None:
    """Apply the unitary part of ``instructions[start:stop]`` in place
    (the raw-:class:`StateVector` helper behind the baseline path)."""
    for idx in range(start, stop):
        inst = instructions[idx]
        if inst.name in UNITARY_NOOPS:
            continue
        state.apply_matrix(inst.matrix(), inst.qubits)


def _run_trajectory(
    circuit: QuantumCircuit,
    pattern: Dict[int, int],
    errors: Dict[int, QuantumError],
) -> Tuple[StateVector, Dict[int, int]]:
    state = StateVector(circuit.num_qubits)
    mapping: Dict[int, int] = {}
    for idx, inst in enumerate(circuit):
        if inst.name == "measure":
            mapping[inst.qubits[0]] = inst.clbits[0]
        elif inst.name in UNITARY_NOOPS:
            pass
        else:
            state.apply_matrix(inst.matrix(), inst.qubits)
        if idx in pattern:
            _inject(state, inst, errors[idx], pattern[idx])
    return state, mapping


def _sample_grouped_baseline(
    circuit: QuantumCircuit,
    shots: int,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
    extra: Mapping[int, QuantumError],
) -> np.ndarray:
    """The seed engine: every group re-simulated from ``|0…0⟩``.

    Kept as the reference for the equivalence suite and the "before"
    lane of the perf harness.
    """
    noisy = _noisy_ops(circuit, noise, extra)
    errors = dict(noisy)
    groups = _group_realizations(noisy, shots, rng)
    width = circuit.num_clbits
    chunks: List[np.ndarray] = []
    for key, group_shots in groups.items():
        state, mapping = _run_trajectory(circuit, dict(key), errors)
        qubits = sorted(mapping)
        sampled = state.sample(group_shots, rng, qubits=qubits)
        bits = np.zeros((group_shots, width), dtype=np.uint8)
        for col, q in enumerate(qubits):
            bits[:, mapping[q]] = sampled[:, col]
        chunks.append(bits)
    return np.concatenate(chunks, axis=0)


def _apply_readout(
    circuit: QuantumCircuit,
    bits: np.ndarray,
    noise: Optional[NoiseModel],
    rng: np.random.Generator,
) -> np.ndarray:
    if noise is None:
        return bits
    mapping = _measurement_map(circuit)
    out = bits.copy()
    for qubit, clbit in mapping.items():
        ro = noise.readout_for(qubit)
        if ro is not None:
            out[:, clbit] = ro.apply_to_bits(out[:, clbit], rng)
    return out


__all__ = ["sample_counts", "ideal_probabilities", "engine_mode", "ENGINE_MODES"]
