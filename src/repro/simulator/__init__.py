"""Quantum state simulation: state vectors, stabilizer tableaux, channels,
noise, sampling, and the pluggable execution-engine registry.

Four computational substrates live here — the dense
:class:`~repro.simulator.statevector.StateVector` engine (exact, any
gate, exponential in qubits), the
:class:`~repro.simulator.stabilizer.Tableau` engine (Clifford-only,
polynomial, hundreds of qubits), the segment-granular hybrid
(tableau→dense) engine that runs a circuit's maximal Clifford prefix on
a tableau before crossing to amplitudes, and the bounded-bond
:class:`~repro.simulator.engines.mps.MPSState` tensor-network engine
for low-entanglement circuits beyond the dense limit.  All of them sit
behind the
:mod:`repro.simulator.engines` registry; the shot sampler routes per
circuit and :func:`~repro.simulator.sampler.engine_mode` is the
canonical switch.  See ``docs/architecture.md`` for the full engine
registry and mode contract.
"""

from repro.simulator.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_kraus,
    thermal_relaxation_twirl,
)
from repro.simulator.batched import BatchedStateVector
from repro.simulator.counts import Counts
from repro.simulator.density import DensityMatrix, simulate_density
from repro.simulator.engines import (
    BatchedDenseEngine,
    DenseEngine,
    ExecutionEngine,
    HybridSegmentEngine,
    MPSEngine,
    MPSState,
    SparseAmplitudes,
    TableauEngine,
    engine_registry,
    get_engine,
    prepare_engine,
    register_engine,
    select_engine,
    simulate_mps,
)
from repro.simulator.noise import (
    ErrorTerm,
    NoiseModel,
    QuantumError,
    ReadoutError,
    depolarizing_error,
    pauli_error,
    thermal_relaxation_error,
)
from repro.simulator.resilience import (
    FALLBACK_CHAINS,
    FallbackHop,
    FallbackResult,
    ResourceEstimate,
    check_admission,
    estimate_resources,
    run_with_fallback,
)
from repro.simulator.sampler import engine_mode, ideal_probabilities, sample_counts
from repro.simulator.sharding import (
    SHARD_BLOCK_SHOTS,
    SharedPrefix,
    sample_counts_sharded,
)
from repro.simulator.stabilizer import (
    CosetSupport,
    Tableau,
    ghz_tableau,
    make_tableau,
    simulate_tableau,
)
from repro.simulator.stabilizer_packed import (
    PackedCosetSupport,
    PackedTableau,
    pack_tableau,
)
from repro.simulator.statevector import (
    StateVector,
    circuit_unitary,
    ghz_state,
    simulate_statevector,
)

__all__ = [
    "KrausChannel",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "depolarizing_channel",
    "identity_channel",
    "pauli_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "thermal_relaxation_kraus",
    "thermal_relaxation_twirl",
    "Counts",
    "DensityMatrix",
    "simulate_density",
    "ErrorTerm",
    "NoiseModel",
    "QuantumError",
    "ReadoutError",
    "depolarizing_error",
    "pauli_error",
    "thermal_relaxation_error",
    "engine_mode",
    "ideal_probabilities",
    "sample_counts",
    "sample_counts_sharded",
    "SHARD_BLOCK_SHOTS",
    "SharedPrefix",
    "FALLBACK_CHAINS",
    "FallbackHop",
    "FallbackResult",
    "ResourceEstimate",
    "check_admission",
    "estimate_resources",
    "run_with_fallback",
    "ExecutionEngine",
    "BatchedDenseEngine",
    "BatchedStateVector",
    "DenseEngine",
    "TableauEngine",
    "HybridSegmentEngine",
    "MPSEngine",
    "MPSState",
    "simulate_mps",
    "SparseAmplitudes",
    "engine_registry",
    "get_engine",
    "prepare_engine",
    "register_engine",
    "select_engine",
    "CosetSupport",
    "Tableau",
    "PackedCosetSupport",
    "PackedTableau",
    "make_tableau",
    "pack_tableau",
    "ghz_tableau",
    "simulate_tableau",
    "StateVector",
    "circuit_unitary",
    "ghz_state",
    "simulate_statevector",
]
