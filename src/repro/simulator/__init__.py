"""Quantum state simulation: state vectors, stabilizer tableaux, channels,
noise, sampling.

Two computational substrates live here — the dense
:class:`~repro.simulator.statevector.StateVector` engine (exact, any
gate, exponential in qubits) and the
:class:`~repro.simulator.stabilizer.Tableau` engine (Clifford-only,
polynomial, hundreds of qubits).  The shot sampler dispatches between
them; :func:`~repro.simulator.sampler.engine_mode` is the canonical
switch.  See ``docs/architecture.md`` for the full engine-mode contract.
"""

from repro.simulator.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    identity_channel,
    pauli_channel,
    phase_damping_channel,
    phase_flip_channel,
    thermal_relaxation_kraus,
    thermal_relaxation_twirl,
)
from repro.simulator.counts import Counts
from repro.simulator.density import DensityMatrix, simulate_density
from repro.simulator.noise import (
    ErrorTerm,
    NoiseModel,
    QuantumError,
    ReadoutError,
    depolarizing_error,
    pauli_error,
    thermal_relaxation_error,
)
from repro.simulator.sampler import engine_mode, ideal_probabilities, sample_counts
from repro.simulator.stabilizer import (
    CosetSupport,
    Tableau,
    ghz_tableau,
    simulate_tableau,
)
from repro.simulator.statevector import (
    StateVector,
    circuit_unitary,
    ghz_state,
    simulate_statevector,
)

__all__ = [
    "KrausChannel",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "depolarizing_channel",
    "identity_channel",
    "pauli_channel",
    "phase_damping_channel",
    "phase_flip_channel",
    "thermal_relaxation_kraus",
    "thermal_relaxation_twirl",
    "Counts",
    "DensityMatrix",
    "simulate_density",
    "ErrorTerm",
    "NoiseModel",
    "QuantumError",
    "ReadoutError",
    "depolarizing_error",
    "pauli_error",
    "thermal_relaxation_error",
    "engine_mode",
    "ideal_probabilities",
    "sample_counts",
    "CosetSupport",
    "Tableau",
    "ghz_tableau",
    "simulate_tableau",
    "StateVector",
    "circuit_unitary",
    "ghz_state",
    "simulate_statevector",
]
