"""Exact quantum channels (Kraus form) and their Pauli-twirled forms.

Two tiers of noise live in the stack:

* **Exact Kraus channels** (this module) feed the density-matrix engine
  used for validation on small qubit counts;
* **Stochastic Pauli/reset errors** (:mod:`repro.simulator.noise`) feed
  the trajectory sampler used at device scale (20 qubits × thousands of
  shots), where exact density matrices are out of reach.

The bridge between the tiers is Pauli twirling: :func:`thermal
relaxation <thermal_relaxation_kraus>` and friends come in both exact
and twirled variants, and the test suite checks that the twirled model
reproduces the exact channel's fidelity to first order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import NoiseModelError
from repro.utils.validation import check_positive, check_probability

_ATOL = 1e-9


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by Kraus operators ``ρ → Σ K_i ρ K_i†``.

    Completeness (``Σ K_i† K_i = I``) is validated at construction.
    """

    operators: Tuple[np.ndarray, ...]
    name: str = "channel"

    def __post_init__(self) -> None:
        if not self.operators:
            raise NoiseModelError("a channel needs at least one Kraus operator")
        dim = self.operators[0].shape[0]
        total = np.zeros((dim, dim), dtype=complex)
        for k in self.operators:
            if k.ndim != 2 or k.shape[0] != k.shape[1] or k.shape[0] != dim:
                raise NoiseModelError(
                    f"Kraus operators must be square and same-dimension, got {k.shape}"
                )
            total += k.conj().T @ k
        if not np.allclose(total, np.eye(dim), atol=1e-7):
            raise NoiseModelError(
                f"channel {self.name!r} is not trace preserving "
                f"(‖ΣK†K − I‖ = {np.abs(total - np.eye(dim)).max():.2e})"
            )

    @property
    def num_qubits(self) -> int:
        """Qubit arity of the channel's Kraus operators."""
        return int(round(math.log2(self.operators[0].shape[0])))

    def apply_to_density(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        out = np.zeros_like(rho)
        for k in self.operators:
            out += k @ rho @ k.conj().T
        return out

    def compose(self, later: "KrausChannel") -> "KrausChannel":
        """Sequential composition: ``later ∘ self`` (self acts first)."""
        ops = tuple(
            b @ a for b in later.operators for a in self.operators
        )
        return KrausChannel(ops, name=f"{later.name}∘{self.name}")

    def average_gate_fidelity(self) -> float:
        """Average gate fidelity to the identity,
        ``F̄ = (Σ_i |tr K_i|² + d) / (d² + d)``."""
        d = self.operators[0].shape[0]
        s = sum(abs(np.trace(k)) ** 2 for k in self.operators)
        return float((s + d) / (d * d + d))

    def process_fidelity(self) -> float:
        """Entanglement (process) fidelity to identity, ``Σ|tr K_i|²/d²``."""
        d = self.operators[0].shape[0]
        return float(sum(abs(np.trace(k)) ** 2 for k in self.operators) / d**2)


# ---------------------------------------------------------------------------
# Standard single-qubit channels
# ---------------------------------------------------------------------------

_I2 = np.eye(2, dtype=complex)
_X2 = np.array([[0, 1], [1, 0]], dtype=complex)
_Y2 = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z2 = np.array([[1, 0], [0, -1]], dtype=complex)
PAULI_MATRICES = {"I": _I2, "X": _X2, "Y": _Y2, "Z": _Z2}


def identity_channel(num_qubits: int = 1) -> KrausChannel:
    """The do-nothing channel."""
    return KrausChannel((np.eye(1 << num_qubits, dtype=complex),), name="identity")


def bit_flip_channel(p: float) -> KrausChannel:
    """X error with probability *p*."""
    p = check_probability(p, "p")
    return KrausChannel(
        (math.sqrt(1 - p) * _I2, math.sqrt(p) * _X2), name=f"bit_flip({p:g})"
    )


def phase_flip_channel(p: float) -> KrausChannel:
    """Z error with probability *p*."""
    p = check_probability(p, "p")
    return KrausChannel(
        (math.sqrt(1 - p) * _I2, math.sqrt(p) * _Z2), name=f"phase_flip({p:g})"
    )


def pauli_channel(probabilities: Sequence[Tuple[str, float]], num_qubits: int = 1) -> KrausChannel:
    """A mixture of Pauli strings; identity absorbs the residual weight."""
    total = 0.0
    ops: List[np.ndarray] = []
    for label, prob in probabilities:
        prob = check_probability(prob, f"p[{label}]")
        if len(label) != num_qubits:
            raise NoiseModelError(
                f"Pauli label {label!r} does not match {num_qubits} qubits"
            )
        total += prob
        mat = np.eye(1, dtype=complex)
        # label index 0 acts on operand 0 (LSB): build via kron with
        # most-significant factor first.
        for ch in reversed(label.upper()):
            try:
                mat = np.kron(mat, PAULI_MATRICES[ch])
            except KeyError:
                raise NoiseModelError(f"unknown Pauli {ch!r}") from None
        ops.append(math.sqrt(prob) * mat)
    if total > 1.0 + _ATOL:
        raise NoiseModelError(f"Pauli probabilities sum to {total:g} > 1")
    residual = max(0.0, 1.0 - total)
    if residual > 0:
        ops.insert(0, math.sqrt(residual) * np.eye(1 << num_qubits, dtype=complex))
    return KrausChannel(tuple(ops), name="pauli")


def depolarizing_channel(p: float, num_qubits: int = 1) -> KrausChannel:
    """Uniform depolarizing noise: with probability *p* apply a uniformly
    random non-identity Pauli (so ``p = 1`` is the maximally-mixing case
    only asymptotically; this matches the common gate-error convention)."""
    p = check_probability(p, "p")
    labels = _all_pauli_labels(num_qubits)
    weight = p / (len(labels) - 1)
    probs = [(lbl, weight) for lbl in labels if set(lbl) != {"I"}]
    ch = pauli_channel(probs, num_qubits)
    return KrausChannel(ch.operators, name=f"depolarizing({p:g},{num_qubits}q)")


def _all_pauli_labels(num_qubits: int) -> List[str]:
    labels = [""]
    for _ in range(num_qubits):
        labels = [lbl + ch for lbl in labels for ch in "IXYZ"]
    return labels


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Zero-temperature T1 relaxation with decay probability *gamma*."""
    gamma = check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel((k0, k1), name=f"amplitude_damping({gamma:g})")


def phase_damping_channel(lam: float) -> KrausChannel:
    """Pure dephasing with parameter *lam* (coherence × √(1−λ))."""
    lam = check_probability(lam, "lambda")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return KrausChannel((k0, k1), name=f"phase_damping({lam:g})")


def thermal_relaxation_kraus(t1: float, t2: float, duration: float) -> KrausChannel:
    """Exact thermal relaxation for idle time *duration* (zero temperature).

    Composition of amplitude damping ``γ = 1 − e^{−t/T1}`` and phase
    damping chosen so total coherence decay is ``e^{−t/T2}``.  Requires
    the physicality bound ``T2 ≤ 2·T1``.
    """
    t1 = check_positive(t1, "t1")
    t2 = check_positive(t2, "t2")
    duration = check_positive(duration, "duration", strict=False)
    if t2 > 2.0 * t1 + _ATOL:
        raise NoiseModelError(f"unphysical T2 {t2:g} > 2·T1 {2*t1:g}")
    gamma = 1.0 - math.exp(-duration / t1)
    # (1-γ)(1-λ) = e^{-2t/T2}  ⇒  1-λ = e^{-2t/T2 + t/T1}
    one_minus_lam = math.exp(-2.0 * duration / t2 + duration / t1)
    lam = min(1.0, max(0.0, 1.0 - one_minus_lam))
    ad = amplitude_damping_channel(gamma)
    pd = phase_damping_channel(lam)
    composed = ad.compose(pd)
    return KrausChannel(
        composed.operators, name=f"thermal(t1={t1:g},t2={t2:g},t={duration:g})"
    )


def thermal_relaxation_twirl(
    t1: float, t2: float, duration: float
) -> List[Tuple[str, float]]:
    """Pauli/reset-twirled thermal relaxation as event probabilities.

    Returns ``[("reset", p_reset), ("Z", p_z)]`` — the sampler-friendly
    form.  Identity carries the residual probability.  The twirl keeps
    populations and coherence-decay envelopes exact (see the matching
    property test against :func:`thermal_relaxation_kraus`).
    """
    t1 = check_positive(t1, "t1")
    t2 = check_positive(t2, "t2")
    duration = check_positive(duration, "duration", strict=False)
    if t2 > t1 + _ATOL:
        # The reset+Z twirl is only valid for T2 ≤ T1; clamp to the
        # boundary (real transmons at the paper's fidelity levels satisfy
        # T2 ≤ T1 for the qubits that matter; the clamp is conservative).
        t2 = t1
    p_reset = 1.0 - math.exp(-duration / t1)
    rate_diff = 1.0 / t2 - 1.0 / t1
    p_z = 0.5 * (1.0 - p_reset) * (1.0 - math.exp(-duration * rate_diff))
    return [("reset", p_reset), ("Z", p_z)]


__all__ = [
    "KrausChannel",
    "PAULI_MATRICES",
    "identity_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "pauli_channel",
    "depolarizing_channel",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "thermal_relaxation_kraus",
    "thermal_relaxation_twirl",
]
