"""Sparse computational-basis amplitude state for hybrid-segment tails.

A stabilizer state handed off at a segment boundary has at most ``2^k``
nonzero amplitudes (``k`` = coset dimension) — a GHZ state has two at
*any* width.  Non-Clifford tails made of diagonal gates (T layers, RZ/CP
phase layers, QAOA cost unitaries) never grow that support, so
materializing the full ``2^n`` dense vector per trajectory group would
waste almost all of its memory traffic.  :class:`SparseAmplitudes`
stores only ``(indices, amplitudes)`` pairs and applies gates by support
class:

* **diagonal** — elementwise phase multiply, no growth;
* **generalized permutation** (X, Y, CX, SWAP, iSWAP, …) — index
  remapping, no growth;
* **general 1q/2q** — branch into up to 2×/4× contributions, then
  coalesce duplicate indices (support at most doubles per branching
  qubit).

The hybrid engine densifies to a full :class:`StateVector` once the
support outgrows the sparse regime (or a >2-qubit operator appears); up
to that point widths beyond the dense qubit limit are fine, which is how
hybrid execution reaches workloads the dense engine cannot represent at
all.

RNG-parity: :meth:`sample` sorts the support by basis index and inverts
the cumulative distribution exactly like the dense engine's
``rng.choice`` (zero-probability entries contribute nothing to either
CDF), consuming one uniform per shot — seeded hybrid runs reproduce
dense-engine outcomes to float precision.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulator.channels import PAULI_MATRICES
from repro.simulator.statevector import StateVector
from repro.utils.rng import RandomState, as_rng


def _coalesce(indices: np.ndarray, amps: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sum duplicate indices and drop exactly-cancelled amplitudes."""
    uniq, inverse = np.unique(indices, return_inverse=True)
    merged = np.zeros(uniq.size, dtype=complex)
    np.add.at(merged, inverse, amps)
    keep = merged != 0.0
    return uniq[keep], merged[keep]


class SparseAmplitudes:
    """A pure state stored as ``Σ amps[i] · |indices[i]⟩`` (little-endian).

    Indices are unique int64 basis labels; no ordering invariant is
    maintained between operations (sampling sorts on demand).
    """

    def __init__(
        self, num_qubits: int, indices: np.ndarray, amplitudes: np.ndarray
    ) -> None:
        if num_qubits < 1:
            raise SimulationError("state needs at least one qubit")
        if num_qubits > 62:
            raise SimulationError(
                "sparse amplitudes pack basis indices into int64 words; "
                f"{num_qubits} qubits exceeds the 62-qubit packing limit"
            )
        self.num_qubits = int(num_qubits)
        self.indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        self.amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        if self.indices.shape != self.amplitudes.shape:
            raise SimulationError("indices and amplitudes must align")

    @classmethod
    def from_tableau(cls, tableau) -> "SparseAmplitudes":
        """Convert a stabilizer tableau at the segment boundary."""
        indices, amps = tableau.coset_amplitudes()
        return cls(tableau.num_qubits, indices, amps)

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) amplitudes."""
        return int(self.indices.size)

    def copy(self) -> "SparseAmplitudes":
        """An independent deep copy (``O(nnz)``)."""
        dup = SparseAmplitudes.__new__(SparseAmplitudes)
        dup.num_qubits = self.num_qubits
        dup.indices = self.indices.copy()
        dup.amplitudes = self.amplitudes.copy()
        return dup

    def norm(self) -> float:
        """Euclidean norm of the stored amplitudes."""
        return float(np.linalg.norm(self.amplitudes))

    # -- gate application ------------------------------------------------------

    def _check_qubit(self, qubit: int) -> int:
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit state"
            )
        return int(qubit)

    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "SparseAmplitudes":
        """Apply a 1- or 2-qubit operator to the stored support.

        Larger operators are not supported here — the hybrid engine
        densifies first (:meth:`to_statevector`).
        """
        matrix = np.asarray(matrix, dtype=complex)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        if len(set(qubits)) != k:
            raise SimulationError(f"operands must be distinct, got {tuple(qubits)}")
        if k == 1:
            return self._apply_1q(matrix, self._check_qubit(qubits[0]))
        if k == 2:
            return self._apply_2q(
                matrix, self._check_qubit(qubits[0]), self._check_qubit(qubits[1])
            )
        raise SimulationError(
            "sparse amplitudes handle 1- and 2-qubit operators; "
            "densify before applying larger blocks"
        )

    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> "SparseAmplitudes":
        mask = np.int64(1) << qubit
        bit = (self.indices & mask) != 0
        m00, m01, m10, m11 = matrix[0, 0], matrix[0, 1], matrix[1, 0], matrix[1, 1]
        if m01 == 0.0 and m10 == 0.0:  # diagonal
            self.amplitudes *= np.where(bit, m11, m00)
            return self
        if m00 == 0.0 and m11 == 0.0:  # anti-diagonal: pure bit flip
            self.indices = self.indices ^ mask
            self.amplitudes *= np.where(bit, m01, m10)
            return self
        # general: each entry branches into both values of the bit
        base = self.indices & ~mask
        to0 = np.where(bit, m01, m00) * self.amplitudes
        to1 = np.where(bit, m11, m10) * self.amplitudes
        self.indices, self.amplitudes = _coalesce(
            np.concatenate([base, base | mask]), np.concatenate([to0, to1])
        )
        return self

    def _apply_2q(self, matrix: np.ndarray, q0: int, q1: int) -> "SparseAmplitudes":
        mask0 = np.int64(1) << q0
        mask1 = np.int64(1) << q1
        sub = (((self.indices & mask1) != 0).astype(np.int64) << 1) | (
            (self.indices & mask0) != 0
        ).astype(np.int64)
        off_diag = matrix[~np.eye(4, dtype=bool)]
        if not off_diag.any():  # diagonal
            self.amplitudes *= np.diag(matrix)[sub]
            return self
        if np.all((matrix != 0.0).sum(axis=0) == 1):  # generalized permutation
            perm = np.argmax(matrix != 0.0, axis=0)
            factor = matrix[perm, np.arange(4)]
            out = perm[sub]
            base = self.indices & ~(mask0 | mask1)
            self.indices = (
                base | np.where(out & 1, mask0, 0) | np.where(out & 2, mask1, 0)
            )
            self.amplitudes *= factor[sub]
            return self
        base = self.indices & ~(mask0 | mask1)
        all_indices = []
        all_amps = []
        for row in range(4):
            coeff = matrix[row, sub]
            target = base | (mask0 if row & 1 else 0) | (mask1 if row & 2 else 0)
            all_indices.append(target)
            all_amps.append(coeff * self.amplitudes)
        self.indices, self.amplitudes = _coalesce(
            np.concatenate(all_indices), np.concatenate(all_amps)
        )
        return self

    def apply_pauli(self, pauli: str, qubits: Sequence[int]) -> "SparseAmplitudes":
        """Apply a Pauli string (index *i* acts on ``qubits[i]``); support
        is remapped, never grown."""
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        for label, q in zip(pauli.upper(), qubits):
            if label == "I":
                continue
            if label not in PAULI_MATRICES:
                raise SimulationError(f"unknown Pauli label {label!r}")
            self._apply_1q(PAULI_MATRICES[label], self._check_qubit(q))
        return self

    # -- measurement -----------------------------------------------------------

    def marginal_probability_one(self, qubit: int) -> float:
        """``P(qubit = 1)`` summed over the stored support."""
        mask = np.int64(1) << self._check_qubit(qubit)
        ones = self.amplitudes[(self.indices & mask) != 0]
        return float(np.real(np.vdot(ones, ones)))

    def collapse(self, qubit: int, outcome: int) -> float:
        """Project *qubit* onto *outcome* and renormalize; returns the
        pre-collapse probability (raises if numerically zero)."""
        p1 = self.marginal_probability_one(qubit)
        prob = p1 if outcome else 1.0 - p1
        if prob < 1e-15:
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto impossible outcome {outcome}"
            )
        mask = np.int64(1) << qubit
        keep = ((self.indices & mask) != 0) == bool(outcome)
        self.indices = self.indices[keep]
        self.amplitudes = self.amplitudes[keep] * (1.0 / math.sqrt(prob))
        return prob

    def measure(self, qubit: int, rng: RandomState = None) -> int:
        """Projectively measure one qubit (same draw discipline as the
        dense engine: one uniform, ``outcome = u < P(1)``)."""
        r = as_rng(rng)
        p1 = self.marginal_probability_one(qubit)
        outcome = 1 if r.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def reset(self, qubit: int, rng: RandomState = None) -> "SparseAmplitudes":
        """Measure-and-flip reset of one qubit to ``|0⟩``."""
        if self.measure(qubit, rng):
            self.indices = self.indices ^ (np.int64(1) << qubit)
        return self

    def sample(
        self,
        shots: int,
        rng: RandomState = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Draw *shots* basis-state samples without collapsing.

        Same contract and CDF inversion as :meth:`StateVector.sample`:
        support sorted by basis index, cumulative sum, one uniform per
        shot searched with ``side="right"`` — zero-probability basis
        states contribute nothing to either engine's CDF, so outcomes
        match the dense engine's on the same seeded stream.
        """
        r = as_rng(rng)
        order = np.argsort(self.indices, kind="stable")
        sorted_indices = self.indices[order]
        probs = np.abs(self.amplitudes[order]) ** 2
        probs = probs / probs.sum()
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]
        u = r.random(int(shots))
        outcomes = sorted_indices[np.searchsorted(cdf, u, side="right")]
        qs = (
            np.arange(self.num_qubits, dtype=np.int64)
            if qubits is None
            else np.asarray(list(qubits), dtype=np.int64)
        )
        return ((outcomes[:, None] >> qs[None, :]) & 1).astype(np.uint8)

    # -- observables / conversion ----------------------------------------------

    def expectation_pauli(self, pauli: str, qubits: Sequence[int]) -> float:
        """``⟨ψ| P |ψ⟩`` contracted over the stored support only."""
        work = self.copy()
        work.apply_pauli(pauli, qubits)
        order_s = np.argsort(self.indices, kind="stable")
        order_w = np.argsort(work.indices, kind="stable")
        si = self.indices[order_s]
        wi = work.indices[order_w]
        pos = np.searchsorted(si, wi)
        pos_clip = np.minimum(pos, si.size - 1)
        valid = si[pos_clip] == wi
        return float(
            np.real(
                np.sum(
                    np.conj(self.amplitudes[order_s][pos_clip[valid]])
                    * work.amplitudes[order_w][valid]
                )
            )
        )

    def to_statevector(self) -> StateVector:
        """Densify into a full :class:`StateVector` (raises beyond the
        dense qubit limit — sparse states can be wider than dense ones)."""
        from repro.simulator.statevector import DENSE_QUBIT_LIMIT

        if self.num_qubits > DENSE_QUBIT_LIMIT:
            raise SimulationError(
                f"cannot densify a {self.num_qubits}-qubit sparse state: "
                f"the dense engine caps at {DENSE_QUBIT_LIMIT} qubits"
            )
        data = np.zeros(1 << self.num_qubits, dtype=complex)
        data[self.indices] = self.amplitudes
        return StateVector(self.num_qubits, data=data)

    def __repr__(self) -> str:
        return (
            f"<SparseAmplitudes {self.num_qubits} qubits, nnz {self.nnz}, "
            f"norm {self.norm():.6f}>"
        )


__all__ = ["SparseAmplitudes"]
