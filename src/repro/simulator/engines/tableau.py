"""Stabilizer-tableau execution engine.

Wraps :class:`~repro.simulator.stabilizer.Tableau` behind the
:class:`~repro.simulator.engines.base.ExecutionEngine` protocol, with
the two grouped-sampler wins from the stabilizer fast path: trajectory
forks copy ``O(n²)`` bits instead of ``2^n`` amplitudes, and because
Pauli injection only flips tableau signs, every structure-preserving
trajectory of one sampling request shares a single
:class:`~repro.simulator.stabilizer.CosetSupport` factorization (forks
share the holder by reference; groups that genuinely collapse a qubit
recompute their own).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.noise import QuantumError
from repro.simulator.stabilizer import CosetSupport, Tableau, make_tableau
from repro.simulator.statevector import StateVector


def inject_into_tableau(
    tableau: Tableau, instruction: Instruction, error: QuantumError, term_index: int
) -> bool:
    """Tableau counterpart of
    :func:`~repro.simulator.engines.dense.inject_into_dense`.

    Returns ``True`` when the injection preserved the tableau's X/Z
    structure (every Pauli term, and the deterministic branches of a
    reset) so the caller can keep sharing one :class:`CosetSupport`
    across trajectories; a genuine collapse returns ``False``.
    """
    term = error.terms[term_index]
    if term.kind == "pauli":
        tableau.apply_pauli(term.pauli, instruction.qubits[: len(term.pauli)])
        return True
    q = instruction.qubits[term.reset_operand]
    # Same dominant-branch semantics as the dense engine: |1⟩ flips,
    # a superposed qubit collapses onto |0⟩, |0⟩ is left alone.
    p1 = tableau.marginal_probability_one(q)
    if p1 == 1.0:
        tableau.apply_pauli("X", [q])
        return True
    if p1 == 0.5:
        tableau.collapse(q, 0)
        return False
    return True


def sample_tableau_shared(
    tableau: Tableau,
    shared_support: List[CosetSupport],
    shots: int,
    rng: np.random.Generator,
    qubits: Optional[Sequence[int]] = None,
    *,
    shares_structure: bool = True,
) -> np.ndarray:
    """Sample a tableau through a request-scoped shared factorization.

    *shared_support* is the one-element holder forks share by
    reference: the first structure-preserving sampler populates it, and
    every later trajectory with the same X/Z structure reuses it.
    Structure-breaking trajectories (``shares_structure=False``) pay a
    fresh factorization.  One copy of this discipline serves both the
    tableau engine and the hybrid engine's all-Clifford degenerate case.
    The factorization is built through ``tableau.coset_support()``, so
    the packed and uint8 tableaux each share their own support type.
    """
    if not shares_structure:
        return tableau.sample(shots, rng, qubits=qubits)
    if not shared_support:
        shared_support.append(tableau.coset_support())
    return tableau.sample(shots, rng, qubits=qubits, support=shared_support[0])


@register_engine
class TableauEngine(ExecutionEngine):
    """The Aaronson–Gottesman backend (Clifford-only, polynomial)."""

    name = "tableau"

    #: Plans carry nothing a tableau walk can reuse — Clifford updates
    #: are already O(n) per gate with no matrices to premultiply — so
    #: this backend accepts plans (forks keep them) but consumes none.
    plan_artifacts = ()

    @classmethod
    def estimate_peak_bytes(cls, circuit: QuantumCircuit) -> int:
        # Upper bound covering both implementations: the uint8 tableau
        # holds two (2n, n) bit matrices plus phases (~4n² + 2n bytes);
        # the packed tableau is ~16× smaller.  Doubled for the trajectory
        # fork the grouped walk keeps live.
        n = circuit.num_qubits
        return 2 * (4 * n * n + 2 * n)

    def prepare(self, circuit: QuantumCircuit) -> None:
        # The implementation (uint8 vs bit-packed word-parallel) is a
        # policy decision owned by the stabilizer module: packed at and
        # above the width threshold, forceable via
        # ``engine_mode(..., tableau_impl=...)``.  Both are bit-identical
        # in behaviour, so everything below this line is agnostic.
        self._tab = make_tableau(circuit.num_qubits)
        # One factorization per sampling request, shared across forks by
        # reference — see sample()'s shares_structure contract.
        self._shared_support: List[CosetSupport] = []

    def fork(self) -> "TableauEngine":
        # type(self), not TableauEngine: subclassed backends must
        # survive the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._tab = self._tab.copy()
        dup._shared_support = self._shared_support
        dup._plan = self._plan
        return dup

    def advance(self, ops: Sequence[Instruction]) -> None:
        self._tab.apply_instructions(ops)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        return inject_into_tableau(self._tab, instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        return sample_tableau_shared(
            self._tab,
            self._shared_support,
            shots,
            rng,
            qubits,
            shares_structure=shares_structure,
        )

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        return self._tab.measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        self._tab.reset(qubit, rng)

    def to_dense(self) -> StateVector:
        return self._tab.to_statevector()

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import expectation_stabilizer

        return expectation_stabilizer(hamiltonian, self._tab)


__all__ = ["TableauEngine", "inject_into_tableau", "sample_tableau_shared"]
