"""Batched dense execution engine.

:class:`BatchedDenseEngine` is the registry face of the batched
trajectory walk: for a *single* trajectory it behaves exactly like its
parent :class:`~repro.simulator.engines.dense.DenseEngine` (same
kernels, same RNG consumption — per-shot circuits and single-group runs
are automatically bit-identical), but it carries the
``supports_batched_groups`` marker that lets the grouped sampler stack
every trajectory group into one
:class:`~repro.simulator.batched.BatchedStateVector` and advance them
all with one kernel call per gate.

:meth:`BatchedDenseEngine.advance_batch` is the batch analogue of
:meth:`DenseEngine.advance`: the same diagonal-run fusion plan
(:func:`~repro.simulator.engines.dense.plan_diagonal_fusion`, gated by
the same :data:`~repro.simulator.engines.dense.FUSE_DIAGONAL_RUNS`
switch) applied to a row stack instead of a single state.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import Instruction
from repro.circuits.gates import UNITARY_NOOPS
from repro.simulator.batched import BatchedStateVector
from repro.simulator.engines import dense as _dense
from repro.simulator.engines.base import register_engine
from repro.simulator.engines.dense import DenseEngine, inject_into_dense
from repro.simulator.noise import QuantumError
from repro.telemetry import tracing as _tracing


@register_engine
class BatchedDenseEngine(DenseEngine):
    """Dense backend whose grouped walk advances all groups at once."""

    name = "batched"

    #: Grouped-sampler marker: trajectory groups may be stacked into a
    #: :class:`BatchedStateVector` and advanced in lockstep windows.
    supports_batched_groups = True

    @classmethod
    def estimate_peak_bytes(cls, circuit) -> int:
        # The dense peak plus one cache-budget's worth of stacked rows:
        # batched chunks are sized to fit ``BATCH_MAX_BYTES`` whole, so
        # that budget is exactly the extra working set this walk adds.
        from repro.simulator import sampler

        return DenseEngine.estimate_peak_bytes(circuit) + int(
            sampler.BATCH_MAX_BYTES
        )

    @classmethod
    def advance_batch(
        cls, batch: BatchedStateVector, ops: Sequence[Instruction]
    ) -> None:
        """Advance every row of *batch* through *ops*.

        Mirrors :meth:`DenseEngine.advance` — including the fusion
        passes — with each application hitting the whole row stack in
        one call.
        """
        cls.advance_batch_span(batch, ops, 0, len(ops))

    @classmethod
    def advance_batch_span(
        cls,
        batch: BatchedStateVector,
        instructions: Sequence[Instruction],
        start: int,
        stop: int,
        plan=None,
    ) -> None:
        """Window form of :meth:`advance_batch`, mirroring
        :meth:`DenseEngine.advance_span`: with a bound plan the window's
        fused items and block schedule come from the plan-cache memos
        instead of being re-derived per request.

        Blocked sweeps flatten the ``(rows, 2^n)`` buffer into
        ``rows · 2^{n-t}`` tiles, so per-tile cache residency is
        independent of the row count — this is what lets the batched
        walk engage beyond the cache-resident widths.  Any remap the
        executor leaves pending is unwound before returning: between
        spans the walk joins rows, injects errors, and builds CDFs, all
        of which assume the canonical layout.
        """
        with _tracing.span(
            "engine.batched_window", rows=batch.rows, start=start, stop=stop
        ):
            if batch.use_fast_kernels and stop - start > 1:
                items, schedule = _dense.window_program(
                    instructions, start, stop, plan, batch.num_qubits
                )
                if schedule is not None:
                    _dense.execute_blocked(batch, items, schedule)
                    batch.unwind_remap()
                    return
                if items is not None:
                    _dense.apply_items(batch, items)
                    return
            for i in range(start, stop):
                inst = instructions[i]
                if inst.name in UNITARY_NOOPS:
                    continue
                batch.apply_matrix(inst.matrix(), inst.qubits)

    @staticmethod
    def inject_row(
        batch: BatchedStateVector,
        row: int,
        instruction: Instruction,
        error: QuantumError,
        term_index: int,
    ) -> None:
        """Apply one error term to a single row of the batch.

        Error injection is inherently per-trajectory, so it runs the
        scalar :func:`inject_into_dense` semantics on a zero-copy row
        alias and writes back if a kernel rebound the buffer.
        """
        sv = batch.row_view(row)
        inject_into_dense(sv, instruction, error, term_index)
        batch.store_row(row, sv)


__all__ = ["BatchedDenseEngine"]
