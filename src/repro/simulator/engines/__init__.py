"""Pluggable execution-engine registry and mode routing.

This subpackage is the simulator's dispatch layer: every backend lives
behind the :class:`~repro.simulator.engines.base.ExecutionEngine`
protocol, registers itself by name, and is *routed to* per circuit by
:func:`select_engine` according to the active engine mode
(:func:`repro.simulator.engine_mode` is the user-facing switch).

Backends
--------
``dense``
    :class:`DenseEngine` — the ``2^n`` amplitude vector (exact, any
    gate; fast or baseline kernels per the global kernel switch).
``tableau``
    :class:`TableauEngine` — the Aaronson–Gottesman stabilizer tableau
    (Clifford-only, polynomial, hundreds of qubits).
``hybrid``
    :class:`HybridSegmentEngine` — segment-granular mixed execution:
    the maximal Clifford prefix runs on a tableau, the state crosses to
    (sparse, then dense) amplitudes at the first non-Clifford gate.
``mps``
    :class:`MPSEngine` — bounded-bond matrix-product-state execution
    (any gate, cost polynomial in qubits at fixed bond dimension):
    low-entanglement circuits run far beyond the dense limit.

Routing
-------
:func:`select_engine` maps ``(mode, circuit) → engine class``; the
mode-string table lives in :func:`repro.simulator.engine_mode`'s
docstring and ``docs/architecture.md``.  :func:`prepare_engine` is the
expectation-path helper: route, instantiate, advance through the
circuit's unitary part, return the prepared engine.
"""

from __future__ import annotations

from typing import Optional, Type

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import clifford_segments, is_clifford_circuit
from repro.errors import EngineModeError
from repro.simulator.engines.base import (
    ExecutionEngine,
    engine_registry,
    get_engine,
    register_engine,
)
from repro.simulator.engines.batched import BatchedDenseEngine
from repro.simulator.engines.dense import DenseEngine, inject_into_dense
from repro.simulator.engines.hybrid import HybridSegmentEngine
from repro.simulator.engines.mps import MPSEngine, MPSState, is_line_like, simulate_mps
from repro.simulator.engines.sparse import SparseAmplitudes
from repro.simulator.engines.tableau import TableauEngine, inject_into_tableau
from repro.simulator.statevector import DENSE_QUBIT_LIMIT
from repro.utils.rng import RandomState, as_rng


def _clifford_prefix_has_gates(circuit: QuantumCircuit, *, two_qubit: bool) -> bool:
    """Whether the maximal Clifford prefix contains any unitary gate
    (*two_qubit*: any entangling gate) worth running on a tableau."""
    segments = clifford_segments(circuit)
    if not segments or not segments[0].is_clifford:
        return False
    for inst in circuit.instructions[segments[0].start : segments[0].stop]:
        if inst.is_directive:
            continue
        if not two_qubit or len(inst.qubits) == 2:
            return True
    return False


def _tail_preserves_sparse_support(circuit: QuantumCircuit) -> bool:
    """Whether every gate after the maximal Clifford prefix is diagonal
    or a generalized permutation — i.e. the hybrid engine's sparse
    amplitude support can never grow in the tail, so segment execution
    is guaranteed to stay cheap at any width."""
    segments = clifford_segments(circuit)
    start = segments[0].stop if segments and segments[0].is_clifford else 0
    for inst in circuit.instructions[start:]:
        if inst.is_directive or inst.is_diagonal():
            continue
        matrix = inst.matrix()
        if not bool(np.all(np.count_nonzero(matrix, axis=0) == 1)):
            return False
    return True


def select_engine(mode: str, circuit: QuantumCircuit) -> Type[ExecutionEngine]:
    """Route one circuit to an engine class under *mode*.

    The mode-string semantics (see also ``docs/architecture.md``):

    ``baseline`` / ``fast``
        Dense engine; ``fast`` auto-routes Clifford circuits *wider than
        the dense limit* to the tableau (historical ≤26-qubit streams
        stay on the dense engine, unchanged).
    ``batched``
        Same routing as ``fast``, but dense circuits land on the
        batched dense engine, whose grouped walk advances every
        trajectory group in one kernel call per gate.
    ``stabilizer``
        Tableau for every Clifford circuit, dense fallback otherwise.
    ``hybrid``
        Tableau for Clifford circuits; segment-granular mixed execution
        whenever the circuit has any Clifford prefix; dense otherwise.
    ``mps``
        The matrix-product-state engine for every circuit (the gate
        library is 1q/2q, which is all an MPS needs).
    ``auto``
        Best-known routing: tableau for Clifford circuits; beyond the
        dense limit, hybrid when the post-prefix tail can never grow the
        sparse support, otherwise MPS for line-like circuits (bounded
        entanglement growth) and hybrid as the last resort; at dense
        widths, hybrid when the Clifford prefix contains entangling
        structure, dense for the rest.
    """
    # Resolve through the registry (not the imported classes) so that
    # re-registering a name really does swap the backend dispatch serves.
    dense = get_engine(DenseEngine.name)
    tableau = get_engine(TableauEngine.name)
    hybrid = get_engine(HybridSegmentEngine.name)
    if mode == "baseline":
        return dense
    if mode == "fast":
        if circuit.num_qubits > DENSE_QUBIT_LIMIT and is_clifford_circuit(circuit):
            return tableau
        return dense
    if mode == "batched":
        if circuit.num_qubits > DENSE_QUBIT_LIMIT and is_clifford_circuit(circuit):
            return tableau
        return get_engine(BatchedDenseEngine.name)
    if mode == "stabilizer":
        return tableau if is_clifford_circuit(circuit) else dense
    if mode == "hybrid":
        if is_clifford_circuit(circuit):
            return tableau
        if _clifford_prefix_has_gates(circuit, two_qubit=False):
            return hybrid
        return dense
    if mode == "mps":
        return get_engine(MPSEngine.name)
    if mode == "auto":
        if is_clifford_circuit(circuit):
            return tableau
        if circuit.num_qubits > DENSE_QUBIT_LIMIT:
            # Dense cannot represent it at all.  Prefer the hybrid
            # engine when its sparse tail is guaranteed (Clifford prefix
            # + diagonal/permutation tail); otherwise a line-like
            # interaction graph means bounded entanglement growth — the
            # MPS engine's home turf; anything else falls back to
            # hybrid, the historical wide route.
            if _tail_preserves_sparse_support(circuit):
                return hybrid
            if is_line_like(circuit):
                return get_engine(MPSEngine.name)
            return hybrid
        if _clifford_prefix_has_gates(circuit, two_qubit=True):
            return hybrid
        return dense
    raise EngineModeError(
        f"unknown engine mode {mode!r}; cannot route circuit {circuit.name!r}"
    )


def prepare_engine(
    circuit: QuantumCircuit,
    mode: Optional[str] = None,
    *,
    rng: RandomState = None,
) -> ExecutionEngine:
    """Run *circuit*'s unitary part on the engine *mode* routes it to.

    The registry-facing analogue of ``simulate_statevector`` /
    ``simulate_tableau``: measurements are skipped (sampling is the
    sampler's job), resets collapse stochastically using *rng*, barriers
    and delays are no-ops.  *mode* defaults to the active
    :func:`repro.simulator.engine_mode` selection.
    """
    if mode is None:
        from repro.simulator import sampler

        mode = sampler.ENGINE
    engine_cls = select_engine(mode, circuit)
    if mode != "baseline":
        # Same pre-flight admission gate as the sampling path: the
        # expectation path allocates engine state too, so an over-budget
        # request must fail structurally before the allocation.
        from repro.simulator import resilience

        resilience.check_admission(circuit, mode, engine_cls=engine_cls)
    engine = engine_cls(circuit)
    r = as_rng(rng)
    for inst in circuit:
        if inst.name == "measure":
            continue
        if inst.name == "reset":
            engine.reset(inst.qubits[0], r)
            continue
        engine.advance((inst,))
    return engine


__all__ = [
    "ExecutionEngine",
    "BatchedDenseEngine",
    "DenseEngine",
    "TableauEngine",
    "HybridSegmentEngine",
    "MPSEngine",
    "MPSState",
    "SparseAmplitudes",
    "simulate_mps",
    "is_line_like",
    "register_engine",
    "get_engine",
    "engine_registry",
    "select_engine",
    "prepare_engine",
    "inject_into_dense",
    "inject_into_tableau",
]
