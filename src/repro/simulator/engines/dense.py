"""Dense state-vector execution engine.

Wraps :class:`~repro.simulator.statevector.StateVector` behind the
:class:`~repro.simulator.engines.base.ExecutionEngine` protocol.  Kernel
selection (specialized fast kernels vs the generic ``moveaxis``
baseline) stays on :attr:`StateVector.use_fast_kernels`, toggled by
:func:`repro.simulator.engine_mode` — the engine object is the *walk*
abstraction, not the kernel switch, so the ``"fast"`` and ``"baseline"``
modes share this one class.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.simulator.channels import PAULI_MATRICES as _PAULI
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.noise import QuantumError
from repro.simulator.statevector import StateVector


def inject_into_dense(
    state, instruction: Instruction, error: QuantumError, term_index: int
) -> bool:
    """Apply error term *term_index* to a dense-semantics state.

    *state* needs ``apply_matrix`` / ``marginal_probability_one`` /
    ``collapse`` — both :class:`StateVector` and
    :class:`~repro.simulator.engines.sparse.SparseAmplitudes` qualify,
    which is how the hybrid engine reuses these exact semantics after
    the segment boundary.  Returns ``True`` always: the "did this
    preserve shareable structure" contract exists for the tableau's
    benefit (:func:`~repro.simulator.engines.tableau.inject_into_tableau`),
    and amplitude states share nothing.
    """
    term = error.terms[term_index]
    if term.kind == "pauli":
        for offset, label in enumerate(term.pauli.upper()):
            if label == "I":
                continue
            state.apply_matrix(_PAULI[label], [instruction.qubits[offset]])
    else:
        q = instruction.qubits[term.reset_operand]
        # Stochastic-event reset: project to |0⟩ deterministically by
        # collapsing on the dominant branch; exact behaviour of the
        # twirled thermal channel (population transfer to ground).
        p1 = state.marginal_probability_one(q)
        if p1 > 1.0 - 1e-12:
            state.apply_matrix(_PAULI["X"], [q])
        elif p1 > 1e-12:
            state.collapse(q, 0)
    return True


@register_engine
class DenseEngine(ExecutionEngine):
    """The ``2^n`` amplitude-vector backend (exact, any gate)."""

    name = "dense"

    def prepare(self, circuit: QuantumCircuit) -> None:
        self._state = StateVector(circuit.num_qubits)

    def fork(self) -> "DenseEngine":
        # type(self), not DenseEngine: subclassed backends must survive
        # the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._state = self._state.copy()
        return dup

    def advance(self, ops: Sequence[Instruction]) -> None:
        state = self._state
        for inst in ops:
            if inst.name in UNITARY_NOOPS:
                continue
            state.apply_matrix(inst.matrix(), inst.qubits)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        return inject_into_dense(self._state, instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        return self._state.sample(shots, rng, qubits=qubits)

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        return self._state.measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        self._state.reset(qubit, rng)

    def to_dense(self) -> StateVector:
        return self._state

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import expectation_statevector

        return expectation_statevector(hamiltonian, self._state)


__all__ = ["DenseEngine", "inject_into_dense"]
