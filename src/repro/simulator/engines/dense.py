"""Dense state-vector execution engine.

Wraps :class:`~repro.simulator.statevector.StateVector` behind the
:class:`~repro.simulator.engines.base.ExecutionEngine` protocol.  Kernel
selection (specialized fast kernels vs the generic ``moveaxis``
baseline) stays on :attr:`StateVector.use_fast_kernels`, toggled by
:func:`repro.simulator.engine_mode` — the engine object is the *walk*
abstraction, not the kernel switch, so the ``"fast"`` and ``"baseline"``
modes share this one class.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import scan_diagonal_runs
from repro.circuits.gates import UNITARY_NOOPS
from repro.simulator.channels import PAULI_MATRICES as _PAULI
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.noise import QuantumError
from repro.simulator.statevector import StateVector

#: Diagonal-run kernel fusion switch (active only under the fast
#: kernels): adjacent diagonal 1q/2q gates in an advance window collapse
#: into one precomputed elementwise multiply.  The perf harness toggles
#: this to isolate the fusion win; production code leaves it ``True``.
FUSE_DIAGONAL_RUNS = True

#: Cap on the fused operand set: a run whose qubit union exceeds this is
#: split greedily, keeping every phase table at most ``2^cap`` entries.
_FUSION_MAX_QUBITS = 10


def _fused_diagonal(instructions) -> tuple:
    """One ``(diagonal, qubits)`` table for a list of diagonal gates.

    The table is indexed little-endian over the *sorted* qubit union.
    Gates are first combined per operand set (all 1q diagonals on one
    qubit multiply into a single 2-vector, all 2q diagonals on one pair
    into a 4-vector), then the combined factors expand into the table —
    the expansion work scales with distinct operand sets, not run
    length.
    """
    qs = sorted({q for inst in instructions for q in inst.qubits})
    k = len(qs)
    pos = {q: i for i, q in enumerate(qs)}
    ones2 = np.ones(2, dtype=complex)
    one_q: dict = {}
    two_q: dict = {}
    for inst in instructions:
        d = np.diagonal(inst.matrix())
        if len(inst.qubits) == 1:
            q = inst.qubits[0]
            prev = one_q.get(q)
            one_q[q] = d if prev is None else prev * d
        else:
            a, b = inst.qubits
            if a > b:
                # Swap operand bits so the 4-vector is indexed with the
                # smaller qubit as bit 0.
                a, b = b, a
                d = d[[0, 2, 1, 3]]
            prev = two_q.get((a, b))
            two_q[(a, b)] = d if prev is None else prev * d
    # Tensor the 1q factors together, smallest qubit as the lowest bit.
    diag = np.ones(1, dtype=complex)
    for q in qs:
        vec = one_q.get(q, ones2)
        diag = (vec[:, None] * diag[None, :]).reshape(-1)
    if two_q:
        idx = np.arange(1 << k)
        for (a, b), d4 in two_q.items():
            sub = ((idx >> pos[a]) & 1) | (((idx >> pos[b]) & 1) << 1)
            diag = diag * d4[sub]
    return diag, qs


def _fused_items(instructions):
    """Fused ``(diagonal, qubits)`` items for one run, split greedily so
    no table spans more than :data:`_FUSION_MAX_QUBITS` qubits."""
    out = []
    chunk: list = []
    chunk_qubits: set = set()
    for inst in instructions:
        union = chunk_qubits | set(inst.qubits)
        if chunk and len(union) > _FUSION_MAX_QUBITS:
            out.append(_fused_diagonal(chunk) if len(chunk) > 1 else chunk[0])
            chunk = [inst]
            chunk_qubits = set(inst.qubits)
        else:
            chunk.append(inst)
            chunk_qubits = union
    if chunk:
        out.append(_fused_diagonal(chunk) if len(chunk) > 1 else chunk[0])
    return out


def plan_diagonal_fusion(ops):
    """Fusion plan for an advance window, or ``None`` when nothing fuses.

    Runs come from the DAG commutation scan
    (:func:`repro.circuits.dag.scan_diagonal_runs`); each run is
    replaced — at its head position, which is exact because every later
    member commutes back past the interleaved gates — by one or more
    ``(diagonal, qubits)`` tables.  All other instructions pass through
    unchanged in program order.
    """
    runs = scan_diagonal_runs(ops)
    if not runs:
        return None
    head = {run[0]: run for run in runs}
    member = {p for run in runs for p in run}
    plan = []
    for p, inst in enumerate(ops):
        if p in head:
            plan.extend(_fused_items([ops[i] for i in head[p]]))
        elif p not in member:
            plan.append(inst)
    return plan


def inject_into_dense(
    state, instruction: Instruction, error: QuantumError, term_index: int
) -> bool:
    """Apply error term *term_index* to a dense-semantics state.

    *state* needs ``apply_matrix`` / ``marginal_probability_one`` /
    ``collapse`` — both :class:`StateVector` and
    :class:`~repro.simulator.engines.sparse.SparseAmplitudes` qualify,
    which is how the hybrid engine reuses these exact semantics after
    the segment boundary.  Returns ``True`` always: the "did this
    preserve shareable structure" contract exists for the tableau's
    benefit (:func:`~repro.simulator.engines.tableau.inject_into_tableau`),
    and amplitude states share nothing.
    """
    term = error.terms[term_index]
    if term.kind == "pauli":
        for offset, label in enumerate(term.pauli.upper()):
            if label == "I":
                continue
            state.apply_matrix(_PAULI[label], [instruction.qubits[offset]])
    else:
        q = instruction.qubits[term.reset_operand]
        # Stochastic-event reset: project to |0⟩ deterministically by
        # collapsing on the dominant branch; exact behaviour of the
        # twirled thermal channel (population transfer to ground).
        p1 = state.marginal_probability_one(q)
        if p1 > 1.0 - 1e-12:
            state.apply_matrix(_PAULI["X"], [q])
        elif p1 > 1e-12:
            state.collapse(q, 0)
    return True


@register_engine
class DenseEngine(ExecutionEngine):
    """The ``2^n`` amplitude-vector backend (exact, any gate)."""

    name = "dense"

    def prepare(self, circuit: QuantumCircuit) -> None:
        self._state = StateVector(circuit.num_qubits)

    def fork(self) -> "DenseEngine":
        # type(self), not DenseEngine: subclassed backends must survive
        # the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._state = self._state.copy()
        return dup

    def advance(self, ops: Sequence[Instruction]) -> None:
        state = self._state
        if FUSE_DIAGONAL_RUNS and state.use_fast_kernels and len(ops) > 1:
            plan = plan_diagonal_fusion(ops)
            if plan is not None:
                for item in plan:
                    if isinstance(item, Instruction):
                        if item.name not in UNITARY_NOOPS:
                            state.apply_matrix(item.matrix(), item.qubits)
                    else:
                        diag, qs = item
                        state.apply_diagonal(diag, qs)
                return
        for inst in ops:
            if inst.name in UNITARY_NOOPS:
                continue
            state.apply_matrix(inst.matrix(), inst.qubits)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        return inject_into_dense(self._state, instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        return self._state.sample(shots, rng, qubits=qubits)

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        return self._state.measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        self._state.reset(qubit, rng)

    def to_dense(self) -> StateVector:
        return self._state

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import expectation_statevector

        return expectation_statevector(hamiltonian, self._state)


__all__ = [
    "DenseEngine",
    "inject_into_dense",
    "plan_diagonal_fusion",
    "FUSE_DIAGONAL_RUNS",
]
