"""Dense state-vector execution engine.

Wraps :class:`~repro.simulator.statevector.StateVector` behind the
:class:`~repro.simulator.engines.base.ExecutionEngine` protocol.  Kernel
selection (specialized fast kernels vs the generic ``moveaxis``
baseline) stays on :attr:`StateVector.use_fast_kernels`, toggled by
:func:`repro.simulator.engine_mode` — the engine object is the *walk*
abstraction, not the kernel switch, so the ``"fast"`` and ``"baseline"``
modes share this one class.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import scan_diagonal_runs
from repro.circuits.gates import UNITARY_NOOPS
from repro.simulator.channels import PAULI_MATRICES as _PAULI
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.noise import QuantumError
from repro.simulator.statevector import StateVector
from repro.telemetry import tracing as _tracing

#: Diagonal-run kernel fusion switch (active only under the fast
#: kernels): adjacent diagonal 1q/2q gates in an advance window collapse
#: into one precomputed elementwise multiply.  The perf harness toggles
#: this to isolate the fusion win; production code leaves it ``True``.
FUSE_DIAGONAL_RUNS = True

#: Generalized block-fusion switch (pass 2 of the window partition,
#: also fast-kernels only): maximal contiguous runs of plain 1q/2q
#: gates whose qubit union stays within
#: :data:`BLOCK_FUSION_MAX_QUBITS` collapse into one premultiplied
#: matrix, so a run of single-qubit rotations costs one kernel call.
FUSE_BLOCKS = True

#: Cap on the fused operand set: a run whose qubit union exceeds this is
#: split greedily, keeping every phase table at most ``2^cap`` entries.
_FUSION_MAX_QUBITS = 10

#: Cap on a fused *block*'s qubit union.  2 keeps every premultiplied
#: matrix at most 4×4 — the shapes the specialized fast kernels accept —
#: so block fusion never falls off the fast-kernel path.
BLOCK_FUSION_MAX_QUBITS = 2

#: Cache-blocked sweep switch (fast kernels only): advance windows at
#: widths beyond the tile (:func:`blocked_tile_qubits`) are executed
#: tile by tile — every item of a sweep segment applies to one
#: cache-resident contiguous tile before the next tile streams in, so a
#: window costs one DRAM pass instead of one per item.  High-order
#: operands are made tile-local by the lazy qubit remap layer
#: (:meth:`~repro.simulator.statevector.StateVector.remap_low`).  The
#: perf harness toggles this to isolate the blocking win.
BLOCKED_SWEEPS = True

#: One tile is ``1/divisor`` of the sampler's working-set budget
#: (:data:`~repro.simulator.sampler.BATCH_MAX_BYTES`): sweeps re-read
#: the tile once per item, so it must stay resident alongside kernel
#: temporaries.  8 puts the default 2 MiB budget at 2^14 amplitudes
#: (256 KiB) — measured best-or-tied from 16 to 20 qubits on an L2 of
#: the budget's size.
_TILE_BUDGET_DIVISOR = 8


def blocked_tile_qubits() -> int:
    """Tile width (in qubits) for cache-blocked sweeps, derived from the
    working-set budget; blocking engages only for states wider than
    this."""
    from repro.simulator import sampler  # lazy: sampler imports engines

    amps = max(4, int(sampler.BATCH_MAX_BYTES) // (16 * _TILE_BUDGET_DIVISOR))
    return max(2, amps.bit_length() - 1)


def _fused_diagonal(instructions) -> tuple:
    """One ``(diagonal, qubits)`` table for a list of diagonal gates.

    The table is indexed little-endian over the *sorted* qubit union.
    Gates are first combined per operand set (all 1q diagonals on one
    qubit multiply into a single 2-vector, all 2q diagonals on one pair
    into a 4-vector), then the combined factors expand into the table —
    the expansion work scales with distinct operand sets, not run
    length.
    """
    qs = sorted({q for inst in instructions for q in inst.qubits})
    k = len(qs)
    pos = {q: i for i, q in enumerate(qs)}
    ones2 = np.ones(2, dtype=complex)
    one_q: dict = {}
    two_q: dict = {}
    for inst in instructions:
        d = np.diagonal(inst.matrix())
        if len(inst.qubits) == 1:
            q = inst.qubits[0]
            prev = one_q.get(q)
            one_q[q] = d if prev is None else prev * d
        else:
            a, b = inst.qubits
            if a > b:
                # Swap operand bits so the 4-vector is indexed with the
                # smaller qubit as bit 0.
                a, b = b, a
                d = d[[0, 2, 1, 3]]
            prev = two_q.get((a, b))
            two_q[(a, b)] = d if prev is None else prev * d
    # Tensor the 1q factors together, smallest qubit as the lowest bit.
    diag = np.ones(1, dtype=complex)
    for q in qs:
        vec = one_q.get(q, ones2)
        diag = (vec[:, None] * diag[None, :]).reshape(-1)
    if two_q:
        idx = np.arange(1 << k)
        for (a, b), d4 in two_q.items():
            sub = ((idx >> pos[a]) & 1) | (((idx >> pos[b]) & 1) << 1)
            diag = diag * d4[sub]
    return diag, qs


def _sub_index(i: int, bits) -> int:
    """Project the union-space index *i* onto the gate's operand bits."""
    s = 0
    for j, b in enumerate(bits):
        s |= ((i >> b) & 1) << j
    return s


def _embed_in_union(matrix, qubits, pos, dim):
    """Embed a gate matrix into the block's union space.

    ``pos`` maps qubit → bit position in the union (little-endian over
    the sorted union, matching ``StateVector.apply_matrix``); identity
    on union qubits the gate does not touch.
    """
    bits = [pos[q] for q in qubits]
    if (1 << len(bits)) == dim and all(b == j for j, b in enumerate(bits)):
        return matrix
    mask = 0
    for b in bits:
        mask |= 1 << b
    rest = (dim - 1) ^ mask
    out = np.zeros((dim, dim), dtype=complex)
    for r in range(dim):
        sr = _sub_index(r, bits)
        base = r & rest
        for c in range(dim):
            if (c & rest) == base:
                out[r, c] = matrix[sr, _sub_index(c, bits)]
    return out


def _fused_block(instructions) -> tuple:
    """One ``(matrix, qubits)`` item for a contiguous run of 1q/2q gates.

    Gates multiply in program order (later gates on the left), each
    embedded into the sorted qubit union, so applying the product once
    is exactly applying the run gate by gate — up to float rounding of
    the premultiplication.
    """
    qs = sorted({q for inst in instructions for q in inst.qubits})
    pos = {q: i for i, q in enumerate(qs)}
    dim = 1 << len(qs)
    combined = _embed_in_union(
        instructions[0].matrix(), instructions[0].qubits, pos, dim
    )
    for inst in instructions[1:]:
        combined = _embed_in_union(inst.matrix(), inst.qubits, pos, dim) @ combined
    return combined, qs


def _chunk_positions(ops, run):
    """Split one diagonal run (a tuple of positions) greedily so no
    fused table spans more than :data:`_FUSION_MAX_QUBITS` qubits."""
    chunks = []
    chunk: list = []
    chunk_qubits: set = set()
    for p in run:
        union = chunk_qubits | set(ops[p].qubits)
        if chunk and len(union) > _FUSION_MAX_QUBITS:
            chunks.append(tuple(chunk))
            chunk = [p]
            chunk_qubits = set(ops[p].qubits)
        else:
            chunk.append(p)
            chunk_qubits = union
    if chunk:
        chunks.append(tuple(chunk))
    return chunks


def _blockable(inst: Instruction) -> bool:
    """Plain unitary 1q/2q gates qualify for block fusion; directives,
    noops, and anything wider than the block cap do not."""
    return (
        inst.name not in UNITARY_NOOPS
        and inst.name != "reset"
        and not inst.clbits
        and len(inst.qubits) <= BLOCK_FUSION_MAX_QUBITS
    )


def _merge_blocks(ops, entries):
    """Pass 2: merge maximal runs of adjacent ``("apply", p)`` entries
    whose qubit union fits :data:`BLOCK_FUSION_MAX_QUBITS`.

    Entries are already a valid reordering of the window (pass 1 only
    moved commuting diagonals), so merging *adjacent* entries is always
    sound — no further commutation analysis needed.
    """
    out: list = []
    block: list = []
    union: set = set()

    def flush() -> None:
        nonlocal block, union
        if len(block) > 1:
            out.append(("block", tuple(block)))
        elif block:
            out.append(("apply", block[0]))
        block = []
        union = set()

    for entry in entries:
        kind, val = entry
        if kind == "apply" and _blockable(ops[val]):
            u = union | set(ops[val].qubits)
            if block and len(u) > BLOCK_FUSION_MAX_QUBITS:
                flush()
                u = set(ops[val].qubits)
            block.append(val)
            union = u
        else:
            flush()
            out.append(entry)
    flush()
    return out


def partition_window(ops):
    """Value-independent fusion partition of an advance window.

    Returns a tuple of entries — ``("apply", pos)`` for a pass-through
    instruction, ``("diag", positions)`` for a fused diagonal table,
    ``("block", positions)`` for a premultiplied gate block — or
    ``None`` when nothing fuses.  Pass 1 is PR 4's DAG commutation scan
    (:func:`repro.circuits.dag.scan_diagonal_runs`): each run is
    replaced at its head position, which is exact because every later
    member commutes back past the interleaved gates.  Pass 2
    (:func:`_merge_blocks`) generalizes fusion to contiguous
    non-diagonal 1q/2q blocks.

    The partition depends only on gate names, wires, and memoized
    diagonality — never on parameter values — which is what lets
    ``repro.compiler.plans`` memoize it across requests under the
    structural hash (whose per-instruction diagonality bit pins the
    value-edge cases).
    """
    n = len(ops)
    entries: list = []
    runs = scan_diagonal_runs(ops) if FUSE_DIAGONAL_RUNS else []
    head = {run[0]: run for run in runs}
    member = {p for run in runs for p in run}
    for p in range(n):
        if p in head:
            for chunk in _chunk_positions(ops, head[p]):
                entries.append(
                    ("diag", chunk) if len(chunk) > 1 else ("apply", chunk[0])
                )
        elif p not in member:
            entries.append(("apply", p))
    if FUSE_BLOCKS:
        entries = _merge_blocks(ops, entries)
    if len(entries) == n:  # every entry a singleton: nothing fused
        return None
    return tuple(entries)


def entry_is_static(ops, entry) -> bool:
    """True when a partition entry materializes identically for every
    circuit sharing the structural hash: fused items whose members all
    take zero parameters (their matrices are shared registry constants,
    so the table is bit-identical regardless of instance identity).
    Parameterized members — numeric or symbolic — make an item dynamic,
    because parameter *values* are masked from the structural hash."""
    kind, val = entry
    if kind == "apply":
        return False
    return all(not ops[p].params for p in val)


def materialize_entry(ops, entry):
    """Build one partition entry's applicable item: the raw
    :class:`Instruction` for ``apply``, ``(1-D table, qubits)`` for
    ``diag``, ``(2-D matrix, qubits)`` for ``block``."""
    kind, val = entry
    if kind == "apply":
        return ops[val]
    members = [ops[p] for p in val]
    return _fused_diagonal(members) if kind == "diag" else _fused_block(members)


def materialize_items(ops, partition):
    """Build the applicable item list for a whole partition."""
    return [materialize_entry(ops, entry) for entry in partition]


def _apply_single(state, item) -> None:
    """Apply one materialized item (an :class:`Instruction`, a 1-D
    diagonal table, or a 2-D matrix) to a dense-semantics state."""
    if isinstance(item, Instruction):
        if item.name not in UNITARY_NOOPS:
            state.apply_matrix(item.matrix(), item.qubits)
    else:
        arr, qs = item
        if arr.ndim == 1:
            state.apply_diagonal(arr, qs)
        else:
            state.apply_matrix(arr, qs)


def apply_items(state, items) -> None:
    """Apply a materialized item list to any dense-semantics state
    (``StateVector`` or a ``BatchedStateVector`` row block)."""
    for item in items:
        _apply_single(state, item)


def plan_blocked_window(ops, partition, num_qubits, tile_qubits=None):
    """The cache-blocked sweep schedule of one advance window, or
    ``None`` when blocking is off, the state fits the tile, or the
    window is too short to amortize the sweeps.

    *partition* is the window's fusion partition
    (:func:`partition_window`; ``None`` means every instruction is its
    own entry).  The schedule is a tuple of segments
    ``(placement, entry_indices, wide)`` executed strictly in order —
    entries are **never** reordered or commuted, so arbitrary gate mixes
    stay exact:

    * a *sweep* segment (``wide=False``) is a maximal contiguous run of
      entries whose non-diagonal operand union fits *tile_qubits*;
      ``placement`` lists the logical qubits the remap layer must make
      tile-local before the sweep.  Diagonal entries ride in whatever
      segment they fall in regardless of operand locality (within one
      tile the high operand bits are constant, so their tables slice).
    * a *wide* segment (``wide=True``) is a single non-diagonal entry
      whose operand set exceeds the tile; it applies full-state through
      the remap-aware ``apply_*`` path.

    Like :func:`partition_window` the schedule is value-independent
    (names, wires, memoized diagonality only), so the plan cache can
    memoize it per circuit structure under the options key, which pins
    the toggles and the budget the tile derives from.
    """
    if not BLOCKED_SWEEPS:
        return None
    if tile_qubits is None:
        tile_qubits = blocked_tile_qubits()
    if num_qubits <= tile_qubits:
        return None
    if partition is None:
        partition = tuple(("apply", p) for p in range(len(ops)))
    segments: list = []
    indices: list = []
    union: set = set()
    applied = 0

    def flush() -> None:
        nonlocal indices, union
        if indices:
            segments.append((tuple(sorted(union)), tuple(indices), False))
        indices = []
        union = set()

    for i, (kind, val) in enumerate(partition):
        if kind == "apply":
            inst = ops[val]
            if inst.name in UNITARY_NOOPS:
                indices.append(i)  # rides along; the executor skips it
                continue
            qubits = set(inst.qubits)
            diagonal = inst.is_diagonal()
        elif kind == "diag":
            indices.append(i)
            applied += 1
            continue
        else:  # "block": non-diagonal by construction
            qubits = {q for p in val for q in ops[p].qubits}
            diagonal = False
        if diagonal:
            indices.append(i)
            applied += 1
            continue
        if len(qubits) > tile_qubits:
            flush()
            segments.append(((), (i,), True))
            applied += 1
            continue
        if indices and len(union | qubits) > tile_qubits:
            flush()
        indices.append(i)
        union |= qubits
        applied += 1
    flush()
    sweeps = sum(1 for seg in segments if not seg[2])
    # A sweep whose placement reaches above the tile forces a remap — a
    # full out-of-place transpose, costing roughly one extra pass over
    # the state on top of the sweep itself.  (Approximate: whether a
    # remap actually fires depends on the permutation left by the
    # previous window, which the value-independent schedule cannot see.)
    moves = sum(
        1
        for placement, _, wide in segments
        if not wide and any(q >= tile_qubits for q in placement)
    )
    # Worth blocking only when each pass over the state — sweeps and
    # remap transposes alike — amortizes over several items; short or
    # remap-heavy windows keep the one-pass-per-item path (identical
    # math).
    if sweeps == 0 or applied < 2 * (sweeps + moves):
        return None
    return tuple(segments)


def _diagonal_tile_slicer(table, phys, tile_qubits):
    """Per-tile closure for a diagonal whose operands include high-order
    physical bits: within one tile the high bits are constant, so the
    ``2^k`` table collapses to a ``2^k_low`` slice selected by the tile
    index (all-high operands collapse to a scalar multiply)."""
    table = np.asarray(table, dtype=complex).reshape(-1)
    low = [(j, p) for j, p in enumerate(phys) if p < tile_qubits]
    high = [(j, p - tile_qubits) for j, p in enumerate(phys) if p >= tile_qubits]
    idx = np.arange(1 << len(low))
    offsets = np.zeros(1 << len(low), dtype=np.int64)
    for new_bit, (j, _) in enumerate(low):
        offsets |= ((idx >> new_bit) & 1) << j
    low_qubits = [p for _, p in low]

    def apply(tsv, tile_index):
        base = 0
        for j, shift in high:
            base |= ((tile_index >> shift) & 1) << j
        tsv.apply_diagonal(table[offsets | base], low_qubits)

    return apply


def _prepare_tile_items(state, items, indices, tile_qubits):
    """Compile a sweep segment's items into per-tile closures.

    Operands translate through the state's current remap once, up
    front.  Tile-local operators apply directly via the scalar kernels
    on the tile alias; diagonal items with high-bit operands go through
    :func:`_diagonal_tile_slicer`.  The scheduler guarantees every
    non-diagonal item in a sweep segment is tile-local after placement.
    """
    perm = state._perm
    prepared = []
    for i in indices:
        item = items[i]
        if isinstance(item, Instruction):
            if item.name in UNITARY_NOOPS:
                continue
            arr, qs = item.matrix(), item.qubits
        else:
            arr, qs = item
        phys = [perm[q] for q in qs] if perm is not None else list(qs)
        local = all(p < tile_qubits for p in phys)
        if arr.ndim == 2:
            if local:
                if arr.shape[0] == 4 and np.count_nonzero(arr) == 16:
                    # Fully dense fused 4x4 block: at tile width the
                    # one-shot moveaxis/matmul contraction beats the
                    # structured slice kernel (which pays its sparsity
                    # analysis per tile and saves nothing on a matrix
                    # with no identity rows).
                    prepared.append(
                        lambda tsv, ti, m=arr, q=phys: tsv._apply_generic(m, q)
                    )
                else:
                    prepared.append(
                        lambda tsv, ti, m=arr, q=phys: tsv.apply_matrix(m, q)
                    )
            else:
                # Only diagonal entries may sit high in a sweep segment.
                prepared.append(
                    _diagonal_tile_slicer(np.diagonal(arr), phys, tile_qubits)
                )
        elif local:
            prepared.append(
                lambda tsv, ti, d=arr, q=phys: tsv.apply_diagonal(d, q)
            )
        else:
            prepared.append(_diagonal_tile_slicer(arr, phys, tile_qubits))
    return prepared


def execute_blocked(state, items, schedule, tile_qubits=None) -> None:
    """Run one window's materialized *items* under a blocked *schedule*.

    *state* is a :class:`StateVector` or
    :class:`~repro.simulator.batched.BatchedStateVector` (a batch's
    ``(rows, 2^n)`` buffer flattens into ``rows · 2^{n-t}`` tiles, so
    per-tile residency is independent of the row count).  Each sweep
    segment remaps its placement low, then streams the state tile by
    tile, applying every segment item to the resident tile through the
    scalar kernels on a reusable tile-sized alias.  Remaps are left
    pending after the window — the next segment or the state's
    observation boundaries coalesce or unwind them.
    """
    if tile_qubits is None:
        tile_qubits = blocked_tile_qubits()
    tile_dim = 1 << tile_qubits
    with _tracing.span(
        "engine.blocked_sweep", segments=len(schedule), tile_qubits=tile_qubits
    ):
        _run_blocked_schedule(state, items, schedule, tile_qubits, tile_dim)


def _run_blocked_schedule(state, items, schedule, tile_qubits, tile_dim) -> None:
    for placement, indices, wide in schedule:
        if wide:
            for i in indices:
                _apply_single(state, items[i])
            continue
        if placement:
            state.remap_low(placement, tile_qubits)
        prepared = _prepare_tile_items(state, items, indices, tile_qubits)
        if not prepared:
            continue
        tiles = state._data.reshape(-1, tile_dim)
        tsv = StateVector.__new__(StateVector)
        tsv.num_qubits = tile_qubits
        for ti in range(tiles.shape[0]):
            row = tiles[ti]
            tsv._data = row
            for fn in prepared:
                fn(tsv, ti)
            if tsv._data is not row:
                row[...] = tsv._data  # a kernel rebound the alias


def window_program(instructions, start, stop, plan, num_qubits):
    """Resolve one advance window into ``(items, schedule)``: the fused
    item list (or ``None`` when nothing fuses) and the blocked sweep
    schedule (or ``None`` when blocking does not engage).

    With a bound plan both come from the cross-request memos; otherwise
    they are re-derived from the same partition code path.  Shared by
    the scalar, span, and batched advance paths so planned and unplanned
    execution stay one code path.
    """
    fusing = FUSE_DIAGONAL_RUNS or FUSE_BLOCKS
    if plan is not None:
        items = plan.window_items(start, stop) if fusing else None
        schedule = (
            plan.window_block_schedule(start, stop) if BLOCKED_SWEEPS else None
        )
    else:
        ops = instructions[start:stop]
        partition = partition_window(ops) if fusing else None
        items = (
            materialize_items(ops, partition) if partition is not None else None
        )
        schedule = plan_blocked_window(ops, partition, num_qubits)
    if schedule is not None and items is None:
        # Nothing fused, but the window still blocks: sweep the raw
        # instructions themselves.
        items = list(instructions[start:stop])
    return items, schedule


def plan_diagonal_fusion(ops):
    """Fusion items for an advance window, or ``None`` when nothing
    fuses.

    Thin wrapper over :func:`partition_window` +
    :func:`materialize_items`, kept as the historical entry point; the
    plan cache calls the two halves separately so the partition can be
    memoized across requests while parameter-dependent items
    rematerialize per binding.
    """
    partition = partition_window(ops)
    if partition is None:
        return None
    return materialize_items(ops, partition)


def inject_into_dense(
    state, instruction: Instruction, error: QuantumError, term_index: int
) -> bool:
    """Apply error term *term_index* to a dense-semantics state.

    *state* needs ``apply_matrix`` / ``marginal_probability_one`` /
    ``collapse`` — both :class:`StateVector` and
    :class:`~repro.simulator.engines.sparse.SparseAmplitudes` qualify,
    which is how the hybrid engine reuses these exact semantics after
    the segment boundary.  Returns ``True`` always: the "did this
    preserve shareable structure" contract exists for the tableau's
    benefit (:func:`~repro.simulator.engines.tableau.inject_into_tableau`),
    and amplitude states share nothing.
    """
    term = error.terms[term_index]
    if term.kind == "pauli":
        for offset, label in enumerate(term.pauli.upper()):
            if label == "I":
                continue
            state.apply_matrix(_PAULI[label], [instruction.qubits[offset]])
    else:
        q = instruction.qubits[term.reset_operand]
        # Stochastic-event reset: project to |0⟩ deterministically by
        # collapsing on the dominant branch; exact behaviour of the
        # twirled thermal channel (population transfer to ground).
        p1 = state.marginal_probability_one(q)
        if p1 > 1.0 - 1e-12:
            state.apply_matrix(_PAULI["X"], [q])
        elif p1 > 1e-12:
            state.collapse(q, 0)
    return True


@register_engine
class DenseEngine(ExecutionEngine):
    """The ``2^n`` amplitude-vector backend (exact, any gate)."""

    name = "dense"
    plan_artifacts = (
        "window_partitions",
        "diagonal_tables",
        "block_matrices",
        "block_schedules",
    )

    #: Live ``2^n`` amplitude vectors at the grouped walk's peak: the
    #: shared clean prefix, the active trajectory fork, and one suffix
    #: checkpoint.  The admission estimate multiplies by this rather than
    #: pretending a request costs exactly one state.
    PEAK_STATES = 3

    @classmethod
    def estimate_peak_bytes(cls, circuit: QuantumCircuit) -> int:
        return cls.PEAK_STATES * (16 << circuit.num_qubits)

    def prepare(self, circuit: QuantumCircuit) -> None:
        with _tracing.span(
            "engine.prepare", engine=self.name, qubits=circuit.num_qubits
        ):
            self._state = StateVector(circuit.num_qubits)

    def fork(self) -> "DenseEngine":
        # type(self), not DenseEngine: subclassed backends must survive
        # the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._state = self._state.copy()
        dup._plan = self._plan
        return dup

    def advance(self, ops: Sequence[Instruction]) -> None:
        # Always unplanned: *ops* may be any ad-hoc window, so the
        # plan's (start, stop)-keyed memos do not apply here.
        state = self._state
        if state.use_fast_kernels and len(ops) > 1:
            items, schedule = window_program(ops, 0, len(ops), None, state.num_qubits)
            if schedule is not None:
                execute_blocked(state, items, schedule)
                return
            if items is not None:
                apply_items(state, items)
                return
        for inst in ops:
            if inst.name in UNITARY_NOOPS:
                continue
            state.apply_matrix(inst.matrix(), inst.qubits)

    def advance_span(self, instructions, start: int, stop: int) -> None:
        state = self._state
        with _tracing.span("engine.advance_window", start=start, stop=stop):
            if state.use_fast_kernels and stop - start > 1:
                # Cross-request memo: with a bound plan the partition, any
                # static tables, and the block schedule come from the plan
                # cache; parameter-dependent items were materialized once
                # for this binding.
                items, schedule = window_program(
                    instructions, start, stop, self._plan, state.num_qubits
                )
                if schedule is not None:
                    execute_blocked(state, items, schedule)
                    return
                if items is not None:
                    apply_items(state, items)
                    return
            for i in range(start, stop):
                inst = instructions[i]
                if inst.name in UNITARY_NOOPS:
                    continue
                state.apply_matrix(inst.matrix(), inst.qubits)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        return inject_into_dense(self._state, instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        return self._state.sample(shots, rng, qubits=qubits)

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        return self._state.measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        self._state.reset(qubit, rng)

    def to_dense(self) -> StateVector:
        return self._state

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import expectation_statevector

        return expectation_statevector(hamiltonian, self._state)


__all__ = [
    "DenseEngine",
    "inject_into_dense",
    "plan_diagonal_fusion",
    "partition_window",
    "materialize_entry",
    "materialize_items",
    "apply_items",
    "entry_is_static",
    "plan_blocked_window",
    "execute_blocked",
    "window_program",
    "blocked_tile_qubits",
    "FUSE_DIAGONAL_RUNS",
    "FUSE_BLOCKS",
    "BLOCKED_SWEEPS",
    "BLOCK_FUSION_MAX_QUBITS",
]
