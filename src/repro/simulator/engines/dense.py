"""Dense state-vector execution engine.

Wraps :class:`~repro.simulator.statevector.StateVector` behind the
:class:`~repro.simulator.engines.base.ExecutionEngine` protocol.  Kernel
selection (specialized fast kernels vs the generic ``moveaxis``
baseline) stays on :attr:`StateVector.use_fast_kernels`, toggled by
:func:`repro.simulator.engine_mode` — the engine object is the *walk*
abstraction, not the kernel switch, so the ``"fast"`` and ``"baseline"``
modes share this one class.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import scan_diagonal_runs
from repro.circuits.gates import UNITARY_NOOPS
from repro.simulator.channels import PAULI_MATRICES as _PAULI
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.noise import QuantumError
from repro.simulator.statevector import StateVector

#: Diagonal-run kernel fusion switch (active only under the fast
#: kernels): adjacent diagonal 1q/2q gates in an advance window collapse
#: into one precomputed elementwise multiply.  The perf harness toggles
#: this to isolate the fusion win; production code leaves it ``True``.
FUSE_DIAGONAL_RUNS = True

#: Generalized block-fusion switch (pass 2 of the window partition,
#: also fast-kernels only): maximal contiguous runs of plain 1q/2q
#: gates whose qubit union stays within
#: :data:`BLOCK_FUSION_MAX_QUBITS` collapse into one premultiplied
#: matrix, so a run of single-qubit rotations costs one kernel call.
FUSE_BLOCKS = True

#: Cap on the fused operand set: a run whose qubit union exceeds this is
#: split greedily, keeping every phase table at most ``2^cap`` entries.
_FUSION_MAX_QUBITS = 10

#: Cap on a fused *block*'s qubit union.  2 keeps every premultiplied
#: matrix at most 4×4 — the shapes the specialized fast kernels accept —
#: so block fusion never falls off the fast-kernel path.
BLOCK_FUSION_MAX_QUBITS = 2


def _fused_diagonal(instructions) -> tuple:
    """One ``(diagonal, qubits)`` table for a list of diagonal gates.

    The table is indexed little-endian over the *sorted* qubit union.
    Gates are first combined per operand set (all 1q diagonals on one
    qubit multiply into a single 2-vector, all 2q diagonals on one pair
    into a 4-vector), then the combined factors expand into the table —
    the expansion work scales with distinct operand sets, not run
    length.
    """
    qs = sorted({q for inst in instructions for q in inst.qubits})
    k = len(qs)
    pos = {q: i for i, q in enumerate(qs)}
    ones2 = np.ones(2, dtype=complex)
    one_q: dict = {}
    two_q: dict = {}
    for inst in instructions:
        d = np.diagonal(inst.matrix())
        if len(inst.qubits) == 1:
            q = inst.qubits[0]
            prev = one_q.get(q)
            one_q[q] = d if prev is None else prev * d
        else:
            a, b = inst.qubits
            if a > b:
                # Swap operand bits so the 4-vector is indexed with the
                # smaller qubit as bit 0.
                a, b = b, a
                d = d[[0, 2, 1, 3]]
            prev = two_q.get((a, b))
            two_q[(a, b)] = d if prev is None else prev * d
    # Tensor the 1q factors together, smallest qubit as the lowest bit.
    diag = np.ones(1, dtype=complex)
    for q in qs:
        vec = one_q.get(q, ones2)
        diag = (vec[:, None] * diag[None, :]).reshape(-1)
    if two_q:
        idx = np.arange(1 << k)
        for (a, b), d4 in two_q.items():
            sub = ((idx >> pos[a]) & 1) | (((idx >> pos[b]) & 1) << 1)
            diag = diag * d4[sub]
    return diag, qs


def _sub_index(i: int, bits) -> int:
    """Project the union-space index *i* onto the gate's operand bits."""
    s = 0
    for j, b in enumerate(bits):
        s |= ((i >> b) & 1) << j
    return s


def _embed_in_union(matrix, qubits, pos, dim):
    """Embed a gate matrix into the block's union space.

    ``pos`` maps qubit → bit position in the union (little-endian over
    the sorted union, matching ``StateVector.apply_matrix``); identity
    on union qubits the gate does not touch.
    """
    bits = [pos[q] for q in qubits]
    if (1 << len(bits)) == dim and all(b == j for j, b in enumerate(bits)):
        return matrix
    mask = 0
    for b in bits:
        mask |= 1 << b
    rest = (dim - 1) ^ mask
    out = np.zeros((dim, dim), dtype=complex)
    for r in range(dim):
        sr = _sub_index(r, bits)
        base = r & rest
        for c in range(dim):
            if (c & rest) == base:
                out[r, c] = matrix[sr, _sub_index(c, bits)]
    return out


def _fused_block(instructions) -> tuple:
    """One ``(matrix, qubits)`` item for a contiguous run of 1q/2q gates.

    Gates multiply in program order (later gates on the left), each
    embedded into the sorted qubit union, so applying the product once
    is exactly applying the run gate by gate — up to float rounding of
    the premultiplication.
    """
    qs = sorted({q for inst in instructions for q in inst.qubits})
    pos = {q: i for i, q in enumerate(qs)}
    dim = 1 << len(qs)
    combined = _embed_in_union(
        instructions[0].matrix(), instructions[0].qubits, pos, dim
    )
    for inst in instructions[1:]:
        combined = _embed_in_union(inst.matrix(), inst.qubits, pos, dim) @ combined
    return combined, qs


def _chunk_positions(ops, run):
    """Split one diagonal run (a tuple of positions) greedily so no
    fused table spans more than :data:`_FUSION_MAX_QUBITS` qubits."""
    chunks = []
    chunk: list = []
    chunk_qubits: set = set()
    for p in run:
        union = chunk_qubits | set(ops[p].qubits)
        if chunk and len(union) > _FUSION_MAX_QUBITS:
            chunks.append(tuple(chunk))
            chunk = [p]
            chunk_qubits = set(ops[p].qubits)
        else:
            chunk.append(p)
            chunk_qubits = union
    if chunk:
        chunks.append(tuple(chunk))
    return chunks


def _blockable(inst: Instruction) -> bool:
    """Plain unitary 1q/2q gates qualify for block fusion; directives,
    noops, and anything wider than the block cap do not."""
    return (
        inst.name not in UNITARY_NOOPS
        and inst.name != "reset"
        and not inst.clbits
        and len(inst.qubits) <= BLOCK_FUSION_MAX_QUBITS
    )


def _merge_blocks(ops, entries):
    """Pass 2: merge maximal runs of adjacent ``("apply", p)`` entries
    whose qubit union fits :data:`BLOCK_FUSION_MAX_QUBITS`.

    Entries are already a valid reordering of the window (pass 1 only
    moved commuting diagonals), so merging *adjacent* entries is always
    sound — no further commutation analysis needed.
    """
    out: list = []
    block: list = []
    union: set = set()

    def flush() -> None:
        nonlocal block, union
        if len(block) > 1:
            out.append(("block", tuple(block)))
        elif block:
            out.append(("apply", block[0]))
        block = []
        union = set()

    for entry in entries:
        kind, val = entry
        if kind == "apply" and _blockable(ops[val]):
            u = union | set(ops[val].qubits)
            if block and len(u) > BLOCK_FUSION_MAX_QUBITS:
                flush()
                u = set(ops[val].qubits)
            block.append(val)
            union = u
        else:
            flush()
            out.append(entry)
    flush()
    return out


def partition_window(ops):
    """Value-independent fusion partition of an advance window.

    Returns a tuple of entries — ``("apply", pos)`` for a pass-through
    instruction, ``("diag", positions)`` for a fused diagonal table,
    ``("block", positions)`` for a premultiplied gate block — or
    ``None`` when nothing fuses.  Pass 1 is PR 4's DAG commutation scan
    (:func:`repro.circuits.dag.scan_diagonal_runs`): each run is
    replaced at its head position, which is exact because every later
    member commutes back past the interleaved gates.  Pass 2
    (:func:`_merge_blocks`) generalizes fusion to contiguous
    non-diagonal 1q/2q blocks.

    The partition depends only on gate names, wires, and memoized
    diagonality — never on parameter values — which is what lets
    ``repro.compiler.plans`` memoize it across requests under the
    structural hash (whose per-instruction diagonality bit pins the
    value-edge cases).
    """
    n = len(ops)
    entries: list = []
    runs = scan_diagonal_runs(ops) if FUSE_DIAGONAL_RUNS else []
    head = {run[0]: run for run in runs}
    member = {p for run in runs for p in run}
    for p in range(n):
        if p in head:
            for chunk in _chunk_positions(ops, head[p]):
                entries.append(
                    ("diag", chunk) if len(chunk) > 1 else ("apply", chunk[0])
                )
        elif p not in member:
            entries.append(("apply", p))
    if FUSE_BLOCKS:
        entries = _merge_blocks(ops, entries)
    if len(entries) == n:  # every entry a singleton: nothing fused
        return None
    return tuple(entries)


def entry_is_static(ops, entry) -> bool:
    """True when a partition entry materializes identically for every
    circuit sharing the structural hash: fused items whose members all
    take zero parameters (their matrices are shared registry constants,
    so the table is bit-identical regardless of instance identity).
    Parameterized members — numeric or symbolic — make an item dynamic,
    because parameter *values* are masked from the structural hash."""
    kind, val = entry
    if kind == "apply":
        return False
    return all(not ops[p].params for p in val)


def materialize_entry(ops, entry):
    """Build one partition entry's applicable item: the raw
    :class:`Instruction` for ``apply``, ``(1-D table, qubits)`` for
    ``diag``, ``(2-D matrix, qubits)`` for ``block``."""
    kind, val = entry
    if kind == "apply":
        return ops[val]
    members = [ops[p] for p in val]
    return _fused_diagonal(members) if kind == "diag" else _fused_block(members)


def materialize_items(ops, partition):
    """Build the applicable item list for a whole partition."""
    return [materialize_entry(ops, entry) for entry in partition]


def apply_items(state, items) -> None:
    """Apply a materialized item list to any dense-semantics state
    (``StateVector`` or a ``BatchedStateVector`` row block)."""
    for item in items:
        if isinstance(item, Instruction):
            if item.name not in UNITARY_NOOPS:
                state.apply_matrix(item.matrix(), item.qubits)
        else:
            arr, qs = item
            if arr.ndim == 1:
                state.apply_diagonal(arr, qs)
            else:
                state.apply_matrix(arr, qs)


def plan_diagonal_fusion(ops):
    """Fusion items for an advance window, or ``None`` when nothing
    fuses.

    Thin wrapper over :func:`partition_window` +
    :func:`materialize_items`, kept as the historical entry point; the
    plan cache calls the two halves separately so the partition can be
    memoized across requests while parameter-dependent items
    rematerialize per binding.
    """
    partition = partition_window(ops)
    if partition is None:
        return None
    return materialize_items(ops, partition)


def inject_into_dense(
    state, instruction: Instruction, error: QuantumError, term_index: int
) -> bool:
    """Apply error term *term_index* to a dense-semantics state.

    *state* needs ``apply_matrix`` / ``marginal_probability_one`` /
    ``collapse`` — both :class:`StateVector` and
    :class:`~repro.simulator.engines.sparse.SparseAmplitudes` qualify,
    which is how the hybrid engine reuses these exact semantics after
    the segment boundary.  Returns ``True`` always: the "did this
    preserve shareable structure" contract exists for the tableau's
    benefit (:func:`~repro.simulator.engines.tableau.inject_into_tableau`),
    and amplitude states share nothing.
    """
    term = error.terms[term_index]
    if term.kind == "pauli":
        for offset, label in enumerate(term.pauli.upper()):
            if label == "I":
                continue
            state.apply_matrix(_PAULI[label], [instruction.qubits[offset]])
    else:
        q = instruction.qubits[term.reset_operand]
        # Stochastic-event reset: project to |0⟩ deterministically by
        # collapsing on the dominant branch; exact behaviour of the
        # twirled thermal channel (population transfer to ground).
        p1 = state.marginal_probability_one(q)
        if p1 > 1.0 - 1e-12:
            state.apply_matrix(_PAULI["X"], [q])
        elif p1 > 1e-12:
            state.collapse(q, 0)
    return True


@register_engine
class DenseEngine(ExecutionEngine):
    """The ``2^n`` amplitude-vector backend (exact, any gate)."""

    name = "dense"
    plan_artifacts = ("window_partitions", "diagonal_tables", "block_matrices")

    def prepare(self, circuit: QuantumCircuit) -> None:
        self._state = StateVector(circuit.num_qubits)

    def fork(self) -> "DenseEngine":
        # type(self), not DenseEngine: subclassed backends must survive
        # the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._state = self._state.copy()
        dup._plan = self._plan
        return dup

    def advance(self, ops: Sequence[Instruction]) -> None:
        state = self._state
        if (
            state.use_fast_kernels
            and len(ops) > 1
            and (FUSE_DIAGONAL_RUNS or FUSE_BLOCKS)
        ):
            items = plan_diagonal_fusion(ops)
            if items is not None:
                apply_items(state, items)
                return
        for inst in ops:
            if inst.name in UNITARY_NOOPS:
                continue
            state.apply_matrix(inst.matrix(), inst.qubits)

    def advance_span(self, instructions, start: int, stop: int) -> None:
        state = self._state
        if (
            state.use_fast_kernels
            and stop - start > 1
            and (FUSE_DIAGONAL_RUNS or FUSE_BLOCKS)
        ):
            plan = self._plan
            if plan is not None:
                # Cross-request memo: the partition (and any static
                # tables) come from the plan cache; parameter-dependent
                # items were materialized once for this binding.
                items = plan.window_items(start, stop)
            else:
                items = plan_diagonal_fusion(instructions[start:stop])
            if items is not None:
                apply_items(state, items)
                return
        for i in range(start, stop):
            inst = instructions[i]
            if inst.name in UNITARY_NOOPS:
                continue
            state.apply_matrix(inst.matrix(), inst.qubits)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        return inject_into_dense(self._state, instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        return self._state.sample(shots, rng, qubits=qubits)

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        return self._state.measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        self._state.reset(qubit, rng)

    def to_dense(self) -> StateVector:
        return self._state

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import expectation_statevector

        return expectation_statevector(hamiltonian, self._state)


__all__ = [
    "DenseEngine",
    "inject_into_dense",
    "plan_diagonal_fusion",
    "partition_window",
    "materialize_entry",
    "materialize_items",
    "apply_items",
    "entry_is_static",
    "FUSE_DIAGONAL_RUNS",
    "FUSE_BLOCKS",
    "BLOCK_FUSION_MAX_QUBITS",
]
