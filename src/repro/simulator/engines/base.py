"""Execution-engine protocol and registry.

An :class:`ExecutionEngine` is one *trajectory's worth of simulation
state* behind a uniform surface: the shot sampler, the expectation
estimators, and the perf harness all drive engines through this protocol
instead of hard-coding a state representation.  That is what makes the
backends pluggable — the dense state vector, the stabilizer tableau, and
the segment-granular hybrid (tableau→dense) engine are peers in a
registry, and a future backend (density matrix, remote QPU) only has to
implement the same eight methods and register itself.

Protocol
--------
``prepare(circuit)``
    (Re)initialize to ``|0…0⟩`` for *circuit*.  Called by the
    constructor; a fresh engine instance *is* a fresh trajectory.
``advance(ops)``
    Apply a window of circuit instructions.  Unitary no-ops
    (barrier/delay/measure/id) are skipped; measurement collapse is
    never performed here — that is :meth:`measure`'s job, driven by the
    per-shot sampler.
``fork()``
    An independent copy of the current state (the trajectory-group fork
    of the prefix-sharing sampler).  Forks may share immutable or
    structure-keyed caches with their parent.
``inject(instruction, error, term_index)``
    Apply one sampled error term at *instruction*.  Returns ``True``
    when the injection preserved shareable state structure (every Pauli
    term on a tableau), ``False`` on a genuine collapse — the sampler
    uses this to decide whether a group may reuse shared factorizations.
``sample(shots, rng, qubits, shares_structure=...)``
    Draw measurement outcomes without collapsing.  All engines must
    consume exactly ``shots`` uniform draws from *rng* and invert the
    same outcome CDF, so seeded runs stay aligned across backends (see
    ``docs/architecture.md`` for the parity contract).
``measure(qubit, rng)`` / ``reset(qubit, rng)``
    Collapsing mid-circuit operations for the per-shot path.
``to_dense()``
    The current state as a dense
    :class:`~repro.simulator.statevector.StateVector` — the conversion
    boundary of mixed execution (exponential; raises beyond the dense
    qubit limit).
``expectation(hamiltonian)``
    Exact ``⟨H⟩`` of a :class:`~repro.hybrid.observables.PauliSum` on
    the current state, evaluated however this backend does it best.

Registration
------------
Concrete engines self-register under :attr:`ExecutionEngine.name` via
the :func:`register_engine` decorator; :func:`get_engine` resolves names
and :func:`engine_registry` snapshots the table.  Mode-string *routing*
(which engine serves which circuit under ``engine_mode``) lives in
:func:`repro.simulator.engines.select_engine`, one level up.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Dict, Optional, Sequence, Tuple, Type

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.errors import SimulationError
from repro.simulator.noise import QuantumError
from repro.simulator.statevector import StateVector


class ExecutionEngine(ABC):
    """One trajectory of simulation state behind the engine protocol."""

    #: Registry key; concrete subclasses must override.
    name: ClassVar[str] = ""

    #: Names of the :class:`repro.compiler.plans.ExecutionPlan` artifacts
    #: this backend consumes (empty: plans are accepted but ignored).
    #: Purely declarative — tests and docs pin each backend's entry.
    plan_artifacts: ClassVar[Tuple[str, ...]] = ()

    #: Bound execution plan, or ``None`` for the unplanned path.  A class
    #: attribute (not set in ``__init__``) so engines created through
    #: ``cls.__new__`` in ``fork()`` implementations inherit the default;
    #: forks that should keep their parent's plan copy it explicitly.
    _plan = None

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.prepare(circuit)

    # -- admission control -----------------------------------------------------

    @classmethod
    def estimate_peak_bytes(cls, circuit: QuantumCircuit) -> Optional[int]:
        """Estimated peak state memory, in bytes, for one sampling
        request of *circuit* on this backend — or ``None`` when the
        backend cannot predict its footprint.

        Consumed by pre-flight admission control
        (:func:`repro.simulator.resilience.check_admission`) **before**
        any allocation, so the estimate must be computable from the
        circuit and the engine's configuration alone.  ``None`` (the
        default for backends that do not override this) admits the
        request unconditionally.
        """
        return None

    # -- execution plans -------------------------------------------------------

    def bind_plan(self, plan) -> None:
        """Attach a :class:`~repro.compiler.plans.BoundPlan` for this
        request.  Backends that consume plan artifacts override
        :meth:`advance_span` (or this hook) to use it; the default just
        records the plan so forks can inherit it."""
        self._plan = plan

    @property
    def plan(self):
        """The bound execution plan, or ``None`` when running unplanned."""
        return self._plan

    # -- state lifecycle -------------------------------------------------------

    @abstractmethod
    def prepare(self, circuit: QuantumCircuit) -> None:
        """(Re)initialize internal state to ``|0…0⟩`` for *circuit*."""

    @abstractmethod
    def fork(self) -> "ExecutionEngine":
        """An independent copy of the current state (trajectory fork)."""

    # -- evolution -------------------------------------------------------------

    @abstractmethod
    def advance(self, ops: Sequence[Instruction]) -> None:
        """Apply the unitary part of *ops* in order (no-ops skipped)."""

    def advance_span(self, instructions: Sequence[Instruction], start: int, stop: int) -> None:
        """Apply the window ``instructions[start:stop]``.

        The span form is how the sampler drivers address windows of the
        *full* instruction list, which lets plan-aware backends look up
        memoized per-window artifacts by ``(start, stop)`` key.  The
        default delegates to :meth:`advance` on the slice — identical
        semantics for backends without window artifacts.
        """
        self.advance(instructions[start:stop])

    @abstractmethod
    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        """Apply one sampled error term; ``True`` iff structure-preserving."""

    # -- measurement -----------------------------------------------------------

    @abstractmethod
    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        """``(shots, k)`` outcome bits; consumes exactly *shots* draws."""

    @abstractmethod
    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        """Projectively measure one qubit, collapsing the state."""

    @abstractmethod
    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        """Measure-and-flip reset of one qubit to ``|0⟩``."""

    # -- conversion / observables ----------------------------------------------

    @abstractmethod
    def to_dense(self) -> StateVector:
        """The current state as a dense :class:`StateVector`."""

    @abstractmethod
    def expectation(self, hamiltonian) -> float:
        """Exact ``⟨H⟩`` of a ``PauliSum`` on the current state."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.circuit.num_qubits} qubits>"


_REGISTRY: Dict[str, Type[ExecutionEngine]] = {}


def register_engine(cls: Type[ExecutionEngine]) -> Type[ExecutionEngine]:
    """Class decorator: add *cls* to the engine registry under its name.

    Re-registering a name replaces the previous entry (latest wins), so
    downstream code can swap in an instrumented or experimental backend
    without touching the sampler.
    """
    if not cls.name:
        raise SimulationError(f"engine class {cls.__name__} has no registry name")
    _REGISTRY[cls.name] = cls
    return cls


def get_engine(name: str) -> Type[ExecutionEngine]:
    """Resolve a registered engine class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown execution engine {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def engine_registry() -> Dict[str, Type[ExecutionEngine]]:
    """A snapshot of the current name → engine-class table."""
    return dict(_REGISTRY)


__all__ = [
    "ExecutionEngine",
    "register_engine",
    "get_engine",
    "engine_registry",
]
