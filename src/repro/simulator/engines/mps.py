"""Matrix-product-state execution engine for low-entanglement circuits.

The fourth backend class of the registry: every non-Clifford workload
previously died at the 26-qubit dense limit unless its tail stayed
sparse.  A matrix product state represents an ``n``-qubit pure state as
a chain of site tensors ``T_i`` of shape ``(D_l, 2, D_r)`` (one per
qubit, little-endian: site *i* is qubit *i*), where the bond dimensions
``D`` measure the entanglement across each cut.  Cost is
``O(n · chi³)`` per two-qubit gate instead of ``O(2^n)``, so shallow
brickwork circuits, QAOA/VQE ansätze, and Trotterized dynamics run at
50–100+ qubits whenever entanglement stays bounded.

Canonical form
--------------
:class:`MPSState` keeps a **mixed-canonical** chain: every tensor left
of the orthogonality :attr:`~MPSState.center` is left-canonical
(``Σ_s T[s]† T[s] = I``), every tensor right of it right-canonical
(``Σ_s T[s] T[s]† = I``), and the center tensor carries the state's
norm.  The invariant is maintained by QR/LQ sweeps
(:meth:`~MPSState.canonicalize_to`) and makes every local quantity —
single-qubit marginals, conditional sampling probabilities, Pauli-string
expectations — computable from the tensors it touches alone.

Gates
-----
* **1q** — a local contraction into one site tensor.  Unitaries
  preserve both canonical forms, so no sweep is needed.
* **2q adjacent** — contract the two site tensors and the gate into a
  ``(D_l·2, 2·D_r)`` block, SVD, and truncate: singular values beyond
  the bond cap :data:`CHI` are discarded, as are trailing values whose
  cumulative relative weight stays below :data:`TRUNCATION_THRESHOLD`
  (plus machine-noise zeros below :data:`ZERO_CUTOFF`).  The discarded
  weight accumulates in :attr:`~MPSState.truncation_error` and the kept
  spectrum is renormalized, so the state stays a unit vector.
* **2q non-adjacent** — SWAP insertion along the line: the router
  computes the site path with the same shortest-path primitive the
  transpiler's SWAP-insertion pass uses (:class:`~repro.qpu.topology.
  Topology.line`), moves one operand into adjacency with SWAP gates,
  applies the gate, and unwinds.

Sampling and RNG parity
-----------------------
At or below the dense limit (:data:`DENSE_QUBIT_LIMIT` qubits),
:meth:`MPSState.sample` contracts the chain exactly
(:meth:`~MPSState.to_statevector`) and inverts the identical outcome
CDF the dense engine does — with an unconstrained ``chi`` seeded counts
are bit-comparable against :class:`~repro.simulator.engines.dense.
DenseEngine` (pinned by ``tests/test_mps.py``).  Beyond the dense limit
no ``2^n`` CDF can exist; the sampler switches to the standard
left-to-right **conditional-marginal sweep**: with the center at site 0
the chain right of every site is right-canonical, so the conditional
``P(bit_i = 1 | bits_{<i})`` is the squared norm of a ``(shots, D)``
boundary vector and all shots advance through one ``O(n · chi²)``
vectorized pass, drawing one uniform batch per site (``n × shots``
draws — the same wide-state stream deviation the packed tableau's
free-bit sampler documents).

Mid-circuit measurement and stochastic-event noise injection reuse the
dense engine's exact semantics: :meth:`measure` draws one uniform with
``outcome = u < P(1)``, and
:func:`~repro.simulator.engines.dense.inject_into_dense` drives
:meth:`apply_matrix` / :meth:`marginal_probability_one` /
:meth:`collapse` directly.
"""

from __future__ import annotations

import math
import numbers
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gates as gate_lib
from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.errors import SimulationError
from repro.qpu.topology import Topology
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.engines.dense import inject_into_dense
from repro.simulator.noise import QuantumError
from repro.simulator.statevector import DENSE_QUBIT_LIMIT, StateVector
from repro.telemetry import tracing as _tracing
from repro.utils.rng import RandomState, as_rng

#: Default bond-dimension cap.  64 keeps every state of ≤12 qubits exact
#: (the widest cut of an n-qubit chain is ``2^(n//2)``), which is what
#: the seeded-parity suites rely on; wide low-entanglement workloads
#: rarely need more.  Override per block via
#: ``engine_mode("mps", chi=...)``.
CHI: int = 64

#: Default truncation threshold: the maximum cumulative *relative*
#: weight (``Σ s_i² / Σ s²`` of the discarded tail) a single SVD may
#: drop beyond the ``chi`` cap.  0.0 means "truncate only when the bond
#: cap forces it" — the exact-parity default.  Override per block via
#: ``engine_mode("mps", truncation_threshold=...)``.
TRUNCATION_THRESHOLD: float = 0.0

#: Relative singular-value cutoff for machine-noise zeros: values below
#: ``s_max · ZERO_CUTOFF`` are always dropped (a rank-2 GHZ cut must
#: keep bond dimension 2, not ``min(2·D_l, 2·D_r)`` of float dust).
ZERO_CUTOFF: float = 1e-14

#: Cumulative truncation loss above which sampling a truncated state
#: emits a :class:`UserWarning` (once per state lineage).  Sampling is
#: where a silently-approximate state turns into silently-wrong counts —
#: in particular under ``"auto"`` routing, where the caller never asked
#: for an approximate backend.  States whose loss stays within the
#: configured ``truncation_threshold`` budget (an explicit opt-in to
#: lossy compression) do not warn below that budget.
TRUNCATION_WARNING_THRESHOLD: float = 1e-9

#: ``"auto"``-routing heuristic knob: a circuit counts as *line-like*
#: (MPS-friendly) when every two-qubit gate spans at most this many
#: index steps along the chain.
LINE_RANGE: int = 2

_SWAP = None  # resolved lazily (gate library import order)


def _swap_matrix() -> np.ndarray:
    global _SWAP
    if _SWAP is None:
        _SWAP = gate_lib.spec("swap").matrix()
    return _SWAP


def is_line_like(circuit: QuantumCircuit) -> bool:
    """Whether every two-qubit gate of *circuit* spans at most
    :data:`LINE_RANGE` index steps — the ``"auto"`` router's
    MPS-friendliness predicate (brickwork layers, nearest-neighbour
    QAOA/Trotter chains qualify; all-to-all ansätze do not)."""
    for inst in circuit:
        if inst.is_two_qubit and abs(inst.qubits[0] - inst.qubits[1]) > LINE_RANGE:
            return False
    return True


class MPSState:
    """An n-qubit pure state as a mixed-canonical matrix product state.

    Created in ``|0…0⟩`` (every tensor ``(1, 2, 1)``, center at site 0).
    All mutating operations preserve unit norm; truncation loss is
    tracked in :attr:`truncation_error` instead of leaking into the
    norm.
    """

    def __init__(
        self,
        num_qubits: int,
        *,
        chi: Optional[int] = None,
        truncation_threshold: Optional[float] = None,
    ) -> None:
        if num_qubits < 1:
            raise SimulationError("state needs at least one qubit")
        self.num_qubits = int(num_qubits)
        cap = CHI if chi is None else chi
        if isinstance(cap, bool) or not isinstance(cap, numbers.Integral) or cap < 1:
            raise SimulationError(f"bond cap chi must be an integer >= 1, got {cap!r}")
        self.chi = int(cap)
        self.truncation_threshold = float(
            TRUNCATION_THRESHOLD if truncation_threshold is None else truncation_threshold
        )
        if not 0.0 <= self.truncation_threshold < 1.0:
            raise SimulationError(
                "truncation threshold must lie in [0, 1), got "
                f"{self.truncation_threshold}"
            )
        tensor = np.zeros((1, 2, 1), dtype=complex)
        tensor[0, 0, 0] = 1.0
        self.tensors: List[np.ndarray] = [tensor.copy() for _ in range(self.num_qubits)]
        self.center = 0
        #: Cumulative discarded relative weight across every truncated SVD.
        self.truncation_error = 0.0
        # One truncation warning per state lineage (forks inherit it).
        self._truncation_warned = False
        #: Precomputed SWAP routes ``(lo, hi) → site path`` from a bound
        #: execution plan (shared read-only across forks); ``None`` means
        #: compute routes on the fly.
        self.routes: Optional[dict] = None

    # -- bookkeeping -----------------------------------------------------------

    def copy(self) -> "MPSState":
        """An independent deep copy (``O(n · chi²)`` — the trajectory
        fork of the grouped sampler)."""
        dup = MPSState.__new__(MPSState)
        dup.num_qubits = self.num_qubits
        dup.chi = self.chi
        dup.truncation_threshold = self.truncation_threshold
        dup.tensors = [t.copy() for t in self.tensors]
        dup.center = self.center
        dup.truncation_error = self.truncation_error
        dup._truncation_warned = self._truncation_warned
        dup.routes = self.routes  # read-only table, shared by reference
        return dup

    def bond_dimensions(self) -> Tuple[int, ...]:
        """The ``n-1`` bond dimensions between neighbouring sites."""
        return tuple(t.shape[2] for t in self.tensors[:-1])

    @property
    def max_bond_dimension(self) -> int:
        """The largest bond dimension currently in the chain."""
        return max(self.bond_dimensions(), default=1)

    def norm(self) -> float:
        """Euclidean norm (1 for a valid state) — the center tensor's
        norm, by the canonical invariant."""
        return float(np.linalg.norm(self.tensors[self.center]))

    def _check_qubit(self, qubit: int) -> int:
        if not 0 <= qubit < self.num_qubits:
            raise SimulationError(
                f"qubit {qubit} out of range for {self.num_qubits}-qubit state"
            )
        return int(qubit)

    # -- canonical-form maintenance --------------------------------------------

    def canonicalize_to(self, site: int) -> "MPSState":
        """Move the orthogonality center to *site* via QR/LQ sweeps.

        Exact (no truncation): a QR step leaves the departed tensor
        left-canonical and multiplies the triangular factor into its
        neighbour; the mirrored LQ step moves left.
        """
        self._check_qubit(site)
        while self.center < site:
            c = self.center
            t = self.tensors[c]
            dl, _, dr = t.shape
            q, r = np.linalg.qr(t.reshape(dl * 2, dr))
            self.tensors[c] = q.reshape(dl, 2, -1)
            self.tensors[c + 1] = np.einsum(
                "ab,bsr->asr", r, self.tensors[c + 1]
            )
            self.center = c + 1
        while self.center > site:
            c = self.center
            t = self.tensors[c]
            dl, _, dr = t.shape
            # LQ via QR of the conjugate transpose: A = L·Q with
            # row-orthonormal Q ⇒ the departed tensor is right-canonical.
            q, r = np.linalg.qr(t.reshape(dl, 2 * dr).conj().T)
            self.tensors[c] = q.conj().T.reshape(-1, 2, dr)
            self.tensors[c - 1] = np.einsum(
                "lsa,ab->lsb", self.tensors[c - 1], r.conj().T
            )
            self.center = c - 1
        return self

    # -- gate application ------------------------------------------------------

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> "MPSState":
        """Apply a 1- or 2-qubit operator (same index conventions as
        :meth:`StateVector.apply_matrix`: operand ``qubits[j]`` is bit
        *j* of the matrix index).

        Larger operators are not supported — decompose first (the gate
        library is 1q/2q only).
        """
        matrix = np.asarray(matrix, dtype=complex)
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise SimulationError(
                f"matrix shape {matrix.shape} does not match {k} qubits"
            )
        if len(set(qubits)) != k:
            raise SimulationError(f"operands must be distinct, got {tuple(qubits)}")
        for q in qubits:
            self._check_qubit(q)
        if k == 1:
            return self._apply_1q(matrix, qubits[0])
        if k == 2:
            return self._apply_2q(matrix, qubits[0], qubits[1])
        raise SimulationError(
            "MPS handles 1- and 2-qubit operators; decompose larger blocks"
        )

    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> "MPSState":
        # A unitary on the physical index preserves both canonical
        # forms, so no center movement is needed.  (Non-unitary 1q
        # operators only reach the center tensor via collapse().)
        self.tensors[qubit] = np.einsum(
            "st,ltr->lsr", matrix, self.tensors[qubit]
        )
        return self

    def _apply_2q(self, matrix: np.ndarray, q0: int, q1: int) -> "MPSState":
        lo, hi = (q0, q1) if q0 < q1 else (q1, q0)
        if hi - lo == 1:
            return self._apply_2q_adjacent(matrix, q0, q1)
        # SWAP insertion along the chain: the site path comes from the
        # same shortest-path primitive the transpiler's router walks
        # (trivially lo..hi on a line, but stated in routing terms).  A
        # bound execution plan precomputes the table once per structure.
        path = self.routes.get((lo, hi)) if self.routes is not None else None
        if path is None:
            path = Topology.line(self.num_qubits).shortest_path(lo, hi)
        # Move the *hi* operand down to lo+1 ...
        for a, b in zip(path[-2:0:-1], path[-1:1:-1]):
            self._apply_2q_adjacent(_swap_matrix(), a, b)
        # ... apply with operand order preserved (the moved qubit now
        # sits at site lo+1) ...
        if q0 == lo:
            self._apply_2q_adjacent(matrix, lo, lo + 1)
        else:
            self._apply_2q_adjacent(matrix, lo + 1, lo)
        # ... then unwind so qubit indices keep meaning site indices.
        for a, b in zip(path[1:-1], path[2:]):
            self._apply_2q_adjacent(_swap_matrix(), a, b)
        return self

    def _apply_2q_adjacent(self, matrix: np.ndarray, q0: int, q1: int) -> "MPSState":
        """Contract → gate → SVD → truncate on neighbouring sites."""
        lo = min(q0, q1)
        if self.center < lo:
            self.canonicalize_to(lo)
        elif self.center > lo + 1:
            self.canonicalize_to(lo + 1)
        a, b = self.tensors[lo], self.tensors[lo + 1]
        dl, dr = a.shape[0], b.shape[2]
        # theta[l, s_lo, s_hi, r]
        theta = np.einsum("lsm,mtr->lstr", a, b)
        gate = matrix.reshape(2, 2, 2, 2)
        if q0 == lo:
            # matrix bit 0 ↔ lower site: index i = s_hi·2 + s_lo, so the
            # reshaped gate is [s_hi', s_lo', s_hi, s_lo].
            theta = np.einsum("dcba,labr->lcdr", gate, theta)
        else:
            # matrix bit 0 ↔ upper site.
            theta = np.einsum("dcba,lbar->ldcr", gate, theta)
        self._split_theta(theta, lo)
        return self

    def _split_theta(self, theta: np.ndarray, lo: int) -> None:
        """SVD a two-site block back into site tensors, truncating."""
        dl, _, _, dr = theta.shape
        u, s, vh = np.linalg.svd(
            theta.reshape(dl * 2, 2 * dr), full_matrices=False
        )
        total = float(np.dot(s, s))
        if total <= 0.0:
            raise SimulationError("cannot split a numerically zero state")
        keep = int(np.count_nonzero(s > s[0] * ZERO_CUTOFF)) or 1
        if self.truncation_threshold > 0.0 and keep > 1:
            # Largest k whose discarded tail stays below the threshold.
            weights = (s[:keep] * s[:keep]) / total
            tail = np.cumsum(weights[::-1])[::-1]  # tail[k] = Σ_{i>=k} w_i
            allowed = np.nonzero(tail <= self.truncation_threshold)[0]
            if allowed.size:
                keep = max(int(allowed[0]), 1)
        keep = min(keep, self.chi)
        kept = float(np.dot(s[:keep], s[:keep]))
        self.truncation_error += max(0.0, 1.0 - kept / total)
        # Renormalize so the state stays a unit vector.
        scale = 1.0 / math.sqrt(kept)
        self.tensors[lo] = u[:, :keep].reshape(dl, 2, keep)
        self.tensors[lo + 1] = (
            (s[:keep, None] * vh[:keep]) * scale
        ).reshape(keep, 2, dr)
        # U is an isometry ⇒ the lower site is left-canonical; the norm
        # (and with it the orthogonality center) lives on the upper one.
        self.center = lo + 1

    def apply_instruction(self, instruction: Instruction) -> "MPSState":
        """Apply one circuit instruction (unitary no-ops are skipped)."""
        if instruction.name in UNITARY_NOOPS:
            return self
        return self.apply_matrix(instruction.matrix(), instruction.qubits)

    # -- measurement -----------------------------------------------------------

    def marginal_probability_one(self, qubit: int) -> float:
        """``P(qubit = 1)`` from the center tensor alone."""
        self.canonicalize_to(self._check_qubit(qubit))
        t = self.tensors[qubit]
        ones = t[:, 1, :]
        total = float(np.real(np.vdot(t, t)))
        return float(np.real(np.vdot(ones, ones))) / total

    def collapse(self, qubit: int, outcome: int) -> float:
        """Project *qubit* onto *outcome* and renormalize.

        Returns the pre-collapse probability of the outcome; raises if
        it is numerically zero.  Only the center tensor is touched, so
        the canonical invariant survives.
        """
        p1 = self.marginal_probability_one(qubit)
        prob = p1 if outcome else 1.0 - p1
        if prob < 1e-15:
            raise SimulationError(
                f"cannot collapse qubit {qubit} onto impossible outcome {outcome}"
            )
        t = self.tensors[qubit].copy()
        t[:, 1 - outcome, :] = 0.0
        self.tensors[qubit] = t / math.sqrt(prob)
        return prob

    def measure(self, qubit: int, rng: RandomState = None) -> int:
        """Projectively measure one qubit (one uniform draw,
        ``outcome = u < P(1)`` — the dense engine's discipline)."""
        r = as_rng(rng)
        p1 = self.marginal_probability_one(qubit)
        outcome = 1 if r.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def reset(self, qubit: int, rng: RandomState = None) -> "MPSState":
        """Measure-and-flip reset of one qubit to ``|0⟩``."""
        if self.measure(qubit, rng):
            self.apply_matrix(np.array([[0, 1], [1, 0]], dtype=complex), [qubit])
        return self

    def sample(
        self,
        shots: int,
        rng: RandomState = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Draw *shots* basis-state samples without collapsing.

        At or below the dense limit the chain is contracted exactly and
        sampled through :meth:`StateVector.sample` — identical outcome
        CDF and RNG stream as the dense engine, which is what makes
        seeded MPS counts bit-comparable at small widths.  Beyond it,
        the left-to-right conditional-marginal sweep draws one uniform
        batch per site (``n × shots`` draws) and costs ``O(n · chi²)``
        per shot without ever materializing ``2^n`` amplitudes.
        """
        r = as_rng(rng)
        self._warn_if_truncated()
        if self.num_qubits <= DENSE_QUBIT_LIMIT:
            return self.to_statevector().sample(shots, r, qubits=qubits)
        self.canonicalize_to(0)
        shots = int(shots)
        bits = np.empty((shots, self.num_qubits), dtype=np.uint8)
        env = np.ones((shots, 1), dtype=complex)
        for site, tensor in enumerate(self.tensors):
            v0 = env @ tensor[:, 0, :]  # (shots, D_r)
            v1 = env @ tensor[:, 1, :]
            p0 = np.einsum("sd,sd->s", v0.conj(), v0).real
            p1 = np.einsum("sd,sd->s", v1.conj(), v1).real
            prob_one = p1 / (p0 + p1)
            chosen = (r.random(shots) < prob_one).astype(np.uint8)
            bits[:, site] = chosen
            pick = chosen.astype(bool)[:, None]
            env = np.where(pick, v1, v0)
            # Normalize per shot so conditionals stay conditionals.
            env /= np.sqrt(np.where(pick[:, 0], p1, p0))[:, None]
        if qubits is None:
            return bits
        return bits[:, np.asarray(list(qubits), dtype=np.int64)]

    def _warn_if_truncated(self) -> None:
        """Warn (once per state lineage) before sampling a state whose
        cumulative truncation loss exceeds both the configured budget
        and :data:`TRUNCATION_WARNING_THRESHOLD` — the counts about to
        be drawn are approximate, which matters most when the router
        (not the caller) chose this backend."""
        budget = max(self.truncation_threshold, TRUNCATION_WARNING_THRESHOLD)
        if self._truncation_warned or self.truncation_error <= budget:
            return
        self._truncation_warned = True
        # Stable text (no interpolated loss value) so the default
        # warning filter collapses repeats across trajectory groups;
        # the exact loss is on MPSEngine.truncation_error.
        warnings.warn(
            f"sampling a truncated MPS (chi={self.chi}): bond truncation "
            "discarded nonzero weight, so counts are approximate; raise "
            "chi via engine_mode('mps', chi=...) for an exact run",
            UserWarning,
            stacklevel=3,
        )

    # -- observables / conversion ----------------------------------------------

    def expectation_pauli(self, pauli: str, qubits: Sequence[int]) -> float:
        """``⟨ψ| P |ψ⟩`` via the local transfer-matrix sweep.

        With the center inside the Pauli string's site span, the left
        and right environments are exact identities, so only the spanned
        sites are contracted — ``O(span · chi³)``, independent of *n*.
        """
        if len(pauli) != len(qubits):
            raise SimulationError("pauli string and qubit list lengths differ")
        ops: Dict[int, np.ndarray] = {}
        for label, q in zip(pauli.upper(), qubits):
            if label == "I":
                continue
            if label not in _PAULI_2x2:
                raise SimulationError(f"unknown Pauli label {label!r}")
            ops[self._check_qubit(q)] = _PAULI_2x2[label]
        if not ops:
            return 1.0
        a, b = min(ops), max(ops)
        if self.center < a:
            self.canonicalize_to(a)
        elif self.center > b:
            self.canonicalize_to(b)
        env: Optional[np.ndarray] = None
        for site in range(a, b + 1):
            t = self.tensors[site]
            op = ops.get(site)
            ts = t if op is None else np.einsum("st,ltr->lsr", op, t)
            if env is None:
                env = np.einsum("lsr,lsq->rq", t.conj(), ts)
            else:
                env = np.einsum("xy,xsr,ysq->rq", env, t.conj(), ts)
        return float(np.real(np.trace(env)))

    def to_statevector(self) -> StateVector:
        """Contract the chain into a dense :class:`StateVector`
        (little-endian; raises beyond the dense qubit limit)."""
        if self.num_qubits > DENSE_QUBIT_LIMIT:
            raise SimulationError(
                f"cannot densify a {self.num_qubits}-qubit MPS: the dense "
                f"engine caps at {DENSE_QUBIT_LIMIT} qubits"
            )
        psi = np.ones((1, 1), dtype=complex)
        for tensor in self.tensors:
            # index grows little-endian: new_idx = s · 2^site + old_idx
            psi = np.einsum("il,lsr->sir", psi, tensor).reshape(
                2 * psi.shape[0], tensor.shape[2]
            )
        return StateVector(self.num_qubits, data=psi.reshape(-1))

    def __repr__(self) -> str:
        return (
            f"<MPSState {self.num_qubits} qubits, chi {self.chi}, "
            f"max bond {self.max_bond_dimension}, "
            f"trunc {self.truncation_error:.3g}>"
        )


_PAULI_2x2: Dict[str, np.ndarray] = {
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@register_engine
class MPSEngine(ExecutionEngine):
    """Bounded-bond tensor-network backend (any gate, low entanglement).

    Reads the process-global :data:`CHI` / :data:`TRUNCATION_THRESHOLD`
    knobs at construction (``engine_mode("mps", chi=...,
    truncation_threshold=...)`` scopes them), so every trajectory of one
    sampling request shares one truncation contract.
    """

    name = "mps"

    #: From the plan this backend reads the precomputed SWAP-route table
    #: for non-adjacent 2q gates (identical paths to the on-the-fly
    #: shortest-path computation, so arithmetic is unchanged).
    plan_artifacts = ("swap_routes",)

    @classmethod
    def estimate_peak_bytes(cls, circuit: QuantumCircuit) -> int:
        # Every site tensor is at most (chi, 2, chi) complex128; the
        # two-site contraction scratch and the trajectory fork together
        # roughly double that, hence the factor 2 — all under the
        # process-global cap :data:`CHI` active at admission time.
        n = circuit.num_qubits
        return 2 * n * (2 * CHI * CHI * 16)

    def prepare(self, circuit: QuantumCircuit) -> None:
        with _tracing.span(
            "engine.prepare", engine=self.name, qubits=circuit.num_qubits
        ):
            self._state = MPSState(circuit.num_qubits)

    def bind_plan(self, plan) -> None:
        super().bind_plan(plan)
        self._state.routes = plan.swap_routes if plan is not None else None

    def fork(self) -> "MPSEngine":
        # type(self), not MPSEngine: subclassed backends must survive
        # the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._state = self._state.copy()
        dup._plan = self._plan
        return dup

    @property
    def chi(self) -> int:
        """The bond-dimension cap this trajectory runs under."""
        return self._state.chi

    @property
    def truncation_error(self) -> float:
        """Cumulative relative weight discarded by bond truncation."""
        return self._state.truncation_error

    @property
    def max_bond_dimension(self) -> int:
        """Largest bond dimension the state currently carries."""
        return self._state.max_bond_dimension

    def advance(self, ops: Sequence[Instruction]) -> None:
        state = self._state
        with _tracing.span("engine.mps_window", ops=len(ops)) as rec:
            for inst in ops:
                if inst.name in UNITARY_NOOPS:
                    continue
                state.apply_matrix(inst.matrix(), inst.qubits)
            rec.set(
                max_bond=state.max_bond_dimension,
                truncation_error=state.truncation_error,
            )
        _tracing.note_max("max_bond_dimension", state.max_bond_dimension)
        _tracing.note_max("truncation_error", state.truncation_error)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        return inject_into_dense(self._state, instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        return self._state.sample(shots, rng, qubits=qubits)

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        return self._state.measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        self._state.reset(qubit, rng)

    def to_dense(self) -> StateVector:
        return self._state.to_statevector()

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import expectation_mps

        return expectation_mps(hamiltonian, self._state)


def simulate_mps(
    circuit: QuantumCircuit,
    *,
    chi: Optional[int] = None,
    truncation_threshold: Optional[float] = None,
    rng: RandomState = None,
) -> MPSState:
    """Run *circuit*'s unitary part on an MPS, returning the final state.

    The MPS counterpart of ``simulate_statevector``: measurements are
    skipped, resets collapse stochastically using *rng*, barriers and
    delays are no-ops.
    """
    state = MPSState(
        circuit.num_qubits, chi=chi, truncation_threshold=truncation_threshold
    )
    r = as_rng(rng)
    for inst in circuit:
        if inst.name in UNITARY_NOOPS:
            continue
        if inst.name == "reset":
            state.reset(inst.qubits[0], r)
            continue
        state.apply_matrix(inst.matrix(), inst.qubits)
    return state


__all__ = [
    "MPSState",
    "MPSEngine",
    "simulate_mps",
    "is_line_like",
    "CHI",
    "TRUNCATION_THRESHOLD",
    "TRUNCATION_WARNING_THRESHOLD",
    "LINE_RANGE",
]
