"""Segment-granular hybrid (tableau→dense) execution engine.

The highest-value open item after the stabilizer fast path: circuits
with a Clifford *prefix* and a non-Clifford *tail* — GHZ preparation
followed by T-gate layers, QAOA with Clifford mixers, magic-state
benchmarks — previously paid full dense cost for the whole circuit.
:class:`HybridSegmentEngine` runs the maximal Clifford prefix (the first
run :func:`repro.circuits.dag.clifford_segments` reports) on a
stabilizer tableau and only crosses into amplitude land when the first
non-Clifford gate actually arrives.

The payoff compounds in the grouped noise sampler: trajectory forks and
Pauli error injections inside the prefix are ``O(n²)`` tableau bit-ops,
and each group converts *its own* boundary tableau via
:meth:`Tableau.coset_amplitudes` — ``O(2^k · k)`` for a coset of
dimension ``k``, two amplitudes for a GHZ prefix at any width — instead
of copying and replaying a ``2^n`` amplitude vector per group.

Three representations, crossed strictly left to right:

1. **tableau** — while every gate seen so far is Clifford;
2. **sparse amplitudes** (:class:`SparseAmplitudes`) — from the first
   non-Clifford gate; diagonal/permutation tails never grow the
   support, so this regime routinely outlives the whole tail and can be
   *wider than the dense limit*;
3. **dense** (:class:`StateVector`) — once the support outgrows the
   sparse regime (more than 1/8 of the full dimension) or a >2-qubit
   operator appears.

RNG parity: the sampler drives this engine through the same grouped /
per-shot walks as every other backend, and both amplitude
representations invert the same outcome CDF the dense engine does, so
seeded hybrid runs match dense-engine counts to float precision (exact
in practice; pinned by ``tests/test_engines.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import UNITARY_NOOPS
from repro.errors import SimulationError
from repro.simulator.engines.base import ExecutionEngine, register_engine
from repro.simulator.engines.dense import inject_into_dense
from repro.simulator.engines.sparse import SparseAmplitudes
from repro.simulator.engines.tableau import (
    inject_into_tableau,
    sample_tableau_shared,
)
from repro.simulator.noise import QuantumError
from repro.simulator.stabilizer import CosetSupport, Tableau
from repro.simulator.statevector import DENSE_QUBIT_LIMIT, StateVector

#: Cap on sparse support width beyond the dense limit (where densifying
#: is impossible): generous enough for branching tails on ~30-qubit
#: states, small enough to fail fast instead of thrashing.
_WIDE_SPARSE_CAP = 1 << 22


class _HybridPhases:
    """Symbolic names for the engine's representation phases."""

    TABLEAU = "tableau"
    SPARSE = "sparse"
    DENSE = "dense"


@register_engine
class HybridSegmentEngine(ExecutionEngine):
    """Tableau for the Clifford prefix, amplitudes for the tail."""

    name = "hybrid"

    #: From the plan this backend reads the bind-time Clifford boundary:
    #: inside it every instruction is known Clifford, so the prefix walk
    #: skips the per-gate ``clifford_primitives()`` classification.
    plan_artifacts = ("clifford_boundary",)

    @classmethod
    def estimate_peak_bytes(cls, circuit: QuantumCircuit) -> int:
        # At dense widths the engine may densify outright, so the dense
        # peak is the honest bound.  Beyond the dense limit densification
        # is impossible: the peak is the prefix tableau plus the sparse
        # tail at its hard entry cap (index + amplitude per entry).
        from repro.simulator.engines.dense import DenseEngine
        from repro.simulator.engines.tableau import TableauEngine

        n = circuit.num_qubits
        if n <= DENSE_QUBIT_LIMIT:
            return DenseEngine.estimate_peak_bytes(circuit)
        return TableauEngine.estimate_peak_bytes(circuit) + _WIDE_SPARSE_CAP * 24

    def prepare(self, circuit: QuantumCircuit) -> None:
        self._tab: Optional[Tableau] = Tableau(circuit.num_qubits)
        self._sparse: Optional[SparseAmplitudes] = None
        self._dense: Optional[StateVector] = None
        self._shared_support: List[CosetSupport] = []
        # Whether this trajectory's tableau still has the X/Z structure
        # every structure-preserving fork shares (Pauli injections keep
        # it; reset collapses and measurements break it).
        self._structure_shared = True

    @property
    def phase(self) -> str:
        """Current representation: ``tableau``, ``sparse`` or ``dense``."""
        if self._tab is not None:
            return _HybridPhases.TABLEAU
        if self._sparse is not None:
            return _HybridPhases.SPARSE
        return _HybridPhases.DENSE

    def fork(self) -> "HybridSegmentEngine":
        # type(self), not HybridSegmentEngine: subclassed backends must
        # survive the trajectory fork.
        cls = type(self)
        dup = cls.__new__(cls)
        dup.circuit = self.circuit
        dup._tab = self._tab.copy() if self._tab is not None else None
        dup._sparse = self._sparse.copy() if self._sparse is not None else None
        dup._dense = self._dense.copy() if self._dense is not None else None
        dup._shared_support = self._shared_support
        dup._structure_shared = self._structure_shared
        dup._plan = self._plan
        return dup

    # -- representation transitions --------------------------------------------

    def _sparse_cap(self) -> int:
        n = self.circuit.num_qubits
        if n > DENSE_QUBIT_LIMIT:
            return _WIDE_SPARSE_CAP
        # Past 1/8 of the full dimension the coalescing overhead of the
        # sparse form loses to flat dense kernels.
        return (1 << n) >> 3

    def _cross_boundary(self) -> None:
        """Tableau → amplitudes (the segment conversion).

        Structure-preserving trajectories (the grouped sampler's common
        case: forks differing only by Pauli injections) share one
        request-scoped :class:`CosetSupport`, so each group's conversion
        skips rebuilding the coset constraint system and only resolves
        its own sign-dependent offset and phases.

        The coset dimension ``k`` is known from the support *before*
        enumerating ``2^k`` amplitudes, so a boundary state too dense
        for the sparse regime converts straight to a full
        :class:`StateVector` — or fails fast with a clear error beyond
        the dense qubit limit — instead of thrashing through an
        exponential enumeration.
        """
        if self._tab is None:
            return
        support = None
        if self._structure_shared and self._shared_support:
            support = self._shared_support[0]
        if support is None:
            support = self._tab.coset_support()
            if self._structure_shared:
                self._shared_support.append(support)
        if (1 << min(support.dimension, 63)) > max(self._sparse_cap(), 1):
            if self.circuit.num_qubits > DENSE_QUBIT_LIMIT:
                raise SimulationError(
                    f"hybrid execution of this {self.circuit.num_qubits}-qubit "
                    f"circuit reached a segment boundary with coset dimension "
                    f"{support.dimension} — too dense for the sparse regime "
                    f"and beyond the {DENSE_QUBIT_LIMIT}-qubit dense limit"
                )
            indices, amps = self._tab.coset_amplitudes(support)
            self._dense = SparseAmplitudes(
                self._tab.num_qubits, indices, amps
            ).to_statevector()
            self._tab = None
            return
        indices, amps = self._tab.coset_amplitudes(support)
        self._sparse = SparseAmplitudes(self._tab.num_qubits, indices, amps)
        self._tab = None

    def _densify(self) -> None:
        self._cross_boundary()
        if self._sparse is not None:
            if self.circuit.num_qubits > DENSE_QUBIT_LIMIT:
                raise SimulationError(
                    f"hybrid execution of this {self.circuit.num_qubits}-qubit "
                    "circuit outgrew the sparse-amplitude regime and cannot "
                    f"densify beyond the {DENSE_QUBIT_LIMIT}-qubit dense limit"
                )
            self._dense = self._sparse.to_statevector()
            self._sparse = None

    def _amplitude_rep(self):
        """The active amplitude representation (crossing if needed)."""
        self._cross_boundary()
        return self._sparse if self._sparse is not None else self._dense

    # -- protocol --------------------------------------------------------------

    def advance(self, ops: Sequence[Instruction]) -> None:
        for inst in ops:
            if inst.name in UNITARY_NOOPS:
                continue
            if self._tab is not None:
                if inst.clifford_primitives() is not None:
                    self._tab.apply_instruction(inst)
                    continue
                self._cross_boundary()
            self._apply_amplitude_op(inst)

    def advance_span(self, instructions, start: int, stop: int) -> None:
        plan = self._plan
        if plan is not None and self._tab is not None and stop <= plan.clifford_boundary:
            # Plan artifact: the whole window is inside the Clifford
            # prefix, so apply straight to the tableau without
            # re-classifying each gate.  Identical updates to advance()
            # (apply_instruction resolves the same memoized primitives).
            tab = self._tab
            for i in range(start, stop):
                inst = instructions[i]
                if inst.name in UNITARY_NOOPS:
                    continue
                tab.apply_instruction(inst)
            return
        self.advance(instructions[start:stop])

    def _apply_amplitude_op(self, inst: Instruction) -> None:
        if self._sparse is not None:
            if len(inst.qubits) <= 2 and self._sparse.nnz <= self._sparse_cap():
                self._sparse.apply_matrix(inst.matrix(), inst.qubits)
                if self._sparse.nnz > self._sparse_cap():
                    self._densify()
                return
            self._densify()
        self._dense.apply_matrix(inst.matrix(), inst.qubits)

    def inject(
        self, instruction: Instruction, error: QuantumError, term_index: int
    ) -> bool:
        if self._tab is not None:
            preserved = inject_into_tableau(self._tab, instruction, error, term_index)
            self._structure_shared &= preserved
            return preserved
        return inject_into_dense(self._amplitude_rep(), instruction, error, term_index)

    def sample(
        self,
        shots: int,
        rng: np.random.Generator,
        qubits: Optional[Sequence[int]] = None,
        *,
        shares_structure: bool = True,
    ) -> np.ndarray:
        if self._tab is not None:
            # Degenerate all-Clifford case (the router normally sends
            # those to TableauEngine): same shared-support discipline.
            return sample_tableau_shared(
                self._tab,
                self._shared_support,
                shots,
                rng,
                qubits,
                shares_structure=shares_structure,
            )
        return self._amplitude_rep().sample(shots, rng, qubits=qubits)

    def measure(self, qubit: int, rng: np.random.Generator) -> int:
        if self._tab is not None:
            self._structure_shared = False  # collapse rewrites X/Z rows
            return self._tab.measure(qubit, rng)
        return self._amplitude_rep().measure(qubit, rng)

    def reset(self, qubit: int, rng: np.random.Generator) -> None:
        if self._tab is not None:
            self._structure_shared = False  # collapse rewrites X/Z rows
            self._tab.reset(qubit, rng)
        else:
            self._amplitude_rep().reset(qubit, rng)

    def to_dense(self) -> StateVector:
        if self._tab is not None:
            return self._tab.to_statevector()
        if self._sparse is not None:
            return self._sparse.to_statevector()
        return self._dense

    def expectation(self, hamiltonian) -> float:
        from repro.hybrid.observables import (
            expectation_sparse,
            expectation_stabilizer,
            expectation_statevector,
        )

        if self._tab is not None:
            return expectation_stabilizer(hamiltonian, self._tab)
        if self._sparse is not None:
            return expectation_sparse(hamiltonian, self._sparse)
        return expectation_statevector(hamiltonian, self._dense)


__all__ = ["HybridSegmentEngine"]
