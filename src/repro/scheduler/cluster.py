"""Slurm-like cluster scheduler with partitions, backfill, reservations.

The first-level resource manager of the integration: classical batch
jobs run on node partitions; the QPU appears as a one-node ``quantum``
partition whose jobs the :class:`~repro.scheduler.qrm.QuantumResourceManager`
executes; maintenance and calibration slots are *advance reservations*
that block a partition for a window — "it is critical that the center
retains full control over scheduling these maintenance and calibration
slots" (Section 3.2).

Scheduling policy: priority-ordered FIFO with EASY backfill (a lower-
priority job may start early iff it cannot delay the reservation made
for the queue head).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import QueueError, ReservationError, SchedulerError
from repro.scheduler.events import Simulation
from repro.scheduler.jobs import Job, JobState


@dataclass(frozen=True)
class Partition:
    """A named pool of identical nodes."""

    name: str
    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise SchedulerError(f"partition {self.name!r} needs >= 1 node")


@dataclass
class Reservation:
    """An advance reservation blocking *num_nodes* of a partition."""

    partition: str
    start: float
    end: float
    num_nodes: int
    label: str = "reservation"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ReservationError(
                f"reservation {self.label!r} has non-positive duration"
            )

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end

    def overlaps(self, start: float, end: float) -> bool:
        return start < self.end and end > self.start


class ClusterScheduler:
    """Event-driven batch scheduler over one :class:`Simulation`.

    Job execution is abstract: when a job starts, the scheduler
    schedules its completion ``runtime`` seconds later (or kills it at
    the walltime limit).  Quantum jobs are *not* executed here — the
    quantum partition delegates to an attached executor callback, which
    the QRM provides.
    """

    def __init__(
        self,
        sim: Simulation,
        partitions: Sequence[Partition],
        *,
        backfill: bool = True,
    ) -> None:
        if not partitions:
            raise SchedulerError("cluster needs at least one partition")
        self.sim = sim
        self.partitions: Dict[str, Partition] = {p.name: p for p in partitions}
        if len(self.partitions) != len(partitions):
            raise SchedulerError("duplicate partition names")
        self.backfill = bool(backfill)
        self.queue: List[Job] = []
        self.running: Dict[int, Tuple[Job, float]] = {}  # id → (job, expected end)
        self.history: List[Job] = []
        self.reservations: List[Reservation] = []
        self._busy_nodes: Dict[str, int] = {p.name: 0 for p in partitions}
        self._node_seconds_used: Dict[str, float] = {p.name: 0.0 for p in partitions}
        #: optional override executor per partition: job → runtime seconds
        self.executors: Dict[str, Callable[[Job], float]] = {}

    # -- capacity helpers -------------------------------------------------------

    def _reserved_nodes(self, partition: str, start: float, end: float) -> int:
        return sum(
            r.num_nodes
            for r in self.reservations
            if r.partition == partition and r.overlaps(start, end)
        )

    def free_nodes(self, partition: str, start: float, end: float) -> int:
        """Nodes of *partition* free over the whole ``[start, end)``
        window, accounting for running jobs and reservations.

        This is a *forecast*: a running job whose expected end is at or
        before *start* is assumed gone by then (its completion event
        fires no later than *start*).  For the can-it-start-right-now
        check use :meth:`_free_nodes_immediate`, which must not make
        that assumption.
        """
        part = self.partitions[partition]
        running_overlap = sum(
            job.num_nodes
            for job, exp_end in self.running.values()
            if job.partition == partition and exp_end > start
        )
        return part.num_nodes - running_overlap - self._reserved_nodes(
            partition, start, end
        )

    def _free_nodes_immediate(self, partition: str, window_end: float) -> int:
        """Nodes free for a start at the current instant.

        Every job still in ``running`` occupies its nodes — including
        one whose expected end *is* now, since its completion event may
        share the current timestamp but has not fired yet; counting
        those nodes as free would oversubscribe the partition (the
        completion's own schedule pass will start what fits).
        """
        part = self.partitions[partition]
        running_overlap = sum(
            job.num_nodes
            for job, _ in self.running.values()
            if job.partition == partition
        )
        return part.num_nodes - running_overlap - self._reserved_nodes(
            partition, self.sim.now, window_end
        )

    # -- submission / reservations -----------------------------------------------

    def submit(self, job: Job) -> Job:
        if job.partition not in self.partitions:
            raise QueueError(f"unknown partition {job.partition!r}")
        if job.num_nodes > self.partitions[job.partition].num_nodes:
            raise QueueError(
                f"job {job.name!r} wants {job.num_nodes} nodes; partition "
                f"{job.partition!r} has {self.partitions[job.partition].num_nodes}"
            )
        job.mark_submitted(self.sim.now)
        self.queue.append(job)
        self._schedule_pass()
        return job

    def reserve(self, reservation: Reservation) -> Reservation:
        if reservation.partition not in self.partitions:
            raise ReservationError(f"unknown partition {reservation.partition!r}")
        if reservation.num_nodes > self.partitions[reservation.partition].num_nodes:
            raise ReservationError("reservation exceeds partition size")
        self.reservations.append(reservation)
        return reservation

    def reservation_active(self, partition: str, t: Optional[float] = None) -> bool:
        t = self.sim.now if t is None else t
        return any(
            r.partition == partition and r.active_at(t) for r in self.reservations
        )

    # -- the scheduling pass -------------------------------------------------------

    def _schedule_pass(self) -> None:
        """Try to start queued jobs (priority order, EASY backfill)."""
        if not self.queue:
            return
        self.queue.sort(key=lambda j: (-j.priority, j.submitted_at or 0.0, j.job_id))
        now = self.sim.now
        started: List[Job] = []
        shadow: Dict[str, Tuple[float, int]] = {}  # head job's reservation per partition
        for idx, job in enumerate(self.queue):
            window_end = now + job.walltime_limit
            free_now = self._free_nodes_immediate(job.partition, window_end)
            if free_now >= job.num_nodes:
                blocked = False
                if job.partition in shadow:
                    # Backfill check: would this start delay the shadow job?
                    shadow_start, shadow_nodes = shadow[job.partition]
                    if now + job.walltime_limit > shadow_start:
                        free_at_shadow = self.free_nodes(
                            job.partition, shadow_start, shadow_start + 1.0
                        )
                        if free_at_shadow - job.num_nodes < shadow_nodes:
                            blocked = True
                if not blocked:
                    self._start(job)
                    started.append(job)
                    continue
            # Job cannot start now: becomes (or respects) the shadow job.
            if job.partition not in shadow:
                est = self._earliest_start(job)
                shadow[job.partition] = (est, job.num_nodes)
            if not self.backfill:
                # FIFO semantics: nothing later in this partition may jump.
                shadow.setdefault(job.partition, (math.inf, job.num_nodes))
                # Mark the partition closed by using -inf free check below.
                shadow[job.partition] = (now, self.partitions[job.partition].num_nodes + 1)
        for job in started:
            self.queue.remove(job)

    def _earliest_start(self, job: Job) -> float:
        """Estimate when *job* could start, from running-job end times and
        reservation boundaries."""
        candidates = [self.sim.now]
        candidates += [end for _, end in self.running.values()]
        candidates += [r.end for r in self.reservations if r.end > self.sim.now]
        for t in sorted(set(candidates)):
            if (
                self.free_nodes(job.partition, t, t + job.walltime_limit)
                >= job.num_nodes
            ):
                return t
        return math.inf

    def _start(self, job: Job) -> None:
        job.mark_started(self.sim.now)
        executor = self.executors.get(job.partition)
        runtime = job.runtime
        if executor is not None:
            runtime = float(executor(job))
        runtime = min(runtime, job.walltime_limit)
        expected_end = self.sim.now + runtime
        self.running[job.job_id] = (job, expected_end)
        self._node_seconds_used[job.partition] += job.num_nodes * runtime
        killed = runtime >= job.walltime_limit and job.runtime > job.walltime_limit
        incarnation = job.requeue_count

        def finish(sim: Simulation, job=job, killed=killed, incarnation=incarnation) -> None:
            if job.state is not JobState.RUNNING:
                return  # requeued/cancelled while running
            if job.requeue_count != incarnation:
                return  # stale completion event from a pre-requeue start
            self.running.pop(job.job_id, None)
            if killed:
                job.mark_failed(sim.now, "walltime limit exceeded")
            else:
                job.mark_completed(sim.now, job.result)
            self.history.append(job)
            self._schedule_pass()

        self.sim.schedule(expected_end, finish)

    # -- disruption ------------------------------------------------------------------

    def requeue_running(self, partition: str, reason: str) -> List[Job]:
        """Requeue every running job of *partition* (outage handling)."""
        victims = [
            job
            for job, _ in list(self.running.values())
            if job.partition == partition
        ]
        for job in victims:
            self.running.pop(job.job_id, None)
            job.mark_requeued(self.sim.now, reason)
            job.mark_submitted(self.sim.now)
            self.queue.append(job)
        if victims:
            self._schedule_pass()
        return victims

    def kick(self) -> None:
        """External nudge to run a scheduling pass (e.g. reservation ended)."""
        self._schedule_pass()

    # -- metrics ---------------------------------------------------------------------

    def utilization(self, partition: str, horizon: float) -> float:
        """Node-seconds used / node-seconds available over ``[0, horizon]``."""
        part = self.partitions[partition]
        if horizon <= 0:
            return 0.0
        return self._node_seconds_used[partition] / (part.num_nodes * horizon)

    def mean_wait_time(self, partition: Optional[str] = None) -> float:
        waits = [
            j.wait_time
            for j in self.history
            if j.wait_time is not None and (partition is None or j.partition == partition)
        ]
        return float(sum(waits) / len(waits)) if waits else 0.0

    def __repr__(self) -> str:
        return (
            f"<ClusterScheduler {len(self.partitions)} partitions, "
            f"{len(self.queue)} queued, {len(self.running)} running, "
            f"{len(self.history)} done>"
        )


__all__ = ["Partition", "Reservation", "ClusterScheduler"]
