"""Job model shared by the cluster scheduler and the QRM.

One :class:`Job` type covers both classical batch jobs (node counts and
wallclock limits, Slurm-style) and quantum jobs (a compiled circuit and
a shot count).  The state machine is deliberately strict — illegal
transitions raise — because the restart/requeue logic after outages
(Section 4's "more robust job restart tools" user request) depends on
unambiguous job states.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import JobError

_job_ids = itertools.count(1)


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"
    REQUEUED = "requeued"


_LEGAL = {
    JobState.PENDING: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {
        JobState.COMPLETED,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.REQUEUED,
    },
    JobState.REQUEUED: {JobState.PENDING, JobState.CANCELLED},
    JobState.COMPLETED: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
}


@dataclass
class Job:
    """A schedulable unit of work.

    For classical jobs, ``num_nodes``/``walltime_limit``/``runtime``
    drive the cluster simulator.  For quantum jobs (``is_quantum``), the
    ``payload`` carries whatever the QRM needs (circuit, shots) and
    ``runtime`` is estimated from the shot count at submission.
    """

    name: str
    user: str = "user"
    partition: str = "compute"
    num_nodes: int = 1
    walltime_limit: float = 3600.0
    runtime: float = 60.0
    priority: int = 0
    is_quantum: bool = False
    payload: Dict[str, Any] = field(default_factory=dict)

    job_id: int = field(default_factory=lambda: next(_job_ids))
    state: JobState = JobState.PENDING
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    requeue_count: int = 0
    result: Optional[Any] = None
    failure_reason: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise JobError("num_nodes must be >= 1")
        if self.runtime < 0 or self.walltime_limit <= 0:
            raise JobError("runtime must be >= 0 and walltime_limit > 0")

    # -- state machine ---------------------------------------------------------

    def _transition(self, to: JobState) -> None:
        if to not in _LEGAL[self.state]:
            raise JobError(
                f"job {self.job_id} cannot go {self.state.value} → {to.value}"
            )
        self.state = to

    def mark_submitted(self, now: float) -> None:
        if self.submitted_at is not None and self.state is not JobState.REQUEUED:
            raise JobError(f"job {self.job_id} already submitted")
        if self.state is JobState.REQUEUED:
            self._transition(JobState.PENDING)
        self.submitted_at = float(now)

    def mark_started(self, now: float) -> None:
        self._transition(JobState.RUNNING)
        self.started_at = float(now)

    def mark_completed(self, now: float, result: Any = None) -> None:
        self._transition(JobState.COMPLETED)
        self.finished_at = float(now)
        self.result = result

    def mark_failed(self, now: float, reason: str) -> None:
        self._transition(JobState.FAILED)
        self.finished_at = float(now)
        self.failure_reason = reason

    def mark_cancelled(self, now: float, reason: str = "cancelled") -> None:
        self._transition(JobState.CANCELLED)
        self.finished_at = float(now)
        self.failure_reason = reason

    def mark_requeued(self, now: float, reason: str) -> None:
        """Interrupt a running job and return it to the queue (outage
        recovery path; Section 4 users asked for exactly this)."""
        self._transition(JobState.REQUEUED)
        self.started_at = None
        self.finished_at = None
        self.requeue_count += 1
        self.failure_reason = reason

    # -- metrics ---------------------------------------------------------------

    @property
    def wait_time(self) -> Optional[float]:
        if self.submitted_at is None or self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def turnaround(self) -> Optional[float]:
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:
        kind = "Q" if self.is_quantum else "C"
        return (
            f"<Job #{self.job_id} [{kind}] {self.name!r} {self.state.value} "
            f"nodes={self.num_nodes} rt={self.runtime:.0f}s>"
        )


__all__ = ["Job", "JobState"]
