"""Discrete-event simulation core.

Everything time-driven in the stack — the Slurm-like cluster, the QRM,
the outage injector, the 146-day operations run — shares this engine: a
priority queue of ``(time, sequence, callback)`` events with
deterministic FIFO ordering among simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulerError

Callback = Callable[["Simulation"], None]


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulation.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulation:
    """A deterministic discrete-event loop.

    >>> sim = Simulation()
    >>> sim.schedule(5.0, lambda s: print(f"hello at {s.now}"))
    >>> sim.run_until(10.0)
    hello at 5.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, time: float, callback: Callback) -> EventHandle:
        """Schedule *callback* at absolute *time* (must not be in the past)."""
        if time < self.now - 1e-9:
            raise SchedulerError(
                f"cannot schedule event at {time} before now ({self.now})"
            )
        event = _Event(max(time, self.now), next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_in(self, delay: float, callback: Callback) -> EventHandle:
        """Schedule *callback* after *delay* seconds."""
        if delay < 0:
            raise SchedulerError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(self)
            self.events_processed += 1
            return True
        return False

    def run_until(self, end_time: float, *, max_events: int = 10_000_000) -> None:
        """Process events up to *end_time* (inclusive), then set the clock
        to *end_time*."""
        processed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > end_time:
                break
            self.step()
            processed += 1
            if processed > max_events:
                raise SchedulerError(
                    f"run_until exceeded {max_events} events — runaway loop?"
                )
        self.now = max(self.now, float(end_time))

    def run_all(self, *, max_events: int = 10_000_000) -> None:
        """Drain the event queue completely."""
        processed = 0
        while self.step():
            processed += 1
            if processed > max_events:
                raise SchedulerError("run_all exceeded event budget")

    def __repr__(self) -> str:
        return f"<Simulation t={self.now:.1f}s, {len(self._heap)} pending>"


__all__ = ["Simulation", "EventHandle", "Callback"]
