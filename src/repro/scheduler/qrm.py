"""QRM — the Quantum Resource Manager (second-level scheduler).

Figure 2: "QRM operates as a second-level scheduler, incorporating a
Just-In-Time (JIT) LLVM-based compiler and multiple support libraries."

The QRM owns the QPU: it keeps the quantum job queue, JIT-compiles every
program against live QDMI data at the moment it reaches the device (so a
recalibration between submission and execution yields a *better*
placement, not a stale one), executes jobs, and coordinates calibration
slots with the first-level cluster scheduler via advance reservations —
the paper's "exact timing controlled by the HPC center".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.compiler.jit import JITCompiler, Program
from repro.errors import DeviceUnavailableError, JobError, QueueError
from repro.qdmi.devices import QPUQDMIDevice
from repro.qpu.device import (
    FULL_CALIBRATION_DURATION,
    QUICK_CALIBRATION_DURATION,
    DeviceStatus,
    QPUDevice,
    QPUJobResult,
)
from repro.scheduler.cluster import ClusterScheduler, Reservation
from repro.scheduler.jobs import Job, JobState
from repro.telemetry import tracing as _tracing

#: rough per-shot wall-clock estimate used for queue planning (reset-dominated).
_SHOT_ESTIMATE = 350e-6
_JOB_OVERHEAD_ESTIMATE = 2.0

#: name of the QPU's partition in the first-level scheduler.
QUANTUM_PARTITION = "quantum"


@dataclass
class QRMStats:
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_requeued: int = 0
    total_wait_time: float = 0.0
    total_exec_time: float = 0.0
    calibration_slots_opened: int = 0

    @property
    def mean_wait_time(self) -> float:
        done = self.jobs_completed + self.jobs_failed
        return self.total_wait_time / done if done else 0.0


class QuantumResourceManager:
    """Second-level scheduler in front of one :class:`QPUDevice`."""

    def __init__(
        self,
        device: QPUDevice,
        *,
        jit: Optional[JITCompiler] = None,
        cluster: Optional[ClusterScheduler] = None,
        layout_method: str = "noise_adaptive",
    ) -> None:
        self.device = device
        self.jit = jit or JITCompiler(
            QPUQDMIDevice(device), layout_method=layout_method
        )
        self.cluster = cluster
        self.queue: List[Job] = []
        self.history: List[Job] = []
        self.stats = QRMStats()
        if cluster is not None and QUANTUM_PARTITION not in cluster.partitions:
            raise QueueError(
                f"cluster has no {QUANTUM_PARTITION!r} partition; add one "
                "(the QPU appears as a single-node partition)"
            )

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        program: Program,
        *,
        shots: int = 1024,
        name: Optional[str] = None,
        user: str = "user",
        priority: int = 0,
    ) -> Job:
        """Enqueue a quantum job; returns its :class:`Job` handle."""
        if shots < 1:
            raise JobError("shots must be >= 1")
        runtime_estimate = shots * _SHOT_ESTIMATE + _JOB_OVERHEAD_ESTIMATE
        job = Job(
            name=name or getattr(program, "name", "quantum-job"),
            user=user,
            partition=QUANTUM_PARTITION,
            num_nodes=1,
            walltime_limit=max(60.0, 10.0 * runtime_estimate),
            runtime=runtime_estimate,
            priority=priority,
            is_quantum=True,
            payload={"program": program, "shots": int(shots)},
        )
        job.mark_submitted(self.device.time)
        self.queue.append(job)
        return job

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    # -- execution --------------------------------------------------------------

    def run_next(self) -> Optional[Job]:
        """Execute the highest-priority queued job; returns it, or None.

        A device outage mid-queue marks the job requeued rather than
        failed — the "robust job restart" behaviour early users asked
        for (Section 4).
        """
        if not self.queue:
            return None
        self.queue.sort(key=lambda j: (-j.priority, j.submitted_at or 0.0, j.job_id))
        job = self.queue.pop(0)
        started = self.device.time
        job.mark_started(started)
        self.stats.total_wait_time += max(0.0, started - (job.submitted_at or started))
        try:
            artifact = self.jit.compile(job.payload["program"])
            # Discard any report left over from an unrelated traced run:
            # only a report produced by *this* job's execution may attach.
            _tracing.consume_last_report()
            result = self.device.execute(artifact.circuit, shots=job.payload["shots"])
        except DeviceUnavailableError as exc:
            job.mark_requeued(self.device.time, str(exc))
            job.mark_submitted(self.device.time)
            self.queue.append(job)
            self.stats.jobs_requeued += 1
            return job
        except Exception as exc:  # compile/validation errors are user errors
            job.mark_failed(self.device.time, f"{type(exc).__name__}: {exc}")
            self.history.append(job)
            self.stats.jobs_failed += 1
            return job
        job.mark_completed(self.device.time, result)
        job.payload["layout"] = artifact.result.final_layout
        job.payload["calibration_timestamp"] = artifact.calibration_timestamp
        report = _tracing.consume_last_report()
        if report is not None:
            # Flight-recorder report from the execution that just ran
            # (tracing enabled via engine_mode(trace=...)): attach it to
            # the job so GET /jobs/{id} can serve it with the result.
            job.payload["execution_report"] = report.to_dict()
        self.history.append(job)
        self.stats.jobs_completed += 1
        self.stats.total_exec_time += result.duration
        return job

    def drain(self, *, max_jobs: int = 100_000) -> int:
        """Run queued jobs until the queue is empty or the device goes
        unavailable; returns the number of jobs completed/failed."""
        done = 0
        stuck_requeues = 0
        while self.queue and done + stuck_requeues < max_jobs:
            job = self.run_next()
            if job is None:
                break
            if job.state is JobState.REQUEUED or job in self.queue:
                stuck_requeues += 1
                if stuck_requeues > len(self.queue):
                    break  # device down: everything requeues, stop looping
            else:
                done += 1
        return done

    # -- calibration coordination -----------------------------------------------

    def calibration_slot(self, kind: str = "full") -> float:
        """Open a calibration slot *now*: reserve the quantum partition in
        the first-level scheduler (if attached) and run the procedure.

        Returns the slot duration.  This is the paper's coordination
        point: users see the slot as a reservation, not as a mystery
        outage.
        """
        duration = (
            FULL_CALIBRATION_DURATION if kind == "full" else QUICK_CALIBRATION_DURATION
        )
        if self.cluster is not None:
            self.cluster.reserve(
                Reservation(
                    partition=QUANTUM_PARTITION,
                    start=self.cluster.sim.now,
                    end=self.cluster.sim.now + duration,
                    num_nodes=1,
                    label=f"calibration-{kind}",
                )
            )
        self.device.calibrate(kind)
        self.stats.calibration_slots_opened += 1
        return duration

    def idle(self) -> bool:
        """True when no quantum work is queued — the natural moment for a
        calibration slot."""
        return not self.queue and self.device.status is DeviceStatus.ONLINE

    def __repr__(self) -> str:
        return (
            f"<QRM queue={len(self.queue)} done={self.stats.jobs_completed} "
            f"failed={self.stats.jobs_failed} device={self.device.status.value}>"
        )


__all__ = ["QuantumResourceManager", "QRMStats", "QUANTUM_PARTITION"]
