"""Resource management: discrete events, jobs, Slurm-like cluster, QRM."""

from repro.scheduler.cluster import ClusterScheduler, Partition, Reservation
from repro.scheduler.events import EventHandle, Simulation
from repro.scheduler.jobs import Job, JobState
from repro.scheduler.qrm import QUANTUM_PARTITION, QRMStats, QuantumResourceManager
from repro.scheduler.workload import (
    ArrivingJob,
    WorkloadConfig,
    generate_workload,
    submit_workload,
)

__all__ = [
    "ArrivingJob",
    "WorkloadConfig",
    "generate_workload",
    "submit_workload",
    "ClusterScheduler",
    "Partition",
    "Reservation",
    "EventHandle",
    "Simulation",
    "Job",
    "JobState",
    "QUANTUM_PARTITION",
    "QRMStats",
    "QuantumResourceManager",
]
