"""Synthetic batch workloads for scheduler experiments.

Cluster-scheduling results (backfill gains, reservation fragmentation,
quantum-partition interleaving) are only as meaningful as the workload
they are measured on.  This module generates reproducible job streams
with the canonical statistical shape of HPC traces:

* Poisson arrivals;
* log-normal runtimes (heavy right tail);
* power-law-ish node counts biased toward small jobs, with occasional
  wide jobs;
* users over-request walltime by a stochastic factor (the reality that
  makes EASY backfill conservative);
* an optional stream of *quantum* jobs (small, short, one node on the
  ``quantum`` partition) mirroring the paper's early-user mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulerError
from repro.scheduler.jobs import Job
from repro.utils.rng import RandomState, as_rng
from repro.utils.units import HOUR, MINUTE


@dataclass(frozen=True)
class WorkloadConfig:
    """Statistical shape of a generated job stream."""

    arrival_rate: float = 20.0 / HOUR       # jobs per second (Poisson)
    runtime_median: float = 30.0 * MINUTE   # log-normal median
    runtime_sigma: float = 1.0              # log-normal shape
    max_runtime: float = 12.0 * HOUR
    node_choices: Sequence[int] = (1, 1, 1, 2, 2, 4, 8, 16)
    walltime_factor_range: Tuple[float, float] = (1.2, 3.0)
    quantum_fraction: float = 0.0           # fraction of jobs on the QPU
    quantum_shots: int = 1024
    partition: str = "compute"
    users: Sequence[str] = ("alice", "bob", "carol", "dave")

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise SchedulerError("arrival_rate must be positive")
        if not 0.0 <= self.quantum_fraction <= 1.0:
            raise SchedulerError("quantum_fraction must be in [0, 1]")


@dataclass(frozen=True)
class ArrivingJob:
    """A job plus its arrival time."""

    arrival: float
    job: Job


def generate_workload(
    duration: float,
    config: Optional[WorkloadConfig] = None,
    *,
    rng: RandomState = None,
    max_nodes: Optional[int] = None,
) -> List[ArrivingJob]:
    """Generate the arrivals of a *duration*-second window.

    Quantum jobs carry a ``{"shots": …}`` payload and target the
    ``quantum`` partition; the caller (usually a bench wiring a QRM
    executor) provides the program.
    """
    cfg = config or WorkloadConfig()
    r = as_rng(rng)
    out: List[ArrivingJob] = []
    t = 0.0
    i = 0
    while True:
        t += float(r.exponential(1.0 / cfg.arrival_rate))
        if t >= duration:
            break
        is_quantum = r.random() < cfg.quantum_fraction
        user = str(r.choice(list(cfg.users)))
        if is_quantum:
            runtime = float(
                min(cfg.max_runtime, cfg.quantum_shots * 350e-6 + 2.0)
            )
            job = Job(
                name=f"qjob{i}",
                user=user,
                partition="quantum",
                num_nodes=1,
                runtime=runtime,
                walltime_limit=max(60.0, runtime * 5.0),
                is_quantum=True,
                payload={"shots": cfg.quantum_shots},
            )
        else:
            runtime = float(
                min(
                    cfg.max_runtime,
                    cfg.runtime_median
                    * np.exp(r.normal(0.0, cfg.runtime_sigma)),
                )
            )
            nodes = int(r.choice(list(cfg.node_choices)))
            if max_nodes is not None:
                nodes = min(nodes, max_nodes)
            factor = float(r.uniform(*cfg.walltime_factor_range))
            job = Job(
                name=f"job{i}",
                user=user,
                partition=cfg.partition,
                num_nodes=nodes,
                runtime=runtime,
                walltime_limit=runtime * factor,
            )
        out.append(ArrivingJob(arrival=t, job=job))
        i += 1
    return out


def submit_workload(cluster, arrivals: Sequence[ArrivingJob]) -> List[Job]:
    """Schedule each arrival's submission into the cluster's simulation."""
    jobs = [a.job for a in arrivals]
    for arriving in arrivals:
        cluster.sim.schedule(
            arriving.arrival,
            lambda sim, job=arriving.job: cluster.submit(job),
        )
    return jobs


__all__ = ["WorkloadConfig", "ArrivingJob", "generate_workload", "submit_workload"]
