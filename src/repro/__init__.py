"""repro — an HPC+QC integration stack.

A full-stack reproduction of *"First Practical Experiences Integrating
Quantum Computers with HPC Resources: A Case Study With a 20-qubit
Superconducting Quantum Computer"* (SFWM @ SC 2025).

Layer map (bottom-up):

========================  ====================================================
:mod:`repro.circuits`     circuit IR, gate library, symbolic parameters
:mod:`repro.simulator`    state-vector engine, noise channels, shot sampler
:mod:`repro.qpu`          20-qubit device model: topology, drift, executor
:mod:`repro.transpiler`   placement, routing, native PRX/CZ synthesis
:mod:`repro.compiler`     MLIR-like multi-dialect compiler + QDMI-driven JIT
:mod:`repro.qdmi`         device-management query interface
:mod:`repro.telemetry`    DCDB-style metric store, plugins, health analytics
:mod:`repro.calibration`  GHZ health checks, automated recalibration controller
:mod:`repro.scheduler`    discrete events, Slurm-like cluster, QRM
:mod:`repro.middleware`   MQSS client (REST + HPC paths), front-end adapters
:mod:`repro.facility`     site survey, power, cooling, network, cryostat, outage
:mod:`repro.ops`          146-day operations simulation, user onboarding
:mod:`repro.hybrid`       VQE, QAOA, observables, optimizers
========================  ====================================================

Quickstart::

    from repro import QPUDevice, QuantumResourceManager, MQSSClient
    from repro.circuits import ghz_circuit

    device = QPUDevice(seed=7)
    client = MQSSClient(QuantumResourceManager(device), context="hpc")
    counts = client.run(ghz_circuit(5), shots=1024)
"""

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.middleware import MQSSClient
from repro.qpu import QPUDevice, Topology
from repro.scheduler import QuantumResourceManager
from repro.simulator import Counts

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "ghz_circuit",
    "MQSSClient",
    "QPUDevice",
    "Topology",
    "QuantumResourceManager",
    "Counts",
    "__version__",
]
