"""Unit constants and formatting helpers.

The stack uses SI base units internally: seconds for time, hertz for
frequency, watts for power, kelvin for temperature, tesla for magnetic
field, bits/second for data rate.  The constants here exist so that
configuration code reads like the paper ("full recalibration takes
``100 * MINUTE``", "passive reset of ``300 * MICROSECOND``").
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------
NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY

# -- frequency -------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# -- power -----------------------------------------------------------------
MILLIWATT = 1e-3
KILOWATT = 1e3
MEGAWATT = 1e6

# -- data ------------------------------------------------------------------
KBIT = 1e3
MBIT = 1e6
GBIT = 1e9
BYTE = 8.0  # bits

# -- magnetic field --------------------------------------------------------
MICROTESLA = 1e-6

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "µ"),
    (1e-9, "n"),
    (1e-12, "p"),
]


def format_si(value: float, unit: str, digits: int = 3) -> str:
    """Format *value* with an SI prefix, e.g. ``format_si(533e3, 'bit/s')``
    → ``'533 kbit/s'``."""
    if value == 0:
        return f"0 {unit}"
    mag = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if mag >= factor:
            scaled = value / factor
            return f"{scaled:.{digits}g} {prefix}{unit}"
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{digits}g} {prefix}{unit}"


def format_duration(seconds: float) -> str:
    """Human-readable duration: ``format_duration(2.5 * DAY)`` → ``'2d 12h'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return format_si(seconds, "s")
    if seconds < 60:
        return f"{seconds:.3g}s"
    parts: list[str] = []
    remaining = seconds
    for span, label in ((DAY, "d"), (HOUR, "h"), (MINUTE, "m")):
        if remaining >= span:
            whole = int(remaining // span)
            parts.append(f"{whole}{label}")
            remaining -= whole * span
        if len(parts) == 2:
            return " ".join(parts)
    if remaining >= 1 and len(parts) < 2:
        parts.append(f"{int(round(remaining))}s")
    return " ".join(parts) if parts else "0s"


def dbm_to_watt(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10 ** (dbm / 10.0) * MILLIWATT


def watt_to_dbm(watt: float) -> float:
    """Convert a power level in watts to dBm."""
    import math

    if watt <= 0:
        raise ValueError("power must be positive to express in dBm")
    return 10.0 * math.log10(watt / MILLIWATT)


__all__ = [
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "KHZ",
    "MHZ",
    "GHZ",
    "MILLIWATT",
    "KILOWATT",
    "MEGAWATT",
    "KBIT",
    "MBIT",
    "GBIT",
    "BYTE",
    "MICROTESLA",
    "format_si",
    "format_duration",
    "dbm_to_watt",
    "watt_to_dbm",
]
