"""Deterministic random-number plumbing.

Everything stochastic in the stack (shot sampling, parameter drift,
environmental sensors, scheduler workloads) accepts a ``seed`` that is
either an ``int``, ``None`` or an already-constructed NumPy generator.
Components that own several independent stochastic processes derive
*child* generators with :func:`child_rng` so that adding one more draw in
one process never perturbs another — the property that makes long
operations simulations (the 146-day run of Figure 4) reproducible and
debuggable.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

#: Anything accepted where randomness is needed.
RandomState = Union[None, int, np.random.Generator]


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing a generator returns it unchanged (shared stream); an ``int``
    creates a fresh deterministic stream; ``None`` creates an OS-seeded
    stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _stable_hash(part: object) -> int:
    """64-bit process-independent hash of *part*'s string form."""
    digest = hashlib.sha256(str(part).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def child_rng(parent: RandomState, *key: object) -> np.random.Generator:
    """Derive an independent child generator from *parent* and a *key*.

    The key (any hashable objects, typically strings) namespaces the
    child: ``child_rng(7, "drift", 3)`` always yields the same stream,
    and streams with different keys are statistically independent.
    """
    if isinstance(parent, np.random.Generator):
        # Spawn from the generator's own state; unique per call order.
        return parent.spawn(1)[0]
    base = 0 if parent is None else int(parent)
    mix = base & 0xFFFFFFFFFFFFFFFF
    for part in key:
        # Builtin hash() is salted per process (PYTHONHASHSEED), which
        # would break cross-run reproducibility — use a stable digest.
        h = _stable_hash(part)
        # splitmix64-style mixing keeps children decorrelated.
        mix = (mix ^ h) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
        mix = (mix ^ (mix >> 31)) & 0xFFFFFFFFFFFFFFFF
    return np.random.default_rng(mix)


def spawn_many(parent: RandomState, prefix: str, n: int) -> list[np.random.Generator]:
    """Create *n* independent child generators keyed ``prefix/0..n-1``."""
    return [child_rng(parent, prefix, i) for i in range(n)]


__all__ = ["RandomState", "as_rng", "child_rng", "spawn_many"]
