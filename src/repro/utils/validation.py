"""Small argument-validation helpers used across the stack.

They raise :class:`ValueError`/:class:`IndexError` with messages that name
the offending argument, which keeps call-site code free of boilerplate.
"""

from __future__ import annotations

from typing import Sequence


def check_probability(value: float, name: str = "probability") -> float:
    """Validate ``0 <= value <= 1`` and return it as ``float``."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return v


def check_unit_interval(value: float, name: str = "value") -> float:
    """Alias of :func:`check_probability` with a neutral message."""
    return check_probability(value, name)


def check_positive(value: float, name: str = "value", strict: bool = True) -> float:
    """Validate positivity (strict by default) and return ``float(value)``."""
    v = float(value)
    if strict and not v > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_index(index: int, size: int, name: str = "index") -> int:
    """Validate ``0 <= index < size`` and return ``int(index)``."""
    i = int(index)
    if not 0 <= i < size:
        raise IndexError(f"{name} {index!r} out of range for size {size}")
    return i


def check_distinct(indices: Sequence[int], name: str = "qubits") -> None:
    """Validate that *indices* contains no duplicates."""
    if len(set(indices)) != len(indices):
        raise ValueError(f"{name} must be distinct, got {tuple(indices)!r}")


__all__ = [
    "check_probability",
    "check_unit_interval",
    "check_positive",
    "check_index",
    "check_distinct",
]
