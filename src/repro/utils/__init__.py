"""Shared utilities: RNG plumbing, units, validation and small math helpers."""

from repro.utils.rng import RandomState, as_rng, child_rng
from repro.utils.units import (
    GHZ,
    HOUR,
    KHZ,
    MHZ,
    MICROSECOND,
    MILLISECOND,
    MINUTE,
    NANOSECOND,
    DAY,
    WEEK,
    dbm_to_watt,
    format_duration,
    format_si,
    watt_to_dbm,
)
from repro.utils.validation import (
    check_index,
    check_positive,
    check_probability,
    check_unit_interval,
)

__all__ = [
    "RandomState",
    "as_rng",
    "child_rng",
    "GHZ",
    "MHZ",
    "KHZ",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "dbm_to_watt",
    "watt_to_dbm",
    "format_si",
    "format_duration",
    "check_index",
    "check_positive",
    "check_probability",
    "check_unit_interval",
]
