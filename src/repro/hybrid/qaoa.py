"""QAOA for MaxCut — the combinatorial-optimization workload.

The paper's introduction names combinatorial optimization among the
workloads motivating HPC+QC, and its early users benchmarked the
travelling salesperson problem on the device (Bentellis et al., cited).
MaxCut-QAOA is the canonical member of that family and exercises the
same loop: parameterized circuit, counts-based cost estimation,
classical outer optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.errors import ReproError
from repro.hybrid.optimizers import OptimizationResult, spsa_minimize
from repro.simulator.counts import Counts
from repro.utils.rng import RandomState, as_rng

RunCircuit = Callable[[QuantumCircuit, int], Counts]


def cut_value(graph: nx.Graph, bits: str) -> int:
    """Cut size of assignment *bits* (bit i = partition of node i;
    bitstring is little-endian: rightmost char is node 0)."""
    n = graph.number_of_nodes()
    if len(bits) != n:
        raise ReproError(f"bitstring width {len(bits)} != {n} nodes")
    side = [int(bits[n - 1 - i]) for i in range(n)]
    return sum(1 for u, v in graph.edges if side[u] != side[v])


def max_cut_brute_force(graph: nx.Graph) -> Tuple[int, str]:
    """Exact optimum by enumeration (≤ 20 nodes)."""
    n = graph.number_of_nodes()
    if n > 20:
        raise ReproError("brute force limited to 20 nodes")
    best_val, best_bits = -1, ""
    for x in range(1 << n):
        bits = format(x, f"0{n}b")
        val = cut_value(graph, bits)
        if val > best_val:
            best_val, best_bits = val, bits
    return best_val, best_bits


def qaoa_circuit(
    graph: nx.Graph, p: int = 1
) -> Tuple[QuantumCircuit, List[Parameter]]:
    """The depth-*p* QAOA template for MaxCut on *graph*.

    Cost layers use RZZ on every edge (native-decomposable), mixer
    layers RX on every node.  Parameters ordered γ₁, β₁, γ₂, β₂, …
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise ReproError("QAOA needs at least 2 nodes")
    if set(graph.nodes) != set(range(n)):
        raise ReproError("graph nodes must be 0..n-1")
    qc = QuantumCircuit(n, name=f"qaoa-p{p}")
    params: List[Parameter] = []
    for q in range(n):
        qc.h(q)
    for layer in range(p):
        gamma = Parameter(f"γ[{layer}]")
        beta = Parameter(f"β[{layer}]")
        params.extend([gamma, beta])
        for u, v in graph.edges:
            qc.rzz(gamma, u, v)
        for q in range(n):
            qc.rx(beta * 2.0, q)
    qc.measure_all()
    return qc, params


@dataclass(frozen=True)
class QAOAResult:
    """Converged QAOA outcome."""

    best_bits: str
    best_cut: int
    optimal_cut: Optional[int]
    expected_cut: float
    parameters: np.ndarray
    optimizer: OptimizationResult

    @property
    def approximation_ratio(self) -> Optional[float]:
        if self.optimal_cut in (None, 0):
            return None
        return self.best_cut / self.optimal_cut


class QAOA:
    """MaxCut-QAOA driver over a pluggable executor."""

    def __init__(
        self,
        graph: nx.Graph,
        run_circuit: RunCircuit,
        *,
        p: int = 1,
        shots: int = 1024,
    ) -> None:
        self.graph = graph
        self.run_circuit = run_circuit
        self.template, self.parameters = qaoa_circuit(graph, p)
        self.shots = int(shots)

    def expected_cut(self, values: Sequence[float]) -> float:
        """Mean cut value of the sampled distribution at *values*."""
        bound = self.template.bind(
            dict(zip(self.parameters, map(float, values)))
        )
        counts = self.run_circuit(bound, self.shots)
        total, shots = 0.0, counts.shots
        for bits, c in counts.items():
            total += cut_value(self.graph, bits) * c
        return total / shots

    def minimize(
        self,
        *,
        iterations: int = 60,
        rng: RandomState = None,
        compare_exact: bool = True,
    ) -> QAOAResult:
        r = as_rng(rng)
        x0 = r.uniform(0.1, 0.8, size=len(self.parameters))
        opt = spsa_minimize(
            lambda x: -self.expected_cut(x), x0, iterations=iterations, rng=r
        )
        bound = self.template.bind(dict(zip(self.parameters, opt.x)))
        counts = self.run_circuit(bound, self.shots * 4)
        best_bits = max(counts, key=lambda b: (cut_value(self.graph, b), counts[b]))
        optimal = (
            max_cut_brute_force(self.graph)[0]
            if compare_exact and self.graph.number_of_nodes() <= 16
            else None
        )
        return QAOAResult(
            best_bits=best_bits,
            best_cut=cut_value(self.graph, best_bits),
            optimal_cut=optimal,
            expected_cut=-opt.fun,
            parameters=np.asarray(opt.x),
            optimizer=opt,
        )


__all__ = [
    "cut_value",
    "max_cut_brute_force",
    "qaoa_circuit",
    "QAOA",
    "QAOAResult",
]
