"""Variational Quantum Eigensolver — the tight-loop workload.

Section 2.6: the accelerator mode "allow[s] quantum operations to be
executed within a tightly-coupled, low-latency loop.  Such a model is
essential for hybrid quantum-classical algorithms such as the
Variational Quantum Eigensolver (VQE)."

:class:`VQE` drives that loop: a parameterized ansatz (built once, bound
per iteration — the symbolic-parameter machinery exists for exactly
this), Hamiltonian expectation estimation from counts, and SPSA/Nelder–
Mead optimization.  The executor is pluggable: the MQSS client for the
full-stack path, the noiseless sampler for algorithm tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.errors import ReproError
from repro.hybrid.observables import (
    PauliSum,
    estimate_expectation,
    expectation_statevector,
)
from repro.hybrid.optimizers import (
    OptimizationResult,
    nelder_mead_minimize,
    spsa_minimize,
)
from repro.simulator.counts import Counts
from repro.utils.rng import RandomState

RunCircuit = Callable[[QuantumCircuit, int], Counts]
"""Executor signature: (bound circuit with measurements, shots) → counts."""


def hardware_efficient_ansatz(
    num_qubits: int, depth: int = 2, *, entangler: str = "cz"
) -> Tuple[QuantumCircuit, List[Parameter]]:
    """The transmon-friendly layered ansatz: RY–RZ rotations on every
    qubit, nearest-neighbour CZ entanglers between layers.

    Returns ``(template, parameters)`` with parameters ordered layer by
    layer, qubit by qubit (ry then rz).
    """
    if num_qubits < 1 or depth < 1:
        raise ReproError("ansatz needs num_qubits >= 1 and depth >= 1")
    qc = QuantumCircuit(num_qubits, name=f"hea{num_qubits}x{depth}")
    params: List[Parameter] = []
    for layer in range(depth):
        for q in range(num_qubits):
            ry = Parameter(f"θ[{layer},{q},ry]")
            rz = Parameter(f"θ[{layer},{q},rz]")
            params.extend([ry, rz])
            qc.ry(ry, q)
            qc.rz(rz, q)
        if num_qubits >= 2 and layer < depth - 1:
            for q in range(num_qubits - 1):
                qc.append(entangler, [q, q + 1])
    return qc, params


@dataclass(frozen=True)
class VQEResult:
    """Converged VQE outcome."""

    energy: float
    parameters: np.ndarray
    optimizer: OptimizationResult
    exact_energy: Optional[float]
    iterations_history: Tuple[float, ...]

    @property
    def error_to_exact(self) -> Optional[float]:
        if self.exact_energy is None:
            return None
        return self.energy - self.exact_energy


class VQE:
    """The hybrid eigensolver.

    Parameters
    ----------
    hamiltonian:
        Target observable.
    run_circuit:
        Executor callable.  For the full stack pass
        ``lambda qc, shots: client.run(qc, shots=shots)``.
    ansatz:
        Optional ``(template, parameters)``; defaults to the
        hardware-efficient ansatz of matching width.
    shots:
        Shots per expectation-estimation circuit.
    """

    def __init__(
        self,
        hamiltonian: PauliSum,
        run_circuit: RunCircuit,
        *,
        ansatz: Optional[Tuple[QuantumCircuit, List[Parameter]]] = None,
        depth: int = 2,
        shots: int = 1024,
    ) -> None:
        self.hamiltonian = hamiltonian
        self.run_circuit = run_circuit
        n = max(1, hamiltonian.num_qubits)
        self.template, self.parameters = ansatz or hardware_efficient_ansatz(n, depth)
        if self.template.num_qubits < n:
            raise ReproError(
                f"ansatz has {self.template.num_qubits} qubits; "
                f"Hamiltonian needs {n}"
            )
        self.shots = int(shots)
        self.energy_evaluations = 0

    # -- the objective -------------------------------------------------------

    def energy(self, values: Sequence[float]) -> float:
        """⟨H⟩ at one parameter vector (one tight-loop iteration)."""
        binding = dict(zip(self.parameters, map(float, values)))
        bound = self.template.bind(binding)
        self.energy_evaluations += 1
        return estimate_expectation(
            self.hamiltonian, self.run_circuit, bound, shots=self.shots
        )

    def energy_exact(self, values: Sequence[float]) -> float:
        """Shot-noise-free ⟨H⟩ via direct state-vector evaluation.

        One ansatz simulation plus the grouped diagonal expectation path
        — no measurement circuits, no sampling.  Used for landscape
        validation and by the perf harness's VQE-iteration benchmark.
        """
        from repro.simulator.statevector import simulate_statevector

        binding = dict(zip(self.parameters, map(float, values)))
        bound = self.template.bind(binding)
        self.energy_evaluations += 1
        return expectation_statevector(
            self.hamiltonian, simulate_statevector(bound)
        )

    # -- optimization ----------------------------------------------------------

    def minimize(
        self,
        *,
        optimizer: str = "spsa",
        iterations: int = 80,
        initial: Optional[Sequence[float]] = None,
        rng: RandomState = None,
        compare_exact: bool = True,
    ) -> VQEResult:
        """Run the full hybrid loop; returns the converged result."""
        from repro.utils.rng import as_rng

        r = as_rng(rng)
        x0 = (
            np.asarray(initial, dtype=float)
            if initial is not None
            else r.uniform(-0.4, 0.4, size=len(self.parameters))
        )
        if optimizer == "spsa":
            opt = spsa_minimize(
                self.energy, x0, iterations=iterations, rng=r
            )
        elif optimizer == "nelder-mead":
            opt = nelder_mead_minimize(
                self.energy, x0, max_evaluations=iterations * 4
            )
        else:
            raise ReproError(f"unknown optimizer {optimizer!r}")
        final_energy = self.energy(opt.x)
        exact = None
        if compare_exact and self.hamiltonian.num_qubits <= 10:
            exact = self.hamiltonian.exact_ground_energy()
        return VQEResult(
            energy=final_energy,
            parameters=np.asarray(opt.x),
            optimizer=opt,
            exact_energy=exact,
            iterations_history=opt.history,
        )


__all__ = ["VQE", "VQEResult", "hardware_efficient_ansatz", "RunCircuit"]
