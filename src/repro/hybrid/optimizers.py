"""Classical optimizers for the hybrid loop.

Shot-sampled energies are noisy, so the workhorse is SPSA (simultaneous
perturbation stochastic approximation) — two evaluations per iteration
regardless of dimension and robust to sampling noise.  A Nelder–Mead
wrapper around SciPy serves as the deterministic baseline for noiseless
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as sciopt

from repro.errors import ReproError
from repro.utils.rng import RandomState, as_rng

Objective = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a classical optimization run."""

    x: np.ndarray
    fun: float
    iterations: int
    evaluations: int
    history: Tuple[float, ...]  # best-so-far objective per iteration

    def __repr__(self) -> str:
        return (
            f"<OptimizationResult f={self.fun:.6f} after {self.iterations} iters, "
            f"{self.evaluations} evals>"
        )


@dataclass(frozen=True)
class SPSAConfig:
    """Standard SPSA gain schedule (Spall's guidelines)."""

    a: float = 1.0
    c: float = 0.15
    alpha: float = 0.602
    gamma: float = 0.101
    stability: float = 10.0   # the "A" offset in the a_k schedule


def spsa_minimize(
    objective: Objective,
    x0: Sequence[float],
    *,
    iterations: int = 100,
    config: SPSAConfig = SPSAConfig(),
    rng: RandomState = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> OptimizationResult:
    """Minimize a noisy objective with SPSA.

    Tracks the best parameters *seen* (re-evaluated objective values are
    noisy, so the running best uses the perturbation-pair average as its
    estimate).
    """
    if iterations < 1:
        raise ReproError("iterations must be >= 1")
    r = as_rng(rng)
    x = np.asarray(x0, dtype=float).copy()
    best_x = x.copy()
    best_f = float("inf")
    history: List[float] = []
    evals = 0
    for k in range(iterations):
        a_k = config.a / (k + 1 + config.stability) ** config.alpha
        c_k = config.c / (k + 1) ** config.gamma
        delta = r.choice([-1.0, 1.0], size=x.shape)
        f_plus = float(objective(x + c_k * delta))
        f_minus = float(objective(x - c_k * delta))
        evals += 2
        gradient = (f_plus - f_minus) / (2.0 * c_k) * delta
        x = x - a_k * gradient
        estimate = 0.5 * (f_plus + f_minus)
        if estimate < best_f:
            best_f = estimate
            best_x = x.copy()
        history.append(best_f)
        if callback is not None:
            callback(k, x, estimate)
    return OptimizationResult(
        x=best_x,
        fun=best_f,
        iterations=iterations,
        evaluations=evals,
        history=tuple(history),
    )


def nelder_mead_minimize(
    objective: Objective,
    x0: Sequence[float],
    *,
    max_evaluations: int = 400,
    xatol: float = 1e-4,
    fatol: float = 1e-6,
) -> OptimizationResult:
    """Deterministic simplex baseline (SciPy's Nelder–Mead)."""
    history: List[float] = []
    best = [float("inf")]

    def wrapped(x: np.ndarray) -> float:
        f = float(objective(np.asarray(x, dtype=float)))
        best[0] = min(best[0], f)
        history.append(best[0])
        return f

    res = sciopt.minimize(
        wrapped,
        np.asarray(x0, dtype=float),
        method="Nelder-Mead",
        options={"maxfev": max_evaluations, "xatol": xatol, "fatol": fatol},
    )
    return OptimizationResult(
        x=np.asarray(res.x, dtype=float),
        fun=float(res.fun),
        iterations=int(res.nit),
        evaluations=int(res.nfev),
        history=tuple(history),
    )


__all__ = [
    "OptimizationResult",
    "SPSAConfig",
    "spsa_minimize",
    "nelder_mead_minimize",
]
