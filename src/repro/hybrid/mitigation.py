"""Measurement error mitigation.

Section 4 of the paper: users were taught "how to implement error
mitigation methods tailored to the machine".  On a readout-dominated
device (the model's largest error channel, as on the real machine) the
highest-value technique is measurement-error mitigation:

1. **calibrate**: prepare |0…0⟩ and |1…1⟩ (and optionally per-qubit
   states), measure, and fit a per-qubit confusion matrix;
2. **mitigate**: apply the inverted tensor-product confusion matrix to
   measured histograms, clipping and renormalizing to the probability
   simplex.

The tensored (per-qubit) model keeps inversion O(n·2ⁿ) → applied
qubit-wise it is O(n·shots) on the histogram support, fine for 20
qubits.  Zero-noise extrapolation over gate-folding is included as the
complementary gate-error technique.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import ReproError
from repro.simulator.counts import Counts

RunCircuit = Callable[[QuantumCircuit, int], Counts]


@dataclass(frozen=True)
class ReadoutCalibration:
    """Fitted per-qubit confusion matrices.

    ``matrices[q][measured, true]`` is the probability of reading
    *measured* when qubit *q* was prepared in *true*.
    """

    matrices: Tuple[np.ndarray, ...]

    @property
    def num_qubits(self) -> int:
        return len(self.matrices)

    def mean_assignment_fidelity(self) -> float:
        return float(
            np.mean([0.5 * (m[0, 0] + m[1, 1]) for m in self.matrices])
        )


def calibrate_readout(
    run_circuit: RunCircuit, num_qubits: int, *, shots: int = 2048
) -> ReadoutCalibration:
    """Fit per-qubit confusion matrices from |0…0⟩ and |1…1⟩ preparations.

    Two circuits suffice for the *tensored* model because each qubit's
    confusion is estimated from its own marginal.
    """
    if num_qubits < 1:
        raise ReproError("need at least one qubit")
    zeros = QuantumCircuit(num_qubits, name="mitigation-cal-0")
    zeros.measure_all()
    ones = QuantumCircuit(num_qubits, name="mitigation-cal-1")
    for q in range(num_qubits):
        ones.x(q)
    ones.measure_all()
    counts0 = run_circuit(zeros, shots)
    counts1 = run_circuit(ones, shots)
    matrices: List[np.ndarray] = []
    for q in range(num_qubits):
        p1_given0 = counts0.marginal([q]).probabilities().get("1", 0.0)
        p0_given1 = counts1.marginal([q]).probabilities().get("0", 0.0)
        matrices.append(
            np.array(
                [[1.0 - p1_given0, p0_given1], [p1_given0, 1.0 - p0_given1]]
            )
        )
    return ReadoutCalibration(tuple(matrices))


def mitigate_counts(
    counts: Counts, calibration: ReadoutCalibration
) -> Dict[str, float]:
    """Apply inverted confusion matrices to a histogram.

    Returns a quasi-probability table clipped and renormalized to the
    simplex.  Works on the histogram's support only, so it scales with
    the number of *observed* outcomes, not 2ⁿ.
    """
    n = counts.num_bits
    if calibration.num_qubits < n:
        raise ReproError(
            f"calibration covers {calibration.num_qubits} qubits, counts have {n}"
        )
    inverses = []
    for q in range(n):
        m = calibration.matrices[q]
        det = float(np.linalg.det(m))
        if abs(det) < 1e-6:
            raise ReproError(
                f"confusion matrix of qubit {q} is singular (fidelity ~50%)"
            )
        inverses.append(np.linalg.inv(m))
    probs = counts.probabilities()
    support = list(probs)
    vec = np.array([probs[k] for k in support])
    # Apply A⁻¹ = ⊗ A_q⁻¹ restricted to the support: build the support-
    # to-support transfer and the leakage to unobserved strings is
    # reabsorbed by the final renormalization (standard practice).
    keys_bits = np.array(
        [[int(k[n - 1 - q]) for q in range(n)] for k in support]
    )  # (m, n): column q = bit of qubit q
    out = np.zeros(len(support))
    for i, row_bits in enumerate(keys_bits):
        weights = np.ones(len(support))
        for q in range(n):
            col = keys_bits[:, q]
            weights = weights * inverses[q][row_bits[q], col]
        out[i] = float(weights @ vec)
    out = np.clip(out, 0.0, None)
    total = out.sum()
    if total <= 0:
        raise ReproError("mitigation produced an empty distribution")
    out = out / total
    return {k: float(p) for k, p in zip(support, out) if p > 1e-12}


def mitigated_expectation_z(
    counts: Counts, calibration: ReadoutCalibration, bits: Optional[Sequence[int]] = None
) -> float:
    """Readout-mitigated ⟨Z…Z⟩ over the listed classical bits."""
    table = mitigate_counts(counts, calibration)
    use = list(range(counts.num_bits)) if bits is None else list(bits)
    acc = 0.0
    n = counts.num_bits
    for key, p in table.items():
        parity = sum(int(key[n - 1 - b]) for b in use) & 1
        acc += (-1.0 if parity else 1.0) * p
    return acc


# ---------------------------------------------------------------------------
# zero-noise extrapolation
# ---------------------------------------------------------------------------


def fold_circuit(circuit: QuantumCircuit, scale: int) -> QuantumCircuit:
    """Global unitary folding: ``U → U (U† U)^k`` with ``scale = 2k + 1``.

    Only odd integer scales are supported (the standard digital-ZNE
    ladder 1, 3, 5, …).  Measurements are re-appended at the end.
    """
    if scale < 1 or scale % 2 == 0:
        raise ReproError(f"fold scale must be an odd positive integer, got {scale}")
    body = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    measures: List = []
    for inst in circuit:
        if inst.name == "measure":
            measures.append(inst)
        elif inst.name == "barrier":
            continue
        else:
            body.append_instruction(inst)
    folded = body.copy(name=f"{circuit.name}-fold{scale}")
    inverse = body.inverse()
    for _ in range((scale - 1) // 2):
        folded.compose(inverse)
        folded.compose(body)
    for inst in measures:
        folded.measure(inst.qubits[0], inst.clbits[0])
    return folded


def zne_expectation(
    circuit: QuantumCircuit,
    run_circuit: RunCircuit,
    observable_bits: Sequence[int],
    *,
    scales: Sequence[int] = (1, 3, 5),
    shots: int = 2048,
    calibration: Optional[ReadoutCalibration] = None,
) -> Tuple[float, Dict[int, float]]:
    """Zero-noise-extrapolated ⟨Z…Z⟩ via linear (Richardson) fit.

    Returns ``(extrapolated value, {scale: measured value})``.  Optional
    readout mitigation composes with the gate-noise extrapolation.
    """
    measured: Dict[int, float] = {}
    for scale in scales:
        folded = fold_circuit(circuit, scale)
        counts = run_circuit(folded, shots)
        if calibration is not None:
            measured[scale] = mitigated_expectation_z(
                counts, calibration, observable_bits
            )
        else:
            measured[scale] = counts.expectation_z(observable_bits)
    xs = np.array(sorted(measured))
    ys = np.array([measured[int(x)] for x in xs])
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(intercept), measured


__all__ = [
    "ReadoutCalibration",
    "calibrate_readout",
    "mitigate_counts",
    "mitigated_expectation_z",
    "fold_circuit",
    "zne_expectation",
]
