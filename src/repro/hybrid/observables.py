"""Pauli observables and counts-based expectation estimation.

The tightly-coupled workloads of Section 2.6 (VQE and friends) need
Hamiltonian expectation values estimated from measurement histograms.
This module provides :class:`PauliTerm`/:class:`PauliSum`, the basis
rotation circuits that map each term onto a Z-string measurement, and
the estimator combining counts into ``⟨H⟩``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import ReproError
from repro.simulator.counts import Counts


@dataclass(frozen=True)
class PauliTerm:
    """A weighted Pauli string: ``coefficient · P₀ ⊗ P₁ ⊗ …``.

    ``paulis`` maps qubit index → label in {X, Y, Z} (identity omitted).
    """

    coefficient: float
    paulis: Tuple[Tuple[int, str], ...]  # sorted ((qubit, label), ...)

    @classmethod
    def make(cls, coefficient: float, paulis: Mapping[int, str]) -> "PauliTerm":
        cleaned: Dict[int, str] = {}
        for q, label in paulis.items():
            label = label.upper()
            if label == "I":
                continue
            if label not in ("X", "Y", "Z"):
                raise ReproError(f"invalid Pauli label {label!r}")
            cleaned[int(q)] = label
        return cls(float(coefficient), tuple(sorted(cleaned.items())))

    @property
    def is_identity(self) -> bool:
        return not self.paulis

    @property
    def qubits(self) -> Tuple[int, ...]:
        return tuple(q for q, _ in self.paulis)

    def measurement_basis_circuit(self, num_qubits: int) -> QuantumCircuit:
        """Rotations mapping this term's eigenbasis onto the Z basis:
        H for X, S†·H for Y, nothing for Z."""
        qc = QuantumCircuit(num_qubits, name="basis-rotation")
        for q, label in self.paulis:
            if label == "X":
                qc.h(q)
            elif label == "Y":
                qc.sdg(q)
                qc.h(q)
        return qc

    def expectation_from_counts(self, counts: Counts) -> float:
        """``⟨P⟩`` from counts measured *after* the basis rotation."""
        if self.is_identity:
            return 1.0
        return counts.expectation_z(self.qubits)

    def __repr__(self) -> str:
        body = " ".join(f"{label}{q}" for q, label in self.paulis) or "I"
        return f"{self.coefficient:+.6g}·{body}"


class PauliSum:
    """A Hamiltonian: sum of weighted Pauli strings."""

    def __init__(self, terms: Iterable[PauliTerm]):
        merged: Dict[Tuple[Tuple[int, str], ...], float] = {}
        for t in terms:
            merged[t.paulis] = merged.get(t.paulis, 0.0) + t.coefficient
        self.terms: Tuple[PauliTerm, ...] = tuple(
            PauliTerm(c, p) for p, c in merged.items() if abs(c) > 1e-15
        )

    @classmethod
    def from_list(cls, spec: Sequence[Tuple[float, Mapping[int, str]]]) -> "PauliSum":
        """``PauliSum.from_list([(0.5, {0: "Z"}), (-0.2, {0: "X", 1: "X"})])``"""
        return cls(PauliTerm.make(c, p) for c, p in spec)

    @property
    def num_qubits(self) -> int:
        highest = -1
        for t in self.terms:
            for q, _ in t.paulis:
                highest = max(highest, q)
        return highest + 1

    @property
    def identity_offset(self) -> float:
        return sum(t.coefficient for t in self.terms if t.is_identity)

    def measured_terms(self) -> List[PauliTerm]:
        return [t for t in self.terms if not t.is_identity]

    def grouped_terms(self) -> List[List[PauliTerm]]:
        """Group qubit-wise-commuting terms so one measured circuit serves
        several terms (the standard shot-saving trick): two terms
        group when no qubit carries conflicting bases."""
        groups: List[Tuple[Dict[int, str], List[PauliTerm]]] = []
        for term in sorted(
            self.measured_terms(), key=lambda t: -len(t.paulis)
        ):
            placed = False
            for basis, members in groups:
                if all(basis.get(q, label) == label for q, label in term.paulis):
                    basis.update(dict(term.paulis))
                    members.append(term)
                    placed = True
                    break
            if not placed:
                groups.append((dict(term.paulis), [term]))
        return [members for _, members in groups]

    def matrix(self) -> np.ndarray:
        """Dense matrix (little-endian), for validation on small systems."""
        n = self.num_qubits
        if n > 12:
            raise ReproError("dense Hamiltonian limited to 12 qubits")
        from repro.simulator.channels import PAULI_MATRICES

        dim = 1 << max(n, 1)
        out = np.zeros((dim, dim), dtype=complex)
        for term in self.terms:
            labels = {q: label for q, label in term.paulis}
            m = np.eye(1, dtype=complex)
            for q in reversed(range(max(n, 1))):
                m = np.kron(m, PAULI_MATRICES[labels.get(q, "I")])
            out += term.coefficient * m
        return out

    def exact_ground_energy(self) -> float:
        """Smallest eigenvalue (validation reference)."""
        return float(np.linalg.eigvalsh(self.matrix())[0])

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        return " ".join(repr(t) for t in self.terms) or "0"


@lru_cache(maxsize=64)
def _parity_signs(k: int) -> np.ndarray:
    """``(-1)^popcount(j)`` for the ``2^k`` indices of a k-qubit marginal."""
    idx = np.arange(1 << k)
    parity = idx
    for shift in (16, 8, 4, 2, 1):
        parity = parity ^ (parity >> shift)
    return 1.0 - 2.0 * (parity & 1)


def expectation_statevector(hamiltonian: PauliSum, state) -> float:
    """Exact ``⟨H⟩`` on a prepared :class:`~repro.simulator.statevector.StateVector`.

    Terms are evaluated through their qubit-wise-commuting groups: each
    group needs at most one basis-rotated copy of the state (none at all
    for Z-only groups) and exactly one probability vector, after which
    every member term is a Z-string contracted as a signed marginal —
    no per-term state copies or full-state allocations.  This is the
    zero-shot-noise expectation path used by tight-loop benchmarking
    and algorithm validation.
    """
    n = state.num_qubits
    total = hamiltonian.identity_offset
    for group in hamiltonian.grouped_terms():
        basis: Dict[int, str] = {}
        for term in group:
            basis.update(dict(term.paulis))
        if all(label == "Z" for label in basis.values()):
            work = state  # already diagonal; no copy, no rotation
        else:
            work = state.copy()
            rotation = PauliTerm.make(1.0, basis).measurement_basis_circuit(n)
            for inst in rotation:
                work.apply_gate(inst.name, inst.qubits)
        tensor = work.probabilities().reshape((2,) * n)
        for term in group:
            qs = set(term.qubits)
            # qubit q lives on tensor axis n-1-q; marginalize the rest
            other_axes = tuple(n - 1 - q for q in range(n) if q not in qs)
            marginal = tensor.sum(axis=other_axes).reshape(-1)
            total += term.coefficient * float(
                marginal @ _parity_signs(len(qs))
            )
    return float(total)


def expectation_stabilizer(hamiltonian: PauliSum, tableau) -> float:
    """Exact ``⟨H⟩`` on a prepared :class:`~repro.simulator.stabilizer.Tableau`.

    Every Pauli term of a stabilizer state evaluates to exactly ``−1``,
    ``0`` or ``+1`` (zero whenever the term anticommutes with any
    stabilizer generator), so the contraction is a per-term ``O(n²)``
    bit computation with no state copies at all — hundreds of qubits are
    fine.  This is the Z-basis expectation path the hybrid layer uses
    for Clifford ansätze and calibration-style circuits.
    """
    total = hamiltonian.identity_offset
    for term in hamiltonian.measured_terms():
        labels = "".join(label for _, label in term.paulis)
        total += term.coefficient * tableau.expectation_pauli(labels, term.qubits)
    return float(total)


def expectation_sparse(hamiltonian: PauliSum, sparse) -> float:
    """Exact ``⟨H⟩`` on a prepared
    :class:`~repro.simulator.engines.sparse.SparseAmplitudes` state.

    Each Pauli term contracts over the stored support only (``O(nnz)``
    per term), so Clifford-prefix + sparse-tail states — including
    widths beyond the dense limit — evaluate without ever materializing
    ``2^n`` amplitudes.  This is the expectation path of the hybrid
    segment engine while its tail stays sparse.
    """
    total = hamiltonian.identity_offset
    for term in hamiltonian.measured_terms():
        labels = "".join(label for _, label in term.paulis)
        total += term.coefficient * sparse.expectation_pauli(labels, term.qubits)
    return float(total)


def expectation_mps(hamiltonian: PauliSum, mps) -> float:
    """Exact ``⟨H⟩`` on a prepared
    :class:`~repro.simulator.engines.mps.MPSState`.

    Each Pauli term runs the MPO-free local transfer-matrix sweep
    (:meth:`~repro.simulator.engines.mps.MPSState.expectation_pauli`):
    with the canonical center inside the term's site span, only the
    spanned sites contract — ``O(span · chi³)`` per term, independent
    of the total qubit count, so 50–100+ qubit low-entanglement ansätze
    evaluate without ever materializing ``2^n`` amplitudes.  "Exact"
    means exact on the (possibly truncated) MPS; the state's cumulative
    ``truncation_error`` bounds the representation loss.
    """
    total = hamiltonian.identity_offset
    for term in hamiltonian.measured_terms():
        labels = "".join(label for _, label in term.paulis)
        total += term.coefficient * mps.expectation_pauli(labels, term.qubits)
    return float(total)


def exact_expectation(hamiltonian: PauliSum, circuit: QuantumCircuit) -> float:
    """Exact ``⟨H⟩`` on the state prepared by *circuit*, engine-dispatched.

    Routed through the execution-engine registry
    (:func:`repro.simulator.engines.prepare_engine`): Clifford-only
    circuits evaluate on a stabilizer tableau (polynomial, exact ±1/0
    term values), circuits with an entangling Clifford prefix on the
    hybrid segment engine (whichever representation the tail ended in),
    and dense states through the grouped
    :func:`expectation_statevector` contraction.  Expectations carry no
    RNG stream, so the default ``"fast"`` sampling mode upgrades to the
    ``"auto"`` routing here, and ``"baseline"`` keeps its historical
    Clifford-to-tableau dispatch (the seed lane's generic kernels still
    serve every dense contraction); forcing ``"stabilizer"`` /
    ``"hybrid"`` / ``"auto"`` is honoured as-is.
    """
    from repro.simulator import sampler
    from repro.simulator.engines import prepare_engine

    mode = {"fast": "auto", "baseline": "stabilizer"}.get(
        sampler.ENGINE, sampler.ENGINE
    )
    return prepare_engine(circuit, mode).expectation(hamiltonian)


def estimate_expectation(
    hamiltonian: PauliSum,
    run_circuit,
    base_circuit: QuantumCircuit,
    *,
    shots: int = 1024,
) -> float:
    """Estimate ``⟨H⟩`` on the state prepared by *base_circuit*.

    *run_circuit* is any callable ``circuit, shots -> Counts`` — in the
    tight HPC loop it is ``client.run``; tests pass the noiseless
    sampler.  One measured circuit is executed per commuting group.
    """
    total = hamiltonian.identity_offset
    n = base_circuit.num_qubits
    for group in hamiltonian.grouped_terms():
        basis: Dict[int, str] = {}
        for term in group:
            basis.update(dict(term.paulis))
        meas = base_circuit.copy(name=f"{base_circuit.name}-meas")
        rotation = PauliTerm.make(1.0, basis).measurement_basis_circuit(n)
        meas.compose(rotation)
        meas.measure_all()
        counts = run_circuit(meas, shots)
        for term in group:
            total += term.coefficient * term.expectation_from_counts(counts)
    return float(total)


# ---------------------------------------------------------------------------
# stock Hamiltonians
# ---------------------------------------------------------------------------


def h2_hamiltonian(bond_length: float = 0.735) -> PauliSum:
    """The standard 2-qubit reduced H₂ Hamiltonian (parity mapping).

    Coefficients at the equilibrium bond length 0.735 Å (O'Malley et al.
    / Kandala et al. convention); ground energy ≈ −1.852 Hartree
    (including nuclear repulsion absorbed into the identity term).
    Other bond lengths use a crude Morse-flavoured interpolation that
    keeps the VQE landscape realistic without a chemistry package.
    """
    base = {
        "g0": -1.05237, "g1": 0.39793, "g2": -0.39793,
        "g3": -0.01128, "g4": 0.18093,
    }
    stretch = bond_length / 0.735
    scale = 1.0 / stretch
    g = {
        "g0": base["g0"] * (0.8 + 0.2 * scale),
        "g1": base["g1"] * scale,
        "g2": base["g2"] * scale,
        "g3": base["g3"] * scale,
        "g4": base["g4"] * scale**0.5,
    }
    return PauliSum.from_list(
        [
            (g["g0"], {}),
            (g["g1"], {0: "Z"}),
            (g["g2"], {1: "Z"}),
            (g["g3"], {0: "Z", 1: "Z"}),
            (g["g4"], {0: "X", 1: "X"}),
            (g["g4"], {0: "Y", 1: "Y"}),
        ]
    )


def transverse_field_ising(
    num_qubits: int, *, j: float = 1.0, h: float = 1.0, periodic: bool = False
) -> PauliSum:
    """1-D transverse-field Ising chain: ``-J Σ ZᵢZᵢ₊₁ - h Σ Xᵢ``."""
    if num_qubits < 2:
        raise ReproError("Ising chain needs >= 2 qubits")
    spec: List[Tuple[float, Mapping[int, str]]] = []
    for i in range(num_qubits - 1):
        spec.append((-j, {i: "Z", i + 1: "Z"}))
    if periodic:
        spec.append((-j, {num_qubits - 1: "Z", 0: "Z"}))
    for i in range(num_qubits):
        spec.append((-h, {i: "X"}))
    return PauliSum.from_list(spec)


__all__ = [
    "PauliTerm",
    "PauliSum",
    "estimate_expectation",
    "exact_expectation",
    "expectation_mps",
    "expectation_sparse",
    "expectation_stabilizer",
    "expectation_statevector",
    "h2_hamiltonian",
    "transverse_field_ising",
]
