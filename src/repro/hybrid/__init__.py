"""Hybrid quantum-classical algorithms: observables, VQE, QAOA, optimizers."""

from repro.hybrid.observables import (
    PauliSum,
    PauliTerm,
    estimate_expectation,
    exact_expectation,
    expectation_mps,
    expectation_sparse,
    expectation_stabilizer,
    expectation_statevector,
    h2_hamiltonian,
    transverse_field_ising,
)
from repro.hybrid.optimizers import (
    OptimizationResult,
    SPSAConfig,
    nelder_mead_minimize,
    spsa_minimize,
)
from repro.hybrid.mitigation import (
    ReadoutCalibration,
    calibrate_readout,
    fold_circuit,
    mitigate_counts,
    mitigated_expectation_z,
    zne_expectation,
)
from repro.hybrid.qaoa import QAOA, QAOAResult, cut_value, max_cut_brute_force, qaoa_circuit
from repro.hybrid.vqe import VQE, VQEResult, hardware_efficient_ansatz

__all__ = [
    "ReadoutCalibration",
    "calibrate_readout",
    "fold_circuit",
    "mitigate_counts",
    "mitigated_expectation_z",
    "zne_expectation",
    "PauliSum",
    "PauliTerm",
    "estimate_expectation",
    "exact_expectation",
    "expectation_mps",
    "expectation_sparse",
    "expectation_stabilizer",
    "expectation_statevector",
    "h2_hamiltonian",
    "transverse_field_ising",
    "OptimizationResult",
    "SPSAConfig",
    "nelder_mead_minimize",
    "spsa_minimize",
    "QAOA",
    "QAOAResult",
    "cut_value",
    "max_cut_brute_force",
    "qaoa_circuit",
    "VQE",
    "VQEResult",
    "hardware_efficient_ansatz",
]
