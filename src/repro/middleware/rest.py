"""REST access path emulation.

Section 2.6's first interaction mode: "remote, API-based asynchronous
access: users submit jobs to a queue which are later executed on a QPU".

:class:`RestServer` models the server side without sockets: endpoints
are methods taking/returning JSON-compatible dicts plus an HTTP-like
status code.  The job store supports **pagination** — implemented, per
Section 4, because "many users found it difficult to navigate large job
histories on the dashboard, which led us to implement more efficient
pagination in the results section" — and a device-info endpoint exposing
the coupling map ("users requested … access to qubit coupling maps").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.circuits.serialize import circuit_from_dict, circuit_to_dict
from repro.errors import JobTimeoutError, RestApiError, SerializationError
from repro.qdmi.interface import QDMIProperty
from repro.scheduler.jobs import Job, JobState
from repro.scheduler.qrm import QuantumResourceManager

JSON = Dict[str, Any]


@dataclass(frozen=True)
class RestResponse:
    """An HTTP-ish response: status code plus JSON body."""

    status: int
    body: JSON

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RestServer:
    """The queue-fronted REST facade over a QRM.

    Jobs submitted here sit in the QRM queue until :meth:`process`
    executes them (the asynchronous mode's decoupling of submission from
    execution).  An operations loop calls ``process`` periodically.
    """

    MAX_PAGE_SIZE = 100

    def __init__(self, qrm: QuantumResourceManager, metrics=None) -> None:
        self.qrm = qrm
        #: optional :class:`~repro.telemetry.store.MetricStore` behind
        #: ``GET /metrics``; finished jobs' execution reports are also
        #: flattened into it (``simulator.exec.*``) as they complete.
        self.metrics = metrics
        self._jobs: Dict[int, Job] = {}
        self.requests_served = 0

    # -- endpoints -----------------------------------------------------------

    def post_job(self, payload: JSON) -> RestResponse:
        """``POST /jobs`` — body: ``{"circuit": <circuit dict>,
        "shots": int, "user": str}``."""
        self.requests_served += 1
        try:
            circuit = circuit_from_dict(payload["circuit"])
        except KeyError:
            return _error(400, "missing required field 'circuit'")
        except SerializationError as exc:
            return _error(400, f"invalid circuit payload: {exc}")
        shots = payload.get("shots", 1024)
        if not isinstance(shots, int) or shots < 1:
            return _error(400, f"invalid shots {shots!r}")
        if shots > 1_000_000:
            return _error(422, "shots exceed the per-job limit (1000000)")
        user = str(payload.get("user", "anonymous"))
        job = self.qrm.submit(circuit, shots=shots, user=user, name=circuit.name)
        self._jobs[job.job_id] = job
        return RestResponse(201, {"job_id": job.job_id, "status": job.state.value})

    def post_batch(self, payload: JSON) -> RestResponse:
        """``POST /batches`` — body: ``{"jobs": [<job payload>, …]}``.

        Batch-job support was an explicit early-user request (Section 4:
        "Users requested features such as batch-job support").  Submission
        is atomic: if any element is invalid, nothing is enqueued.
        """
        self.requests_served += 1
        jobs = payload.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            return _error(400, "batch needs a non-empty 'jobs' list")
        if len(jobs) > 100:
            return _error(422, "batch exceeds 100 jobs")
        parsed = []
        for i, body in enumerate(jobs):
            try:
                circuit = circuit_from_dict(body["circuit"])
            except (KeyError, TypeError):
                return _error(400, f"batch element {i}: missing/invalid 'circuit'")
            except SerializationError as exc:
                return _error(400, f"batch element {i}: {exc}")
            shots = body.get("shots", 1024)
            if not isinstance(shots, int) or not 1 <= shots <= 1_000_000:
                return _error(400, f"batch element {i}: invalid shots {shots!r}")
            parsed.append((circuit, shots, str(body.get("user", "anonymous"))))
        ids = []
        for circuit, shots, user in parsed:
            job = self.qrm.submit(circuit, shots=shots, user=user, name=circuit.name)
            self._jobs[job.job_id] = job
            ids.append(job.job_id)
        return RestResponse(201, {"job_ids": ids, "count": len(ids)})

    def get_job(self, job_id: int) -> RestResponse:
        """``GET /jobs/{id}`` — status plus, when finished, the result
        histogram (the paper's dominant output format)."""
        self.requests_served += 1
        job = self._jobs.get(int(job_id))
        if job is None:
            return _error(404, f"no such job {job_id}")
        body: JSON = {
            "job_id": job.job_id,
            "name": job.name,
            "user": job.user,
            "status": job.state.value,
            "submitted_at": job.submitted_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
            "requeue_count": job.requeue_count,
        }
        if job.state is JobState.COMPLETED and job.result is not None:
            result = job.result
            body["result"] = {
                "counts": result.counts.to_dict(),
                "shots": result.shots,
                "duration": result.duration,
                "calibration_timestamp": result.calibration_timestamp,
            }
            report = job.payload.get("execution_report")
            if report is not None:
                body["result"]["execution_report"] = report
        if job.state is JobState.FAILED:
            body["error"] = job.failure_reason
        return RestResponse(200, body)

    def list_jobs(
        self,
        *,
        offset: int = 0,
        limit: int = 20,
        user: Optional[str] = None,
        status: Optional[str] = None,
    ) -> RestResponse:
        """``GET /jobs?offset=&limit=&user=&status=`` — paginated history,
        newest first."""
        self.requests_served += 1
        if offset < 0 or limit < 1:
            return _error(400, "offset must be >= 0 and limit >= 1")
        limit = min(limit, self.MAX_PAGE_SIZE)
        rows = sorted(self._jobs.values(), key=lambda j: -j.job_id)
        if user is not None:
            rows = [j for j in rows if j.user == user]
        if status is not None:
            rows = [j for j in rows if j.state.value == status]
        total = len(rows)
        page = rows[offset : offset + limit]
        return RestResponse(
            200,
            {
                "total": total,
                "offset": offset,
                "limit": limit,
                "jobs": [
                    {"job_id": j.job_id, "name": j.name, "status": j.state.value}
                    for j in page
                ],
                "next_offset": offset + limit if offset + limit < total else None,
            },
        )

    def delete_job(self, job_id: int) -> RestResponse:
        """``DELETE /jobs/{id}`` — cancel a still-pending job."""
        self.requests_served += 1
        job = self._jobs.get(int(job_id))
        if job is None:
            return _error(404, f"no such job {job_id}")
        if job.state is not JobState.PENDING:
            return _error(409, f"job is {job.state.value}; only pending jobs cancel")
        if job in self.qrm.queue:
            self.qrm.queue.remove(job)
        job.mark_cancelled(self.qrm.device.time, "cancelled via REST")
        return RestResponse(200, {"job_id": job.job_id, "status": job.state.value})

    def get_device(self) -> RestResponse:
        """``GET /device`` — topology, native gates, live medians."""
        self.requests_served += 1
        with self.qrm.jit.qdmi.open_session() as session:
            body = {
                "name": session.query(QDMIProperty.NAME),
                "num_qubits": session.query(QDMIProperty.NUM_QUBITS),
                "coupling_map": [list(c) for c in session.query(QDMIProperty.COUPLING_MAP)],
                "native_gates": list(session.query(QDMIProperty.NATIVE_GATES)),
                "status": session.query(QDMIProperty.STATUS),
                "median_prx_fidelity": session.query(QDMIProperty.MEDIAN_PRX_FIDELITY),
                "median_cz_fidelity": session.query(QDMIProperty.MEDIAN_CZ_FIDELITY),
                "median_readout_fidelity": session.query(
                    QDMIProperty.MEDIAN_READOUT_FIDELITY
                ),
                "calibration_timestamp": session.query(
                    QDMIProperty.CALIBRATION_TIMESTAMP
                ),
            }
        # Live queue depth so clients can back off before submitting
        # (the structured-timeout counterpart on the server side).
        body["queue_depth"] = self.qrm.queue_length
        return RestResponse(200, body)

    def get_metrics(self, prefix: str = "") -> RestResponse:
        """``GET /metrics?prefix=`` — latest value per matching sensor.

        Exposes the attached :class:`MetricStore`'s live values (the
        dashboard's "current state" read), 404 when the server runs
        without one.  Sensors that exist but have no data yet are
        omitted."""
        self.requests_served += 1
        if self.metrics is None:
            return _error(404, "no metric store attached to this server")
        from repro.errors import TelemetryError

        sensors: JSON = {}
        for name in self.metrics.sensors(str(prefix)):
            try:
                point = self.metrics.latest(name)
            except TelemetryError:
                continue
            sensors[name] = {"timestamp": point.timestamp, "value": point.value}
        return RestResponse(
            200, {"prefix": str(prefix), "count": len(sensors), "sensors": sensors}
        )

    # -- server-side processing -----------------------------------------------

    def process(self, max_jobs: int = 1) -> int:
        """Execute up to *max_jobs* queued jobs (the worker loop).

        When a metric store is attached, each finished job's execution
        report (if tracing produced one) is flattened into the
        ``simulator.exec.*`` sensor family at the device clock's
        completion time — the REST loop doubles as the collector hook
        for per-run execution telemetry."""
        done = 0
        for _ in range(max_jobs):
            job = self.qrm.run_next()
            if job is None:
                break
            done += 1
            if self.metrics is not None:
                report = job.payload.get("execution_report")
                if report is not None and job.finished_at is not None:
                    self.metrics.record_execution(report, job.finished_at)
        return done


def _error(status: int, message: str) -> RestResponse:
    return RestResponse(status, {"error": message})


class RestClient:
    """Client-side convenience over :class:`RestServer` method calls.

    Raises :class:`RestApiError` on non-2xx responses so calling code
    can be written like real HTTP client code.
    """

    def __init__(self, server: RestServer) -> None:
        self._server = server

    def submit(self, circuit, *, shots: int = 1024, user: str = "anonymous") -> int:
        resp = self._server.post_job(
            {"circuit": circuit_to_dict(circuit), "shots": shots, "user": user}
        )
        _raise_for_status(resp)
        return int(resp.body["job_id"])

    def submit_batch(self, circuits, *, shots: int = 1024, user: str = "anonymous") -> list:
        """Submit many circuits in one request; returns their job ids."""
        resp = self._server.post_batch(
            {
                "jobs": [
                    {"circuit": circuit_to_dict(c), "shots": shots, "user": user}
                    for c in circuits
                ]
            }
        )
        _raise_for_status(resp)
        return [int(j) for j in resp.body["job_ids"]]

    def status(self, job_id: int) -> str:
        resp = self._server.get_job(job_id)
        _raise_for_status(resp)
        return str(resp.body["status"])

    def result(self, job_id: int) -> JSON:
        """The result body; raises if the job has not completed."""
        resp = self._server.get_job(job_id)
        _raise_for_status(resp)
        if resp.body["status"] != "completed":
            raise RestApiError(409, f"job {job_id} is {resp.body['status']}")
        return resp.body["result"]

    def wait(self, job_id: int, *, max_ticks: int = 10_000) -> JSON:
        """Poll-and-process until the job finishes (in the emulation, the
        client tick also drives the server worker).

        Raises a structured :class:`~repro.errors.JobTimeoutError`
        (status 504, carrying ``job_id`` and ``last_status``) when the
        tick budget runs out, so callers can distinguish a stuck queue
        from a dead job and back off — ``GET /device`` exposes the
        live ``queue_depth`` for exactly that."""
        status = "unknown"
        for _ in range(max_ticks):
            status = self.status(job_id)
            if status == "completed":
                return self.result(job_id)
            if status in ("failed", "cancelled"):
                resp = self._server.get_job(job_id)
                raise RestApiError(
                    500, f"job {job_id} {status}: {resp.body.get('error')}"
                )
            self._server.process(1)
        raise JobTimeoutError(job_id, status, max_ticks)

    def list_jobs(self, **query) -> JSON:
        resp = self._server.list_jobs(**query)
        _raise_for_status(resp)
        return resp.body

    def cancel(self, job_id: int) -> None:
        _raise_for_status(self._server.delete_job(job_id))

    def device_info(self) -> JSON:
        resp = self._server.get_device()
        _raise_for_status(resp)
        return resp.body


def _raise_for_status(resp: RestResponse) -> None:
    if not resp.ok:
        raise RestApiError(resp.status, str(resp.body.get("error", "request failed")))


__all__ = ["RestServer", "RestClient", "RestResponse"]
