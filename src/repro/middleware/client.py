"""The MQSS client: one entry point, two access paths.

Figure 2 / Section 2.6: "Without requiring any code modifications from
the user, the client automatically detects whether a job originates
inside or outside an HPC environment and routes it accordingly to the
appropriate interface, whether the REST-client for asynchronous access
or the HPC-client for local, accelerator-style submission."

:class:`MQSSClient` reproduces that contract: users call
``client.run(program, shots=…)`` and get a :class:`Counts` histogram
back; whether the job travelled through the REST queue (with JSON
serialization both ways) or straight into the QRM loop is decided by
environment detection — overridable, so the Figure 2 bench can compare
the two paths explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.ir import Module
from repro.compiler.jit import JITCompiler, Program
from repro.errors import RoutingError
from repro.middleware.rest import RestClient, RestServer
from repro.scheduler.jobs import JobState
from repro.scheduler.qrm import QuantumResourceManager
from repro.simulator.counts import Counts

#: Environment variables whose presence marks "inside the HPC system".
_HPC_ENV_MARKERS = ("SLURM_JOB_ID", "PBS_JOBID", "LSB_JOBID")


def detect_execution_context(env: Optional[Dict[str, str]] = None) -> str:
    """``"hpc"`` when running inside a batch allocation, else ``"remote"``.

    Real deployments sniff scheduler environment variables; tests pass a
    fake ``env``.
    """
    env = os.environ if env is None else env
    return "hpc" if any(m in env for m in _HPC_ENV_MARKERS) else "remote"


@dataclass(frozen=True)
class ExecutionRecord:
    """What the client did for one run: path taken plus the result."""

    counts: Counts
    path: str           # "hpc" | "rest"
    job_id: int
    shots: int
    duration: float     # QPU wall-clock of the job


class MQSSClient:
    """Single user-facing entry point over both access paths.

    Parameters
    ----------
    qrm:
        The quantum resource manager (the HPC path talks to it
        directly).
    rest_server:
        The REST facade (the remote path goes through full JSON
        serialization and the asynchronous queue).  Defaults to a new
        facade over the same QRM.
    context:
        ``"auto"`` (environment detection), ``"hpc"``, or ``"remote"``.
    """

    def __init__(
        self,
        qrm: QuantumResourceManager,
        *,
        rest_server: Optional[RestServer] = None,
        context: str = "auto",
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if context not in ("auto", "hpc", "remote"):
            raise RoutingError(f"unknown execution context {context!r}")
        self.qrm = qrm
        self.rest = RestClient(rest_server or RestServer(qrm))
        self._context = context
        self._env = env
        self.records: list[ExecutionRecord] = []

    @property
    def context(self) -> str:
        """The access path the next job will take."""
        if self._context != "auto":
            return self._context
        return detect_execution_context(self._env)

    # -- the single user API ----------------------------------------------------

    def run(
        self,
        program: Program,
        *,
        shots: int = 1024,
        user: str = "user",
    ) -> Counts:
        """Execute *program* and return its counts histogram.

        Accepts any front-end artifact (a dialect :class:`Module` or a
        :class:`QuantumCircuit`); routing, lowering, JIT compilation,
        placement and execution are all transparent.
        """
        record = self.run_detailed(program, shots=shots, user=user)
        return record.counts

    def run_detailed(
        self,
        program: Program,
        *,
        shots: int = 1024,
        user: str = "user",
    ) -> ExecutionRecord:
        """Like :meth:`run` but returns routing/timing provenance."""
        path = self.context
        if path == "hpc":
            record = self._run_hpc(program, shots, user)
        else:
            record = self._run_rest(program, shots, user)
        self.records.append(record)
        return record

    # -- the two paths ------------------------------------------------------------

    def _run_hpc(self, program: Program, shots: int, user: str) -> ExecutionRecord:
        """Accelerator-style: synchronous submit-and-run in the QRM loop."""
        job = self.qrm.submit(program, shots=shots, user=user)
        finished = self.qrm.run_next()
        while finished is not job and job.state not in (
            JobState.COMPLETED,
            JobState.FAILED,
        ):
            # Other queued work may run first; keep draining.
            if finished is None:
                raise RoutingError("QRM queue drained without running our job")
            finished = self.qrm.run_next()
        if job.state is JobState.FAILED:
            raise RoutingError(f"job failed: {job.failure_reason}")
        result = job.result
        return ExecutionRecord(
            counts=result.counts,
            path="hpc",
            job_id=job.job_id,
            shots=result.shots,
            duration=result.duration,
        )

    def _run_rest(self, program: Program, shots: int, user: str) -> ExecutionRecord:
        """Asynchronous: serialize, queue, poll.  The program must be
        lowered to a circuit for the wire format."""
        circuit, _ = JITCompiler.to_logical_circuit(program)
        job_id = self.rest.submit(circuit, shots=shots, user=user)
        body = self.rest.wait(job_id)
        counts = Counts(
            {k: int(v) for k, v in body["counts"].items()},
            num_bits=circuit.num_clbits,
        )
        return ExecutionRecord(
            counts=counts,
            path="rest",
            job_id=job_id,
            shots=int(body["shots"]),
            duration=float(body["duration"]),
        )

    def __repr__(self) -> str:
        return f"<MQSSClient context={self.context!r}, {len(self.records)} runs>"


__all__ = ["MQSSClient", "ExecutionRecord", "detect_execution_context"]
