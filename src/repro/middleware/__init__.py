"""MQSS middleware: auto-routing client, REST facade, front-end adapters."""

from repro.middleware.client import ExecutionRecord, MQSSClient, detect_execution_context
from repro.middleware.rest import RestClient, RestResponse, RestServer

__all__ = [
    "ExecutionRecord",
    "MQSSClient",
    "detect_execution_context",
    "RestClient",
    "RestResponse",
    "RestServer",
]
