"""Qiskit-flavoured adapter.

Presents the register-based construction style Qiskit users arrive with
(Section 4: the frontend most early users knew) and translates into the
stack's own circuit IR.  Only the surface syntax is Qiskit's; everything
below the :meth:`QiskitLikeAdapter.translate` boundary is MQSS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.errors import AdapterError


class QuantumRegister:
    """A named group of qubits (Qiskit-style)."""

    def __init__(self, size: int, name: str = "q") -> None:
        if size < 1:
            raise AdapterError("register size must be >= 1")
        self.size = int(size)
        self.name = str(name)

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> Tuple["QuantumRegister", int]:
        if not 0 <= index < self.size:
            raise AdapterError(f"register index {index} out of range")
        return (self, index)


class ClassicalRegister:
    """A named group of classical bits."""

    def __init__(self, size: int, name: str = "c") -> None:
        if size < 1:
            raise AdapterError("register size must be >= 1")
        self.size = int(size)
        self.name = str(name)

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, index: int) -> Tuple["ClassicalRegister", int]:
        if not 0 <= index < self.size:
            raise AdapterError(f"register index {index} out of range")
        return (self, index)


Qubit = Union[int, Tuple[QuantumRegister, int]]
Clbit = Union[int, Tuple[ClassicalRegister, int]]


class QiskitLikeCircuit:
    """Register-based circuit builder with Qiskit's method names."""

    def __init__(self, *regs: Union[QuantumRegister, ClassicalRegister, int], name: str = "circuit") -> None:
        self.name = name
        self.qregs: List[QuantumRegister] = []
        self.cregs: List[ClassicalRegister] = []
        for reg in regs:
            if isinstance(reg, QuantumRegister):
                self.qregs.append(reg)
            elif isinstance(reg, ClassicalRegister):
                self.cregs.append(reg)
            elif isinstance(reg, int):
                self.qregs.append(QuantumRegister(reg, f"q{len(self.qregs)}"))
            else:
                raise AdapterError(f"unsupported register {reg!r}")
        if not self.qregs:
            raise AdapterError("circuit needs at least one quantum register")
        if not self.cregs:
            self.cregs.append(ClassicalRegister(self.num_qubits, "c"))
        self._ops: List[Tuple[str, Tuple[int, ...], Tuple[float, ...], Tuple[int, ...]]] = []

    # -- register arithmetic -------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return sum(r.size for r in self.qregs)

    @property
    def num_clbits(self) -> int:
        return sum(r.size for r in self.cregs)

    def _flatten_q(self, qubit: Qubit) -> int:
        if isinstance(qubit, int):
            if not 0 <= qubit < self.num_qubits:
                raise AdapterError(f"qubit {qubit} out of range")
            return qubit
        reg, idx = qubit
        offset = 0
        for r in self.qregs:
            if r is reg:
                return offset + idx
            offset += r.size
        raise AdapterError(f"register {reg.name!r} not part of this circuit")

    def _flatten_c(self, clbit: Clbit) -> int:
        if isinstance(clbit, int):
            if not 0 <= clbit < self.num_clbits:
                raise AdapterError(f"clbit {clbit} out of range")
            return clbit
        reg, idx = clbit
        offset = 0
        for r in self.cregs:
            if r is reg:
                return offset + idx
            offset += r.size
        raise AdapterError(f"register {reg.name!r} not part of this circuit")

    # -- gate methods (Qiskit names) ----------------------------------------------

    def _gate(self, name: str, qubits: Sequence[Qubit], params: Sequence[float] = ()) -> "QiskitLikeCircuit":
        self._ops.append(
            (name, tuple(self._flatten_q(q) for q in qubits), tuple(map(float, params)), ())
        )
        return self

    def h(self, q: Qubit):
        return self._gate("h", [q])

    def x(self, q: Qubit):
        return self._gate("x", [q])

    def y(self, q: Qubit):
        return self._gate("y", [q])

    def z(self, q: Qubit):
        return self._gate("z", [q])

    def s(self, q: Qubit):
        return self._gate("s", [q])

    def t(self, q: Qubit):
        return self._gate("t", [q])

    def rx(self, theta: float, q: Qubit):
        return self._gate("rx", [q], [theta])

    def ry(self, theta: float, q: Qubit):
        return self._gate("ry", [q], [theta])

    def rz(self, phi: float, q: Qubit):
        return self._gate("rz", [q], [phi])

    def p(self, lam: float, q: Qubit):
        return self._gate("p", [q], [lam])

    def cx(self, control: Qubit, target: Qubit):
        return self._gate("cx", [control, target])

    def cz(self, a: Qubit, b: Qubit):
        return self._gate("cz", [a, b])

    def swap(self, a: Qubit, b: Qubit):
        return self._gate("swap", [a, b])

    def cp(self, lam: float, a: Qubit, b: Qubit):
        return self._gate("cp", [a, b], [lam])

    def barrier(self):
        self._ops.append(("barrier", tuple(range(self.num_qubits)), (), ()))
        return self

    def measure(self, qubit: Qubit, clbit: Clbit):
        self._ops.append(
            ("measure", (self._flatten_q(qubit),), (), (self._flatten_c(clbit),))
        )
        return self

    def measure_all(self):
        n = min(self.num_qubits, self.num_clbits)
        for q in range(n):
            self._ops.append(("measure", (q,), (), (q,)))
        return self


class QiskitLikeAdapter:
    """Translates :class:`QiskitLikeCircuit` into the stack's IR."""

    name = "qiskit"

    @staticmethod
    def translate(circuit: QiskitLikeCircuit) -> QuantumCircuit:
        out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
        for name, qubits, params, clbits in circuit._ops:
            if name == "barrier":
                out.barrier(*qubits)
            elif name == "measure":
                out.measure(qubits[0], clbits[0])
            else:
                out.append(name, qubits, params)
        return out


__all__ = [
    "QuantumRegister",
    "ClassicalRegister",
    "QiskitLikeCircuit",
    "QiskitLikeAdapter",
]
