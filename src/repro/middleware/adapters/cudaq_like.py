"""CUDA-Q-flavoured adapter: kernel-builder API over the quake dialect.

Mirrors ``cudaq.make_kernel()``: the user gets a kernel handle plus a
qubit vector and calls gate methods on the kernel.  CUDA-Q genuinely
lowers to the Quake MLIR dialect, so this adapter builds a
:class:`~repro.compiler.dialects.QuakeKernel` directly — the exact
front-door the paper's Figure 2 draws for CUDAQ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.compiler.dialects import QuakeKernel
from repro.compiler.ir import Module
from repro.errors import AdapterError


class QVector:
    """Handle to the kernel's qubit register (supports indexing/len)."""

    def __init__(self, size: int) -> None:
        self._size = int(size)

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._size:
            raise AdapterError(f"qubit index {index} out of range")
        return index

    def __iter__(self):
        return iter(range(self._size))


class Kernel:
    """The CUDA-Q-style kernel handle."""

    def __init__(self, num_qubits: int, name: str = "kernel") -> None:
        self._quake = QuakeKernel(num_qubits, name=name)
        self.name = name

    # single-qubit -------------------------------------------------------------
    def h(self, q: int) -> "Kernel":
        self._quake.h(q)
        return self

    def x(self, q: int) -> "Kernel":
        self._quake.x(q)
        return self

    def y(self, q: int) -> "Kernel":
        self._quake.gate("y", [q])
        return self

    def z(self, q: int) -> "Kernel":
        self._quake.gate("z", [q])
        return self

    def rx(self, theta: float, q: int) -> "Kernel":
        self._quake.rx(theta, q)
        return self

    def ry(self, theta: float, q: int) -> "Kernel":
        self._quake.ry(theta, q)
        return self

    def rz(self, theta: float, q: int) -> "Kernel":
        self._quake.rz(theta, q)
        return self

    # controlled ----------------------------------------------------------------
    def cx(self, control: int, target: int) -> "Kernel":
        self._quake.cx(control, target)
        return self

    def cz(self, control: int, target: int) -> "Kernel":
        self._quake.cz(control, target)
        return self

    def swap(self, a: int, b: int) -> "Kernel":
        self._quake.swap(a, b)
        return self

    # measurement ---------------------------------------------------------------
    def mz(self, qubits: Optional[Sequence[int]] = None) -> "Kernel":
        self._quake.mz(qubits)
        return self

    @property
    def module(self) -> Module:
        return self._quake.module


def make_kernel(num_qubits: int, name: str = "kernel") -> Tuple[Kernel, QVector]:
    """``kernel, qubits = make_kernel(4)`` — the CUDA-Q construction idiom."""
    if num_qubits < 1:
        raise AdapterError("kernel needs at least one qubit")
    return Kernel(num_qubits, name), QVector(num_qubits)


class CudaqLikeAdapter:
    """Adapter facade: kernel → quake module."""

    name = "cudaq"

    @staticmethod
    def translate(kernel: Kernel) -> Module:
        return kernel.module


__all__ = ["make_kernel", "Kernel", "QVector", "CudaqLikeAdapter"]
