"""Pennylane-flavoured adapter: tape-recording of operation calls.

Users write a plain Python function that *calls* operations
(``Hadamard(wires=0)``, ``CNOT(wires=[0, 1])``); executing the function
inside a recording context captures the tape, which the adapter lowers
through the **catalyst** dialect — matching how real Pennylane programs
reach MQSS via Catalyst.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.compiler.dialects import CATALYST_GATES, CatalystKernel
from repro.compiler.ir import Module
from repro.errors import AdapterError

Wires = Union[int, Sequence[int]]

_state = threading.local()


def _tape() -> List[Tuple[str, Tuple[int, ...], Tuple[float, ...]]]:
    tape = getattr(_state, "tape", None)
    if tape is None:
        raise AdapterError(
            "operations may only be called inside a quantum function "
            "(wrap it with qnode(...))"
        )
    return tape


def _record(gate: str, wires: Wires, params: Sequence[float] = ()) -> None:
    ws = (wires,) if isinstance(wires, int) else tuple(int(w) for w in wires)
    _, nq, np_ = CATALYST_GATES[gate]
    if len(ws) != nq or len(params) != np_:
        raise AdapterError(
            f"{gate} takes {nq} wires / {np_} params, got {len(ws)} / {len(params)}"
        )
    _tape().append((gate, ws, tuple(float(p) for p in params)))


# -- the operation vocabulary -------------------------------------------------


def Hadamard(*, wires: Wires) -> None:
    _record("Hadamard", wires)


def PauliX(*, wires: Wires) -> None:
    _record("PauliX", wires)


def PauliY(*, wires: Wires) -> None:
    _record("PauliY", wires)


def PauliZ(*, wires: Wires) -> None:
    _record("PauliZ", wires)


def RX(theta: float, *, wires: Wires) -> None:
    _record("RX", wires, [theta])


def RY(theta: float, *, wires: Wires) -> None:
    _record("RY", wires, [theta])


def RZ(theta: float, *, wires: Wires) -> None:
    _record("RZ", wires, [theta])


def PhaseShift(lam: float, *, wires: Wires) -> None:
    _record("PhaseShift", wires, [lam])


def CNOT(*, wires: Sequence[int]) -> None:
    _record("CNOT", wires)


def CZ(*, wires: Sequence[int]) -> None:
    _record("CZ", wires)


def SWAP(*, wires: Sequence[int]) -> None:
    _record("SWAP", wires)


def IsingZZ(theta: float, *, wires: Sequence[int]) -> None:
    _record("IsingZZ", wires, [theta])


@contextmanager
def _recording() -> Iterator[List[Tuple[str, Tuple[int, ...], Tuple[float, ...]]]]:
    if getattr(_state, "tape", None) is not None:
        raise AdapterError("nested quantum functions are not supported")
    _state.tape = []
    try:
        yield _state.tape
    finally:
        _state.tape = None


class QNode:
    """A recorded quantum function bound to a wire count.

    Calling the node (with the user's parameters) re-records the tape
    and returns the lowered catalyst-dialect :class:`Module` — i.e. a
    fresh artifact per parameter set, the Pennylane execution model.
    """

    def __init__(self, func: Callable[..., None], num_wires: int, name: Optional[str] = None):
        self._func = func
        self.num_wires = int(num_wires)
        self.name = name or func.__name__

    def build(self, *args: float, **kwargs: float) -> Module:
        with _recording() as tape:
            self._func(*args, **kwargs)
        kernel = CatalystKernel(self.num_wires, name=self.name)
        measured = False
        for gate, wires, params in tape:
            kernel.custom(gate, list(wires), list(params))
        if not measured:
            kernel.measure()
        return kernel.module

    __call__ = build


def qnode(num_wires: int, name: Optional[str] = None) -> Callable[[Callable[..., None]], QNode]:
    """Decorator turning a function of operations into a :class:`QNode`.

    >>> @qnode(num_wires=2)
    ... def bell():
    ...     Hadamard(wires=0)
    ...     CNOT(wires=[0, 1])
    >>> module = bell()
    """

    def wrap(func: Callable[..., None]) -> QNode:
        return QNode(func, num_wires, name)

    return wrap


class PennylaneLikeAdapter:
    """Adapter facade: QNode → catalyst module (already the dialect form)."""

    name = "pennylane"

    @staticmethod
    def translate(node: QNode, *args: float, **kwargs: float) -> Module:
        return node.build(*args, **kwargs)


__all__ = [
    "qnode",
    "QNode",
    "PennylaneLikeAdapter",
    "Hadamard",
    "PauliX",
    "PauliY",
    "PauliZ",
    "RX",
    "RY",
    "RZ",
    "PhaseShift",
    "CNOT",
    "CZ",
    "SWAP",
    "IsingZZ",
]
