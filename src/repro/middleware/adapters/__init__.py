"""Front-end adapters: Qiskit-, Pennylane-, CUDA-Q-like, and native QPI."""

from repro.middleware.adapters.cudaq_like import CudaqLikeAdapter, Kernel, QVector, make_kernel
from repro.middleware.adapters.pennylane_like import PennylaneLikeAdapter, QNode, qnode
from repro.middleware.adapters.qiskit_like import (
    ClassicalRegister,
    QiskitLikeAdapter,
    QiskitLikeCircuit,
    QuantumRegister,
)
from repro.middleware.adapters.qpi import (
    QPI_SUCCESS,
    QpiAdapter,
    qpi_apply,
    qpi_create,
    qpi_destroy,
    qpi_finalize,
    qpi_measure,
    qpi_measure_all,
)

__all__ = [
    "CudaqLikeAdapter",
    "Kernel",
    "QVector",
    "make_kernel",
    "PennylaneLikeAdapter",
    "QNode",
    "qnode",
    "ClassicalRegister",
    "QiskitLikeAdapter",
    "QiskitLikeCircuit",
    "QuantumRegister",
    "QPI_SUCCESS",
    "QpiAdapter",
    "qpi_apply",
    "qpi_create",
    "qpi_destroy",
    "qpi_finalize",
    "qpi_measure",
    "qpi_measure_all",
]
