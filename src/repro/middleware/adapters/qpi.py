"""QPI — the stack's native C-style programming interface.

The paper's own frontend (Kaya et al., "QPI: A Programming Interface for
Quantum Computers", QCE'24) is a procedural C API.  This adapter mirrors
that shape: explicit handle allocation, free functions, integer status
codes — deliberately un-Pythonic, because its purpose in the Figure 2
experiment is to be a *fourth, maximally different* surface syntax that
still lands in the same IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.errors import AdapterError

QPI_SUCCESS = 0
QPI_ERROR_INVALID_HANDLE = 1
QPI_ERROR_INVALID_ARGUMENT = 2

_handles: Dict[int, "_QpiProgram"] = {}
_next_handle = [1]


@dataclass
class _QpiProgram:
    num_qubits: int
    name: str
    ops: List[Tuple[str, Tuple[int, ...], Tuple[float, ...]]] = field(default_factory=list)
    measured: List[int] = field(default_factory=list)
    finalized: bool = False


def qpi_create(num_qubits: int, name: str = "qpi_program") -> int:
    """Allocate a program handle; returns the handle id (> 0)."""
    if num_qubits < 1:
        raise AdapterError("qpi_create: num_qubits must be >= 1")
    handle = _next_handle[0]
    _next_handle[0] += 1
    _handles[handle] = _QpiProgram(int(num_qubits), str(name))
    return handle


def qpi_destroy(handle: int) -> int:
    """Release a handle; returns a QPI status code."""
    if _handles.pop(handle, None) is None:
        return QPI_ERROR_INVALID_HANDLE
    return QPI_SUCCESS


def _get(handle: int) -> _QpiProgram:
    prog = _handles.get(handle)
    if prog is None:
        raise AdapterError(f"invalid QPI handle {handle}")
    if prog.finalized:
        raise AdapterError(f"QPI handle {handle} already finalized")
    return prog


_GATE_ARITY = {
    "H": (1, 0),
    "X": (1, 0),
    "Y": (1, 0),
    "Z": (1, 0),
    "S": (1, 0),
    "T": (1, 0),
    "RX": (1, 1),
    "RY": (1, 1),
    "RZ": (1, 1),
    "PRX": (1, 2),
    "CNOT": (2, 0),
    "CZ": (2, 0),
    "SWAP": (2, 0),
}

_TO_MNEMONIC = {
    "H": "h",
    "X": "x",
    "Y": "y",
    "Z": "z",
    "S": "s",
    "T": "t",
    "RX": "rx",
    "RY": "ry",
    "RZ": "rz",
    "PRX": "prx",
    "CNOT": "cx",
    "CZ": "cz",
    "SWAP": "swap",
}


def qpi_apply(
    handle: int,
    gate: str,
    qubits: Sequence[int],
    params: Sequence[float] = (),
) -> int:
    """Append a gate; returns a QPI status code."""
    prog = _get(handle)
    gate = gate.upper()
    arity = _GATE_ARITY.get(gate)
    if arity is None:
        return QPI_ERROR_INVALID_ARGUMENT
    nq, np_ = arity
    if len(qubits) != nq or len(params) != np_:
        return QPI_ERROR_INVALID_ARGUMENT
    if any(not 0 <= q < prog.num_qubits for q in qubits):
        return QPI_ERROR_INVALID_ARGUMENT
    prog.ops.append(
        (_TO_MNEMONIC[gate], tuple(int(q) for q in qubits), tuple(float(p) for p in params))
    )
    return QPI_SUCCESS


def qpi_measure(handle: int, qubit: int) -> int:
    """Mark *qubit* for Z-basis measurement; returns a status code."""
    prog = _get(handle)
    if not 0 <= qubit < prog.num_qubits:
        return QPI_ERROR_INVALID_ARGUMENT
    if qubit not in prog.measured:
        prog.measured.append(int(qubit))
    return QPI_SUCCESS


def qpi_measure_all(handle: int) -> int:
    prog = _get(handle)
    prog.measured = list(range(prog.num_qubits))
    return QPI_SUCCESS


def qpi_finalize(handle: int) -> QuantumCircuit:
    """Close the program and translate it into the stack's circuit IR."""
    prog = _get(handle)
    prog.finalized = True
    circuit = QuantumCircuit(prog.num_qubits, name=prog.name)
    for name, qubits, params in prog.ops:
        circuit.append(name, qubits, params)
    for q in sorted(prog.measured):
        circuit.measure(q)
    return circuit


class QpiAdapter:
    """Adapter facade for symmetry with the other front ends."""

    name = "qpi"

    @staticmethod
    def translate(handle: int) -> QuantumCircuit:
        return qpi_finalize(handle)


__all__ = [
    "QPI_SUCCESS",
    "QPI_ERROR_INVALID_HANDLE",
    "QPI_ERROR_INVALID_ARGUMENT",
    "qpi_create",
    "qpi_destroy",
    "qpi_apply",
    "qpi_measure",
    "qpi_measure_all",
    "qpi_finalize",
    "QpiAdapter",
]
