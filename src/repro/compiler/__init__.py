"""MQSS-style multi-dialect compiler: IR, dialects, lowering, JIT."""

from repro.compiler.dialects import (
    CATALYST,
    CATALYST_GATES,
    QIR,
    QUAKE,
    QUAKE_GATES,
    CatalystKernel,
    QuakeKernel,
)
from repro.compiler.ir import Builder, Module, Operation, Value, verify_module
from repro.compiler.jit import CompiledProgram, JITCompiler, Program
from repro.compiler.lowering import (
    circuit_to_qir,
    lower_to_qir,
    normalize_to_circuit,
    qir_to_circuit,
    register_dialect_conversion,
)
from repro.compiler.plans import (
    BoundPlan,
    ExecutionPlan,
    plan_cache_clear,
    plan_cache_info,
    plan_for,
)

__all__ = [
    "CATALYST",
    "CATALYST_GATES",
    "QIR",
    "QUAKE",
    "QUAKE_GATES",
    "CatalystKernel",
    "QuakeKernel",
    "Builder",
    "Module",
    "Operation",
    "Value",
    "verify_module",
    "CompiledProgram",
    "JITCompiler",
    "Program",
    "circuit_to_qir",
    "lower_to_qir",
    "normalize_to_circuit",
    "qir_to_circuit",
    "register_dialect_conversion",
    "BoundPlan",
    "ExecutionPlan",
    "plan_cache_clear",
    "plan_cache_info",
    "plan_for",
]
