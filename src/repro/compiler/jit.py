"""The JIT compiler: QDMI-informed, cache-aware hardware compilation.

This is the Figure 3 loop: at compile time the JIT queries QDMI for the
device's *current* calibration and feeds it to the noise-adaptive
transpiler, "enabling JIT adaptation of compilation and scheduling
strategies per platform … just-in-time quantum circuit transpilation
can reduce noise".

Compiled artifacts are cached keyed by (program fingerprint, layout
method, calibration timestamp): re-submitting the same program against
unchanged calibration is a cache hit; a recalibration invalidates the
entry and triggers re-placement — precisely the "adaptive
backend-awareness via QDMI adjusting dynamically to the selected
device's status" behaviour the paper credits MQSS with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.ir import Module, verify_module
from repro.compiler.lowering import circuit_to_qir, lower_to_qir, qir_to_circuit
from repro.errors import CompilerError
from repro.qdmi.interface import QDMIDevice, QDMIProperty
from repro.qpu.params import CalibrationSnapshot
from repro.qpu.topology import Topology
from repro.transpiler.transpile import TranspileResult, transpile

Program = Union[Module, QuantumCircuit]


@dataclass(frozen=True)
class CompiledProgram:
    """A hardware-ready artifact plus its compilation provenance."""

    result: TranspileResult
    source_fingerprint: str
    calibration_timestamp: float
    layout_method: str
    from_cache: bool = False

    @property
    def circuit(self) -> QuantumCircuit:
        return self.result.circuit


class JITCompiler:
    """Compile programs against live QDMI device data, with caching.

    ``freshness`` (seconds) quantizes the calibration timestamp in the
    cache key: compilations are reused while the device data is younger
    than one freshness window, and recompiled after — live enough to
    react to drift and recalibration, cheap enough for tight loops.
    """

    def __init__(
        self,
        qdmi: QDMIDevice,
        *,
        layout_method: str = "noise_adaptive",
        freshness: float = 900.0,
    ) -> None:
        if freshness <= 0:
            raise CompilerError("freshness must be positive")
        self.qdmi = qdmi
        self.layout_method = layout_method
        self.freshness = float(freshness)
        self._cache: Dict[Tuple[str, str, int], CompiledProgram] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self._topology: Optional[Topology] = None

    # -- device data ---------------------------------------------------------

    def _device_topology(self, snapshot: CalibrationSnapshot) -> Topology:
        if self._topology is None:
            self._topology = snapshot.topology
        return self._topology

    def _current_snapshot(self) -> CalibrationSnapshot:
        with self.qdmi.open_session() as session:
            return session.query(QDMIProperty.CALIBRATION_SNAPSHOT)

    # -- frontend normalization -------------------------------------------------

    @staticmethod
    def to_logical_circuit(program: Program) -> Tuple[QuantumCircuit, str]:
        """Normalize any accepted program form to (logical circuit,
        fingerprint) by running the lowering pipeline."""
        if isinstance(program, QuantumCircuit):
            module = circuit_to_qir(program)
        elif isinstance(program, Module):
            module = program
        else:
            raise CompilerError(
                f"cannot compile object of type {type(program).__name__}"
            )
        verify_module(module)
        fingerprint = module.fingerprint()
        if module.dialects_used() != {"qir"}:
            module = lower_to_qir(module)
        circuit = qir_to_circuit(module)
        return circuit, fingerprint

    # -- compilation ----------------------------------------------------------------

    def compile(
        self,
        program: Program,
        *,
        layout_method: Optional[str] = None,
    ) -> CompiledProgram:
        """Lower, place, route, and synthesize *program* for the device.

        Cache semantics: identical source + same layout method + device
        data within the same freshness window → cached artifact.  A
        recalibration (or enough elapsed drift) lands in a new window
        and forces a fresh noise-adaptive compilation.
        """
        method = layout_method or self.layout_method
        circuit, fingerprint = self.to_logical_circuit(program)
        snapshot = self._current_snapshot()
        key = (fingerprint, method, int(snapshot.timestamp // self.freshness))
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return CompiledProgram(
                result=hit.result,
                source_fingerprint=fingerprint,
                calibration_timestamp=snapshot.timestamp,
                layout_method=method,
                from_cache=True,
            )
        self.cache_misses += 1
        result = transpile(
            circuit,
            self._device_topology(snapshot),
            snapshot=snapshot if method != "trivial" else None,
            layout_method=method,
        )
        artifact = CompiledProgram(
            result=result,
            source_fingerprint=fingerprint,
            calibration_timestamp=snapshot.timestamp,
            layout_method=method,
        )
        self._cache[key] = artifact
        return artifact

    def execution_plan(self, program: Program):
        """The engine-agnostic :class:`~repro.compiler.plans.ExecutionPlan`
        for *program*'s logical circuit, via the cross-request plan cache.

        Unlike :meth:`compile`, plans are device-independent — no QDMI
        session, no calibration key — so the same compiler instance can
        serve simulator traffic without touching the device.
        """
        from repro.compiler.lowering import normalize_to_circuit
        from repro.compiler.plans import plan_for

        return plan_for(normalize_to_circuit(program))

    def cache_info(self) -> Dict[str, int]:
        return {
            "entries": len(self._cache),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
        }


__all__ = ["CompiledProgram", "JITCompiler", "Program"]
