"""Progressive lowering: dialect → QIR → hardware circuit.

Stage 1 (:func:`lower_to_qir`) rewrites every front-end dialect op into
the shared ``qir`` dialect, whose gate names coincide with the library
mnemonics of :mod:`repro.circuits.gates`.  Stage 2
(:func:`qir_to_circuit`) is code generation into a
:class:`~repro.circuits.circuit.QuantumCircuit`, after which the
hardware-specific stage (placement/routing/native synthesis) is the
transpiler's job — driven by the JIT in :mod:`repro.compiler.jit`.

New dialects plug in by registering a conversion function, matching the
paper's "evolving compiler infrastructure enables integration of
additional dialects".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.dialects import CATALYST, CATALYST_GATES, QIR, QUAKE
from repro.compiler.ir import Module, Operation, Value
from repro.errors import DialectError, LoweringError

#: dialect name → conversion function (op, qubit-resolver) → list of QIR ops
ConversionFn = Callable[[Operation, Dict[int, int]], List[Operation]]
_CONVERSIONS: Dict[str, ConversionFn] = {}


def register_dialect_conversion(dialect: str, fn: ConversionFn) -> None:
    """Plug a new front-end dialect into the lowering pipeline."""
    _CONVERSIONS[dialect] = fn


def lower_to_qir(module: Module) -> Module:
    """Rewrite all front-end dialect ops into the shared ``qir`` dialect.

    Qubit SSA values are resolved to physical register indices by
    following ``alloca``/``extract`` chains; the QIR dialect then refers
    to qubits by plain integer attributes (QIR's ``%Qubit* inttoptr``
    convention).
    """
    out = Module(module.name)
    qubit_index: Dict[int, int] = {}  # value id → register index
    num_qubits = 0
    for op in module.ops:
        if op.qualified in ("quake.alloca", "catalyst.alloc"):
            size = int(op.attributes.get("size", op.attributes.get("num_qubits", 0)))
            if size < 1:
                raise LoweringError(f"{op.qualified} with invalid size {size}")
            num_qubits = max(num_qubits, size)
            continue
        if op.qualified in ("quake.extract_ref", "catalyst.extract"):
            idx = int(op.attributes.get("index", op.attributes.get("idx", -1)))
            if not 0 <= idx < num_qubits:
                raise LoweringError(f"{op.qualified} index {idx} out of range")
            qubit_index[op.results[0].id] = idx
            continue
        if op.dialect == QIR:
            out.add(op)
            continue
        conv = _CONVERSIONS.get(op.dialect)
        if conv is None:
            raise DialectError(
                f"no conversion registered for dialect {op.dialect!r}"
            )
        for lowered in conv(op, qubit_index):
            out.add(lowered)
    out.ops.insert(
        0,
        Operation(QIR, "init", attributes={"num_qubits": num_qubits}),
    )
    return out


def _qir_gate(name: str, qubits: List[int], params: Tuple[float, ...] = ()) -> Operation:
    attrs: Dict[str, object] = {"qubits": tuple(qubits)}
    if params:
        attrs["params"] = tuple(params)
    return Operation(QIR, name, attributes=attrs)


def _convert_quake(op: Operation, qubit_index: Dict[int, int]) -> List[Operation]:
    qs = [qubit_index[v.id] for v in op.operands if v.type == "qubit"]
    params = tuple(op.attributes.get("params", ()))
    n_ctl = int(op.attributes.get("num_controls", 0))
    if op.name == "mz":
        return [
            Operation(
                QIR,
                "mz",
                attributes={"qubits": (qs[0],), "clbit": int(op.attributes["clbit"])},
            )
        ]
    if n_ctl:
        if n_ctl != 1 or len(qs) != 2:
            raise LoweringError(
                f"quake.{op.name}: only single-control gates supported, got {n_ctl}"
            )
        base = {"x": "cx", "z": "cz"}.get(op.name)
        if base is None:
            raise LoweringError(f"no controlled form for quake.{op.name}")
        return [_qir_gate(base, qs)]
    name_map = {"r1": "p"}
    return [_qir_gate(name_map.get(op.name, op.name), qs, params)]


def _convert_catalyst(op: Operation, qubit_index: Dict[int, int]) -> List[Operation]:
    qs = [qubit_index[v.id] for v in op.operands if v.type == "qubit"]
    if op.name == "measure":
        return [
            Operation(
                QIR,
                "mz",
                attributes={"qubits": (qs[0],), "clbit": int(op.attributes["clbit"])},
            )
        ]
    if op.name != "custom":
        raise LoweringError(f"unknown catalyst op {op.name!r}")
    gate = str(op.attributes.get("gate"))
    try:
        mnemonic, _, _ = CATALYST_GATES[gate]
    except KeyError:
        raise LoweringError(f"unknown catalyst gate {gate!r}") from None
    params = tuple(op.attributes.get("params", ()))
    return [_qir_gate(mnemonic, qs, params)]


register_dialect_conversion(QUAKE, _convert_quake)
register_dialect_conversion(CATALYST, _convert_catalyst)


def qir_to_circuit(module: Module) -> QuantumCircuit:
    """Code generation: QIR-dialect module → logical circuit."""
    if not module.ops or module.ops[0].qualified != "qir.init":
        raise LoweringError("QIR module must start with qir.init")
    num_qubits = int(module.ops[0].attributes["num_qubits"])
    circuit = QuantumCircuit(num_qubits, name=module.name)
    for op in module.ops[1:]:
        if op.dialect != QIR:
            raise LoweringError(
                f"unlowered op {op.qualified}; run lower_to_qir first"
            )
        qubits = [int(q) for q in op.attributes.get("qubits", ())]
        if op.name == "mz":
            circuit.measure(qubits[0], int(op.attributes["clbit"]))
        elif op.name == "barrier":
            circuit.barrier(*qubits)
        else:
            params = [float(p) for p in op.attributes.get("params", ())]
            circuit.append(op.name, qubits, params)
    return circuit


def normalize_to_circuit(program) -> QuantumCircuit:
    """Normalize a compiler program (Module or QuantumCircuit) to a
    logical circuit, lowering non-QIR dialects as needed.

    This is the execution-plan front door: :func:`repro.compiler.plans.plan_for`
    keys on circuit structure, so Modules must reach circuit form before
    planning.  Circuits pass through untouched (no QIR round-trip).
    """
    if isinstance(program, QuantumCircuit):
        return program
    if not isinstance(program, Module):
        raise LoweringError(
            f"cannot normalize object of type {type(program).__name__}"
        )
    module = program
    if module.dialects_used() != {QIR}:
        module = lower_to_qir(module)
    return qir_to_circuit(module)


def circuit_to_qir(circuit: QuantumCircuit) -> Module:
    """Inverse direction: lift a logical circuit into the QIR dialect
    (used when a front end hands the client a circuit directly)."""
    module = Module(circuit.name)
    module.add(Operation(QIR, "init", attributes={"num_qubits": circuit.num_qubits}))
    for inst in circuit:
        if inst.name == "measure":
            module.add(
                Operation(
                    QIR,
                    "mz",
                    attributes={"qubits": tuple(inst.qubits), "clbit": inst.clbits[0]},
                )
            )
        elif inst.name == "barrier":
            module.add(Operation(QIR, "barrier", attributes={"qubits": tuple(inst.qubits)}))
        else:
            attrs: Dict[str, object] = {"qubits": tuple(inst.qubits)}
            if inst.params:
                attrs["params"] = tuple(float(p) for p in inst.params)  # type: ignore[arg-type]
            module.add(Operation(QIR, inst.name, attributes=attrs))
    return module


__all__ = [
    "register_dialect_conversion",
    "lower_to_qir",
    "qir_to_circuit",
    "circuit_to_qir",
    "normalize_to_circuit",
]
