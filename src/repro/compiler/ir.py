"""A miniature MLIR-like intermediate representation.

The paper's compilation backend is "built on a flexible, Multi-Level
Intermediate Representation (MLIR)-based framework capable of supporting
multiple dialects … This dialect-agnostic compiler progressively lowers
high-level programs into a shared IR, such as the Quantum Intermediate
Representation (QIR), and finally into hardware-specific instructions."

This module provides the structural skeleton of that design: SSA
:class:`Value`\\ s, :class:`Operation`\\ s namespaced by dialect,
:class:`Module`\\ s holding an operation list, and a :class:`Builder`
for front ends.  Dialect *semantics* (which ops exist, how they lower)
live in :mod:`repro.compiler.dialects` and
:mod:`repro.compiler.lowering`.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CompilerError


@dataclass(frozen=True)
class Value:
    """An SSA value: produced once, used many times."""

    id: int
    type: str  # "qubit" | "bit" | "f64"

    def __repr__(self) -> str:
        return f"%{self.id}:{self.type}"


@dataclass
class Operation:
    """One IR operation, namespaced by dialect: ``<dialect>.<name>``."""

    dialect: str
    name: str
    operands: Tuple[Value, ...] = ()
    results: Tuple[Value, ...] = ()
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def qualified(self) -> str:
        return f"{self.dialect}.{self.name}"

    def __repr__(self) -> str:
        res = ", ".join(map(repr, self.results))
        args = ", ".join(map(repr, self.operands))
        attrs = (
            " {" + ", ".join(f"{k} = {v!r}" for k, v in sorted(self.attributes.items())) + "}"
            if self.attributes
            else ""
        )
        head = f"{res} = " if self.results else ""
        return f"{head}{self.qualified}({args}){attrs}"


class Module:
    """A flat, single-function program: an ordered list of operations.

    Real MLIR has regions/blocks; a quantum kernel body is straight-line
    (control flow is the host language's job in this stack), so a flat
    list captures the structure the lowering pipeline actually needs.
    """

    def __init__(self, name: str = "kernel") -> None:
        self.name = str(name)
        self.ops: List[Operation] = []
        self._value_counter = itertools.count()

    def new_value(self, type_: str) -> Value:
        return Value(next(self._value_counter), type_)

    def add(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op

    def dialects_used(self) -> frozenset:
        return frozenset(op.dialect for op in self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def dump(self) -> str:
        """Textual IR, one op per line (diagnostics / golden tests)."""
        lines = [f"module @{self.name} {{"]
        lines += [f"  {op!r}" for op in self.ops]
        lines.append("}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Content hash for compilation caching (JIT key component)."""
        h = hashlib.sha256()
        h.update(self.name.encode())
        for op in self.ops:
            h.update(op.qualified.encode())
            h.update(b"|")
            h.update(",".join(str(v.id) for v in op.operands).encode())
            h.update(b"|")
            h.update(",".join(str(v.id) for v in op.results).encode())
            h.update(b"|")
            for k in sorted(op.attributes):
                h.update(f"{k}={op.attributes[k]!r};".encode())
            h.update(b"\n")
        return h.hexdigest()

    def structural_fingerprint(self) -> str:
        """Like :meth:`fingerprint` but with parameter *values* masked.

        Numeric attribute values (floats, and tuples of floats such as
        ``params``) hash as arity-preserving placeholders, so all
        bindings of one parameterized kernel share a fingerprint — the
        IR-level analog of
        :func:`repro.circuits.serialize.structural_hash`, used to key
        plan-level caching before lowering.
        """

        def masked(v: Any) -> str:
            # Floats are parameter values; ints (qubit/clbit indices)
            # are wiring and must stay visible.
            if isinstance(v, float):
                return "#"
            if isinstance(v, tuple) and v and all(isinstance(x, float) for x in v):
                return "(" + ",".join("#" for _ in v) + ")"
            return repr(v)

        h = hashlib.sha256()
        h.update(b"structural|")
        h.update(self.name.encode())
        for op in self.ops:
            h.update(op.qualified.encode())
            h.update(b"|")
            h.update(",".join(str(v.id) for v in op.operands).encode())
            h.update(b"|")
            h.update(",".join(str(v.id) for v in op.results).encode())
            h.update(b"|")
            for k in sorted(op.attributes):
                h.update(f"{k}={masked(op.attributes[k])};".encode())
            h.update(b"\n")
        return h.hexdigest()


class Builder:
    """Convenience op-builder bound to one module and one dialect."""

    def __init__(self, module: Module, dialect: str) -> None:
        self.module = module
        self.dialect = dialect

    def emit(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[str] = (),
        **attributes: Any,
    ) -> Tuple[Value, ...]:
        """Append ``<dialect>.<name>`` and return its result values."""
        results = tuple(self.module.new_value(t) for t in result_types)
        self.module.add(
            Operation(
                dialect=self.dialect,
                name=name,
                operands=tuple(operands),
                results=results,
                attributes=dict(attributes),
            )
        )
        return results


def verify_module(module: Module) -> None:
    """Structural SSA check: every operand was produced by an earlier op
    (or is a block argument, which this flat IR does not have)."""
    defined: set[int] = set()
    for op in module.ops:
        for v in op.operands:
            if v.id not in defined:
                raise CompilerError(
                    f"use of undefined value {v!r} in {op.qualified}"
                )
        for v in op.results:
            if v.id in defined:
                raise CompilerError(f"value {v!r} defined twice")
            defined.add(v.id)


__all__ = ["Value", "Operation", "Module", "Builder", "verify_module"]
