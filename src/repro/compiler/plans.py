"""Compiled execution plans and the cross-request plan cache.

The engines historically re-derived everything per trajectory window:
the DAG commutation scan, greedy fusion chunking, diagonal-table
builds, Clifford-segment boundaries, MPS SWAP routes.  For the
production traffic shape — many parameter bindings of one ansatz — all
of that analysis depends only on the circuit's *structure*, so this
module compiles it once into an engine-agnostic :class:`ExecutionPlan`
and caches plans across requests in a bounded LRU keyed by
``(structural_hash, engine sub-options)``.

Two tiers keep parameter values out of the shared cache:

:class:`ExecutionPlan`
    One per circuit structure, shared across requests.  Holds strictly
    value-independent artifacts: per-window fusion *partitions* (which
    positions fuse into which diagonal table or gate block — see
    :func:`repro.simulator.engines.dense.partition_window`), fully
    materialized *static* fused items (every member takes zero
    parameters, so the table is bit-identical for any circuit sharing
    the hash), and the MPS SWAP route table.  The structural hash's
    per-instruction diagonality bit is what makes sharing partitions
    sound: same hash ⇒ same diagonality ⇒ same partition, even at
    value edges like ``ry(0)``.

:class:`BoundPlan`
    One per request (one concrete binding).  Resolves partitions into
    applicable item lists, rematerializing only the
    parameter-dependent items, and computes the bind-time artifacts
    whose value *does* depend on concrete angles (the hybrid engine's
    Clifford boundary — ``rz(π/2)`` is Clifford, ``rz(0.3)`` is not).

Everything is lazy: building a plan is cheap, each window's partition
and static tables are computed on first execution and memoized on the
shared tier, so a warm cache skips the scan, the routing, and the
static matrix/table builds entirely.

Correctness contract: planned and unplanned execution share one
partition/materialization code path (the plan layer only decides
whether results are *reused*), so seeded counts are bit-identical by
construction and RNG draw order is untouched.  The differential fuzz
suite (``tests/test_equivalence_fuzz.py``) pins this across all
backends.

Import discipline: this module imports only ``repro.circuits`` /
``repro.qpu`` at module scope; simulator modules are imported lazily
inside functions (the sampler imports this module, and the simulator
package pulls in the sampler).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import instruction_is_clifford
from repro.circuits.gates import UNITARY_NOOPS
from repro.circuits.serialize import structural_hash
from repro.telemetry import tracing as _tracing

#: Master switch: when ``False`` the sampler drivers run unplanned
#: (every window re-analyzed per request) — the differential baseline.
PLANS_ENABLED = True

#: Bounded-LRU capacity of the cross-request plan cache.
PLAN_CACHE_MAX = 128

_CACHE: "OrderedDict[Tuple[str, tuple], ExecutionPlan]" = OrderedDict()
_LOCK = threading.RLock()
_HITS = 0
_MISSES = 0
_EVICTIONS = 0
_UNSET = object()


def _dense():
    from repro.simulator.engines import dense

    return dense


def _options_key() -> tuple:
    """The ``engine_mode`` sub-options that change what a plan contains.

    Read lazily at :func:`plan_for` time so flipping a fusion toggle or
    retuning ``chi`` / ``truncation_threshold`` lands in a different
    cache slot instead of serving stale artifacts.
    """
    from repro.simulator import sampler
    from repro.simulator.engines import dense, mps

    return (
        bool(dense.FUSE_DIAGONAL_RUNS),
        bool(dense.FUSE_BLOCKS),
        int(dense._FUSION_MAX_QUBITS),
        int(mps.CHI),
        float(mps.TRUNCATION_THRESHOLD),
        # Blocked-sweep schedule inputs: the toggle and the working-set
        # budget the tile size derives from.
        bool(dense.BLOCKED_SWEEPS),
        int(sampler.BATCH_MAX_BYTES),
    )


class ExecutionPlan:
    """Value-independent compiled artifacts for one circuit structure.

    Shared across requests (and threads) through the plan cache; every
    memo written here is derived purely from structure, so concurrent
    writers can only ever race to store equal values.
    """

    __slots__ = (
        "structural_hash",
        "options_key",
        "num_qubits",
        "num_clbits",
        "swap_routes",
        "_partitions",
        "_static",
        "_schedules",
    )

    def __init__(self, circuit: QuantumCircuit, key: Tuple[str, tuple]) -> None:
        self.structural_hash, self.options_key = key
        self.num_qubits = circuit.num_qubits
        self.num_clbits = circuit.num_clbits
        self.swap_routes = self._route_table(circuit)
        # (start, stop) window → fusion partition (or None: nothing fuses)
        self._partitions: Dict[Tuple[int, int], Optional[tuple]] = {}
        # (start, stop) window → {entry index → materialized static item}
        self._static: Dict[Tuple[int, int], Dict[int, tuple]] = {}
        # (start, stop) window → blocked sweep schedule (or None)
        self._schedules: Dict[Tuple[int, int], Optional[tuple]] = {}

    # -- artifacts -------------------------------------------------------------

    def _route_table(self, circuit: QuantumCircuit) -> Dict[Tuple[int, int], tuple]:
        """SWAP routes for every non-adjacent 2q gate in the circuit —
        exactly the paths the MPS engine would compute on the fly."""
        from repro.qpu.topology import Topology

        routes: Dict[Tuple[int, int], tuple] = {}
        topo = None
        for inst in circuit:
            if len(inst.qubits) != 2 or inst.name in UNITARY_NOOPS:
                continue
            a, b = inst.qubits
            lo, hi = (a, b) if a < b else (b, a)
            if hi - lo <= 1 or (lo, hi) in routes:
                continue
            if topo is None:
                topo = Topology.line(self.num_qubits)
            routes[(lo, hi)] = tuple(topo.shortest_path(lo, hi))
        return routes

    def window_partition(
        self, instructions: Sequence[Instruction], start: int, stop: int
    ) -> Optional[tuple]:
        """The fusion partition of ``instructions[start:stop]``, memoized
        across requests by window key."""
        key = (start, stop)
        part = self._partitions.get(key, _UNSET)
        if part is _UNSET:
            part = _dense().partition_window(instructions[start:stop])
            self._partitions[key] = part
        return part

    def window_block_schedule(
        self, instructions: Sequence[Instruction], start: int, stop: int
    ) -> Optional[tuple]:
        """The cache-blocked sweep schedule of ``instructions[start:stop]``
        (:func:`repro.simulator.engines.dense.plan_blocked_window`), or
        ``None`` when blocking does not engage.  Memoized across
        requests like the partition: the schedule depends only on
        structure, the fusion toggles, and the working-set budget — all
        pinned by this plan's cache key."""
        key = (start, stop)
        schedule = self._schedules.get(key, _UNSET)
        if schedule is _UNSET:
            partition = self.window_partition(instructions, start, stop)
            schedule = _dense().plan_blocked_window(
                instructions[start:stop], partition, self.num_qubits
            )
            self._schedules[key] = schedule
        return schedule

    def static_item(
        self, window: Tuple[int, int], index: int, ops: Sequence[Instruction], entry
    ):
        """Materialize (once, globally) a static fused item — all members
        zero-parameter, so the table is shared by every binding."""
        cache = self._static.setdefault(window, {})
        item = cache.get(index)
        if item is None:
            item = _dense().materialize_entry(ops, entry)
            cache[index] = item
        return item

    # -- binding ---------------------------------------------------------------

    def bind(self, instructions: Sequence[Instruction]) -> "BoundPlan":
        """A per-request view over this plan for one concrete binding."""
        return BoundPlan(self, instructions)

    def __repr__(self) -> str:
        return (
            f"<ExecutionPlan {self.structural_hash[:12]} "
            f"{self.num_qubits}q windows={len(self._partitions)}>"
        )


class BoundPlan:
    """One request's view of a cached :class:`ExecutionPlan`.

    Memoizes fully materialized per-window item lists (static items
    come from the shared tier; parameter-dependent items are built once
    per binding) plus the bind-time artifacts that depend on concrete
    parameter values.
    """

    __slots__ = ("plan", "instructions", "_items", "_boundary")

    def __init__(self, plan: ExecutionPlan, instructions: Sequence[Instruction]) -> None:
        self.plan = plan
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        self._items: Dict[Tuple[int, int], Optional[list]] = {}
        self._boundary: Optional[int] = None

    def window_items(self, start: int, stop: int) -> Optional[list]:
        """Applicable fused items for the window, or ``None`` when the
        partition found nothing to fuse (callers fall back to the plain
        per-instruction loop, same as the unplanned path)."""
        key = (start, stop)
        items = self._items.get(key, _UNSET)
        if items is not _UNSET:
            return items
        partition = self.plan.window_partition(self.instructions, start, stop)
        if partition is None:
            items = None
        else:
            dense = _dense()
            ops = self.instructions[start:stop]
            items = []
            for index, entry in enumerate(partition):
                if dense.entry_is_static(ops, entry):
                    items.append(self.plan.static_item(key, index, ops, entry))
                else:
                    items.append(dense.materialize_entry(ops, entry))
        self._items[key] = items
        return items

    def window_block_schedule(self, start: int, stop: int) -> Optional[tuple]:
        """The window's blocked sweep schedule from the shared memo (the
        schedule is value-independent, so binding adds nothing)."""
        return self.plan.window_block_schedule(self.instructions, start, stop)

    @property
    def clifford_boundary(self) -> int:
        """Index of the first non-Clifford instruction (bind-time:
        Clifford-ness depends on concrete angles — ``rz(π/2)`` is
        Clifford, ``rz(0.3)`` is not — so it cannot live on the shared
        structural tier)."""
        if self._boundary is None:
            boundary = len(self.instructions)
            for idx, inst in enumerate(self.instructions):
                if not instruction_is_clifford(inst):
                    boundary = idx
                    break
            self._boundary = boundary
        return self._boundary

    @property
    def swap_routes(self) -> Dict[Tuple[int, int], tuple]:
        return self.plan.swap_routes

    def __repr__(self) -> str:
        return f"<BoundPlan of {self.plan!r} ({len(self.instructions)} ops)>"


# -- the cross-request cache ---------------------------------------------------


def plan_for(circuit: QuantumCircuit) -> ExecutionPlan:
    """The cached :class:`ExecutionPlan` for *circuit*'s structure under
    the current engine sub-options.

    LRU semantics: hits refresh recency; inserting beyond
    :data:`PLAN_CACHE_MAX` evicts the least recently used entry.
    """
    global _HITS, _MISSES, _EVICTIONS
    with _tracing.span("plan.lookup"):
        key = (structural_hash(circuit), _options_key())
        with _LOCK:
            plan = _CACHE.get(key)
            if plan is not None:
                _CACHE.move_to_end(key)
                _HITS += 1
                _tracing.count("plan_cache.hits")
                return plan
            _MISSES += 1
            _tracing.count("plan_cache.misses")
    with _tracing.span("plan.compile"):
        plan = ExecutionPlan(circuit, key)
    with _LOCK:
        existing = _CACHE.get(key)
        if existing is not None:
            return existing
        _CACHE[key] = plan
        while len(_CACHE) > PLAN_CACHE_MAX:
            _CACHE.popitem(last=False)
            _EVICTIONS += 1
    return plan


def plan_cache_clear() -> None:
    """Drop every cached plan and zero the hit/miss/eviction counters."""
    global _HITS, _MISSES, _EVICTIONS
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
        _EVICTIONS = 0


def plan_cache_info() -> Dict[str, int]:
    """Cache statistics: entries, capacity, hits, misses, evictions.

    The telemetry layer snapshots these per process
    (:func:`repro.telemetry.store.record_plan_cache`), so cache
    effectiveness under production traffic is observable over time.
    """
    with _LOCK:
        return {
            "entries": len(_CACHE),
            "max_entries": PLAN_CACHE_MAX,
            "hits": _HITS,
            "misses": _MISSES,
            "evictions": _EVICTIONS,
        }


def plan_cache_keys() -> List[Tuple[str, tuple]]:
    """The cache keys in LRU order (oldest first) — test/diagnostic hook."""
    with _LOCK:
        return list(_CACHE.keys())


__all__ = [
    "ExecutionPlan",
    "BoundPlan",
    "plan_for",
    "plan_cache_clear",
    "plan_cache_info",
    "plan_cache_keys",
    "PLANS_ENABLED",
    "PLAN_CACHE_MAX",
]
