"""Front-end dialects: quake-like and catalyst-like kernel builders.

The paper's compiler supports "multiple dialects, including NVIDIA's
Quake and Xanadu's Catalyst".  We model two dialects with genuinely
different surface conventions:

* **quake** (CUDA-Q-like): one op per named gate (``quake.h``,
  ``quake.rx``), controlled gates via a ``controls`` operand prefix,
  measurement ``quake.mz``;
* **catalyst** (Pennylane-like): a single ``catalyst.custom`` op whose
  gate is an attribute (``gate = "Hadamard"``), matching how Catalyst
  encodes ``quantum.custom "PauliX"``.

Both dialects allocate qubits from a register (``alloca`` / ``alloc``)
and get lowered by :mod:`repro.compiler.lowering` into the shared
QIR-like dialect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import Builder, Module, Value
from repro.errors import DialectError

QUAKE = "quake"
CATALYST = "catalyst"
QIR = "qir"

#: quake gate ops and their arities: name → (num_qubits, num_params)
QUAKE_GATES: Dict[str, Tuple[int, int]] = {
    "h": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "s": (1, 0),
    "t": (1, 0),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "r1": (1, 1),  # phase gate in quake parlance
    "swap": (2, 0),
}

#: catalyst "custom" gate names → (our gate mnemonic, num_qubits, num_params)
CATALYST_GATES: Dict[str, Tuple[str, int, int]] = {
    "Hadamard": ("h", 1, 0),
    "PauliX": ("x", 1, 0),
    "PauliY": ("y", 1, 0),
    "PauliZ": ("z", 1, 0),
    "S": ("s", 1, 0),
    "T": ("t", 1, 0),
    "RX": ("rx", 1, 1),
    "RY": ("ry", 1, 1),
    "RZ": ("rz", 1, 1),
    "PhaseShift": ("p", 1, 1),
    "CNOT": ("cx", 2, 0),
    "CZ": ("cz", 2, 0),
    "SWAP": ("swap", 2, 0),
    "IsingZZ": ("rzz", 2, 1),
    "ControlledPhaseShift": ("cp", 2, 1),
}


class QuakeKernel:
    """Builder for quake-dialect kernels.

    >>> k = QuakeKernel(3)
    >>> k.h(0); k.cx(0, 1); k.cx(1, 2); k.mz()
    >>> module = k.module
    """

    def __init__(self, num_qubits: int, name: str = "kernel") -> None:
        if num_qubits < 1:
            raise DialectError("kernel needs at least one qubit")
        self.module = Module(name)
        self._b = Builder(self.module, QUAKE)
        (self.register,) = self._b.emit(
            "alloca", result_types=["qubit"], size=int(num_qubits)
        )
        self.num_qubits = int(num_qubits)
        self._qubits: List[Value] = []
        for q in range(num_qubits):
            (v,) = self._b.emit(
                "extract_ref", [self.register], result_types=["qubit"], index=q
            )
            self._qubits.append(v)

    def _q(self, index: int) -> Value:
        try:
            return self._qubits[index]
        except IndexError:
            raise DialectError(f"qubit {index} out of range") from None

    def gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> "QuakeKernel":
        if name not in QUAKE_GATES:
            raise DialectError(f"quake has no gate {name!r}")
        nq, np_ = QUAKE_GATES[name]
        if len(qubits) != nq or len(params) != np_:
            raise DialectError(
                f"quake.{name} takes {nq} qubits / {np_} params, "
                f"got {len(qubits)} / {len(params)}"
            )
        self._b.emit(
            name, [self._q(q) for q in qubits], params=tuple(float(p) for p in params)
        )
        return self

    # sugar ------------------------------------------------------------------
    def h(self, q: int) -> "QuakeKernel":
        return self.gate("h", [q])

    def x(self, q: int) -> "QuakeKernel":
        return self.gate("x", [q])

    def rx(self, theta: float, q: int) -> "QuakeKernel":
        return self.gate("rx", [q], [theta])

    def ry(self, theta: float, q: int) -> "QuakeKernel":
        return self.gate("ry", [q], [theta])

    def rz(self, theta: float, q: int) -> "QuakeKernel":
        return self.gate("rz", [q], [theta])

    def cx(self, control: int, target: int) -> "QuakeKernel":
        """Controlled-X: quake spells this ``quake.x [ctrl] tgt``."""
        self._b.emit("x", [self._q(control), self._q(target)], num_controls=1)
        return self

    def cz(self, control: int, target: int) -> "QuakeKernel":
        self._b.emit("z", [self._q(control), self._q(target)], num_controls=1)
        return self

    def swap(self, a: int, b: int) -> "QuakeKernel":
        return self.gate("swap", [a, b])

    def mz(self, qubits: Optional[Sequence[int]] = None) -> "QuakeKernel":
        """Measure listed qubits (default: all) in the Z basis."""
        qs = list(range(self.num_qubits)) if qubits is None else list(qubits)
        for q in qs:
            self._b.emit("mz", [self._q(q)], result_types=["bit"], clbit=q)
        return self


class CatalystKernel:
    """Builder for catalyst-dialect kernels (Pennylane-style names)."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise DialectError("kernel needs at least one qubit")
        self.module = Module(name)
        self._b = Builder(self.module, CATALYST)
        (self.register,) = self._b.emit(
            "alloc", result_types=["qubit"], num_qubits=int(num_qubits)
        )
        self.num_qubits = int(num_qubits)
        self._qubits: List[Value] = []
        for q in range(num_qubits):
            (v,) = self._b.emit(
                "extract", [self.register], result_types=["qubit"], idx=q
            )
            self._qubits.append(v)

    def custom(
        self, gate: str, qubits: Sequence[int], params: Sequence[float] = ()
    ) -> "CatalystKernel":
        if gate not in CATALYST_GATES:
            raise DialectError(f"catalyst has no gate {gate!r}")
        _, nq, np_ = CATALYST_GATES[gate]
        if len(qubits) != nq or len(params) != np_:
            raise DialectError(
                f"catalyst {gate} takes {nq} qubits / {np_} params, "
                f"got {len(qubits)} / {len(params)}"
            )
        self._b.emit(
            "custom",
            [self._qubits[q] for q in qubits],
            gate=gate,
            params=tuple(float(p) for p in params),
        )
        return self

    def measure(self, qubits: Optional[Sequence[int]] = None) -> "CatalystKernel":
        qs = list(range(self.num_qubits)) if qubits is None else list(qubits)
        for q in qs:
            self._b.emit("measure", [self._qubits[q]], result_types=["bit"], clbit=q)
        return self


__all__ = [
    "QUAKE",
    "CATALYST",
    "QIR",
    "QUAKE_GATES",
    "CATALYST_GATES",
    "QuakeKernel",
    "CatalystKernel",
]
