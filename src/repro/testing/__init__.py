"""Test-support instrumentation shipped with the package.

Lives under ``repro`` (not ``tests/``) on purpose: the deterministic
fault-injection harness (:mod:`repro.testing.faults`) is consumed by the
recovery test-suite *and* by ``scripts/bench.py``'s fault lane, and the
production modules carry its (near-free) injection points.
"""

from repro.testing.faults import Fault, FaultPlan, fault_point, inject_faults

__all__ = ["Fault", "FaultPlan", "fault_point", "inject_faults"]
