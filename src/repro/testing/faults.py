"""Deterministic fault injection for the resilience test-suite.

The recovery machinery in :mod:`repro.simulator.sharding` and
:mod:`repro.simulator.resilience` is a *specified protocol* (rebuild the
pool once, re-run only failed blocks, fall back inline, degrade on a
corrupt prefix), and a specified protocol needs a way to exercise every
branch on demand.  This module provides that: production code calls
:func:`fault_point` at named injection points, and a test (or a bench
lane) arms a :class:`FaultPlan` of :class:`Fault` specs around the code
under test with :func:`inject_faults`.

Design constraints, in order:

*Deterministic.*  A fault fires at an exact point — "kill the worker
running shard block 1", "fail the 2nd admission check" — never "some
worker, sometimes".  Matching is by point name plus either an explicit
context index (the shard block index the caller passes in) or, for
points without a natural index, the 1-based ordinal of the call.

*Fork-safe.*  Shard workers are forked children, so a plan armed in the
parent is inherited by every worker — but a fault budget like "kill
exactly one worker" must be shared *across* those processes.  Each
:class:`Fault` therefore counts down a :class:`multiprocessing.Value`
created when the plan is armed: the lock-guarded decrement guarantees a
``times=1`` kill fires in exactly one process no matter how many race
for it.

*Near-free when disarmed.*  :func:`fault_point` is one global read and a
``None`` check when no plan is active; the injection points can stay in
production code permanently.

*Honest failures.*  Raising faults raise :class:`repro.errors.FaultInjected`
(a distinct :class:`~repro.errors.ReproError`), so a recovery test can
tell its own injected failure from a genuine defect; kill faults use
``os._exit`` so the worker dies exactly as an OOM kill would — no
cleanup, no exception propagation, a broken pipe for the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from contextlib import contextmanager

from repro.errors import FaultInjected

#: Actions a :class:`Fault` may take when it fires.
FAULT_ACTIONS = ("raise", "kill", "hang")

#: The armed plan, or ``None``.  Module-global so forked workers inherit
#: it; armed/disarmed only via :func:`inject_faults`.
ACTIVE: Optional["FaultPlan"] = None


@dataclass
class Fault:
    """One deterministic failure specification.

    ``point``
        Injection-point name (e.g. ``"shard.block"``, ``"shard.init"``,
        ``"shard.attach"``, ``"shard.merge"``, ``"engine.span"``,
        ``"resilience.admission"``).
    ``action``
        ``"raise"`` (raise :class:`FaultInjected`), ``"kill"``
        (``os._exit(17)`` — an uncatchable worker death), or ``"hang"``
        (sleep *delay* seconds, for timeout paths).
    ``index``
        Fire only at this index.  Matched against the caller-supplied
        context index when the point has one (the shard block index);
        points without a natural index match their 1-based call ordinal.
        ``None`` matches every call.
    ``times``
        Total number of firings across *all* processes sharing the plan
        (``None`` = unlimited).  The default 1 is the interesting case:
        fail once, then let recovery succeed.
    ``worker_only``
        Fire only in forked worker processes, never in the parent — so
        the inline fallback path that re-runs a failed block in the
        parent is exempt and recovery can converge.
    ``delay``
        Sleep duration for ``action="hang"``.
    """

    point: str
    action: str = "raise"
    index: Optional[int] = None
    times: Optional[int] = 1
    worker_only: bool = False
    delay: float = 5.0
    _calls: int = field(default=0, repr=False, compare=False)
    _budget: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{FAULT_ACTIONS}"
            )

    def _arm(self) -> None:
        """Allocate the cross-process firing budget (fork-inherited)."""
        self._calls = 0
        if self.times is not None:
            self._budget = multiprocessing.Value("i", int(self.times))

    def _matches(self, point: str, index: Optional[int]) -> bool:
        if self.point != point:
            return False
        if self.index is None:
            return True
        if index is not None:
            return index == self.index
        # No context index at this point: match the 1-based call ordinal
        # ("fail allocation n").  Per-process counter — ordinal-matched
        # points are parent-side (admission, merge) by construction.
        self._calls += 1
        return self._calls == self.index

    def _consume_budget(self) -> bool:
        if self.times is None:
            return True
        budget = self._budget
        with budget.get_lock():
            if budget.value <= 0:
                return False
            budget.value -= 1
        return True

    def _fire(self, point: str, index: Optional[int]) -> None:
        if self.action == "kill":
            os._exit(17)
        if self.action == "hang":
            time.sleep(self.delay)
            return
        where = point if index is None else f"{point}[{index}]"
        raise FaultInjected(f"injected fault at {where}")


class FaultPlan:
    """An ordered set of armed :class:`Fault` specs."""

    def __init__(self, faults: Tuple[Fault, ...]) -> None:
        self.faults = tuple(faults)
        for fault in self.faults:
            fault._arm()


def in_worker_process() -> bool:
    """True in a forked/spawned child (pool worker), False in the parent."""
    return multiprocessing.parent_process() is not None


def fault_point(point: str, index: Optional[int] = None) -> None:
    """Production-side injection hook: fire any armed fault matching
    *point* (and *index*, when the caller has one).  A single global
    read when no plan is armed."""
    plan = ACTIVE
    if plan is None:
        return
    for fault in plan.faults:
        if fault.worker_only and not in_worker_process():
            continue
        if not fault._matches(point, index):
            continue
        if not fault._consume_budget():
            continue
        fault._fire(point, index)


@contextmanager
def inject_faults(*faults: Fault) -> Iterator[FaultPlan]:
    """Arm *faults* for the dynamic extent of the block.

    Arming happens in the parent **before** any pool is created inside
    the block, so forked workers inherit both the plan and the shared
    firing budgets.  Nesting replaces the outer plan for the inner
    block (restored on exit).
    """
    global ACTIVE
    plan = FaultPlan(faults)
    previous = ACTIVE
    ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = previous


__all__ = [
    "ACTIVE",
    "FAULT_ACTIONS",
    "Fault",
    "FaultPlan",
    "fault_point",
    "in_worker_process",
    "inject_faults",
]
