"""Calibration: live benchmarks and the automated recalibration controller."""

from repro.calibration.benchmarks import (
    BenchmarkResult,
    ghz_benchmark,
    health_check_suite,
    readout_benchmark,
)
from repro.calibration.controller import (
    CalibrationController,
    CalibrationEvent,
    ControllerStats,
)

__all__ = [
    "BenchmarkResult",
    "ghz_benchmark",
    "health_check_suite",
    "readout_benchmark",
    "CalibrationController",
    "CalibrationEvent",
    "ControllerStats",
]
