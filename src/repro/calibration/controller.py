"""The automated recalibration controller.

Section 3.2: "The 20-qubit superconducting quantum computer operates
with a fully automated routine recalibration process that requires no
human intervention … with the exact timing controlled by the HPC center
to optimize operational schedules.  Operators have the flexibility to
choose between quick and full recalibration procedures."

:class:`CalibrationController` is that loop: consult telemetry (via the
:class:`~repro.telemetry.analytics.RecalibrationAdvisor`), respect the
HPC scheduler's permission window, run the chosen procedure, log
everything.  Two policies are available for the ablation bench:

* ``scheduler_controlled`` — calibrate on advice, but only when the
  resource manager has opened a calibration window (the paper's model);
* ``fixed_period`` — calibrate every N hours regardless of need (the
  naive baseline the paper's design improves on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import CalibrationError
from repro.qpu.device import (
    FULL_CALIBRATION_DURATION,
    QUICK_CALIBRATION_DURATION,
    QPUDevice,
)
from repro.telemetry.analytics import RecalibrationAdvisor
from repro.telemetry.store import MetricStore
from repro.utils.units import HOUR


@dataclass(frozen=True)
class CalibrationEvent:
    """One executed calibration, for the operations log."""

    timestamp: float
    kind: str           # "quick" | "full"
    reason: str
    duration: float


@dataclass
class ControllerStats:
    quick_count: int = 0
    full_count: int = 0
    skipped_no_window: int = 0
    advised_none: int = 0

    @property
    def total_calibration_time(self) -> float:
        return (
            self.quick_count * QUICK_CALIBRATION_DURATION
            + self.full_count * FULL_CALIBRATION_DURATION
        )


class CalibrationController:
    """Drives automated recalibration of one device.

    Parameters
    ----------
    device:
        The QPU under management.
    advisor:
        Telemetry-driven policy (default thresholds match the paper's
        fidelity bands).
    window_fn:
        ``timestamp -> bool``: whether the HPC scheduler currently
        allows a calibration slot.  Defaults to "always allowed"
        (stand-alone operation).  The QRM wires the real reservation
        windows in here.
    policy:
        ``"scheduler_controlled"`` or ``"fixed_period"``.
    fixed_period:
        Interval for the fixed-period baseline policy.
    """

    def __init__(
        self,
        device: QPUDevice,
        *,
        advisor: Optional[RecalibrationAdvisor] = None,
        window_fn: Optional[Callable[[float], bool]] = None,
        policy: str = "scheduler_controlled",
        fixed_period: float = 24.0 * HOUR,
    ) -> None:
        if policy not in ("scheduler_controlled", "fixed_period"):
            raise CalibrationError(f"unknown policy {policy!r}")
        self.device = device
        self.advisor = advisor or RecalibrationAdvisor()
        self.window_fn = window_fn or (lambda _t: True)
        self.policy = policy
        self.fixed_period = float(fixed_period)
        self.events: List[CalibrationEvent] = []
        self.stats = ControllerStats()
        self._last_calibration_at = device.time

    # -- decision + action -----------------------------------------------------

    def step(self, store: MetricStore) -> Optional[CalibrationEvent]:
        """One controller cycle: decide and (maybe) calibrate.

        Returns the executed :class:`CalibrationEvent`, or ``None``.
        """
        now = self.device.time
        if self.policy == "fixed_period":
            if now - self._last_calibration_at < self.fixed_period:
                return None
            return self._run("full", f"fixed period {self.fixed_period / HOUR:.0f} h elapsed")
        advice = self.advisor.advise(store)
        if advice.action == "none":
            self.stats.advised_none += 1
            return None
        if not self.window_fn(now):
            self.stats.skipped_no_window += 1
            return None
        return self._run(advice.action, advice.reason)

    def force(self, kind: str, reason: str = "operator request") -> CalibrationEvent:
        """Unconditionally run a calibration (post-outage recovery path)."""
        return self._run(kind, reason)

    def _run(self, kind: str, reason: str) -> CalibrationEvent:
        started = self.device.time
        duration = self.device.calibrate(kind)
        if kind == "quick":
            self.stats.quick_count += 1
        else:
            self.stats.full_count += 1
        self._last_calibration_at = self.device.time
        event = CalibrationEvent(
            timestamp=started, kind=kind, reason=reason, duration=duration
        )
        self.events.append(event)
        return event

    @property
    def last_calibration_at(self) -> float:
        return self._last_calibration_at

    def __repr__(self) -> str:
        return (
            f"<CalibrationController {self.policy}: "
            f"{self.stats.quick_count} quick, {self.stats.full_count} full>"
        )


__all__ = ["CalibrationEvent", "ControllerStats", "CalibrationController"]
