"""Live algorithmic benchmarks: the system health checks.

Section 3.2: "the setup regularly runs a suite of algorithmic benchmarks
to check the system state.  Standardized algorithms such as GHZ state
creations are regularly run on all qubits of the QPU or subsets of them.
This provides a practical measure of the system's 'live' performance …
Deviating results can be a sign that a recalibration is needed."

Benchmarks here compile through the real transpiler (noise-aware chain
selection) and execute on the device, so their scores respond to drift
exactly the way the paper's health checks do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit, ghz_circuit
from repro.errors import DeviceError
from repro.qpu.device import QPUDevice
from repro.transpiler.layout import best_ghz_chain
from repro.transpiler.transpile import transpile


@dataclass(frozen=True)
class BenchmarkResult:
    """One health-check outcome."""

    name: str
    score: float            # fidelity-like, 1.0 = perfect
    shots: int
    qubits: Tuple[int, ...]  # physical qubits exercised
    duration: float          # seconds of QPU time consumed
    details: Dict[str, float]


def ghz_benchmark(
    device: QPUDevice,
    size: int,
    *,
    shots: int = 1024,
    chain: Optional[Sequence[int]] = None,
) -> BenchmarkResult:
    """Prepare a *size*-qubit GHZ state on the current best chain and
    score it by the population fidelity proxy ``p(0…0) + p(1…1)``.

    With ``chain`` given, that exact physical path is used (the "all
    qubits or subsets of them" sweep).
    """
    if size < 2:
        raise DeviceError("GHZ benchmark needs at least 2 qubits")
    snapshot = device.calibration()
    if chain is None:
        chain = best_ghz_chain(snapshot, size)
    if len(chain) != size:
        raise DeviceError(f"chain length {len(chain)} != size {size}")
    logical = ghz_circuit(size, name=f"ghz{size}-health")
    layout = {i: int(q) for i, q in enumerate(chain)}
    result = transpile(
        logical, device.topology, snapshot=snapshot, initial_layout=layout
    )
    job = device.execute(result.circuit, shots=shots)
    marg = job.counts.marginal(list(range(size)))
    score = marg.ghz_fidelity_estimate()
    return BenchmarkResult(
        name=f"ghz{size}",
        score=score,
        shots=shots,
        qubits=tuple(int(q) for q in chain),
        duration=job.duration,
        details={
            "p_all_zero": marg.probabilities().get("0" * size, 0.0),
            "p_all_one": marg.probabilities().get("1" * size, 0.0),
            "swap_count": float(result.swap_count),
        },
    )


def readout_benchmark(
    device: QPUDevice, *, shots: int = 512
) -> BenchmarkResult:
    """Prepare |0…0⟩ and |1…1⟩ and score mean assignment fidelity.

    Runs two trivial circuits over all qubits; the score is the average
    probability of reading every qubit correctly, an end-to-end readout
    figure that includes state-preparation error.
    """
    n = device.topology.num_qubits
    zeros = QuantumCircuit(n, name="readout-0")
    zeros.measure_all()
    ones = QuantumCircuit(n, name="readout-1")
    for q in range(n):
        ones.x(q)
    ones.measure_all()
    snapshot = device.calibration()
    job0 = device.execute(
        transpile(zeros, device.topology, snapshot=snapshot, layout_method="trivial").circuit,
        shots=shots,
    )
    job1 = device.execute(
        transpile(ones, device.topology, snapshot=snapshot, layout_method="trivial").circuit,
        shots=shots,
    )
    # per-qubit correct-assignment rates
    correct = 0.0
    for q in range(n):
        m0 = job0.counts.marginal([q])
        m1 = job1.counts.marginal([q])
        correct += 0.5 * (m0.probabilities().get("0", 0.0) + m1.probabilities().get("1", 0.0))
    score = correct / n
    return BenchmarkResult(
        name="readout",
        score=score,
        shots=2 * shots,
        qubits=tuple(range(n)),
        duration=job0.duration + job1.duration,
        details={"shots_per_state": float(shots)},
    )


def health_check_suite(
    device: QPUDevice,
    *,
    ghz_sizes: Sequence[int] = (2, 5, 10),
    shots: int = 768,
) -> Dict[str, BenchmarkResult]:
    """The periodic suite the monitoring loop runs: GHZ at several sizes
    plus the readout check.  Returns results keyed by benchmark name."""
    out: Dict[str, BenchmarkResult] = {}
    for size in ghz_sizes:
        if size <= device.topology.num_qubits:
            res = ghz_benchmark(device, size, shots=shots)
            out[res.name] = res
    ro = readout_benchmark(device, shots=max(128, shots // 4))
    out[ro.name] = ro
    return out


__all__ = ["BenchmarkResult", "ghz_benchmark", "readout_benchmark", "health_check_suite"]
