"""DCDB collector plugins.

DCDB is "plugin-based": each plugin knows how to read one subsystem and
emit a flat dict of ``sensor → value``.  The :class:`DCDBCollector`
fans a collection cycle across its plugins and lands everything in the
:class:`~repro.telemetry.store.MetricStore` under the plugin's sensor
prefix.

Plugins provided here cover the paper's Figure 3 data plane: QPU
calibration metrics (per-qubit and medians), device/job accounting, and
hooks for the facility models (cryostat, power, environment — those
plugins live next to their models in :mod:`repro.facility` and
:mod:`repro.ops`, but implement the same protocol).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import SensorError
from repro.qpu.device import QPUDevice
from repro.telemetry.store import MetricStore


class Plugin(ABC):
    """One metric source: name prefix + a ``collect`` hook."""

    #: hierarchical sensor prefix, e.g. ``"qpu"``.
    prefix: str = "plugin"

    @abstractmethod
    def collect(self, timestamp: float) -> Dict[str, float]:
        """Return ``{sensor_suffix: value}`` for this cycle."""

    def sensor(self, suffix: str) -> str:
        return f"{self.prefix}.{suffix}"


class QPUMetricsPlugin(Plugin):
    """Live quality metrics of the QPU: the Figure 4 fidelity series plus
    per-qubit T1/T2 and error rates."""

    prefix = "qpu"

    def __init__(self, device: QPUDevice, *, per_qubit: bool = True) -> None:
        self._device = device
        self._per_qubit = bool(per_qubit)

    def collect(self, timestamp: float) -> Dict[str, float]:
        snapshot = self._device.drift.effective_snapshot()
        out: Dict[str, float] = dict(snapshot.summary())
        out["status_online"] = 1.0 if self._device.status.value == "online" else 0.0
        out["calibration_age"] = timestamp - snapshot.timestamp
        if self._per_qubit:
            for q, qp in enumerate(snapshot.qubits):
                tag = f"qubit{q:02d}"
                out[f"{tag}.t1"] = qp.t1
                out[f"{tag}.t2"] = qp.t2
                out[f"{tag}.prx_error"] = qp.prx_error
                out[f"{tag}.readout_error"] = 1.0 - qp.readout_fidelity
            for (a, b), cp in snapshot.couplers.items():
                out[f"coupler{a:02d}_{b:02d}.cz_error"] = cp.cz_error
        return out


class JobAccountingPlugin(Plugin):
    """Utilization counters: jobs executed, busy/calibrating seconds."""

    prefix = "accounting"

    def __init__(self, device: QPUDevice) -> None:
        self._device = device

    def collect(self, timestamp: float) -> Dict[str, float]:
        return {
            "jobs_executed": float(self._device.jobs_executed),
            "busy_seconds": float(self._device.busy_seconds),
            "calibrating_seconds": float(self._device.calibrating_seconds),
        }


class CallbackPlugin(Plugin):
    """Adapter turning any ``timestamp -> dict`` callable into a plugin
    (how the facility models register without import cycles)."""

    def __init__(self, prefix: str, fn) -> None:
        self.prefix = str(prefix)
        self._fn = fn

    def collect(self, timestamp: float) -> Dict[str, float]:
        out = self._fn(timestamp)
        if not isinstance(out, dict):
            raise SensorError(
                f"plugin {self.prefix!r} callback must return a dict, got "
                f"{type(out).__name__}"
            )
        return out


class SimulatorCountersPlugin(Plugin):
    """One-stop snapshot of the execution core: plan-cache counters,
    resilience counters, and cumulative exec-tracing counters — a single
    :meth:`DCDBCollector.run_cycle` lands what previously needed three
    hand-placed ``record_*`` calls."""

    prefix = "simulator"

    def collect(self, timestamp: float) -> Dict[str, float]:
        from repro.compiler import plans
        from repro.simulator import resilience
        from repro.telemetry import tracing

        out: Dict[str, float] = {}
        info = plans.plan_cache_info()
        for key in ("entries", "hits", "misses", "evictions"):
            out[f"plan_cache.{key}"] = float(info[key])
        for name, value in resilience.counters().items():
            out[f"resilience.{name}"] = float(value)
        for name, value in tracing.exec_counters().items():
            out[f"exec.{name}"] = float(value)
        return out


class DCDBCollector:
    """Fans collection cycles across plugins into a store.

    ``interval`` is bookkeeping only — the operations loop decides when
    cycles actually happen and calls :meth:`run_cycle` with explicit
    simulation timestamps.
    """

    def __init__(
        self,
        store: MetricStore,
        plugins: Sequence[Plugin],
        interval: float = 60.0,
    ) -> None:
        self.store = store
        self.plugins: List[Plugin] = list(plugins)
        self.interval = float(interval)
        self.cycles_run = 0
        self.last_cycle_at: Optional[float] = None

    def add_plugin(self, plugin: Plugin) -> None:
        self.plugins.append(plugin)

    def run_cycle(self, timestamp: float) -> int:
        """Collect every plugin once; returns the number of points landed.

        A plugin raising :class:`SensorError` is skipped for the cycle
        (real collectors log-and-continue; losing one subsystem must not
        blind the rest of the monitoring plane)."""
        landed = 0
        for plugin in self.plugins:
            try:
                values = plugin.collect(timestamp)
            except SensorError:
                continue
            for suffix, value in values.items():
                self.store.insert(plugin.sensor(suffix), timestamp, float(value))
                landed += 1
        self.cycles_run += 1
        self.last_cycle_at = float(timestamp)
        return landed


__all__ = [
    "Plugin",
    "QPUMetricsPlugin",
    "JobAccountingPlugin",
    "CallbackPlugin",
    "SimulatorCountersPlugin",
    "DCDBCollector",
]
