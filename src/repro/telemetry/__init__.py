"""DCDB-style telemetry: store, collector plugins, analytics, tracing,
QDMI bridge.

The plugin and QDMI-bridge modules reach into :mod:`repro.qpu` (which
itself imports the simulator), so they are exposed lazily via PEP 562 —
this lets the execution core import :mod:`repro.telemetry.tracing` at
module scope without a cycle.
"""

from repro.telemetry.analytics import (
    QubitHealth,
    RecalibrationAdvice,
    RecalibrationAdvisor,
    detect_anomalies,
    qubit_health,
    trend,
)
from repro.telemetry.store import MetricPoint, MetricStore
from repro.telemetry.tracing import ExecutionReport, SpanRecord, Tracer

_LAZY_PLUGIN_NAMES = (
    "CallbackPlugin",
    "DCDBCollector",
    "JobAccountingPlugin",
    "Plugin",
    "QPUMetricsPlugin",
    "SimulatorCountersPlugin",
)

__all__ = [
    "QubitHealth",
    "RecalibrationAdvice",
    "RecalibrationAdvisor",
    "detect_anomalies",
    "qubit_health",
    "trend",
    "CallbackPlugin",
    "DCDBCollector",
    "JobAccountingPlugin",
    "Plugin",
    "QPUMetricsPlugin",
    "SimulatorCountersPlugin",
    "TelemetryQDMIDevice",
    "MetricPoint",
    "MetricStore",
    "ExecutionReport",
    "SpanRecord",
    "Tracer",
]


def __getattr__(name):
    if name in _LAZY_PLUGIN_NAMES:
        from repro.telemetry import plugins

        return getattr(plugins, name)
    if name == "TelemetryQDMIDevice":
        from repro.telemetry.qdmi_bridge import TelemetryQDMIDevice

        return TelemetryQDMIDevice
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
