"""DCDB-style telemetry: store, collector plugins, analytics, QDMI bridge."""

from repro.telemetry.analytics import (
    QubitHealth,
    RecalibrationAdvice,
    RecalibrationAdvisor,
    detect_anomalies,
    qubit_health,
    trend,
)
from repro.telemetry.plugins import (
    CallbackPlugin,
    DCDBCollector,
    JobAccountingPlugin,
    Plugin,
    QPUMetricsPlugin,
)
from repro.telemetry.qdmi_bridge import TelemetryQDMIDevice
from repro.telemetry.store import MetricPoint, MetricStore

__all__ = [
    "QubitHealth",
    "RecalibrationAdvice",
    "RecalibrationAdvisor",
    "detect_anomalies",
    "qubit_health",
    "trend",
    "CallbackPlugin",
    "DCDBCollector",
    "JobAccountingPlugin",
    "Plugin",
    "QPUMetricsPlugin",
    "TelemetryQDMIDevice",
    "MetricPoint",
    "MetricStore",
]
