"""Execution flight recorder: hierarchical spans, counters, run reports.

The execution core (five engines, a plan cache, shot sharding, a
fault-tolerance ladder) needs a DCDB-grade telemetry substrate: the
paper's operations story rests on "continuous and holistic collection
of operational metrics", and the adaptive-routing work in ROADMAP item 5
trains on exactly the per-run feature vector captured here.

Design constraints, in order of importance:

1. **Zero RNG impact.** Tracing never draws random numbers and never
   changes instruction visit order — seeded counts are bit-identical
   with tracing on or off.
2. **Near-zero cost when off.** ``span()`` returns a single shared
   no-op context manager when no tracer is active (no allocation, no
   branch beyond one global load), and ``count``/``note`` return
   immediately.  The ``"baseline"`` engine mode is *never* traced.
3. **Fork-safe.** The active tracer lives in a module global (the same
   pattern :mod:`repro.testing.faults` uses for fault plans) so shard
   workers inherit the *enabled* flag across ``fork``; workers open a
   fresh tracer per block and ship a picklable summary back alongside
   the block's ``Counts``, which the parent merges ``Counts.merge``-style
   — traces survive worker kills because every completed block carries
   its own summary.

Usage::

    with engine_mode("mps", trace=True):
        counts = sample_counts(qc, shots=1024, seed=7)
    report = tracing.last_report()
    store.record_execution(report, timestamp)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "ENABLED",
    "ExecutionReport",
    "SpanRecord",
    "Tracer",
    "absorb_block_summaries",
    "active_tracer",
    "block_trace",
    "consume_last_report",
    "count",
    "exec_counters",
    "last_report",
    "note",
    "note_max",
    "run_scope",
    "span",
]

#: Master toggle, flipped by ``engine_mode(trace=True)``.  Checked once
#: at run entry (``run_scope``); inner ``span()`` calls key off the
#: active tracer instead so the flag is read exactly once per run.
ENABLED = False

#: The tracer for the run currently executing in this process, or
#: ``None``.  Module-global (not thread/context local) on purpose: shard
#: workers are forked processes, and the sampler itself is not
#: re-entrant within a process.
_ACTIVE: Optional["Tracer"] = None

#: Most recent completed report, for ``last_report``/``consume_last_report``.
_LAST_REPORT: Optional["ExecutionReport"] = None

#: Process-cumulative counters for the DCDB plugin: every finished
#: traced run folds its totals in here so one collector cycle can
#: snapshot execution activity without holding individual reports.
_CUMULATIVE_LOCK = threading.Lock()
_CUMULATIVE: Dict[str, float] = {}


class _NoopSpan:
    """Shared do-nothing span used whenever tracing is inactive.

    A single module-level instance is handed out for *every* disabled
    ``span()`` call, so the disabled path allocates nothing — pinned by
    ``tests/test_tracing.py`` via an identity assertion.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


class SpanRecord:
    """One node of the span tree: name, wall time, attributes, children."""

    __slots__ = ("name", "attrs", "children", "seconds")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["SpanRecord"] = []
        self.seconds = 0.0

    def set(self, **attrs: Any) -> "SpanRecord":
        """Attach attributes after entry (e.g. a result computed inside)."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterable["SpanRecord"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Collects one run's span tree, counters, and scalar notes.

    Not thread-safe by design — a run executes on one thread (workers
    are separate processes with their own tracer).
    """

    def __init__(self) -> None:
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self.counters: Dict[str, int] = {}
        self.notes: Dict[str, Any] = {}
        self.max_notes: Dict[str, float] = {}
        # worker-side span summaries merged in, name -> [count, seconds]
        self.block_spans: Dict[str, List[float]] = {}

    @contextmanager
    def span(self, name: str, **attrs: Any):
        record = SpanRecord(name, attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            self.roots.append(record)
        else:
            parent.children.append(record)
        self._stack.append(record)
        started = perf_counter()
        try:
            yield record
        finally:
            record.seconds = perf_counter() - started
            self._stack.pop()

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def note(self, key: str, value: Any) -> None:
        self.notes[key] = value

    def note_max(self, key: str, value: float) -> None:
        prev = self.max_notes.get(key)
        if prev is None or value > prev:
            self.max_notes[key] = value

    # -- aggregation ---------------------------------------------------

    def span_aggregates(self) -> Tuple[Dict[str, float], Dict[str, int]]:
        """``(name -> cumulative seconds, name -> entry count)`` over the
        local span tree (worker block summaries are kept separate)."""
        seconds: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for root in self.roots:
            for record in root.walk():
                seconds[record.name] = seconds.get(record.name, 0.0) + record.seconds
                counts[record.name] = counts.get(record.name, 0) + 1
        return seconds, counts

    def summary(self) -> Dict[str, Any]:
        """Picklable digest of this tracer, shipped from shard workers
        back to the parent alongside each block's ``Counts``."""
        seconds, counts = self.span_aggregates()
        return {
            "spans": {
                name: [counts[name], seconds[name]] for name in sorted(seconds)
            },
            "counters": dict(self.counters),
            "max_notes": dict(self.max_notes),
        }

    def absorb_summary(self, summary: Mapping[str, Any]) -> None:
        """Merge one worker block summary into this (parent) tracer."""
        for name, (n, secs) in summary.get("spans", {}).items():
            slot = self.block_spans.setdefault(name, [0, 0.0])
            slot[0] += int(n)
            slot[1] += float(secs)
        for name, amount in summary.get("counters", {}).items():
            self.count(name, amount)
        for key, value in summary.get("max_notes", {}).items():
            self.note_max(key, float(value))


# -- module-level hot-path API ----------------------------------------


def span(name: str, **attrs: Any):
    """Open a hierarchical span on the active tracer; a shared no-op
    context manager when tracing is inactive."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.span(name, **attrs)


def count(name: str, amount: int = 1) -> None:
    """Bump a monotonic counter on the active tracer (no-op otherwise)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, amount)


def note(key: str, value: Any) -> None:
    """Record a scalar fact about the run (last write wins)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.note(key, value)


def note_max(key: str, value: float) -> None:
    """Record the running maximum of a scalar (e.g. peak bond dimension)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.note_max(key, value)


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


# -- run lifecycle -----------------------------------------------------


@dataclass(frozen=True)
class ExecutionReport:
    """Structured record of one sampling run — the feature vector the
    ROADMAP item 5 cost-model router trains on."""

    engine: Optional[str]
    mode: Optional[str]
    num_qubits: Optional[int]
    shots: Optional[int]
    wall_seconds: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    span_counts: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    estimated_peak_bytes: Optional[int] = None
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    max_bond_dimension: Optional[int] = None
    truncation_error: Optional[float] = None
    resilience_events: Dict[str, int] = field(default_factory=dict)
    shard_spans: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def plan_cache_hit(self) -> bool:
        return self.plan_cache_hits > 0 and self.plan_cache_misses == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready flat dict (what REST attaches to finished jobs)."""
        return {
            "engine": self.engine,
            "mode": self.mode,
            "num_qubits": self.num_qubits,
            "shots": self.shots,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "span_counts": dict(self.span_counts),
            "counters": dict(self.counters),
            "estimated_peak_bytes": self.estimated_peak_bytes,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_hit": self.plan_cache_hit,
            "max_bond_dimension": self.max_bond_dimension,
            "truncation_error": self.truncation_error,
            "resilience_events": dict(self.resilience_events),
            "shard_spans": {k: dict(v) for k, v in self.shard_spans.items()},
        }


def _build_report(tracer: Tracer, wall_seconds: float) -> ExecutionReport:
    seconds, span_counts = tracer.span_aggregates()
    notes = tracer.notes
    counters = dict(tracer.counters)
    resilience_events = {
        name: n
        for name, n in counters.items()
        if name.startswith("resilience.") or name.startswith("shard.")
    }
    max_bond = tracer.max_notes.get("max_bond_dimension")
    trunc = tracer.max_notes.get("truncation_error")
    return ExecutionReport(
        engine=notes.get("engine"),
        mode=notes.get("mode"),
        num_qubits=notes.get("num_qubits"),
        shots=notes.get("shots"),
        wall_seconds=wall_seconds,
        phase_seconds=seconds,
        span_counts=span_counts,
        counters=counters,
        estimated_peak_bytes=notes.get("estimated_peak_bytes"),
        plan_cache_hits=counters.get("plan_cache.hits", 0),
        plan_cache_misses=counters.get("plan_cache.misses", 0),
        max_bond_dimension=None if max_bond is None else int(max_bond),
        truncation_error=None if trunc is None else float(trunc),
        resilience_events=resilience_events,
        shard_spans={
            name: {"count": n, "seconds": secs}
            for name, (n, secs) in sorted(tracer.block_spans.items())
        },
    )


def _fold_cumulative(report: ExecutionReport) -> None:
    with _CUMULATIVE_LOCK:
        c = _CUMULATIVE
        c["runs"] = c.get("runs", 0.0) + 1.0
        c["wall_seconds"] = c.get("wall_seconds", 0.0) + report.wall_seconds
        c["shots"] = c.get("shots", 0.0) + float(report.shots or 0)
        for name, n in report.counters.items():
            key = f"events.{name}"
            c[key] = c.get(key, 0.0) + float(n)


@contextmanager
def run_scope(name: str, **attrs: Any):
    """Top-level scope for one sampling run.

    No-op when tracing is disabled.  If a tracer is already active
    (e.g. ``sample_counts`` delegating to the sharded path) this opens a
    nested span instead of a second tracer, so one run yields exactly
    one :class:`ExecutionReport`.
    """
    global _ACTIVE, _LAST_REPORT
    if not ENABLED:
        yield None
        return
    if _ACTIVE is not None:
        with _ACTIVE.span(name, **attrs) as record:
            yield record
        return
    tracer = Tracer()
    _ACTIVE = tracer
    started = perf_counter()
    try:
        with tracer.span(name, **attrs) as record:
            yield record
    finally:
        _ACTIVE = None
        report = _build_report(tracer, perf_counter() - started)
        _LAST_REPORT = report
        _fold_cumulative(report)


@contextmanager
def block_trace():
    """Worker-side scope for one shard block: installs a *fresh* tracer
    (the fork-inherited parent tracer must never be mutated in a worker)
    and yields it so the caller can ship ``tracer.summary()`` home."""
    global _ACTIVE
    saved = _ACTIVE
    tracer = Tracer()
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = saved


def absorb_block_summaries(summaries: Iterable[Mapping[str, Any]]) -> None:
    """Merge worker block summaries into the active (parent) tracer."""
    tracer = _ACTIVE
    if tracer is None:
        return
    for summary in summaries:
        tracer.absorb_summary(summary)


# -- report / counter access ------------------------------------------


def last_report() -> Optional[ExecutionReport]:
    """The report from the most recent traced run, if any."""
    return _LAST_REPORT


def consume_last_report() -> Optional[ExecutionReport]:
    """Return and clear the most recent report (so e.g. the scheduler
    attaches each run's report to exactly one job)."""
    global _LAST_REPORT
    report = _LAST_REPORT
    _LAST_REPORT = None
    return report


def exec_counters() -> Dict[str, float]:
    """Process-cumulative execution counters (for the DCDB plugin)."""
    with _CUMULATIVE_LOCK:
        return dict(_CUMULATIVE)


def reset_exec_counters() -> None:
    with _CUMULATIVE_LOCK:
        _CUMULATIVE.clear()
