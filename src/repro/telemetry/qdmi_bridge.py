"""The Figure 3 bridge: a QDMI device backed by DCDB telemetry.

"A QDMI Device has been developed that interfaces with DCDB to acquire
telemetry from quantum hardware and its operational environment … This
setup allows to consume these live data during tasks such as JIT
compilation and environment-aware optimizations."

:class:`TelemetryQDMIDevice` answers scalar QDMI queries from the
telemetry store's latest values, and serves the full calibration
snapshot through a pluggable provider (normally the live device, so
compilers get exact per-qubit data; dashboards and external tools get
the store-backed scalars without ever touching the QPU directly —
the "transparent dissemination" requirement of Section 3.1).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional

from repro.errors import QDMIError, TelemetryError
from repro.qdmi.interface import QDMIDevice, QDMIProperty
from repro.qpu.params import CalibrationSnapshot
from repro.telemetry.store import MetricStore

_SCALAR_SENSORS: Dict[QDMIProperty, str] = {
    QDMIProperty.MEDIAN_PRX_FIDELITY: "qpu.median_prx_fidelity",
    QDMIProperty.MEDIAN_CZ_FIDELITY: "qpu.median_cz_fidelity",
    QDMIProperty.MEDIAN_READOUT_FIDELITY: "qpu.median_readout_fidelity",
}

_QUBIT_SENSORS: Dict[QDMIProperty, str] = {
    QDMIProperty.T1: "t1",
    QDMIProperty.T2: "t2",
}


class TelemetryQDMIDevice(QDMIDevice):
    """QDMI answers sourced from the DCDB store."""

    def __init__(
        self,
        store: MetricStore,
        *,
        name: str = "dcdb-device",
        snapshot_provider: Optional[Callable[[], CalibrationSnapshot]] = None,
        prefix: str = "qpu",
    ) -> None:
        self._store = store
        self._name = name
        self._snapshot_provider = snapshot_provider
        self._prefix = prefix

    def supported_properties(self) -> FrozenSet[QDMIProperty]:
        props = set(_SCALAR_SENSORS) | set(_QUBIT_SENSORS) | {QDMIProperty.NAME}
        if self._snapshot_provider is not None:
            props |= {
                QDMIProperty.CALIBRATION_SNAPSHOT,
                QDMIProperty.NUM_QUBITS,
                QDMIProperty.COUPLING_MAP,
                QDMIProperty.CALIBRATION_TIMESTAMP,
                QDMIProperty.CALIBRATION_KIND,
            }
        return frozenset(props)

    def _query(self, prop: QDMIProperty, scope: Dict[str, Any]) -> Any:
        if prop is QDMIProperty.NAME:
            return self._name
        if prop in _SCALAR_SENSORS:
            try:
                return self._store.latest(_SCALAR_SENSORS[prop]).value
            except TelemetryError as exc:
                raise QDMIError(f"telemetry not yet collected: {exc}") from exc
        if prop in _QUBIT_SENSORS:
            qubit = scope.get("qubit")
            if qubit is None:
                raise QDMIError(f"{prop.name} requires qubit= scope")
            sensor = f"{self._prefix}.qubit{int(qubit):02d}.{_QUBIT_SENSORS[prop]}"
            try:
                return self._store.latest(sensor).value
            except TelemetryError as exc:
                raise QDMIError(f"telemetry not yet collected: {exc}") from exc
        if self._snapshot_provider is None:  # pragma: no cover - guarded by supported set
            raise QDMIError(f"{prop.name} requires a snapshot provider")
        snapshot = self._snapshot_provider()
        if prop is QDMIProperty.CALIBRATION_SNAPSHOT:
            return snapshot
        if prop is QDMIProperty.NUM_QUBITS:
            return snapshot.topology.num_qubits
        if prop is QDMIProperty.COUPLING_MAP:
            return tuple(snapshot.topology.couplers)
        if prop is QDMIProperty.CALIBRATION_TIMESTAMP:
            return snapshot.timestamp
        if prop is QDMIProperty.CALIBRATION_KIND:
            return snapshot.calibration_kind
        raise QDMIError(f"unhandled property {prop.name}")  # pragma: no cover


__all__ = ["TelemetryQDMIDevice"]
