"""Operational analytics over the telemetry store.

DCDB's Wintermute layer does "online and holistic operational data
analytics"; the paper's follow-up work adds "Qubit Health Analytics and
Clustering for HPC-Integrated Quantum Processors" (Deng et al. 2025).
This module provides the pieces the operations loop and the experiments
actually use:

* :func:`trend` — robust slope estimate of a sensor over a window
  (drift detection);
* :func:`detect_anomalies` — z-score outliers against a trailing
  baseline (catches TLS events as sudden T1 drops);
* :func:`qubit_health` — per-qubit composite health scores and a 2-means
  clustering into healthy/degraded groups;
* :class:`RecalibrationAdvisor` — the "do we need a recalibration?"
  policy that turns monitoring into action (Section 3.1: "attempt to
  identify when a (re-)calibration is required").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.store import MetricStore


def trend(
    store: MetricStore, sensor: str, start: float, end: float
) -> Tuple[float, float]:
    """Least-squares (slope per second, intercept) of *sensor* over
    ``[start, end]``.  Needs ≥ 3 points."""
    t, v = store.query(sensor, start, end)
    if t.size < 3:
        raise TelemetryError(f"not enough points on {sensor!r} for a trend")
    t0 = t - t[0]
    slope, intercept = np.polyfit(t0, v, 1)
    return float(slope), float(intercept)


def detect_anomalies(
    store: MetricStore,
    sensor: str,
    start: float,
    end: float,
    *,
    z_threshold: float = 4.0,
    baseline_fraction: float = 0.5,
) -> List[float]:
    """Timestamps whose value deviates more than *z_threshold* standard
    deviations from the leading-baseline statistics.

    The baseline is the first *baseline_fraction* of the window, so a
    step change (TLS capture, cooling incident) flags every subsequent
    point until the effect decays.
    """
    t, v = store.query(sensor, start, end)
    if t.size < 8:
        return []
    n_base = max(4, int(t.size * baseline_fraction))
    base = v[:n_base]
    mu, sigma = float(base.mean()), float(base.std())
    sigma = max(sigma, 1e-12)
    z = np.abs(v - mu) / sigma
    return [float(ts) for ts in t[z > z_threshold]]


@dataclass(frozen=True)
class QubitHealth:
    """Composite health of one qubit at one instant."""

    qubit: int
    score: float        # 1.0 = nominal, lower is worse
    t1: float
    prx_error: float
    readout_error: float
    cluster: str        # "healthy" | "degraded"


def qubit_health(
    store: MetricStore,
    num_qubits: int,
    at: Optional[float] = None,
    *,
    prefix: str = "qpu",
) -> List[QubitHealth]:
    """Score and cluster all qubits from their latest telemetry.

    Score = geometric mean of (T1 ratio to cohort median, PRX fidelity
    ratio, readout fidelity ratio), so 1.0 means "median qubit".  A
    2-means split on the scores labels the degraded group — the paper's
    health-clustering idea at its simplest useful form.
    """
    rows: List[Tuple[int, float, float, float]] = []
    for q in range(num_qubits):
        tag = f"{prefix}.qubit{q:02d}"
        try:
            t1 = store.latest(f"{tag}.t1").value
            prx = store.latest(f"{tag}.prx_error").value
            ro = store.latest(f"{tag}.readout_error").value
        except TelemetryError:
            raise TelemetryError(
                f"missing telemetry for qubit {q}; run a collection cycle first"
            ) from None
        rows.append((q, t1, prx, ro))
    t1_med = float(np.median([r[1] for r in rows]))
    prx_med = float(np.median([1.0 - r[2] for r in rows]))
    ro_med = float(np.median([1.0 - r[3] for r in rows]))
    scores = []
    for q, t1, prx, ro in rows:
        ratio_t1 = t1 / max(t1_med, 1e-12)
        ratio_prx = (1.0 - prx) / max(prx_med, 1e-12)
        ratio_ro = (1.0 - ro) / max(ro_med, 1e-12)
        scores.append((ratio_t1 * ratio_prx * ratio_ro) ** (1.0 / 3.0))
    clusters = _two_means(np.array(scores))
    return [
        QubitHealth(
            qubit=q,
            score=float(s),
            t1=t1,
            prx_error=prx,
            readout_error=ro,
            cluster="healthy" if c else "degraded",
        )
        for (q, t1, prx, ro), s, c in zip(rows, scores, clusters)
    ]


def _two_means(values: np.ndarray, iters: int = 32) -> np.ndarray:
    """1-D 2-means; returns boolean mask of the *higher* cluster.  With
    (numerically) identical values everything is 'healthy'."""
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-9:
        return np.ones(values.shape, dtype=bool)
    c_lo, c_hi = lo, hi
    for _ in range(iters):
        assign_hi = np.abs(values - c_hi) <= np.abs(values - c_lo)
        if assign_hi.all() or (~assign_hi).all():
            break
        new_hi = float(values[assign_hi].mean())
        new_lo = float(values[~assign_hi].mean())
        if math.isclose(new_hi, c_hi) and math.isclose(new_lo, c_lo):
            break
        c_hi, c_lo = new_hi, new_lo
    return np.abs(values - c_hi) <= np.abs(values - c_lo)


@dataclass(frozen=True)
class RecalibrationAdvice:
    """Output of the advisor: what to do and why."""

    action: str  # "none" | "quick" | "full"
    reason: str


class RecalibrationAdvisor:
    """Turns telemetry into a quick/full/none recalibration decision.

    Policy (matching the paper's operational logic):

    * if the two-qubit (CZ) median fidelity fell below its floor, only a
      **full** calibration retunes the couplers;
    * else if single-qubit or readout medians fell below their floors, a
      **quick** calibration suffices (40 min vs 100 min);
    * else if the calibration is older than ``max_age``, take the
      scheduled **full** slot;
    * else do nothing.
    """

    def __init__(
        self,
        *,
        prx_floor: float = 0.9975,
        readout_floor: float = 0.955,
        cz_floor: float = 0.982,
        max_age: float = 2.0 * 24 * 3600.0,
        prefix: str = "qpu",
    ) -> None:
        self.prx_floor = float(prx_floor)
        self.readout_floor = float(readout_floor)
        self.cz_floor = float(cz_floor)
        self.max_age = float(max_age)
        self.prefix = prefix

    def advise(self, store: MetricStore) -> RecalibrationAdvice:
        try:
            prx = store.latest(f"{self.prefix}.median_prx_fidelity").value
            cz = store.latest(f"{self.prefix}.median_cz_fidelity").value
            ro = store.latest(f"{self.prefix}.median_readout_fidelity").value
            age = store.latest(f"{self.prefix}.calibration_age").value
        except TelemetryError:
            return RecalibrationAdvice("full", "no telemetry yet: establish baseline")
        if cz < self.cz_floor:
            return RecalibrationAdvice(
                "full", f"median CZ fidelity {cz:.4f} below floor {self.cz_floor:.4f}"
            )
        if prx < self.prx_floor or ro < self.readout_floor:
            return RecalibrationAdvice(
                "quick",
                f"1q/readout medians ({prx:.4f}/{ro:.4f}) below floors "
                f"({self.prx_floor:.4f}/{self.readout_floor:.4f})",
            )
        if age > self.max_age:
            return RecalibrationAdvice(
                "full", f"calibration age {age / 3600.0:.1f} h exceeds limit"
            )
        return RecalibrationAdvice("none", "all medians within bounds")


__all__ = [
    "trend",
    "detect_anomalies",
    "QubitHealth",
    "qubit_health",
    "RecalibrationAdvice",
    "RecalibrationAdvisor",
]
