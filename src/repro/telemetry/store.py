"""DCDB-like time-series metric store.

The paper monitors the QPU through DCDB, "an open-source, plugin-based
system designed for continuous and holistic collection of operational
and environmental metrics … aggregat[ing] this data in a distributed
noSQL data store, enabling cross-system correlation".

:class:`MetricStore` is the in-memory stand-in: append-only per-sensor
series with range queries, latest-value lookup, windowed aggregation and
cross-sensor correlation.  Storage is chunked NumPy arrays so that the
146-day operations run (hundreds of thousands of points) stays cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TelemetryError

_CHUNK = 4096


class _Series:
    """Append-only (timestamp, value) series with amortized growth."""

    __slots__ = ("_t", "_v", "_n")

    def __init__(self) -> None:
        self._t = np.empty(_CHUNK, dtype=float)
        self._v = np.empty(_CHUNK, dtype=float)
        self._n = 0

    def append(self, t: float, v: float) -> None:
        if self._n and t < self._t[self._n - 1]:
            raise TelemetryError(
                f"out-of-order insert: {t} < {self._t[self._n - 1]}"
            )
        if self._n == self._t.size:
            self._t = np.concatenate([self._t, np.empty(self._t.size, dtype=float)])
            self._v = np.concatenate([self._v, np.empty(self._v.size, dtype=float)])
        self._t[self._n] = t
        self._v[self._n] = v
        self._n += 1

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._t[: self._n], self._v[: self._n]

    def __len__(self) -> int:
        return self._n


@dataclass(frozen=True)
class MetricPoint:
    """One observation of one sensor."""

    sensor: str
    timestamp: float
    value: float


class MetricStore:
    """Per-sensor time series with range queries and aggregation.

    Sensor names are hierarchical strings, DCDB-style, e.g.
    ``"qpu.qubit03.t1"`` or ``"facility.cooling.water_in_temp"``.
    """

    def __init__(self) -> None:
        self._series: Dict[str, _Series] = {}

    # -- ingestion ---------------------------------------------------------------

    def insert(self, sensor: str, timestamp: float, value: float) -> None:
        """Append one observation (timestamps must be non-decreasing per
        sensor, which a collector loop guarantees)."""
        if not sensor:
            raise TelemetryError("sensor name must be non-empty")
        series = self._series.get(sensor)
        if series is None:
            series = self._series[sensor] = _Series()
        series.append(float(timestamp), float(value))

    def insert_many(self, timestamp: float, values: Mapping[str, float]) -> None:
        """Append one collection cycle's worth of observations."""
        for sensor, value in values.items():
            self.insert(sensor, timestamp, value)

    # -- queries --------------------------------------------------------------------

    def sensors(self, prefix: str = "") -> List[str]:
        """Sensor names, optionally filtered by hierarchical prefix."""
        return sorted(s for s in self._series if s.startswith(prefix))

    def __contains__(self, sensor: str) -> bool:
        return sensor in self._series

    def __len__(self) -> int:
        return len(self._series)

    def num_points(self, sensor: Optional[str] = None) -> int:
        if sensor is not None:
            return len(self._get(sensor))
        return sum(len(s) for s in self._series.values())

    def _get(self, sensor: str) -> _Series:
        try:
            return self._series[sensor]
        except KeyError:
            raise TelemetryError(f"unknown sensor {sensor!r}") from None

    def latest(self, sensor: str) -> MetricPoint:
        series = self._get(sensor)
        if not len(series):
            raise TelemetryError(f"sensor {sensor!r} has no data")
        t, v = series.view()
        return MetricPoint(sensor, float(t[-1]), float(v[-1]))

    def query(
        self,
        sensor: str,
        start: float = -math.inf,
        end: float = math.inf,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(timestamps, values) with ``start <= t <= end`` (views, no copy
        beyond the boolean selection)."""
        t, v = self._get(sensor).view()
        lo = np.searchsorted(t, start, side="left")
        hi = np.searchsorted(t, end, side="right")
        return t[lo:hi], v[lo:hi]

    def aggregate(
        self,
        sensor: str,
        start: float,
        end: float,
        window: float,
        how: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Windowed aggregation (``mean``/``min``/``max``/``last``) over
        ``[start, end)`` with fixed *window* width.  Empty windows yield
        NaN.  This is the dashboard's downsampling query."""
        if window <= 0:
            raise TelemetryError("window must be positive")
        t, v = self.query(sensor, start, end)
        n_windows = max(1, int(math.ceil((end - start) / window)))
        centers = start + (np.arange(n_windows) + 0.5) * window
        out = np.full(n_windows, np.nan)
        if t.size:
            idx = np.minimum(((t - start) / window).astype(int), n_windows - 1)
            for w in range(n_windows):
                mask = idx == w
                if not mask.any():
                    continue
                vals = v[mask]
                if how == "mean":
                    out[w] = vals.mean()
                elif how == "min":
                    out[w] = vals.min()
                elif how == "max":
                    out[w] = vals.max()
                elif how == "last":
                    out[w] = vals[-1]
                else:
                    raise TelemetryError(f"unknown aggregation {how!r}")
        return centers, out

    # -- collectors --------------------------------------------------------------

    def record_plan_cache(self, timestamp: float) -> None:
        """Snapshot the compiler plan cache's counters into the
        ``simulator.plan_cache.*`` sensor family.

        One call appends one observation per counter (entries, hits,
        misses, evictions) at *timestamp* — the DCDB-style collector-loop
        shape, so cache behaviour lands on the same timeline as the
        operational metrics and can be windowed or correlated against
        them like any other sensor."""
        from repro.compiler import plans

        info = plans.plan_cache_info()
        self.insert_many(
            timestamp,
            {
                f"simulator.plan_cache.{key}": float(info[key])
                for key in ("entries", "hits", "misses", "evictions")
            },
        )

    def record_resilience(self, timestamp: float) -> None:
        """Snapshot the simulator's resilience counters into the
        ``simulator.resilience.*`` sensor family.

        One call appends one observation per counter (retries,
        pool_rebuilds, inline_fallbacks, admission_rejects,
        engine_fallbacks) at *timestamp* — same collector-loop shape as
        :meth:`record_plan_cache`, so recovery and degradation events
        land on the operational timeline where an operator can window
        and correlate them (e.g. pool rebuilds against node load)."""
        from repro.simulator import resilience

        snapshot = resilience.counters()
        self.insert_many(
            timestamp,
            {
                f"simulator.resilience.{name}": float(snapshot[name])
                for name in resilience.COUNTER_NAMES
            },
        )

    def correlate(
        self, sensor_a: str, sensor_b: str, start: float, end: float, window: float
    ) -> float:
        """Pearson correlation of two sensors on a common windowed grid —
        the "cross-system correlation" DCDB exists to enable (e.g. water
        temperature vs readout fidelity)."""
        _, a = self.aggregate(sensor_a, start, end, window)
        _, b = self.aggregate(sensor_b, start, end, window)
        mask = ~(np.isnan(a) | np.isnan(b))
        if mask.sum() < 3:
            raise TelemetryError("not enough overlapping data to correlate")
        aa, bb = a[mask], b[mask]
        if aa.std() < 1e-15 or bb.std() < 1e-15:
            return 0.0
        return float(np.corrcoef(aa, bb)[0, 1])


__all__ = ["MetricStore", "MetricPoint"]
