"""DCDB-like time-series metric store.

The paper monitors the QPU through DCDB, "an open-source, plugin-based
system designed for continuous and holistic collection of operational
and environmental metrics … aggregat[ing] this data in a distributed
noSQL data store, enabling cross-system correlation".

:class:`MetricStore` is the in-memory stand-in: append-only per-sensor
series with range queries, latest-value lookup, windowed aggregation and
cross-sensor correlation.  Storage is chunked NumPy arrays so that the
146-day operations run (hundreds of thousands of points) stays cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TelemetryError

_CHUNK = 4096


class _Series:
    """Append-only (timestamp, value) series with amortized growth."""

    __slots__ = ("_t", "_v", "_n")

    def __init__(self) -> None:
        self._t = np.empty(_CHUNK, dtype=float)
        self._v = np.empty(_CHUNK, dtype=float)
        self._n = 0

    def append(self, t: float, v: float) -> None:
        if self._n and t < self._t[self._n - 1]:
            raise TelemetryError(
                f"out-of-order insert: {t} < {self._t[self._n - 1]}"
            )
        if self._n == self._t.size:
            self._t = np.concatenate([self._t, np.empty(self._t.size, dtype=float)])
            self._v = np.concatenate([self._v, np.empty(self._v.size, dtype=float)])
        self._t[self._n] = t
        self._v[self._n] = v
        self._n += 1

    def view(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._t[: self._n], self._v[: self._n]

    def __len__(self) -> int:
        return self._n


@dataclass(frozen=True)
class MetricPoint:
    """One observation of one sensor."""

    sensor: str
    timestamp: float
    value: float


class MetricStore:
    """Per-sensor time series with range queries and aggregation.

    Sensor names are hierarchical strings, DCDB-style, e.g.
    ``"qpu.qubit03.t1"`` or ``"facility.cooling.water_in_temp"``.
    """

    def __init__(self) -> None:
        self._series: Dict[str, _Series] = {}

    # -- ingestion ---------------------------------------------------------------

    def insert(self, sensor: str, timestamp: float, value: float) -> None:
        """Append one observation (timestamps must be non-decreasing per
        sensor, which a collector loop guarantees)."""
        if not sensor:
            raise TelemetryError("sensor name must be non-empty")
        series = self._series.get(sensor)
        if series is None:
            series = self._series[sensor] = _Series()
        series.append(float(timestamp), float(value))

    def insert_many(self, timestamp: float, values: Mapping[str, float]) -> None:
        """Append one collection cycle's worth of observations."""
        for sensor, value in values.items():
            self.insert(sensor, timestamp, value)

    # -- queries --------------------------------------------------------------------

    def sensors(self, prefix: str = "") -> List[str]:
        """Sensor names, optionally filtered by hierarchical prefix."""
        return sorted(s for s in self._series if s.startswith(prefix))

    def __contains__(self, sensor: str) -> bool:
        return sensor in self._series

    def __len__(self) -> int:
        return len(self._series)

    def num_points(self, sensor: Optional[str] = None) -> int:
        if sensor is not None:
            return len(self._get(sensor))
        return sum(len(s) for s in self._series.values())

    def _get(self, sensor: str) -> _Series:
        try:
            return self._series[sensor]
        except KeyError:
            raise TelemetryError(f"unknown sensor {sensor!r}") from None

    def latest(self, sensor: str) -> MetricPoint:
        series = self._get(sensor)
        if not len(series):
            raise TelemetryError(f"sensor {sensor!r} has no data")
        t, v = series.view()
        return MetricPoint(sensor, float(t[-1]), float(v[-1]))

    def query(
        self,
        sensor: str,
        start: float = -math.inf,
        end: float = math.inf,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(timestamps, values) with ``start <= t <= end`` (views, no copy
        beyond the boolean selection)."""
        t, v = self._get(sensor).view()
        lo = np.searchsorted(t, start, side="left")
        hi = np.searchsorted(t, end, side="right")
        return t[lo:hi], v[lo:hi]

    def aggregate(
        self,
        sensor: str,
        start: float,
        end: float,
        window: float,
        how: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Windowed aggregation (``mean``/``min``/``max``/``last``) over
        ``[start, end)`` with fixed *window* width.  Empty windows yield
        NaN.  This is the dashboard's downsampling query."""
        if window <= 0:
            raise TelemetryError("window must be positive")
        if how not in ("mean", "min", "max", "last"):
            raise TelemetryError(f"unknown aggregation {how!r}")
        t, v = self.query(sensor, start, end)
        n_windows = max(1, int(math.ceil((end - start) / window)))
        centers = start + (np.arange(n_windows) + 0.5) * window
        out = np.full(n_windows, np.nan)
        if t.size:
            idx = np.minimum(((t - start) / window).astype(int), n_windows - 1)
            # Timestamps are sorted, so ``idx`` is non-decreasing and every
            # window is one contiguous run of points: a single searchsorted
            # plus segmented reduceat replaces the O(windows × points)
            # per-window masking loop.
            boundaries = np.searchsorted(idx, np.arange(n_windows), side="left")
            ends = np.append(boundaries[1:], idx.size)
            counts = ends - boundaries
            nonempty = counts > 0
            starts = boundaries[nonempty]
            if how == "mean":
                out[nonempty] = np.add.reduceat(v, starts) / counts[nonempty]
            elif how == "min":
                out[nonempty] = np.minimum.reduceat(v, starts)
            elif how == "max":
                out[nonempty] = np.maximum.reduceat(v, starts)
            else:  # "last"
                out[nonempty] = v[ends[nonempty] - 1]
        return centers, out

    # -- collectors --------------------------------------------------------------

    def record_plan_cache(self, timestamp: float) -> None:
        """Snapshot the compiler plan cache's counters into the
        ``simulator.plan_cache.*`` sensor family.

        One call appends one observation per counter (entries, hits,
        misses, evictions) at *timestamp* — the DCDB-style collector-loop
        shape, so cache behaviour lands on the same timeline as the
        operational metrics and can be windowed or correlated against
        them like any other sensor."""
        from repro.compiler import plans

        info = plans.plan_cache_info()
        self.insert_many(
            timestamp,
            {
                f"simulator.plan_cache.{key}": float(info[key])
                for key in ("entries", "hits", "misses", "evictions")
            },
        )

    def record_resilience(self, timestamp: float) -> None:
        """Snapshot the simulator's resilience counters into the
        ``simulator.resilience.*`` sensor family.

        One call appends one observation per counter (retries,
        pool_rebuilds, inline_fallbacks, admission_rejects,
        engine_fallbacks) at *timestamp* — same collector-loop shape as
        :meth:`record_plan_cache`, so recovery and degradation events
        land on the operational timeline where an operator can window
        and correlate them (e.g. pool rebuilds against node load)."""
        from repro.simulator import resilience

        snapshot = resilience.counters()
        self.insert_many(
            timestamp,
            {
                f"simulator.resilience.{name}": float(snapshot[name])
                for name in resilience.COUNTER_NAMES
            },
        )

    def record_execution(self, report, timestamp: float) -> None:
        """Flatten one :class:`~repro.telemetry.tracing.ExecutionReport`
        into the ``simulator.exec.*`` sensor family.

        Accepts the report object or its ``to_dict()`` form.  Scalar
        features (wall time, shots, peak bytes, plan-cache hit, max
        bond, truncation error) land as ``simulator.exec.<name>``,
        per-phase wall times as ``simulator.exec.phase.<span>``, and
        event counters as ``simulator.exec.events.<name>`` — all plain
        numeric sensors, so ``aggregate``/``correlate`` work on them
        exactly like on the facility metrics (the feature timeline the
        ROADMAP item 5 cost-model router trains on)."""
        data = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        values: Dict[str, float] = {
            "simulator.exec.wall_seconds": float(data.get("wall_seconds") or 0.0),
            "simulator.exec.shots": float(data.get("shots") or 0),
            "simulator.exec.num_qubits": float(data.get("num_qubits") or 0),
            "simulator.exec.plan_cache_hit": (
                1.0 if data.get("plan_cache_hit") else 0.0
            ),
        }
        for key in (
            "estimated_peak_bytes",
            "max_bond_dimension",
            "truncation_error",
        ):
            value = data.get(key)
            if value is not None:
                values[f"simulator.exec.{key}"] = float(value)
        for name, secs in (data.get("phase_seconds") or {}).items():
            values[f"simulator.exec.phase.{name}"] = float(secs)
        for name, n in (data.get("counters") or {}).items():
            values[f"simulator.exec.events.{name}"] = float(n)
        self.insert_many(timestamp, values)

    def correlate(
        self, sensor_a: str, sensor_b: str, start: float, end: float, window: float
    ) -> float:
        """Pearson correlation of two sensors on a common windowed grid —
        the "cross-system correlation" DCDB exists to enable (e.g. water
        temperature vs readout fidelity)."""
        _, a = self.aggregate(sensor_a, start, end, window)
        _, b = self.aggregate(sensor_b, start, end, window)
        mask = ~(np.isnan(a) | np.isnan(b))
        if mask.sum() < 3:
            raise TelemetryError("not enough overlapping data to correlate")
        aa, bb = a[mask], b[mask]
        if aa.std() < 1e-15 or bb.std() < 1e-15:
            return 0.0
        return float(np.corrcoef(aa, bb)[0, 1])


__all__ = ["MetricStore", "MetricPoint"]
