"""Quantum Device Management Interface (QDMI) — runtime device queries."""

from repro.qdmi.devices import QPUQDMIDevice, SnapshotQDMIDevice
from repro.qdmi.interface import QDMIDevice, QDMIProperty, QDMISession

__all__ = [
    "QPUQDMIDevice",
    "SnapshotQDMIDevice",
    "QDMIDevice",
    "QDMIProperty",
    "QDMISession",
]
