"""QDMI — the Quantum Device Management Interface.

The paper (Section 2.6, Figure 3) describes QDMI as "a lightweight
header-only C interface [that] allows to bridge hardware-specific
performance data and the compiler's optimization flow … enabling
software tools to query backend-specific metrics, including topology,
gate fidelities, noise characteristics, and resource constraints, at
runtime".

We keep the same shape in Python: a small property-query protocol
(:class:`QDMIDevice`), session handles (:class:`QDMISession`) so that
tools acquire/release access explicitly, and an enumerated property
space (:class:`QDMIProperty`).  Devices advertise which properties they
support; querying an unsupported one raises
:class:`~repro.errors.PropertyNotSupportedError` — exactly the
`QDMI_ERROR_NOTSUPPORTED` contract of the C interface.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.errors import PropertyNotSupportedError, SessionError


class QDMIProperty(enum.Enum):
    """The queryable property space."""

    # device-scoped
    NAME = "name"
    NUM_QUBITS = "num_qubits"
    COUPLING_MAP = "coupling_map"
    NATIVE_GATES = "native_gates"
    STATUS = "status"
    CALIBRATION_TIMESTAMP = "calibration_timestamp"
    CALIBRATION_KIND = "calibration_kind"
    CALIBRATION_SNAPSHOT = "calibration_snapshot"
    MEDIAN_PRX_FIDELITY = "median_prx_fidelity"
    MEDIAN_CZ_FIDELITY = "median_cz_fidelity"
    MEDIAN_READOUT_FIDELITY = "median_readout_fidelity"
    # qubit-scoped (pass qubit=<int>)
    T1 = "t1"
    T2 = "t2"
    PRX_FIDELITY = "prx_fidelity"
    READOUT_FIDELITY = "readout_fidelity"
    QUBIT_FREQUENCY = "qubit_frequency"
    # coupler-scoped (pass coupler=(a, b))
    CZ_FIDELITY = "cz_fidelity"
    CZ_DURATION = "cz_duration"


class QDMIDevice(ABC):
    """A device exposing the QDMI property-query protocol."""

    @abstractmethod
    def supported_properties(self) -> FrozenSet[QDMIProperty]:
        """The properties this device can answer."""

    @abstractmethod
    def _query(self, prop: QDMIProperty, scope: Dict[str, Any]) -> Any:
        """Answer one property query (scope pre-validated)."""

    def query(self, prop: QDMIProperty, **scope: Any) -> Any:
        """Query *prop*, optionally scoped to ``qubit=`` or ``coupler=``.

        Raises :class:`PropertyNotSupportedError` when the device does
        not implement the property.
        """
        if prop not in self.supported_properties():
            raise PropertyNotSupportedError(
                f"device {self.device_name()!r} does not support {prop.name}"
            )
        return self._query(prop, scope)

    def device_name(self) -> str:
        try:
            return str(self._query(QDMIProperty.NAME, {}))
        except Exception:  # pragma: no cover - defensive
            return type(self).__name__

    def open_session(self) -> "QDMISession":
        """Acquire a session handle (the C API's ``QDMI_session_open``)."""
        return QDMISession(self)


class QDMISession:
    """An open handle through which tools issue queries.

    Mirrors the C interface's explicit lifecycle: queries on a closed
    session raise :class:`SessionError`.  Usable as a context manager.
    """

    def __init__(self, device: QDMIDevice) -> None:
        self._device = device
        self._open = True
        self.queries_served = 0

    @property
    def is_open(self) -> bool:
        return self._open

    def query(self, prop: QDMIProperty, **scope: Any) -> Any:
        if not self._open:
            raise SessionError("QDMI session is closed")
        self.queries_served += 1
        return self._device.query(prop, **scope)

    def close(self) -> None:
        self._open = False

    def __enter__(self) -> "QDMISession":
        if not self._open:
            raise SessionError("cannot re-enter a closed QDMI session")
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return f"<QDMISession {self._device.device_name()!r} ({state}, {self.queries_served} queries)>"


__all__ = ["QDMIProperty", "QDMIDevice", "QDMISession"]
