"""QDMI device implementations.

Three bindings of the property protocol:

* :class:`QPUQDMIDevice` — live queries against a :class:`~repro.qpu.device.QPUDevice`
  (each query re-reads the *current effective* calibration, i.e. fresh
  telemetry; this is the Figure 3 "telemetry-aware execution" path);
* :class:`SnapshotQDMIDevice` — frozen calibration data (the stale /
  static-compilation baseline the Figure 3 bench compares against);
* :class:`TelemetryQDMIDevice` (in :mod:`repro.telemetry.qdmi_bridge`)
  — answers from the DCDB store, completing the Figure 3 loop.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet

from repro.circuits.gates import NATIVE_GATES
from repro.errors import QDMIError
from repro.qdmi.interface import QDMIDevice, QDMIProperty
from repro.qpu.device import QPUDevice
from repro.qpu.params import CalibrationSnapshot

_ALL = frozenset(QDMIProperty)


def _answer_from_snapshot(
    snapshot: CalibrationSnapshot, name: str, status: str, prop: QDMIProperty, scope: Dict[str, Any]
) -> Any:
    if prop is QDMIProperty.NAME:
        return name
    if prop is QDMIProperty.NUM_QUBITS:
        return snapshot.topology.num_qubits
    if prop is QDMIProperty.COUPLING_MAP:
        return tuple(snapshot.topology.couplers)
    if prop is QDMIProperty.NATIVE_GATES:
        return tuple(sorted(NATIVE_GATES))
    if prop is QDMIProperty.STATUS:
        return status
    if prop is QDMIProperty.CALIBRATION_TIMESTAMP:
        return snapshot.timestamp
    if prop is QDMIProperty.CALIBRATION_KIND:
        return snapshot.calibration_kind
    if prop is QDMIProperty.CALIBRATION_SNAPSHOT:
        return snapshot
    if prop is QDMIProperty.MEDIAN_PRX_FIDELITY:
        return snapshot.median_prx_fidelity()
    if prop is QDMIProperty.MEDIAN_CZ_FIDELITY:
        return snapshot.median_cz_fidelity()
    if prop is QDMIProperty.MEDIAN_READOUT_FIDELITY:
        return snapshot.median_readout_fidelity()
    if prop in (
        QDMIProperty.T1,
        QDMIProperty.T2,
        QDMIProperty.PRX_FIDELITY,
        QDMIProperty.READOUT_FIDELITY,
        QDMIProperty.QUBIT_FREQUENCY,
    ):
        qubit = scope.get("qubit")
        if qubit is None:
            raise QDMIError(f"{prop.name} requires qubit= scope")
        qp = snapshot.qubits[int(qubit)]
        return {
            QDMIProperty.T1: qp.t1,
            QDMIProperty.T2: qp.t2,
            QDMIProperty.PRX_FIDELITY: qp.prx_fidelity,
            QDMIProperty.READOUT_FIDELITY: qp.readout_fidelity,
            QDMIProperty.QUBIT_FREQUENCY: qp.frequency,
        }[prop]
    if prop in (QDMIProperty.CZ_FIDELITY, QDMIProperty.CZ_DURATION):
        coupler = scope.get("coupler")
        if coupler is None:
            raise QDMIError(f"{prop.name} requires coupler= scope")
        cp = snapshot.coupler_params(*coupler)
        return cp.cz_fidelity if prop is QDMIProperty.CZ_FIDELITY else cp.cz_duration
    raise QDMIError(f"unhandled property {prop.name}")  # pragma: no cover


class QPUQDMIDevice(QDMIDevice):
    """Live QDMI binding: every query reads the device's *current*
    effective calibration, so compilers always see fresh data."""

    def __init__(self, device: QPUDevice) -> None:
        self._device = device

    def supported_properties(self) -> FrozenSet[QDMIProperty]:
        return _ALL

    def _query(self, prop: QDMIProperty, scope: Dict[str, Any]) -> Any:
        if prop is QDMIProperty.STATUS:
            return self._device.status.value
        snapshot = self._device.calibration()
        return _answer_from_snapshot(
            snapshot, self._device.name, self._device.status.value, prop, scope
        )


class SnapshotQDMIDevice(QDMIDevice):
    """Frozen QDMI binding: answers from a fixed snapshot.

    Models ahead-of-time compilation against stale calibration data —
    the baseline the JIT path beats in the Figure 3 experiment.
    """

    def __init__(self, snapshot: CalibrationSnapshot, name: str = "snapshot-device") -> None:
        self._snapshot = snapshot
        self._name = name

    def supported_properties(self) -> FrozenSet[QDMIProperty]:
        return _ALL

    def _query(self, prop: QDMIProperty, scope: Dict[str, Any]) -> Any:
        return _answer_from_snapshot(self._snapshot, self._name, "online", prop, scope)


__all__ = ["QPUQDMIDevice", "SnapshotQDMIDevice"]
