"""SWAP-insertion routing.

Takes a CZ-only logical circuit plus an initial placement and produces a
physically-executable circuit in which every CZ touches a real coupler.
The router walks the program in order, and for each non-adjacent CZ
moves one endpoint along the shortest physical path, preferring the
direction that helps upcoming gates (a one-gate lookahead — a light
version of the SABRE heuristic that stays deterministic).

The router reports the *final* layout, which downstream consumers need
to interpret measurement results and to compose tightly-coupled hybrid
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.errors import TranspilationError
from repro.qpu.topology import Topology
from repro.transpiler.layout import Layout


@dataclass(frozen=True)
class RoutingResult:
    """Routed circuit plus layout bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    swap_count: int


def route(
    circuit: QuantumCircuit,
    topology: Topology,
    initial_layout: Optional[Layout] = None,
    *,
    lookahead: int = 8,
) -> RoutingResult:
    """Insert SWAPs so every two-qubit gate is coupler-adjacent.

    The output circuit is over *physical* indices and has
    ``topology.num_qubits`` qubits.  Only ``cz`` two-qubit gates are
    accepted (run :func:`repro.transpiler.decompose.decompose_to_cz`
    first).
    """
    if initial_layout is None:
        initial_layout = {q: q for q in range(circuit.num_qubits)}
    _check_layout(circuit, topology, initial_layout)
    logical_to_phys: Dict[int, int] = dict(initial_layout)
    out = QuantumCircuit(topology.num_qubits, circuit.num_clbits, circuit.name)
    out.metadata = dict(circuit.metadata)
    swap_count = 0
    pending = list(circuit.instructions)
    for pos, inst in enumerate(pending):
        if inst.name == "barrier":
            phys = tuple(logical_to_phys[q] for q in inst.qubits)
            out.barrier(*phys)
            continue
        if len(inst.qubits) == 1 or inst.is_directive:
            out._instructions.append(
                Instruction(
                    inst.name,
                    tuple(logical_to_phys[q] for q in inst.qubits),
                    inst.params,
                    inst.clbits,
                )
            )
            continue
        if inst.name != "cz":
            raise TranspilationError(
                f"router only handles cz two-qubit gates, found {inst.name!r}"
            )
        a, b = inst.qubits
        while not topology.is_coupled(logical_to_phys[a], logical_to_phys[b]):
            step = _best_swap(
                topology, logical_to_phys, a, b, pending[pos + 1 :], lookahead
            )
            out.append("swap", list(step))
            swap_count += 1
            _apply_swap(logical_to_phys, step)
        out.cz(logical_to_phys[a], logical_to_phys[b])
    return RoutingResult(
        circuit=out,
        initial_layout=dict(initial_layout),
        final_layout=dict(logical_to_phys),
        swap_count=swap_count,
    )


def _check_layout(circuit: QuantumCircuit, topology: Topology, layout: Layout) -> None:
    if set(layout) < set(range(circuit.num_qubits)):
        missing = sorted(set(range(circuit.num_qubits)) - set(layout))
        raise TranspilationError(f"layout is missing logical qubits {missing}")
    phys = list(layout.values())
    if len(set(phys)) != len(phys):
        raise TranspilationError("layout maps two logical qubits to one physical")
    for p in phys:
        if not 0 <= p < topology.num_qubits:
            raise TranspilationError(f"physical qubit {p} out of range")


def _apply_swap(layout: Dict[int, int], phys_pair: Tuple[int, int]) -> None:
    """Update logical→physical after swapping two physical qubits."""
    pa, pb = phys_pair
    inv = {p: l for l, p in layout.items()}
    la, lb = inv.get(pa), inv.get(pb)
    if la is not None:
        layout[la] = pb
    if lb is not None:
        layout[lb] = pa


def _best_swap(
    topology: Topology,
    layout: Dict[int, int],
    a: int,
    b: int,
    upcoming: Sequence[Instruction],
    lookahead: int,
) -> Tuple[int, int]:
    """Choose the physical swap that most reduces current+future distance."""
    pa, pb = layout[a], layout[b]
    candidates: List[Tuple[int, int]] = []
    # swaps that move either endpoint one hop along some shortest direction
    for endpoint in (pa, pb):
        for n in topology.neighbors(endpoint):
            candidates.append((endpoint, n))
    future: List[Tuple[int, int]] = []
    for inst in upcoming:
        if inst.name == "cz":
            future.append(inst.qubits)  # type: ignore[arg-type]
            if len(future) >= lookahead:
                break

    def cost_after(swap: Tuple[int, int]) -> Tuple[int, float]:
        trial = dict(layout)
        _apply_swap(trial, swap)
        primary = topology.distance(trial[a], trial[b])
        fut = 0.0
        for decay, (la, lb) in enumerate(future):
            fut += topology.distance(trial[la], trial[lb]) * (0.5 ** (decay + 1))
        return (primary, fut)

    best = min(candidates, key=lambda s: cost_after(s) + (s,))  # deterministic tiebreak
    before = topology.distance(pa, pb)
    after = topology.distance(
        *(lambda t: (t[a], t[b]))(_swapped(layout, best))
    )
    if after >= before:
        # Ensure progress: force a move strictly along the shortest path.
        path = topology.shortest_path(pa, pb)
        best = (path[0], path[1])
    return best


def _swapped(layout: Dict[int, int], swap: Tuple[int, int]) -> Dict[int, int]:
    trial = dict(layout)
    _apply_swap(trial, swap)
    return trial


__all__ = ["RoutingResult", "route"]
