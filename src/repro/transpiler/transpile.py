"""The transpilation pipeline driver.

``transpile()`` chains the passes in the order a production stack runs
them::

    decompose-to-CZ → place → route → expand SWAPs → native synthesis

and returns a :class:`TranspileResult` carrying the physical circuit and
the layout bookkeeping that the middleware needs to interpret results.

Layout methods:

* ``"trivial"``   — identity placement (the no-telemetry baseline);
* ``"line"``      — Hamiltonian-path window (chain circuits / GHZ);
* ``"noise_adaptive"`` — greedy calibration-aware placement (requires a
  snapshot; this is the QDMI/JIT path of Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.circuits.circuit import QuantumCircuit
from repro.errors import TranspilationError
from repro.qpu.params import CalibrationSnapshot
from repro.qpu.topology import Topology
from repro.transpiler.decompose import (
    decompose_swaps,
    decompose_to_cz,
    synthesize_native,
)
from repro.transpiler.layout import (
    Layout,
    line_layout,
    noise_adaptive_layout,
    trivial_layout,
)
from repro.transpiler.routing import route

LAYOUT_METHODS = ("trivial", "line", "noise_adaptive")


@dataclass(frozen=True)
class TranspileResult:
    """Physical circuit plus provenance."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    swap_count: int
    layout_method: str

    @property
    def physical_measured_qubits(self) -> Dict[int, int]:
        """clbit → physical qubit actually measured."""
        out: Dict[int, int] = {}
        for inst in self.circuit:
            if inst.name == "measure":
                out[inst.clbits[0]] = inst.qubits[0]
        return out

    def stats(self) -> Dict[str, int]:
        ops = self.circuit.count_ops()
        return {
            "prx": ops.get("prx", 0),
            "cz": ops.get("cz", 0),
            "rz": ops.get("rz", 0),
            "measure": ops.get("measure", 0),
            "swaps_inserted": self.swap_count,
            "depth": self.circuit.depth(),
        }


def transpile(
    circuit: QuantumCircuit,
    topology: Topology,
    *,
    snapshot: Optional[CalibrationSnapshot] = None,
    layout_method: str = "noise_adaptive",
    initial_layout: Optional[Layout] = None,
    emit_trailing_rz: bool = True,
) -> TranspileResult:
    """Compile *circuit* for the device described by *topology*/*snapshot*.

    Falls back from ``noise_adaptive`` to ``trivial`` when no snapshot is
    available (the static-compilation baseline of the Figure 3 bench).
    Symbolic parameters must be bound before transpilation (the JIT
    compiler caches at the IR level instead; see :mod:`repro.compiler`).
    """
    if circuit.parameters:
        raise TranspilationError(
            "transpile requires a fully-bound circuit; bind parameters first"
        )
    method = layout_method
    if method not in LAYOUT_METHODS:
        raise TranspilationError(
            f"unknown layout method {layout_method!r}; choose from {LAYOUT_METHODS}"
        )
    cz_only = decompose_to_cz(circuit)
    if initial_layout is not None:
        placement = dict(initial_layout)
    elif method == "trivial":
        placement = trivial_layout(cz_only, topology)
    elif method == "line":
        placement = line_layout(cz_only, topology, snapshot)
    else:
        if snapshot is None:
            placement = trivial_layout(cz_only, topology)
            method = "trivial"
        else:
            placement = noise_adaptive_layout(cz_only, topology, snapshot)
    routed = route(cz_only, topology, placement)
    expanded = decompose_swaps(routed.circuit)
    native = synthesize_native(expanded, emit_trailing_rz=emit_trailing_rz)
    native.metadata["layout_method"] = method
    native.metadata["swap_count"] = routed.swap_count
    return TranspileResult(
        circuit=native,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        swap_count=routed.swap_count,
        layout_method=method,
    )


__all__ = ["TranspileResult", "transpile", "LAYOUT_METHODS"]
