"""Initial qubit placement.

Placement is where the paper's telemetry story pays off: QDMI serves the
live calibration snapshot, and the *noise-adaptive* layout places the
program's most entangled logical qubits on the physical region with the
best current CZ/readout fidelities ("just-in-time quantum circuit
transpilation can reduce noise", Section 2.6 citing Wilson et al.).  The
Figure 3 bench quantifies the gain over the trivial layout.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.errors import TranspilationError
from repro.qpu.params import CalibrationSnapshot
from repro.qpu.topology import Topology

Layout = Dict[int, int]
"""logical qubit → physical qubit"""


def trivial_layout(circuit: QuantumCircuit, topology: Topology) -> Layout:
    """Identity placement: logical *i* on physical *i*."""
    if circuit.num_qubits > topology.num_qubits:
        raise TranspilationError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{topology.num_qubits}"
        )
    return {q: q for q in range(circuit.num_qubits)}


def line_layout(
    circuit: QuantumCircuit,
    topology: Topology,
    snapshot: Optional[CalibrationSnapshot] = None,
) -> Layout:
    """Place logical qubits along a Hamiltonian path of the device.

    With a snapshot, the best *k*-long contiguous window of the path (by
    summed CZ log-fidelity) is chosen; without one, the path prefix.
    Ideal for chain-structured circuits such as the GHZ health checks.
    """
    path = topology.hamiltonian_path()
    k = circuit.num_qubits
    if k > len(path):
        raise TranspilationError("circuit larger than device")
    if snapshot is None or k == len(path):
        window = path[:k]
    else:
        best_cost = math.inf
        window = path[:k]
        for start in range(len(path) - k + 1):
            cand = path[start : start + k]
            cost = 0.0
            for a, b in zip(cand, cand[1:]):
                if topology.is_coupled(a, b):
                    cost += -math.log(
                        max(1e-9, snapshot.coupler_params(a, b).cz_fidelity)
                    )
                else:  # pragma: no cover - Hamiltonian path is edge-contiguous
                    cost += 10.0
            for q in cand:
                cost += -math.log(max(1e-9, snapshot.qubits[q].readout_fidelity))
            if cost < best_cost:
                best_cost, window = cost, cand
        # fall through with best window
    return {logical: physical for logical, physical in enumerate(window)}


def noise_adaptive_layout(
    circuit: QuantumCircuit,
    topology: Topology,
    snapshot: CalibrationSnapshot,
) -> Layout:
    """Greedy fidelity-aware placement.

    Logical qubits are placed in descending interaction weight; each is
    mapped to the free physical qubit that maximizes

    ``Σ_placed-partners w·log F_CZ(coupler)  +  log F_prx  +  log F_readout``

    with non-adjacent partners penalized by hop distance (they will cost
    SWAPs).  Greedy is the standard production compromise (exact
    placement is subgraph isomorphism).
    """
    if circuit.num_qubits > topology.num_qubits:
        raise TranspilationError("circuit larger than device")
    interactions = circuit.interactions()
    weight: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    partners: Dict[int, List[Tuple[int, float]]] = {
        q: [] for q in range(circuit.num_qubits)
    }
    for (a, b), count in interactions.items():
        weight[a] += count
        weight[b] += count
        partners[a].append((b, float(count)))
        partners[b].append((a, float(count)))
    order = sorted(range(circuit.num_qubits), key=lambda q: -weight[q])
    layout: Layout = {}
    used: set[int] = set()
    for logical in order:
        best_phys, best_score = -1, -math.inf
        for phys in range(topology.num_qubits):
            if phys in used:
                continue
            score = math.log(max(1e-9, snapshot.qubits[phys].prx_fidelity))
            score += math.log(max(1e-9, snapshot.qubits[phys].readout_fidelity))
            for partner, w in partners[logical]:
                if partner not in layout:
                    continue
                p_phys = layout[partner]
                if topology.is_coupled(phys, p_phys):
                    score += w * math.log(
                        max(1e-9, snapshot.coupler_params(phys, p_phys).cz_fidelity)
                    )
                else:
                    # Each extra hop ≈ one SWAP ≈ three CZs of typical fidelity.
                    hops = topology.distance(phys, p_phys) - 1
                    score += w * hops * 3.0 * math.log(
                        max(1e-9, 1.0 - 1.5 * _median_cz_error(snapshot))
                    )
            if score > best_score:
                best_score, best_phys = score, phys
        layout[logical] = best_phys
        used.add(best_phys)
    return layout


def best_ghz_chain(
    snapshot: CalibrationSnapshot, length: int, *, beam_width: int = 24
) -> List[int]:
    """The physical qubit path of given *length* maximizing the product of
    CZ fidelities along it (beam search over simple paths).

    This is how the calibration benchmark chooses *which* qubits to run
    its GHZ health check on (Section 3.2 runs GHZ "on all qubits of the
    QPU or subsets of them").
    """
    topo = snapshot.topology
    if not 1 <= length <= topo.num_qubits:
        raise TranspilationError(f"invalid chain length {length}")
    if length == 1:
        best = max(
            range(topo.num_qubits), key=lambda q: snapshot.qubits[q].readout_fidelity
        )
        return [best]
    # beam of (neg-log-fidelity cost, path tuple)
    beam: List[Tuple[float, Tuple[int, ...]]] = [
        (0.0, (q,)) for q in range(topo.num_qubits)
    ]
    for _ in range(length - 1):
        grown: List[Tuple[float, Tuple[int, ...]]] = []
        for cost, path in beam:
            for n in topo.neighbors(path[-1]):
                if n in path:
                    continue
                step = -math.log(
                    max(1e-9, snapshot.coupler_params(path[-1], n).cz_fidelity)
                )
                step += -math.log(max(1e-9, snapshot.qubits[n].readout_fidelity))
                grown.append((cost + step, path + (n,)))
        if not grown:
            raise TranspilationError(
                f"no simple path of length {length} on {topo.name}"
            )
        grown.sort(key=lambda t: t[0])
        # Keep the best continuation per end-qubit to preserve diversity.
        seen_ends: set[int] = set()
        beam = []
        for cost, path in grown:
            if path[-1] in seen_ends and len(beam) >= beam_width:
                continue
            beam.append((cost, path))
            seen_ends.add(path[-1])
            if len(beam) >= beam_width:
                break
    return list(min(beam, key=lambda t: t[0])[1])


def _median_cz_error(snapshot: CalibrationSnapshot) -> float:
    errors = sorted(c.cz_error for c in snapshot.couplers.values())
    return errors[len(errors) // 2]


def layout_fidelity_score(
    circuit: QuantumCircuit, layout: Layout, snapshot: CalibrationSnapshot
) -> float:
    """Predicted success probability of *circuit* under *layout*:
    product of the calibrated fidelities of every mapped operation
    (SWAP overhead not included — compare like-routed circuits)."""
    log_f = 0.0
    for inst in circuit:
        if inst.name == "barrier":
            continue
        phys = [layout[q] for q in inst.qubits]
        if inst.is_two_qubit:
            if snapshot.topology.is_coupled(*phys):
                log_f += math.log(
                    max(1e-9, snapshot.coupler_params(*phys).cz_fidelity)
                )
            else:
                hops = snapshot.topology.distance(*phys) - 1
                log_f += (1 + 3 * hops) * math.log(
                    max(1e-9, 1.0 - _median_cz_error(snapshot))
                )
        elif inst.name == "measure":
            log_f += math.log(max(1e-9, snapshot.qubits[phys[0]].readout_fidelity))
        elif not inst.is_directive:
            log_f += math.log(max(1e-9, snapshot.qubits[phys[0]].prx_fidelity))
    return math.exp(log_f)


__all__ = [
    "Layout",
    "trivial_layout",
    "line_layout",
    "noise_adaptive_layout",
    "best_ghz_chain",
    "layout_fidelity_score",
]
