"""Circuit-to-hardware compilation passes."""

from repro.transpiler.decompose import (
    decompose_swaps,
    decompose_to_cz,
    synthesize_native,
)
from repro.transpiler.layout import (
    Layout,
    best_ghz_chain,
    layout_fidelity_score,
    line_layout,
    noise_adaptive_layout,
    trivial_layout,
)
from repro.transpiler.routing import RoutingResult, route
from repro.transpiler.transpile import LAYOUT_METHODS, TranspileResult, transpile

__all__ = [
    "decompose_swaps",
    "decompose_to_cz",
    "synthesize_native",
    "Layout",
    "best_ghz_chain",
    "layout_fidelity_score",
    "line_layout",
    "noise_adaptive_layout",
    "trivial_layout",
    "RoutingResult",
    "route",
    "LAYOUT_METHODS",
    "TranspileResult",
    "transpile",
]
