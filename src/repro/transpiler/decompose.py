"""Gate decomposition passes.

Two rewrites live here:

* :func:`decompose_to_cz` — expand every two-qubit gate into CZ plus
  single-qubit gates (run *before* routing, so the router only reasons
  about CZ adjacency);
* :func:`synthesize_native` — merge every run of single-qubit gates into
  at most one physical PRX pulse plus a *virtual* RZ frame update,
  exploiting that RZ commutes with the (diagonal) CZ and is irrelevant
  before measurement/reset.  This is the pulse-count-optimal form real
  phased-RX control stacks emit.

Both passes preserve measurement-outcome semantics exactly; the test
suite verifies unitary equivalence up to global phase on random
circuits.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import prx_rz_for_unitary, rz_matrix, spec
from repro.circuits.parameters import numeric_value
from repro.errors import TranspilationError

_CZ_RULES_MAX_ROUNDS = 6


def decompose_to_cz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite so every multi-qubit gate is a CZ.

    Symbolic parameters are allowed (cp/rzz rules are linear in the
    angle), so variational templates can be decomposed once and bound
    per iteration.
    """
    work = list(circuit.instructions)
    for _ in range(_CZ_RULES_MAX_ROUNDS):
        out: List[Instruction] = []
        changed = False
        for inst in work:
            rule = _CZ_RULES.get(inst.name)
            if rule is None:
                out.append(inst)
            else:
                out.extend(rule(inst))
                changed = True
        work = out
        if not changed:
            break
    else:
        raise TranspilationError("decompose_to_cz did not converge")
    result = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    result.metadata = dict(circuit.metadata)
    for inst in work:
        result._instructions.append(inst)
    return result


def _rule_cx(inst: Instruction) -> List[Instruction]:
    c, t = inst.qubits
    return [
        Instruction("h", (t,)),
        Instruction("cz", (c, t)),
        Instruction("h", (t,)),
    ]


def _rule_swap(inst: Instruction) -> List[Instruction]:
    a, b = inst.qubits
    return [
        Instruction("cx", (a, b)),
        Instruction("cx", (b, a)),
        Instruction("cx", (a, b)),
    ]


def _rule_iswap(inst: Instruction) -> List[Instruction]:
    # iSWAP = SWAP · CZ · (S ⊗ S)   (verified in tests up to global phase)
    a, b = inst.qubits
    return [
        Instruction("s", (a,)),
        Instruction("s", (b,)),
        Instruction("cz", (a, b)),
        Instruction("swap", (a, b)),
    ]


def _rule_cp(inst: Instruction) -> List[Instruction]:
    # CP(λ) ≐ RZ(λ/2)_a · RZ(λ/2)_b · RZZ(−λ/2)
    (lam,) = inst.params
    a, b = inst.qubits
    half = lam * 0.5 if not isinstance(lam, (int, float)) else 0.5 * float(lam)
    neg_half = -half if not isinstance(half, (int, float)) else -float(half)
    return [
        Instruction("rz", (a,), (half,)),
        Instruction("rz", (b,), (half,)),
        Instruction("rzz", (a, b), (neg_half,)),
    ]


def _rule_rzz(inst: Instruction) -> List[Instruction]:
    (theta,) = inst.params
    a, b = inst.qubits
    return [
        Instruction("cx", (a, b)),
        Instruction("rz", (b,), (theta,)),
        Instruction("cx", (a, b)),
    ]


_CZ_RULES = {
    "cx": _rule_cx,
    "swap": _rule_swap,
    "iswap": _rule_iswap,
    "cp": _rule_cp,
    "rzz": _rule_rzz,
}


# ---------------------------------------------------------------------------
# Native synthesis with virtual RZ
# ---------------------------------------------------------------------------


def synthesize_native(
    circuit: QuantumCircuit, *, emit_trailing_rz: bool = True
) -> QuantumCircuit:
    """Convert a CZ-only circuit to the native {PRX, CZ, RZ} gate set.

    Runs of single-qubit gates are accumulated into one unitary and
    emitted as a single PRX pulse; the residual Z rotation stays virtual
    (tracked classically) and is:

    * folded into the next PRX on the same qubit,
    * commuted through CZ (both are diagonal in Z),
    * dropped at measurement/reset (Z phase is unobservable there),
    * optionally emitted as an explicit (virtual, error-free) ``rz`` at
      the end of the circuit so the result stays unitarily equivalent.

    All parameters must be bound (synthesis needs numeric matrices).
    """
    n = circuit.num_qubits
    out = QuantumCircuit(n, circuit.num_clbits, circuit.name)
    out.metadata = dict(circuit.metadata)
    # accum[q]: pending single-qubit unitary not yet emitted (includes the
    # virtual-RZ carry).  None means identity.
    accum: List[Optional[np.ndarray]] = [None] * n
    # carry[q]: virtual Z angle to re-apply after the last emitted pulse.
    carry: List[float] = [0.0] * n

    def fold_carry(q: int) -> None:
        """Move the virtual-Z carry into the accumulator."""
        if carry[q] != 0.0:
            base = accum[q] if accum[q] is not None else np.eye(2, dtype=complex)
            accum[q] = base @ rz_matrix(carry[q])
            carry[q] = 0.0

    def flush(q: int) -> None:
        """Emit the accumulated unitary as ≤1 PRX; keep residual Z virtual."""
        fold_carry(q)
        if accum[q] is None:
            return
        pulses, tau = prx_rz_for_unitary(accum[q])
        for theta, phi in pulses:
            out.append("prx", [q], [theta, phi])
        carry[q] = tau
        accum[q] = None

    for inst in circuit:
        name = inst.name
        if name == "cz":
            a, b = inst.qubits
            flush(a)
            flush(b)
            out.append("cz", [a, b])  # carry commutes through CZ
        elif name == "measure":
            q = inst.qubits[0]
            flush(q)
            carry[q] = 0.0  # Z before measurement is unobservable
            out.append("measure", [q], clbits=inst.clbits)
        elif name == "reset":
            q = inst.qubits[0]
            flush(q)
            carry[q] = 0.0
            out.append("reset", [q])
        elif name == "barrier":
            for q in inst.qubits:
                flush(q)
            out.barrier(*inst.qubits)
        elif name == "delay":
            q = inst.qubits[0]
            flush(q)
            out.append("delay", [q], inst.params)
        elif name == "rz":
            q = inst.qubits[0]
            carry_angle = numeric_value(inst.params[0])
            if accum[q] is None and carry[q] == 0.0:
                carry[q] = carry_angle
            else:
                fold_carry(q)
                base = accum[q] if accum[q] is not None else np.eye(2, dtype=complex)
                accum[q] = rz_matrix(carry_angle) @ base
        elif name == "id":
            continue
        else:
            gate_spec = spec(name)
            if gate_spec.num_qubits != 1 or gate_spec.directive:
                raise TranspilationError(
                    f"synthesize_native expects a CZ-only circuit, found {name!r}"
                )
            fold_carry(q := inst.qubits[0])
            matrix = inst.matrix()
            base = accum[q] if accum[q] is not None else np.eye(2, dtype=complex)
            accum[q] = matrix @ base
    for q in range(n):
        flush(q)
        if emit_trailing_rz and abs(carry[q]) > 1e-12:
            out.append("rz", [q], [carry[q]])
    return out


def decompose_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand router-inserted SWAPs into H/CZ (post-routing cleanup)."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.metadata = dict(circuit.metadata)
    for inst in circuit:
        if inst.name != "swap":
            out._instructions.append(inst)
            continue
        a, b = inst.qubits
        for c, t in ((a, b), (b, a), (a, b)):
            out.h(t)
            out.cz(c, t)
            out.h(t)
    return out


__all__ = ["decompose_to_cz", "synthesize_native", "decompose_swaps"]
