"""Device model: topology, calibration data, drift physics, executor."""

from repro.qpu.device import (
    FULL_CALIBRATION_DURATION,
    JOB_OVERHEAD,
    QUICK_CALIBRATION_DURATION,
    DeviceStatus,
    QPUDevice,
    QPUJobResult,
)
from repro.qpu.drift import DriftConfig, DriftModel
from repro.qpu.params import (
    NOMINAL,
    CalibrationSnapshot,
    CouplerParams,
    QubitParams,
    nominal_calibration,
)
from repro.qpu.pulse import (
    AcquirePulse,
    DrivePulse,
    FluxPulse,
    PulseSchedule,
    circuit_to_schedule,
    schedule_to_circuit,
)
from repro.qpu.topology import Coupler, Topology

__all__ = [
    "FULL_CALIBRATION_DURATION",
    "JOB_OVERHEAD",
    "QUICK_CALIBRATION_DURATION",
    "DeviceStatus",
    "QPUDevice",
    "QPUJobResult",
    "DriftConfig",
    "DriftModel",
    "NOMINAL",
    "CalibrationSnapshot",
    "CouplerParams",
    "QubitParams",
    "nominal_calibration",
    "Coupler",
    "Topology",
    "AcquirePulse",
    "DrivePulse",
    "FluxPulse",
    "PulseSchedule",
    "circuit_to_schedule",
    "schedule_to_circuit",
]
