"""Device calibration data: the per-qubit / per-coupler quality metrics.

A :class:`CalibrationSnapshot` is the artifact the whole stack revolves
around: QDMI serves it to the compiler, DCDB logs its history, Figure 4
plots its evolution over 146 days, and the sampler's noise model is
compiled directly from it.

Nominal magnitudes follow the published benchmarks of the paper's device
(IQM's 20-qubit system, arXiv:2408.12433): median T1 ≈ 40 µs, single-
qubit gate fidelity ≈ 99.9 %, CZ fidelity ≈ 99.1 %, readout fidelity
≈ 97.5 %, PRX duration 20 ns, CZ duration 40 ns, readout 1.5 µs, and the
300 µs passive reset the paper's Section 2.4 bandwidth estimate assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError, TopologyError
from repro.qpu.topology import Coupler, Topology
from repro.simulator.noise import (
    NoiseModel,
    ReadoutError,
    depolarizing_error,
    thermal_relaxation_error,
)
from repro.utils.units import MICROSECOND, NANOSECOND
from repro.utils.validation import check_probability

#: Paper-grade nominal hardware figures (see module docstring).
NOMINAL = {
    "t1": 40.0 * MICROSECOND,
    "t2": 30.0 * MICROSECOND,
    "prx_error": 1.0e-3,
    "cz_error": 9.0e-3,
    "readout_error": 2.5e-2,
    "prx_duration": 20.0 * NANOSECOND,
    "cz_duration": 40.0 * NANOSECOND,
    "readout_duration": 1.5 * MICROSECOND,
    "reset_duration": 300.0 * MICROSECOND,  # passive ground-state reset
}


@dataclass(frozen=True)
class QubitParams:
    """Calibrated properties of one transmon qubit."""

    t1: float
    t2: float
    prx_error: float
    readout_error_0: float  # P(read 1 | prepared 0)
    readout_error_1: float  # P(read 0 | prepared 1)
    prx_duration: float = NOMINAL["prx_duration"]
    readout_duration: float = NOMINAL["readout_duration"]
    frequency: float = 4.8e9

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise CalibrationError("T1/T2 must be positive")
        if self.t2 > 2.0 * self.t1 + 1e-12:
            raise CalibrationError(f"unphysical T2 {self.t2:g} > 2·T1 {self.t1:g}")
        check_probability(self.prx_error, "prx_error")
        check_probability(self.readout_error_0, "readout_error_0")
        check_probability(self.readout_error_1, "readout_error_1")

    @property
    def prx_fidelity(self) -> float:
        return 1.0 - self.prx_error

    @property
    def readout_fidelity(self) -> float:
        return 1.0 - 0.5 * (self.readout_error_0 + self.readout_error_1)

    def readout(self) -> ReadoutError:
        return ReadoutError(self.readout_error_0, self.readout_error_1)


@dataclass(frozen=True)
class CouplerParams:
    """Calibrated properties of one tunable coupler (CZ gate)."""

    cz_error: float
    cz_duration: float = NOMINAL["cz_duration"]

    def __post_init__(self) -> None:
        check_probability(self.cz_error, "cz_error")

    @property
    def cz_fidelity(self) -> float:
        return 1.0 - self.cz_error


@dataclass(frozen=True)
class CalibrationSnapshot:
    """The full calibrated state of a device at one instant.

    ``timestamp`` is simulation time in seconds since epoch of the run;
    ``calibration_kind`` records whether the data came from a ``"full"``
    or ``"quick"`` procedure (Section 3.2), which QDMI exposes to users.
    """

    topology: Topology
    qubits: Tuple[QubitParams, ...]
    couplers: Mapping[Coupler, CouplerParams]
    timestamp: float = 0.0
    calibration_kind: str = "full"
    reset_duration: float = NOMINAL["reset_duration"]

    def __post_init__(self) -> None:
        if len(self.qubits) != self.topology.num_qubits:
            raise CalibrationError(
                f"snapshot has {len(self.qubits)} qubit entries for a "
                f"{self.topology.num_qubits}-qubit topology"
            )
        expected = set(self.topology.couplers)
        got = set(self.couplers)
        if expected != got:
            raise CalibrationError(
                f"snapshot couplers do not match topology "
                f"(missing {sorted(expected - got)}, extra {sorted(got - expected)})"
            )

    # -- aggregate quality metrics (the Figure 4 series) -----------------------

    def median_prx_fidelity(self) -> float:
        return median(q.prx_fidelity for q in self.qubits)

    def median_cz_fidelity(self) -> float:
        return median(c.cz_fidelity for c in self.couplers.values())

    def median_readout_fidelity(self) -> float:
        return median(q.readout_fidelity for q in self.qubits)

    def median_t1(self) -> float:
        return median(q.t1 for q in self.qubits)

    def median_t2(self) -> float:
        return median(q.t2 for q in self.qubits)

    def worst_qubit(self) -> int:
        """Index of the qubit with the lowest PRX fidelity."""
        return min(range(len(self.qubits)), key=lambda i: self.qubits[i].prx_fidelity)

    def summary(self) -> Dict[str, float]:
        """The metric dict pushed to telemetry every monitoring cycle."""
        return {
            "median_prx_fidelity": self.median_prx_fidelity(),
            "median_cz_fidelity": self.median_cz_fidelity(),
            "median_readout_fidelity": self.median_readout_fidelity(),
            "median_t1": self.median_t1(),
            "median_t2": self.median_t2(),
        }

    # -- derived artifacts -------------------------------------------------------

    def coupler_params(self, a: int, b: int) -> CouplerParams:
        key = (min(int(a), int(b)), max(int(a), int(b)))
        try:
            return self.couplers[key]
        except KeyError:
            raise TopologyError(f"no coupler between qubits {a} and {b}") from None

    def gate_duration(self, name: str, qubits: Sequence[int]) -> float:
        """Physical duration of a native operation in seconds."""
        if name == "prx":
            return self.qubits[qubits[0]].prx_duration
        if name == "cz":
            return self.coupler_params(*qubits).cz_duration
        if name == "measure":
            return self.qubits[qubits[0]].readout_duration
        if name == "reset":
            return self.reset_duration
        return 0.0  # rz (virtual), barrier, id

    def as_noise_model(self, qubits: Optional[Sequence[int]] = None) -> NoiseModel:
        """Compile the snapshot into the sampler's noise model.

        Per native gate: depolarizing error at the calibrated rate plus
        thermal relaxation over the gate duration.  Readout confusion per
        qubit.  ``delay`` instructions get pure thermal relaxation scaled
        by their duration parameter at execution time (handled by the
        executor, which attaches per-delay errors itself).

        With *qubits* given, the model is restricted to that subset and
        re-indexed compactly (``qubits[i] → i``) — the executor uses this
        to simulate only the active region of the chip.
        """
        if qubits is None:
            index = {q: q for q in range(len(self.qubits))}
        else:
            index = {int(q): i for i, q in enumerate(qubits)}
        nm = NoiseModel()
        for q, qp in enumerate(self.qubits):
            if q not in index:
                continue
            err = depolarizing_error(qp.prx_error, 1).compose(
                thermal_relaxation_error(qp.t1, qp.t2, qp.prx_duration)
            )
            nm.add_gate_error(err, "prx", [index[q]])
            nm.add_readout_error(qp.readout(), index[q])
        for (a, b), cp in self.couplers.items():
            if a not in index or b not in index:
                continue
            err2 = depolarizing_error(cp.cz_error, 2)
            ta = thermal_relaxation_error(
                self.qubits[a].t1, self.qubits[a].t2, cp.cz_duration, operand=0
            )
            tb = thermal_relaxation_error(
                self.qubits[b].t1, self.qubits[b].t2, cp.cz_duration, operand=1
            )
            nm.add_gate_error(err2.compose(ta).compose(tb), "cz", [index[a], index[b]])
        return nm

    def with_updates(
        self,
        *,
        qubits: Optional[Mapping[int, QubitParams]] = None,
        couplers: Optional[Mapping[Coupler, CouplerParams]] = None,
        timestamp: Optional[float] = None,
        calibration_kind: Optional[str] = None,
    ) -> "CalibrationSnapshot":
        """Functional update helper."""
        new_qubits = list(self.qubits)
        for idx, qp in (qubits or {}).items():
            new_qubits[idx] = qp
        new_couplers = dict(self.couplers)
        for key, cp in (couplers or {}).items():
            new_couplers[tuple(sorted(key))] = cp  # type: ignore[index]
        return CalibrationSnapshot(
            topology=self.topology,
            qubits=tuple(new_qubits),
            couplers=new_couplers,
            timestamp=self.timestamp if timestamp is None else timestamp,
            calibration_kind=self.calibration_kind
            if calibration_kind is None
            else calibration_kind,
            reset_duration=self.reset_duration,
        )


def nominal_calibration(
    topology: Topology,
    *,
    rng: object = None,
    timestamp: float = 0.0,
    spread: float = 0.15,
) -> CalibrationSnapshot:
    """A freshly-calibrated snapshot with device-like parameter spread.

    Each qubit/coupler draws its figures log-normally around the
    :data:`NOMINAL` medians with relative *spread*, reproducing the
    qubit-to-qubit variability real calibration reports show.
    """
    from repro.utils.rng import as_rng

    r = as_rng(rng)  # type: ignore[arg-type]

    def jitter(base: float) -> float:
        return float(base * np.exp(r.normal(0.0, spread)))

    qubits: List[QubitParams] = []
    for q in range(topology.num_qubits):
        t1 = jitter(NOMINAL["t1"])
        t2 = min(jitter(NOMINAL["t2"]), 1.95 * t1)
        e0 = min(0.5, jitter(NOMINAL["readout_error"]))
        e1 = min(0.5, jitter(NOMINAL["readout_error"] * 1.4))
        qubits.append(
            QubitParams(
                t1=t1,
                t2=t2,
                prx_error=min(0.5, jitter(NOMINAL["prx_error"])),
                readout_error_0=e0,
                readout_error_1=e1,
                frequency=4.8e9 + 0.01e9 * q,
            )
        )
    couplers = {
        edge: CouplerParams(cz_error=min(0.5, jitter(NOMINAL["cz_error"])))
        for edge in topology.couplers
    }
    return CalibrationSnapshot(
        topology=topology,
        qubits=tuple(qubits),
        couplers=couplers,
        timestamp=timestamp,
        calibration_kind="full",
    )


__all__ = [
    "NOMINAL",
    "QubitParams",
    "CouplerParams",
    "CalibrationSnapshot",
    "nominal_calibration",
]
