"""Pulse-level access.

Section 4: "some users needed pulse-level access, enabling them to move
beyond circuit-based programming and design hardware-specific control
sequences."  Section 2.6 likewise lists "gate- and pulse-level tasks" as
inputs to the client.

This module models the pulse layer at the fidelity the stack needs:

* a :class:`PulseSchedule` of timed operations on per-qubit **drive**
  channels (microwave pulses → PRX rotations), per-coupler **flux**
  channels (CZ interactions) and **acquire** channels (readout);
* lowering (:func:`schedule_to_circuit`) into the native circuit the
  executor runs — drive pulses become PRX gates whose angle is set by
  the pulse *area* (amplitude × duration, in units of the calibrated π
  pulse), gaps become explicit ``delay`` instructions so idle
  decoherence is accounted exactly;
* :func:`circuit_to_schedule`, the reverse view compilers use to show
  users "greater transparency in the quantum circuit compilation
  process" (another Section 4 request).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.errors import DeviceError
from repro.qpu.params import NOMINAL, CalibrationSnapshot

#: amplitude that yields a π rotation at the nominal PRX duration.
PI_PULSE_AMPLITUDE = 1.0


@dataclass(frozen=True)
class DrivePulse:
    """A microwave drive pulse on one qubit's drive channel.

    ``amplitude`` is in π-pulse units (1.0 for the full flip at nominal
    duration); ``phase`` is the drive phase — exactly the PRX φ.
    """

    qubit: int
    duration: float
    amplitude: float
    phase: float = 0.0

    def rotation_angle(self) -> float:
        """θ = π · amplitude · (duration / nominal π-pulse duration)."""
        return math.pi * self.amplitude * (self.duration / NOMINAL["prx_duration"])


@dataclass(frozen=True)
class FluxPulse:
    """A coupler flux pulse implementing CZ between two qubits."""

    qubits: Tuple[int, int]
    duration: float


@dataclass(frozen=True)
class AcquirePulse:
    """A readout acquisition window on one qubit."""

    qubit: int
    duration: float
    clbit: Optional[int] = None


PulseOp = Union[DrivePulse, FluxPulse, AcquirePulse]


@dataclass(frozen=True)
class TimedOp:
    """A pulse op placed at an absolute schedule time (seconds)."""

    time: float
    op: PulseOp

    @property
    def end(self) -> float:
        return self.time + self.op.duration

    def channels(self) -> Tuple[str, ...]:
        op = self.op
        if isinstance(op, DrivePulse):
            return (f"d{op.qubit}",)
        if isinstance(op, FluxPulse):
            a, b = sorted(op.qubits)
            # a flux pulse occupies the coupler AND both drive channels
            return (f"f{a}-{b}", f"d{a}", f"d{b}")
        return (f"a{op.qubit}", f"d{op.qubit}")


class PulseSchedule:
    """An ordered set of timed pulse operations with channel bookkeeping."""

    def __init__(self, name: str = "schedule") -> None:
        self.name = str(name)
        self._ops: List[TimedOp] = []
        self._channel_free: Dict[str, float] = {}

    # -- construction -----------------------------------------------------------

    def insert(self, time: float, op: PulseOp) -> "PulseSchedule":
        """Place *op* at absolute *time*; overlapping pulses on the same
        channel are rejected (hardware sequencers cannot emit them)."""
        timed = TimedOp(float(time), op)
        if timed.time < 0:
            raise DeviceError("pulse times must be non-negative")
        for ch in timed.channels():
            if timed.time < self._channel_free.get(ch, 0.0) - 1e-15:
                raise DeviceError(
                    f"channel {ch} busy until "
                    f"{self._channel_free[ch]:.3e}s, cannot place op at "
                    f"{timed.time:.3e}s"
                )
        for ch in timed.channels():
            self._channel_free[ch] = max(self._channel_free.get(ch, 0.0), timed.end)
        self._ops.append(timed)
        self._ops.sort(key=lambda t: (t.time, id(t)))
        return self

    def append(self, op: PulseOp) -> "PulseSchedule":
        """Place *op* as early as its channels allow."""
        start = max(
            (self._channel_free.get(ch, 0.0) for ch in TimedOp(0.0, op).channels()),
            default=0.0,
        )
        return self.insert(start, op)

    # -- queries -----------------------------------------------------------------

    @property
    def ops(self) -> Tuple[TimedOp, ...]:
        return tuple(self._ops)

    @property
    def duration(self) -> float:
        return max((t.end for t in self._ops), default=0.0)

    def qubits_used(self) -> frozenset:
        out: set[int] = set()
        for t in self._ops:
            op = t.op
            if isinstance(op, FluxPulse):
                out.update(op.qubits)
            else:
                out.add(op.qubit)
        return frozenset(out)

    def __len__(self) -> int:
        return len(self._ops)

    def draw(self) -> str:
        """Text timeline, one line per op (transparency for users)."""
        lines = [f"schedule {self.name!r} ({self.duration * 1e9:.0f} ns):"]
        for t in self._ops:
            op = t.op
            if isinstance(op, DrivePulse):
                desc = (
                    f"drive  q{op.qubit}  amp={op.amplitude:+.3f} "
                    f"phase={op.phase:+.3f} → θ={op.rotation_angle():+.3f}"
                )
            elif isinstance(op, FluxPulse):
                desc = f"flux   q{op.qubits[0]}–q{op.qubits[1]} (CZ)"
            else:
                desc = f"acquire q{op.qubit} → c{op.clbit if op.clbit is not None else op.qubit}"
            lines.append(f"  t={t.time * 1e9:8.1f} ns  {desc}")
        return "\n".join(lines)


def schedule_to_circuit(
    schedule: PulseSchedule, num_qubits: int, num_clbits: Optional[int] = None
) -> QuantumCircuit:
    """Lower a pulse schedule to the native circuit the executor runs.

    Drive pulses become PRX gates; flux pulses become CZ; acquisitions
    become measurements; channel idle gaps become explicit ``delay``
    instructions so the executor's decoherence accounting sees the true
    timing.
    """
    if num_qubits < 1:
        raise DeviceError("num_qubits must be >= 1")
    for q in schedule.qubits_used():
        if not 0 <= q < num_qubits:
            raise DeviceError(f"schedule uses qubit {q}; circuit has {num_qubits}")
    circuit = QuantumCircuit(num_qubits, num_clbits, name=schedule.name)
    qubit_time: Dict[int, float] = {}

    def pad(qubit: int, start: float) -> None:
        gap = start - qubit_time.get(qubit, 0.0)
        if gap > 1e-12:
            circuit.delay(gap, qubit)
        qubit_time[qubit] = start

    for timed in schedule.ops:
        op = timed.op
        if isinstance(op, DrivePulse):
            pad(op.qubit, timed.time)
            theta = op.rotation_angle()
            if abs(theta) > 1e-12:
                circuit.prx(theta, op.phase, op.qubit)
            qubit_time[op.qubit] = timed.end
        elif isinstance(op, FluxPulse):
            a, b = op.qubits
            pad(a, timed.time)
            pad(b, timed.time)
            circuit.cz(a, b)
            qubit_time[a] = qubit_time[b] = timed.end
        else:
            pad(op.qubit, timed.time)
            circuit.measure(op.qubit, op.clbit)
            qubit_time[op.qubit] = timed.end
    return circuit


def circuit_to_schedule(
    circuit: QuantumCircuit, snapshot: CalibrationSnapshot
) -> PulseSchedule:
    """Expose a native circuit's physical timeline as a pulse schedule.

    ASAP-schedules each native instruction at its calibrated duration —
    the "transparency in the quantum circuit compilation process"
    early users asked for.  Only native circuits lower (transpile first).
    """
    schedule = PulseSchedule(circuit.name)
    ready: Dict[int, float] = {}
    for inst in circuit:
        if inst.name == "barrier":
            top = max((ready.get(q, 0.0) for q in inst.qubits), default=0.0)
            for q in inst.qubits:
                ready[q] = top
            continue
        if inst.name == "rz":
            continue  # virtual: no pulse
        start = max((ready.get(q, 0.0) for q in inst.qubits), default=0.0)
        if inst.name == "prx":
            theta = float(inst.params[0])  # type: ignore[arg-type]
            phi = float(inst.params[1])  # type: ignore[arg-type]
            dur = snapshot.gate_duration("prx", inst.qubits)
            amp = theta / math.pi * (NOMINAL["prx_duration"] / dur)
            schedule.insert(
                start, DrivePulse(inst.qubits[0], dur, amp, phi)
            )
            end = start + dur
        elif inst.name == "cz":
            dur = snapshot.gate_duration("cz", inst.qubits)
            schedule.insert(start, FluxPulse(tuple(inst.qubits), dur))  # type: ignore[arg-type]
            end = start + dur
        elif inst.name == "measure":
            dur = snapshot.gate_duration("measure", inst.qubits)
            schedule.insert(
                start, AcquirePulse(inst.qubits[0], dur, inst.clbits[0])
            )
            end = start + dur
        elif inst.name == "delay":
            end = start + float(inst.params[0])  # type: ignore[arg-type]
        elif inst.name in ("reset", "id"):
            end = start + snapshot.gate_duration(inst.name, inst.qubits)
        else:
            raise DeviceError(
                f"{inst.name!r} is not a native operation; transpile first"
            )
        for q in inst.qubits:
            ready[q] = end
    return schedule


__all__ = [
    "PI_PULSE_AMPLITUDE",
    "DrivePulse",
    "FluxPulse",
    "AcquirePulse",
    "TimedOp",
    "PulseSchedule",
    "schedule_to_circuit",
    "circuit_to_schedule",
]
