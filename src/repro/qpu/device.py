"""The on-premise QPU: executor, clock, status, and calibration hooks.

:class:`QPUDevice` stands in for the paper's full-stack 20-qubit system:
it owns the hidden drifting physics (:mod:`repro.qpu.drift`), executes
*native-gate* circuits against the current effective calibration, tracks
simulation time, and exposes exactly the control surface the operations
layer needs — ``calibrate("quick"|"full")`` with the paper's 40/100
minute durations, maintenance windows, and warm-up/cool-down transitions
driven by the facility model.

Execution is strict: circuits must be transpiled to {PRX, RZ, CZ,
measure, barrier, delay} with CZ only on physical couplers — the same
contract a real control stack enforces.
"""

from __future__ import annotations

import enum
import math
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import NATIVE_GATES
from repro.errors import DeviceError, DeviceUnavailableError, TopologyError
from repro.qpu.drift import DriftConfig, DriftModel
from repro.qpu.params import CalibrationSnapshot, nominal_calibration
from repro.qpu.topology import Topology
from repro.simulator.counts import Counts
from repro.simulator.noise import QuantumError, thermal_relaxation_error
from repro.simulator.sampler import sample_counts
from repro.utils.rng import RandomState, as_rng, child_rng
from repro.utils.units import MINUTE

#: Section 3.2 of the paper: quick ≈ 40 min, full ≈ 100 min.
QUICK_CALIBRATION_DURATION = 40.0 * MINUTE
FULL_CALIBRATION_DURATION = 100.0 * MINUTE

#: Fixed per-job overhead of the control software (compile-to-pulse upload,
#: sequencer arming).  The paper notes "the control software has additional
#: inefficiency, so that fully continuous measurements are not possible".
JOB_OVERHEAD = 1.0


class DeviceStatus(enum.Enum):
    """Operational state of the QPU."""

    ONLINE = "online"
    CALIBRATING = "calibrating"
    MAINTENANCE = "maintenance"
    OFFLINE = "offline"  # warm, cooling down, or otherwise unavailable


@dataclass(frozen=True)
class QPUJobResult:
    """Outcome of one executed quantum job.

    ``duration`` is the physical wall-clock execution time estimate
    (reset + gates + readout, times shots, plus overhead), which also
    drives the Section 2.4 bandwidth accounting via
    :meth:`output_bytes`.
    """

    job_id: int
    circuit_name: str
    counts: Counts
    shots: int
    duration: float
    shot_duration: float
    started_at: float
    num_measured_qubits: int
    calibration_timestamp: float

    def output_bytes(self, fmt: str = "bitstrings") -> int:
        """Result payload size in bytes for a given wire format.

        * ``"bitstrings"`` — one byte per measured bit per shot (the
          paper's deliberately inefficient 8-bits-per-bit assumption);
        * ``"histogram"`` — per distinct outcome: the packed bitstring
          plus an 8-byte counter;
        * ``"raw_iq"`` — two float32 (I, Q) per measured qubit per shot,
          the pulse-level format.
        """
        n = self.num_measured_qubits
        if fmt == "bitstrings":
            return self.shots * n
        if fmt == "histogram":
            per_key = math.ceil(n / 8) + 8
            return len(self.counts) * per_key
        if fmt == "raw_iq":
            return self.shots * n * 8
        raise DeviceError(f"unknown output format {fmt!r}")

    def data_rate(self, fmt: str = "bitstrings") -> float:
        """Average output bandwidth of this job in bits per second."""
        return 8.0 * self.output_bytes(fmt) / self.duration


class QPUDevice:
    """A simulated on-premise superconducting QPU.

    Parameters
    ----------
    topology:
        Connectivity (default: the paper's 4×5 grid).
    seed:
        Master seed; all internal stochastic processes derive from it.
    drift_config:
        Physics-drift tunables.
    base_calibration:
        Initial (factory) calibration; generated nominally if omitted.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        *,
        seed: RandomState = None,
        drift_config: Optional[DriftConfig] = None,
        base_calibration: Optional[CalibrationSnapshot] = None,
        name: str = "qpu20",
    ) -> None:
        self.topology = topology or Topology.iqm_garnet_like()
        self.name = str(name)
        self._exec_rng = child_rng(seed, "exec")
        base = base_calibration or nominal_calibration(
            self.topology, rng=child_rng(seed, "calibration")
        )
        self.drift = DriftModel(base, drift_config, rng=child_rng(seed, "drift"))
        self.status = DeviceStatus.ONLINE
        # Schedule/idle-time analysis cache: gate durations are static
        # device properties (drift moves error rates, never durations), so
        # the ASAP schedule of a circuit object is invariant as long as no
        # instruction has been appended since it was computed.
        self._duration_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._job_counter = 0
        self.jobs_executed = 0
        self.busy_seconds = 0.0
        self.calibrating_seconds = 0.0

    # -- clock ---------------------------------------------------------------

    @property
    def time(self) -> float:
        """Simulation time in seconds."""
        return self.drift.time

    def advance_time(self, dt: float) -> None:
        """Let physics drift for *dt* seconds (device may be in any state)."""
        self.drift.evolve(dt)

    # -- status --------------------------------------------------------------

    def _require_online(self, action: str) -> None:
        if self.status is not DeviceStatus.ONLINE:
            raise DeviceUnavailableError(
                f"cannot {action}: device {self.name!r} is {self.status.value}"
            )

    def set_status(self, status: DeviceStatus) -> None:
        self.status = status

    # -- calibration ------------------------------------------------------------

    def calibration(self) -> CalibrationSnapshot:
        """Current *effective* calibration data (what QDMI serves)."""
        return self.drift.effective_snapshot()

    def calibrate(self, kind: str = "full") -> float:
        """Run a calibration procedure; returns its duration in seconds.

        Advances the clock by the procedure duration (drift continues
        during calibration — the procedure tunes against a moving target,
        which the post-calibration residual models).
        """
        self._require_online("calibrate")
        duration = (
            FULL_CALIBRATION_DURATION if kind == "full" else QUICK_CALIBRATION_DURATION
        )
        if kind not in ("full", "quick"):
            raise DeviceError(f"unknown calibration kind {kind!r}")
        self.status = DeviceStatus.CALIBRATING
        try:
            self.drift.evolve(duration)
            self.drift.apply_calibration(kind)
            self.calibrating_seconds += duration
        finally:
            self.status = DeviceStatus.ONLINE
        return duration

    # -- execution ---------------------------------------------------------------

    def validate(self, circuit: QuantumCircuit) -> None:
        """Check the native-gate and connectivity contract."""
        if circuit.num_qubits > self.topology.num_qubits:
            raise DeviceError(
                f"circuit uses {circuit.num_qubits} qubits; device has "
                f"{self.topology.num_qubits}"
            )
        for inst in circuit:
            if inst.name not in NATIVE_GATES:
                raise DeviceError(
                    f"gate {inst.name!r} is not native; transpile first "
                    f"(native set: {sorted(NATIVE_GATES)})"
                )
            if inst.name == "cz" and not self.topology.is_coupled(*inst.qubits):
                raise TopologyError(
                    f"no coupler between qubits {inst.qubits[0]} and "
                    f"{inst.qubits[1]} on {self.topology.name}"
                )

    def estimate_durations(
        self, circuit: QuantumCircuit, snapshot: CalibrationSnapshot
    ) -> Tuple[float, Dict[int, float]]:
        """(circuit duration, per-instruction idle time before each op).

        Uses ASAP scheduling on the dependency DAG; the idle map feeds
        idle-decoherence noise injection.  Results are cached per circuit
        object, keyed on the snapshot's duration fingerprint (drift moves
        error rates, not durations, so the heavy-traffic ops loops that
        re-execute the same calibration/workload circuits skip the DAG
        rebuild — while a snapshot with genuinely different durations
        recomputes).
        """
        fingerprint = self._duration_fingerprint(snapshot)
        try:
            cached = self._duration_cache.get(circuit)
        except TypeError:  # non-weakref-able circuit stand-ins in tests
            cached = None
        if cached is not None and cached[0] == len(circuit) and cached[1] == fingerprint:
            return cached[2], dict(cached[3])
        dag = CircuitDag(circuit)
        ready: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
        finish: Dict[int, float] = {}
        idle: Dict[int, float] = {}
        total = 0.0
        for node in dag.topological_order():
            inst = node.instruction
            if inst.name == "delay":
                dur = float(inst.params[0])
            else:
                dur = snapshot.gate_duration(inst.name, inst.qubits)
            start = 0.0
            for p in node.predecessors:
                start = max(start, finish[p])
            # Idle time: operands waited since they were last released.
            waited = sum(
                max(0.0, start - ready.get(q, 0.0)) for q in inst.qubits
            )
            if waited > 0 and inst.name not in ("barrier",):
                idle[node.index] = waited
            end = start + dur
            finish[node.index] = end
            for q in inst.qubits:
                ready[q] = end
            total = max(total, end)
        try:
            self._duration_cache[circuit] = (
                len(circuit),
                fingerprint,
                total,
                dict(idle),
            )
        except TypeError:  # non-weakref-able circuit stand-ins in tests
            pass
        return total, idle

    @staticmethod
    def _duration_fingerprint(snapshot: CalibrationSnapshot) -> Tuple:
        """Every duration a schedule can depend on, as a hashable key."""
        return (
            snapshot.reset_duration,
            tuple((qp.prx_duration, qp.readout_duration) for qp in snapshot.qubits),
            tuple(sorted((k, cp.cz_duration) for k, cp in snapshot.couplers.items())),
        )

    @staticmethod
    def _compact_circuit(circuit: QuantumCircuit):
        """Remap a circuit onto its active qubits only.

        Returns ``(active_physical_qubits, compact_circuit)``; classical
        bits and instruction order are unchanged, so per-instruction
        noise attachments stay valid.
        """
        used = sorted(circuit.qubits_used())
        if not used:
            used = [0]
        if len(used) == circuit.num_qubits and used[-1] == len(used) - 1:
            return used, circuit
        mapping = {q: i for i, q in enumerate(used)}
        compact = QuantumCircuit(len(used), circuit.num_clbits, circuit.name)
        for inst in circuit:
            compact._instructions.append(inst.remapped(mapping))
        return used, compact

    def execute(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        *,
        include_idle_noise: bool = True,
    ) -> QPUJobResult:
        """Run a native circuit, returning counts and timing.

        The job advances device time by its physical duration, so long
        experiments genuinely age the calibration.
        """
        self._require_online("execute")
        self.validate(circuit)
        if shots < 1:
            raise DeviceError("shots must be >= 1")
        snapshot = self.calibration()
        extra: Dict[int, QuantumError] = {}
        gate_time, idle = self.estimate_durations(circuit, snapshot)
        for idx, inst in enumerate(circuit):
            pieces: List[QuantumError] = []
            if inst.name == "delay":
                q = inst.qubits[0]
                qp = snapshot.qubits[q]
                pieces.append(
                    thermal_relaxation_error(qp.t1, qp.t2, float(inst.params[0]))
                )
            if include_idle_noise and idx in idle:
                for q in inst.qubits:
                    qp = snapshot.qubits[q]
                    share = idle[idx] / max(1, len(inst.qubits))
                    pieces.append(
                        thermal_relaxation_error(qp.t1, qp.t2, share)
                    )
            if pieces:
                combined = pieces[0]
                for p in pieces[1:]:
                    combined = combined.compose(p)
                extra[idx] = combined
        # Simulate only the active region of the chip: a k-qubit job on
        # the 20-qubit device needs a 2^k state, not 2^20.  Instruction
        # indices (and hence `extra`) are preserved by the remapping.
        active, compact = self._compact_circuit(circuit)
        noise = snapshot.as_noise_model(qubits=active)
        counts = sample_counts(
            compact,
            shots,
            noise=noise,
            rng=self._exec_rng,
            instruction_errors=extra or None,
        )
        measured = {
            inst.qubits[0] for inst in circuit if inst.name == "measure"
        }
        shot_duration = snapshot.reset_duration + gate_time
        duration = shots * shot_duration + JOB_OVERHEAD
        started = self.time
        self.drift.evolve(duration)
        self.busy_seconds += duration
        self.jobs_executed += 1
        self._job_counter += 1
        return QPUJobResult(
            job_id=self._job_counter,
            circuit_name=circuit.name,
            counts=counts,
            shots=int(shots),
            duration=duration,
            shot_duration=shot_duration,
            started_at=started,
            num_measured_qubits=len(measured),
            calibration_timestamp=snapshot.timestamp,
        )

    def __repr__(self) -> str:
        return (
            f"<QPUDevice {self.name!r}: {self.topology.num_qubits} qubits, "
            f"{self.status.value}, t={self.time:.0f}s, "
            f"{self.jobs_executed} jobs>"
        )


__all__ = [
    "DeviceStatus",
    "QPUDevice",
    "QPUJobResult",
    "QUICK_CALIBRATION_DURATION",
    "FULL_CALIBRATION_DURATION",
    "JOB_OVERHEAD",
]
