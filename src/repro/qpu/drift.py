"""Parameter drift: why quantum computers need recalibration.

The paper's central operational lesson (Section 3.2, Figure 4) is that
"qubits … are part of dynamic systems that require regular tuning".
This module is the hidden physical truth behind that statement:

* **Miscalibration coordinates** — each qubit (and each coupler) carries
  an Ornstein–Uhlenbeck coordinate modeling how far the control pulses
  have drifted from the device's current physics.  Gate error grows
  quadratically in the coordinate.  Calibration re-zeros the coordinate
  (to a small residual) — *quick* calibration re-zeros only the
  single-qubit and readout coordinates and leaves most of the two-qubit
  miscalibration in place, which is exactly the paper's "quick
  recalibration … generally results in lower system performance".
* **T1 wander and TLS defects** — T1 follows a slow log-OU process, and
  two-level-system defects (the paper cites PRX Quantum 3, 040332)
  occasionally latch onto a qubit and depress its T1 for days.  No
  calibration can fix these; they set the fidelity floor.

The observable artifact is :meth:`DriftModel.effective_snapshot`, the
calibration data a *measurement* of the device would report right now.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import CalibrationError
from repro.qpu.params import CalibrationSnapshot, CouplerParams, QubitParams
from repro.utils.rng import RandomState, as_rng
from repro.utils.units import DAY
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DriftConfig:
    """Tunables of the drift process (defaults give Figure-4-like traces)."""

    miscal_tau: float = 3.0 * DAY       # OU relaxation time of miscalibration
    miscal_std_1q: float = 1.0          # stationary std, dimensionless units
    miscal_std_2q: float = 1.0
    miscal_std_ro: float = 1.0
    sens_1q: float = 1.5e-3             # added PRX error per unit coordinate²
    sens_2q: float = 1.2e-2             # added CZ error per unit coordinate²
    sens_ro: float = 3.0e-2             # added readout error per unit coordinate²
    cross_sens_2q: float = 2.0e-3       # CZ penalty from 1q detuning of its qubits
    t1_tau: float = 7.0 * DAY           # log-OU timescale of T1 wander
    t1_log_std: float = 0.12            # stationary std of log T1
    tls_rate: float = 1.0 / (30.0 * DAY)  # per-qubit TLS capture rate
    tls_depth: float = 0.35             # T1 multiplier while a TLS is latched
    tls_mean_duration: float = 2.0 * DAY
    residual_full: float = 0.08         # coordinate residual after full cal
    residual_quick_1q: float = 0.12     # 1q/readout residual after quick cal
    quick_2q_retention: float = 0.65    # 2q miscalibration left after quick cal

    def __post_init__(self) -> None:
        check_positive(self.miscal_tau, "miscal_tau")
        check_positive(self.t1_tau, "t1_tau")
        if not 0.0 <= self.quick_2q_retention <= 1.0:
            raise CalibrationError("quick_2q_retention must be in [0, 1]")


class DriftModel:
    """Hidden physical state of a device plus its evolution law.

    The model owns simulation time (seconds).  :meth:`evolve` advances
    the physics; :meth:`apply_calibration` models a calibration
    procedure's effect; :meth:`effective_snapshot` reports what a
    characterization measurement would see.
    """

    def __init__(
        self,
        base: CalibrationSnapshot,
        config: Optional[DriftConfig] = None,
        rng: RandomState = None,
    ) -> None:
        self.base = base
        self.config = config or DriftConfig()
        self._rng = as_rng(rng)
        n = base.topology.num_qubits
        m = base.topology.num_couplers
        self.time = float(base.timestamp)
        self._delta_1q = np.zeros(n)
        self._delta_ro = np.zeros(n)
        self._delta_2q = np.zeros(m)
        self._t1_log = np.zeros(n)
        self._tls_until = np.full(n, -np.inf)
        self._coupler_index = {
            edge: i for i, edge in enumerate(base.topology.couplers)
        }
        self._last_kind = base.calibration_kind

    # -- evolution ----------------------------------------------------------------

    def evolve(self, dt: float) -> None:
        """Advance the hidden physics by *dt* seconds."""
        if dt < 0:
            raise CalibrationError("cannot evolve backwards in time")
        if dt == 0:
            return
        cfg = self.config
        r = self._rng

        def ou(x: np.ndarray, tau: float, std: float) -> np.ndarray:
            a = np.exp(-dt / tau)
            return x * a + std * np.sqrt(1.0 - a * a) * r.normal(size=x.shape)

        self._delta_1q = ou(self._delta_1q, cfg.miscal_tau, cfg.miscal_std_1q)
        self._delta_ro = ou(self._delta_ro, cfg.miscal_tau, cfg.miscal_std_ro)
        self._delta_2q = ou(self._delta_2q, cfg.miscal_tau, cfg.miscal_std_2q)
        self._t1_log = ou(self._t1_log, cfg.t1_tau, cfg.t1_log_std)
        # TLS capture: Poisson per qubit.
        p_capture = 1.0 - np.exp(-cfg.tls_rate * dt)
        captured = r.random(self._tls_until.shape) < p_capture
        durations = r.exponential(cfg.tls_mean_duration, size=self._tls_until.shape)
        new_until = self.time + dt + durations
        self._tls_until = np.where(
            captured & (self._tls_until < self.time + dt), new_until, self._tls_until
        )
        self.time += dt

    # -- calibration --------------------------------------------------------------

    def apply_calibration(self, kind: str) -> None:
        """Re-zero miscalibration coordinates per procedure *kind*.

        ``"full"`` re-tunes everything; ``"quick"`` re-tunes single-qubit
        pulses and readout but retains most two-qubit miscalibration.
        """
        cfg = self.config
        r = self._rng
        n = self._delta_1q.shape[0]
        m = self._delta_2q.shape[0]
        if kind == "full":
            self._delta_1q = cfg.residual_full * r.normal(size=n)
            self._delta_ro = cfg.residual_full * r.normal(size=n)
            self._delta_2q = cfg.residual_full * r.normal(size=m)
        elif kind == "quick":
            self._delta_1q = cfg.residual_quick_1q * r.normal(size=n)
            self._delta_ro = cfg.residual_quick_1q * r.normal(size=n)
            self._delta_2q = cfg.quick_2q_retention * self._delta_2q
        else:
            raise CalibrationError(f"unknown calibration kind {kind!r}")
        self._last_kind = kind

    # -- observation ---------------------------------------------------------------

    def tls_active(self) -> np.ndarray:
        """Boolean mask of qubits currently hosting a TLS defect."""
        return self._tls_until > self.time

    def effective_snapshot(self) -> CalibrationSnapshot:
        """The calibration data a measurement would report *now*."""
        cfg = self.config
        base = self.base
        tls = self.tls_active()
        qubits: List[QubitParams] = []
        for q, qp in enumerate(base.qubits):
            t1 = qp.t1 * float(np.exp(self._t1_log[q]))
            if tls[q]:
                t1 *= cfg.tls_depth
            t2 = min(qp.t2 * float(np.exp(self._t1_log[q])), 1.95 * t1)
            add_1q = cfg.sens_1q * float(self._delta_1q[q]) ** 2
            add_ro = cfg.sens_ro * float(self._delta_ro[q]) ** 2
            # Decoherence during the pulse contributes error ~ duration/T1;
            # a TLS-depressed T1 therefore shows up in gate fidelity too.
            decoherence_1q = 0.5 * qp.prx_duration * (1.0 / t1 + 1.0 / t2)
            qubits.append(
                QubitParams(
                    t1=t1,
                    t2=t2,
                    prx_error=_clip(qp.prx_error + add_1q + decoherence_1q),
                    readout_error_0=_clip(qp.readout_error_0 + add_ro),
                    readout_error_1=_clip(qp.readout_error_1 + 1.4 * add_ro),
                    prx_duration=qp.prx_duration,
                    readout_duration=qp.readout_duration,
                    frequency=qp.frequency,
                )
            )
        couplers: Dict[tuple, CouplerParams] = {}
        for edge, cp in base.couplers.items():
            i = self._coupler_index[edge]
            a, b = edge
            add_2q = cfg.sens_2q * float(self._delta_2q[i]) ** 2
            cross = cfg.cross_sens_2q * (
                float(self._delta_1q[a]) ** 2 + float(self._delta_1q[b]) ** 2
            )
            deco = 0.5 * cp.cz_duration * (
                1.0 / qubits[a].t1 + 1.0 / qubits[b].t1
            )
            couplers[edge] = CouplerParams(
                cz_error=_clip(cp.cz_error + add_2q + cross + deco),
                cz_duration=cp.cz_duration,
            )
        return CalibrationSnapshot(
            topology=base.topology,
            qubits=tuple(qubits),
            couplers=couplers,
            timestamp=self.time,
            calibration_kind=self._last_kind,
            reset_duration=base.reset_duration,
        )

    def miscalibration_magnitude(self) -> Dict[str, float]:
        """RMS miscalibration per subsystem — a health-analytics input."""
        return {
            "rms_1q": float(np.sqrt(np.mean(self._delta_1q**2))),
            "rms_2q": float(np.sqrt(np.mean(self._delta_2q**2))),
            "rms_ro": float(np.sqrt(np.mean(self._delta_ro**2))),
            "tls_count": float(self.tls_active().sum()),
        }


def _clip(p: float) -> float:
    return min(0.5, max(0.0, float(p)))


__all__ = ["DriftConfig", "DriftModel"]
