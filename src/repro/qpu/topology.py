"""QPU connectivity: the 20-qubit square-grid lattice.

The paper's device has "20 superconducting transmon qubits in a square
grid topology, where the tunable couplers mediate the connection between
each qubit pair".  We model it as a 4×5 rectangular lattice; qubits are
indexed 0–19 row-major and couplers are the lattice edges.

The class is generic over grid size so the bandwidth experiment
(Section 2.4) can scale the same model to 54- and 150-qubit devices.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import TopologyError

Coupler = Tuple[int, int]
"""A coupler is a sorted qubit-index pair."""


class Topology:
    """An undirected qubit-connectivity graph with grid geometry."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]], name: str = "custom"):
        self.num_qubits = int(num_qubits)
        self.name = str(name)
        if self.num_qubits < 1:
            raise TopologyError("topology needs at least one qubit")
        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(self.num_qubits))
        for a, b in edges:
            a, b = int(a), int(b)
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise TopologyError(f"edge ({a}, {b}) out of range")
            if a == b:
                raise TopologyError(f"self-loop on qubit {a}")
            self._graph.add_edge(a, b)
        if self.num_qubits > 1 and not nx.is_connected(self._graph):
            raise TopologyError("topology must be connected")
        self._dist: Optional[Dict[int, Dict[int, int]]] = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def square_grid(cls, rows: int, cols: int) -> "Topology":
        """Rectangular lattice, row-major indexing."""
        if rows < 1 or cols < 1:
            raise TopologyError("grid dimensions must be positive")
        edges: List[Tuple[int, int]] = []
        for r in range(rows):
            for c in range(cols):
                idx = r * cols + c
                if c + 1 < cols:
                    edges.append((idx, idx + 1))
                if r + 1 < rows:
                    edges.append((idx, idx + cols))
        topo = cls(rows * cols, edges, name=f"grid{rows}x{cols}")
        topo.rows, topo.cols = rows, cols  # type: ignore[attr-defined]
        return topo

    @classmethod
    def line(cls, num_qubits: int) -> "Topology":
        return cls(
            num_qubits,
            [(i, i + 1) for i in range(num_qubits - 1)],
            name=f"line{num_qubits}",
        )

    @classmethod
    def iqm_garnet_like(cls) -> "Topology":
        """The paper's 20-qubit device: a 4×5 square grid."""
        return cls.square_grid(4, 5)

    @classmethod
    def scaled_device(cls, num_qubits: int) -> "Topology":
        """Near-square grid with *num_qubits* sites (Section 2.4 scaling:
        20 → 54 → 150 qubits).  Chooses the most square factorization and
        trims surplus sites from the last row."""
        rows = max(1, int(math.isqrt(num_qubits)))
        cols = math.ceil(num_qubits / rows)
        full = cls.square_grid(rows, cols)
        if rows * cols == num_qubits:
            return full
        keep = list(range(num_qubits))
        edges = [
            (a, b) for a, b in full.couplers if a < num_qubits and b < num_qubits
        ]
        topo = cls(num_qubits, edges, name=f"grid{rows}x{cols}-trim{num_qubits}")
        return topo

    # -- queries ---------------------------------------------------------------

    @property
    def couplers(self) -> List[Coupler]:
        """Sorted list of couplers, each as a sorted pair."""
        return sorted(tuple(sorted(e)) for e in self._graph.edges)

    @property
    def num_couplers(self) -> int:
        return self._graph.number_of_edges()

    def is_coupled(self, a: int, b: int) -> bool:
        return self._graph.has_edge(int(a), int(b))

    def neighbors(self, qubit: int) -> List[int]:
        if not 0 <= qubit < self.num_qubits:
            raise TopologyError(f"qubit {qubit} out of range")
        return sorted(self._graph.neighbors(int(qubit)))

    def degree(self, qubit: int) -> int:
        return int(self._graph.degree[int(qubit)])

    def distance(self, a: int, b: int) -> int:
        """Hop distance between two qubits (cached all-pairs)."""
        if self._dist is None:
            self._dist = dict(nx.all_pairs_shortest_path_length(self._graph))
        try:
            return int(self._dist[int(a)][int(b)])
        except KeyError:
            raise TopologyError(f"qubits ({a}, {b}) out of range") from None

    def shortest_path(self, a: int, b: int) -> List[int]:
        return [int(q) for q in nx.shortest_path(self._graph, int(a), int(b))]

    def hamiltonian_path(self) -> List[int]:
        """A path visiting every qubit once, used to lay out GHZ chains.

        For grid topologies the row-serpentine ("boustrophedon") path is
        exact; for irregular graphs a greedy DFS fallback is used and may
        raise when no path exists.
        """
        rows = getattr(self, "rows", None)
        cols = getattr(self, "cols", None)
        if rows is not None and cols is not None:
            order: List[int] = []
            for r in range(rows):
                cs = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
                order.extend(r * cols + c for c in cs)
            return order
        # Greedy DFS with degree heuristic.
        start = min(range(self.num_qubits), key=self.degree)
        path = [start]
        seen = {start}
        while len(path) < self.num_qubits:
            cands = [n for n in self.neighbors(path[-1]) if n not in seen]
            if not cands:
                raise TopologyError(
                    f"no Hamiltonian path found on topology {self.name!r}"
                )
            nxt = min(cands, key=lambda n: sum(m not in seen for m in self.neighbors(n)))
            path.append(nxt)
            seen.add(nxt)
        return path

    def connected_subsets(self, size: int) -> List[FrozenSet[int]]:
        """All connected qubit subsets of the given *size* (size ≤ 4 kept
        tractable; used to enumerate GHZ benchmark regions)."""
        if size < 1 or size > self.num_qubits:
            raise TopologyError(f"invalid subset size {size}")
        if size > 6:
            raise TopologyError("connected_subsets limited to size <= 6")
        current = {frozenset([q]) for q in range(self.num_qubits)}
        for _ in range(size - 1):
            grown: set[FrozenSet[int]] = set()
            for sub in current:
                for q in sub:
                    for n in self._graph.neighbors(q):
                        if n not in sub:
                            grown.add(sub | {n})
            current = grown
        return sorted(current, key=sorted)

    def subtopology(self, qubits: Sequence[int]) -> "Topology":
        """Induced topology on *qubits*, re-indexed 0..k-1 in given order."""
        index = {int(q): i for i, q in enumerate(qubits)}
        if len(index) != len(qubits):
            raise TopologyError("subtopology qubits must be distinct")
        edges = [
            (index[a], index[b])
            for a, b in self._graph.edges
            if a in index and b in index
        ]
        return Topology(len(qubits), edges, name=f"{self.name}-sub{len(qubits)}")

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def ascii_art(self) -> str:
        """Grid rendering for logs and the Figure 1 inventory bench."""
        rows = getattr(self, "rows", None)
        cols = getattr(self, "cols", None)
        if rows is None or cols is None:
            return f"<{self.name}: {self.num_qubits} qubits, {self.num_couplers} couplers>"
        lines: List[str] = []
        for r in range(rows):
            lines.append(
                " — ".join(f"Q{r * cols + c:02d}" for c in range(cols))
            )
            if r + 1 < rows:
                lines.append("  |    " * (cols - 1) + "  |")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r}: {self.num_qubits} qubits, "
            f"{self.num_couplers} couplers>"
        )


__all__ = ["Topology", "Coupler"]
