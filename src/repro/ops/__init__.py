"""Daily operations: the 146-day autonomous-calibration run and onboarding."""

from repro.ops.onboarding import (
    FAQ_CATEGORIES,
    OnboardingProgram,
    OnboardingReport,
    UserProfile,
)
from repro.ops.operations import (
    DailyRecord,
    OperationsConfig,
    OperationsResult,
    OperationsSimulator,
)

__all__ = [
    "FAQ_CATEGORIES",
    "OnboardingProgram",
    "OnboardingReport",
    "UserProfile",
    "DailyRecord",
    "OperationsConfig",
    "OperationsResult",
    "OperationsSimulator",
]
