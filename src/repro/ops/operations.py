"""Long-horizon daily-operations simulation: Figure 4's generator.

Figure 4 of the paper shows "autonomous calibration performance over 146
days … consistent single-qubit gate fidelity, readout fidelity and CZ
fidelity over time", with "more than 100 days of continuous operation
without human intervention in calibration".

:class:`OperationsSimulator` reproduces that run: physics drift (with
TLS events), periodic DCDB telemetry collection, the automated
calibration controller making quick/full decisions inside
scheduler-granted windows, optional user workload, and uptime
accounting.  The output is the Figure 4 series — daily medians of the
three fidelities — plus the calibration/event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.controller import CalibrationController, CalibrationEvent
from repro.circuits.circuit import ghz_circuit
from repro.errors import ReproError
from repro.facility.outage import (
    FacilityConfig,
    OutageScenario,
    RecoveryReport,
    simulate_outage,
)
from repro.qpu.device import DeviceStatus, QPUDevice
from repro.telemetry.analytics import RecalibrationAdvisor
from repro.telemetry.plugins import DCDBCollector, JobAccountingPlugin, QPUMetricsPlugin
from repro.telemetry.store import MetricStore
from repro.transpiler.transpile import transpile
from repro.utils.units import DAY, HOUR


@dataclass(frozen=True)
class OperationsConfig:
    """Tunables of the operations run."""

    duration_days: int = 146
    telemetry_interval: float = 2.0 * HOUR
    calibration_windows: str = "nightly"   # "nightly" | "always" | "none"
    nightly_window: tuple = (1.0, 6.0)     # hours-of-day when calibration may run
    policy: str = "scheduler_controlled"   # controller policy
    fixed_period: float = 24.0 * HOUR      # for the fixed-period baseline
    workload_jobs_per_day: int = 0         # real QPU jobs (slow; benches use few)
    workload_ghz_size: int = 3
    workload_shots: int = 128
    #: outages injected at the start of given days (day → scenario);
    #: recovery follows the Section 3.5 procedure under `facility`.
    outages: Mapping[int, OutageScenario] = field(default_factory=dict)
    facility: FacilityConfig = field(default_factory=FacilityConfig)

    def __post_init__(self) -> None:
        if self.duration_days < 1:
            raise ReproError("duration_days must be >= 1")
        if self.calibration_windows not in ("nightly", "always", "none"):
            raise ReproError(f"unknown window mode {self.calibration_windows!r}")
        for day in self.outages:
            if not 0 <= int(day) < self.duration_days:
                raise ReproError(f"outage day {day} outside the run horizon")


@dataclass(frozen=True)
class DailyRecord:
    """One day of the Figure 4 series."""

    day: int
    median_prx_fidelity: float
    median_readout_fidelity: float
    median_cz_fidelity: float
    median_t1: float
    calibrations_quick: int
    calibrations_full: int
    tls_active: int


@dataclass
class OperationsResult:
    """Everything the 146-day run produced."""

    days: List[DailyRecord]
    calibration_events: List[CalibrationEvent]
    store: MetricStore
    human_interventions: int
    online_fraction: float
    jobs_executed: int
    outage_reports: List[Tuple[int, RecoveryReport]] = field(default_factory=list)

    def fig4_series(self) -> Dict[str, np.ndarray]:
        """The three Figure 4 traces plus the day axis."""
        return {
            "day": np.array([d.day for d in self.days], dtype=float),
            "prx_fidelity": np.array([d.median_prx_fidelity for d in self.days]),
            "readout_fidelity": np.array([d.median_readout_fidelity for d in self.days]),
            "cz_fidelity": np.array([d.median_cz_fidelity for d in self.days]),
        }

    def unattended_days(self) -> int:
        """Days of operation without human intervention (paper: > 100)."""
        return 0 if self.human_interventions else len(self.days)

    def summary(self) -> Dict[str, float]:
        series = self.fig4_series()
        return {
            "days": float(len(self.days)),
            "unattended_days": float(self.unattended_days()),
            "mean_prx_fidelity": float(series["prx_fidelity"].mean()),
            "mean_readout_fidelity": float(series["readout_fidelity"].mean()),
            "mean_cz_fidelity": float(series["cz_fidelity"].mean()),
            "min_cz_fidelity": float(series["cz_fidelity"].min()),
            "quick_calibrations": float(
                sum(d.calibrations_quick for d in self.days)
            ),
            "full_calibrations": float(sum(d.calibrations_full for d in self.days)),
            "online_fraction": self.online_fraction,
            "jobs_executed": float(self.jobs_executed),
        }


class OperationsSimulator:
    """Drives a device through weeks-to-months of autonomous operation."""

    def __init__(
        self,
        device: QPUDevice,
        config: Optional[OperationsConfig] = None,
    ) -> None:
        self.device = device
        self.config = config or OperationsConfig()
        self.store = MetricStore()
        self.collector = DCDBCollector(
            self.store,
            [QPUMetricsPlugin(device), JobAccountingPlugin(device)],
            interval=self.config.telemetry_interval,
        )
        self.controller = CalibrationController(
            device,
            advisor=RecalibrationAdvisor(),
            window_fn=self._window_open,
            policy=self.config.policy,
            fixed_period=self.config.fixed_period,
        )
        self._start_time = device.time

    # -- calibration windows ----------------------------------------------------

    def _window_open(self, now: float) -> bool:
        mode = self.config.calibration_windows
        if mode == "always":
            return True
        if mode == "none":
            return False
        hour_of_day = ((now - self._start_time) % DAY) / HOUR
        lo, hi = self.config.nightly_window
        return lo <= hour_of_day < hi

    # -- the run -----------------------------------------------------------------

    def run(self) -> OperationsResult:
        cfg = self.config
        days: List[DailyRecord] = []
        jobs_executed = 0
        online_seconds = 0.0
        total_seconds = 0.0
        steps_per_day = max(1, int(round(DAY / cfg.telemetry_interval)))
        workload_every = (
            max(1, steps_per_day // cfg.workload_jobs_per_day)
            if cfg.workload_jobs_per_day
            else 0
        )
        outage_reports: List[Tuple[int, RecoveryReport]] = []
        offline_until = -1.0
        for day in range(cfg.duration_days):
            quick0 = self.controller.stats.quick_count
            full0 = self.controller.stats.full_count
            if day in cfg.outages:
                report = simulate_outage(cfg.outages[day], cfg.facility)
                outage_reports.append((day, report))
                if report.total_downtime > 0:
                    self.device.set_status(DeviceStatus.OFFLINE)
                    offline_until = self.device.time + report.total_downtime
            for step in range(steps_per_day):
                self.device.advance_time(cfg.telemetry_interval)
                total_seconds += cfg.telemetry_interval
                if (
                    self.device.status is DeviceStatus.OFFLINE
                    and self.device.time >= offline_until
                ):
                    # recovery complete: the Section 3.5 procedure ends
                    # with a (re)calibration + verification, so the
                    # device returns fully tuned.
                    self.device.set_status(DeviceStatus.ONLINE)
                    self.device.drift.apply_calibration("full")
                if self.device.status is DeviceStatus.ONLINE:
                    online_seconds += cfg.telemetry_interval
                self.collector.run_cycle(self.device.time)
                if self.device.status is DeviceStatus.ONLINE:
                    self.controller.step(self.store)
                    if workload_every and step % workload_every == 0:
                        jobs_executed += self._run_workload_job()
            snapshot = self.device.drift.effective_snapshot()
            days.append(
                DailyRecord(
                    day=day,
                    median_prx_fidelity=snapshot.median_prx_fidelity(),
                    median_readout_fidelity=snapshot.median_readout_fidelity(),
                    median_cz_fidelity=snapshot.median_cz_fidelity(),
                    median_t1=snapshot.median_t1(),
                    calibrations_quick=self.controller.stats.quick_count - quick0,
                    calibrations_full=self.controller.stats.full_count - full0,
                    tls_active=int(self.device.drift.tls_active().sum()),
                )
            )
        return OperationsResult(
            days=days,
            calibration_events=list(self.controller.events),
            store=self.store,
            human_interventions=0,  # the run is autonomous by construction
            online_fraction=online_seconds / max(total_seconds, 1e-9),
            jobs_executed=jobs_executed,
            outage_reports=outage_reports,
        )

    def _run_workload_job(self) -> int:
        """Execute one small user job (keeps the QPU honest under load)."""
        if self.device.status is not DeviceStatus.ONLINE:
            return 0
        size = self.config.workload_ghz_size
        snapshot = self.device.calibration()
        circuit = transpile(
            ghz_circuit(size, name="user-job"),
            self.device.topology,
            snapshot=snapshot,
            layout_method="line",
        ).circuit
        self.device.execute(circuit, shots=self.config.workload_shots)
        return 1


__all__ = [
    "OperationsConfig",
    "DailyRecord",
    "OperationsResult",
    "OperationsSimulator",
]
