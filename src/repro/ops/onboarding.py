"""User onboarding model (Section 4, lesson 4).

The paper's Section 4 is qualitative — two user groups (quantum experts
vs HPC practitioners), the Use–Modify–Create training progression,
mentorship, open-mic feedback, and a categorized FAQ.  We model it as a
stochastic user-ramp process whose one quantitative handle matches the
paper's observable: structured onboarding converts hardware access into
scientific output faster (time-to-first-successful-job, support-ticket
volume, publication conversion).

The model is intentionally simple and fully documented: each user has a
competence level that grows with training stages and successful jobs;
job success probability and ticket rate derive from competence; the
program compares a *structured* cohort (training + mentorship) against
an *unstructured* one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import RandomState, child_rng

#: Section 4's FAQ organization.
FAQ_CATEGORIES = (
    "Getting Started",
    "Job Submission & Execution",
    "Job Tracking & Results",
    "System & Hardware Information",
    "Resource Usage",
    "Budgeting",
)

#: Use–Modify–Create stages (Lee et al., cited by the paper).
UMC_STAGES = ("use", "modify", "create")


@dataclass
class UserProfile:
    """One early-phase user."""

    name: str
    background: str                 # "quantum_expert" | "hpc_practitioner"
    competence: float = 0.0         # 0..1, drives success probability
    stage: str = "use"
    jobs_attempted: int = 0
    jobs_succeeded: int = 0
    tickets_filed: int = 0
    first_success_day: Optional[int] = None
    published: bool = False

    def __post_init__(self) -> None:
        if self.background not in ("quantum_expert", "hpc_practitioner"):
            raise ReproError(f"unknown background {self.background!r}")


@dataclass(frozen=True)
class OnboardingReport:
    """Aggregate outcome of one cohort over the program horizon."""

    structured: bool
    num_users: int
    mean_time_to_first_success: float   # days (only over users who succeeded)
    success_rate_final_week: float
    total_tickets: int
    tickets_by_category: Dict[str, int]
    users_reached_create: int
    publications: int


class OnboardingProgram:
    """Simulates an early-user cohort over *days* days.

    Structured programs add: an initial device-specific training bump,
    mentor check-ins that accelerate competence growth, and open-mic
    sessions that convert tickets into competence instead of repeats.
    """

    def __init__(
        self,
        users: Sequence[UserProfile],
        *,
        structured: bool = True,
        days: int = 90,
        rng: RandomState = None,
    ) -> None:
        if not users:
            raise ReproError("cohort must contain at least one user")
        self.users = list(users)
        self.structured = bool(structured)
        self.days = int(days)
        self._rng = child_rng(rng, "onboarding", structured)

    # model constants -----------------------------------------------------------
    _TRAINING_BUMP = {"quantum_expert": 0.25, "hpc_practitioner": 0.15}
    _BASE_GROWTH = 0.010
    _MENTOR_GROWTH = 0.012
    _JOBS_PER_DAY = 0.6
    _STAGE_THRESHOLDS = {"modify": 0.35, "create": 0.65}
    _PUBLICATION_THRESHOLD = 30  # successful jobs needed for a publication

    def run(self) -> OnboardingReport:
        r = self._rng
        if self.structured:
            # hands-on Jupyter training session (device-specific tips):
            for u in self.users:
                u.competence = min(1.0, u.competence + self._TRAINING_BUMP[u.background])
        tickets_by_cat: Dict[str, int] = {c: 0 for c in FAQ_CATEGORIES}
        final_week_attempts = 0
        final_week_successes = 0
        for day in range(self.days):
            for u in self.users:
                growth = self._BASE_GROWTH
                if self.structured:
                    growth += self._MENTOR_GROWTH
                u.competence = min(1.0, u.competence + growth * r.uniform(0.5, 1.5))
                for threshold_stage, threshold in self._STAGE_THRESHOLDS.items():
                    if u.competence >= threshold and UMC_STAGES.index(
                        threshold_stage
                    ) > UMC_STAGES.index(u.stage):
                        u.stage = threshold_stage
                if r.random() > self._JOBS_PER_DAY:
                    continue
                u.jobs_attempted += 1
                p_success = 0.15 + 0.8 * u.competence
                success = r.random() < p_success
                if day >= self.days - 7:
                    final_week_attempts += 1
                    final_week_successes += int(success)
                if success:
                    u.jobs_succeeded += 1
                    if u.first_success_day is None:
                        u.first_success_day = day
                    if (
                        u.jobs_succeeded >= self._PUBLICATION_THRESHOLD
                        and u.stage == "create"
                    ):
                        u.published = True
                else:
                    u.tickets_filed += 1
                    # struggling beginners ask getting-started questions;
                    # advanced users file budgeting/hardware queries
                    if u.competence < 0.3:
                        cat = FAQ_CATEGORIES[int(r.integers(0, 3))]
                    else:
                        cat = FAQ_CATEGORIES[int(r.integers(2, len(FAQ_CATEGORIES)))]
                    tickets_by_cat[cat] += 1
                    if self.structured:
                        # open-mic feedback converts the failure into learning
                        u.competence = min(1.0, u.competence + 0.01)
        succeeded = [u for u in self.users if u.first_success_day is not None]
        mean_ttfs = (
            float(np.mean([u.first_success_day for u in succeeded]))
            if succeeded
            else float(self.days)
        )
        return OnboardingReport(
            structured=self.structured,
            num_users=len(self.users),
            mean_time_to_first_success=mean_ttfs,
            success_rate_final_week=(
                final_week_successes / final_week_attempts
                if final_week_attempts
                else 0.0
            ),
            total_tickets=sum(tickets_by_cat.values()),
            tickets_by_category=tickets_by_cat,
            users_reached_create=sum(1 for u in self.users if u.stage == "create"),
            publications=sum(1 for u in self.users if u.published),
        )


def default_cohort(n: int = 10, *, rng: RandomState = None) -> List[UserProfile]:
    """A mixed cohort: half quantum experts, half HPC practitioners —
    the two user groups Section 4 identifies."""
    users = []
    for i in range(n):
        background = "quantum_expert" if i % 2 == 0 else "hpc_practitioner"
        users.append(UserProfile(name=f"user{i:02d}", background=background))
    return users


__all__ = [
    "FAQ_CATEGORIES",
    "UMC_STAGES",
    "UserProfile",
    "OnboardingReport",
    "OnboardingProgram",
    "default_cohort",
]
